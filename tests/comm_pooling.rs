//! Differential and property tests for the zero-allocation comm fast
//! path: the pooled halo exchange must be bit-identical to the
//! fresh-allocation baseline on irregular grids and rank counts, the
//! indexed mailbox must preserve per-channel non-overtaking order under
//! interleaved tags, and a steady-state IV-B run must stop allocating
//! message buffers after its warm-up step.

use advect_core::field::Field3;
use advect_core::stepper::AdvectionProblem;
use decomp::{Decomposition, ExchangePlan};
use overlap::halo::{exchange_halos, exchange_halos_fresh};
use overlap::{BulkSyncMpi, HaloBuffers, RunConfig};
use proptest::prelude::*;
use simmpi::World;

/// Run one exchange per rank over an irregular grid and return every
/// rank's full local field (interior + halo), bit for bit.
fn exchange_fields(
    grid: (usize, usize, usize),
    ntasks: usize,
    pooled: bool,
    rounds: usize,
) -> Vec<Field3> {
    let decomp = Decomposition::new(ntasks, grid);
    let dref = &decomp;
    let mut results = World::run(ntasks, move |comm| {
        let rank = comm.rank();
        let sub = dref.subdomains[rank];
        let (ox, oy, oz) = sub.offset;
        let mut local = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
        local.fill_interior(|x, y, z| {
            // Irregular, position-dependent values so any mismatched or
            // misordered message shows up as a bitwise difference.
            let g = (ox as i64 + x) as f64 * 1.25
                + (oy as i64 + y) as f64 * 0.75
                + (oz as i64 + z) as f64 * 0.5;
            (g * 1.0000001).sin()
        });
        let plan = ExchangePlan::new(sub.extent, 1);
        let bufs = HaloBuffers::new(&plan, comm);
        for _ in 0..rounds {
            if pooled {
                exchange_halos(&mut local, &plan, dref, rank, comm, &bufs);
            } else {
                exchange_halos_fresh(&mut local, &plan, dref, rank, comm);
            }
        }
        (rank, local)
    });
    results.sort_by_key(|(rank, _)| *rank);
    results.into_iter().map(|(_, f)| f).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pooled fast path and the fresh-allocation baseline are the
    /// same exchange: every rank's halo ends up bitwise identical on
    /// arbitrary (irregular) grids and rank counts, even after repeated
    /// exchanges that cycle buffers through the staging slots.
    #[test]
    fn pooled_exchange_matches_fresh_bitwise(
        gx in 4usize..12, gy in 4usize..12, gz in 4usize..12,
        ntasks in 1usize..6,
        rounds in 1usize..4,
    ) {
        prop_assume!(ntasks <= gz);
        let pooled = exchange_fields((gx, gy, gz), ntasks, true, rounds);
        let fresh = exchange_fields((gx, gy, gz), ntasks, false, rounds);
        for (rank, (p, f)) in pooled.iter().zip(&fresh).enumerate() {
            for (x, y, z) in p.full_range().iter() {
                prop_assert_eq!(
                    p.at(x, y, z).to_bits(), f.at(x, y, z).to_bits(),
                    "grid ({},{},{}) ntasks {} rank {} at ({},{},{})",
                    gx, gy, gz, ntasks, rank, x, y, z);
            }
        }
    }

    /// Indexed per-channel queues preserve MPI's non-overtaking
    /// guarantee: messages on the same (src, tag) channel arrive in send
    /// order regardless of how sends interleave across tags and of the
    /// order the receiver drains the channels.
    #[test]
    fn channels_preserve_send_order_under_interleaved_tags(
        ntags in 1usize..6,
        per_tag in 1usize..8,
        seed in 0u64..1024,
    ) {
        // Sender emits (tag, seq) pairs in a seed-scrambled interleaving
        // built by popping from per-tag queues, so each channel's relative
        // send order is ascending by construction.
        let mut next_seq = vec![0usize; ntags];
        let mut remaining = ntags * per_tag;
        let mut sends: Vec<(u64, usize)> = Vec::with_capacity(remaining);
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        while remaining > 0 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut pick = (state >> 33) as usize % remaining;
            for (t, seq) in next_seq.iter_mut().enumerate() {
                let left = per_tag - *seq;
                if pick < left {
                    sends.push((t as u64, *seq));
                    *seq += 1;
                    remaining -= 1;
                    break;
                }
                pick -= left;
            }
        }
        let sends_ref = &sends;
        let results = World::run(2, move |comm| {
            if comm.rank() == 1 {
                for &(tag, seq) in sends_ref {
                    comm.send(0, tag, vec![seq as f64]);
                }
                Vec::new()
            } else {
                // Drain channels highest-tag-first — the opposite of the
                // send interleaving — and record each channel's sequence.
                let mut got = Vec::new();
                for tag in (0..ntags as u64).rev() {
                    for _ in 0..per_tag {
                        got.push((tag, comm.recv(1, tag)[0] as usize));
                    }
                }
                got
            }
        });
        let got = &results[0];
        for tag in 0..ntags as u64 {
            let seqs: Vec<usize> = got.iter()
                .filter(|(t, _)| *t == tag)
                .map(|(_, s)| *s)
                .collect();
            let expect: Vec<usize> = (0..per_tag).collect();
            prop_assert_eq!(seqs, expect, "tag {} overtook", tag);
        }
    }
}

/// After one warm-up step populates the staging slots, further IV-B steps
/// allocate no message buffers at all: `buffers_allocated` stays flat
/// while recycles grow with the step count.
#[test]
fn bulk_sync_steady_state_allocates_no_buffers() {
    let problem = AdvectionProblem::general_case(12);
    let warm = BulkSyncMpi::run_with_report(&RunConfig::new(problem, 1).tasks(4)).1;
    let long = BulkSyncMpi::run_with_report(&RunConfig::new(problem, 9).tasks(4)).1;
    for rank in 0..4 {
        let w = &warm.comm[rank];
        let l = &long.comm[rank];
        assert_eq!(
            l.buffers_allocated, w.buffers_allocated,
            "rank {rank}: steps beyond the first allocated message buffers"
        );
        // Eight extra steps × six sends, every one reusing its slot.
        assert_eq!(
            l.buffers_recycled - w.buffers_recycled,
            8 * 6,
            "rank {rank}: steady-state sends did not all recycle"
        );
    }
}
