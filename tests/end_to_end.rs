//! Cross-crate integration tests: the whole pipeline from numerics to
//! distributed/hybrid execution to figure regeneration.

use advection_overlap::prelude::*;

fn reference(problem: AdvectionProblem, steps: u64) -> Field3 {
    let mut s = SerialStepper::new(problem);
    s.run(steps);
    s.state().clone()
}

#[test]
fn every_implementation_is_bit_exact_on_an_awkward_grid() {
    // A prime-ish grid and task count stresses uneven decomposition,
    // self-neighbor exchanges, and partial GPU blocks at once.
    let problem = AdvectionProblem::general_case(13);
    let steps = 3;
    let expect = reference(problem, steps);
    let spec = GpuSpec::tesla_c1060();
    for im in overlap::Impl::ALL {
        let cfg = RunConfig::new(problem, steps)
            .tasks(if im.uses_mpi() { 5 } else { 1 })
            .with_threads(3)
            .with_block((8, 4))
            .with_thickness(1);
        let got = im.run(&cfg, Some(&spec));
        assert_eq!(got.max_abs_diff(&expect), 0.0, "{} diverged", im.name());
    }
}

#[test]
fn long_run_distributed_accuracy_matches_serial_accuracy() {
    // A longer distributed run must track the analytic solution exactly
    // as well as the serial one (no error injected by communication).
    let problem = AdvectionProblem::general_case(16);
    let steps = 24;
    let serial = reference(problem, steps);
    let serial_norms = problem.norms_after(&serial, steps);
    let cfg = RunConfig::new(problem, steps).tasks(8).with_threads(2);
    let distributed = overlap::Impl::BulkSync.run(&cfg, None);
    let dist_norms = problem.norms_after(&distributed, steps);
    assert_eq!(serial_norms.linf, dist_norms.linf);
    // 16³ barely resolves the pulse (σ ≈ 1.6 cells), so the truncation
    // error is large in absolute terms; what matters is that it is the
    // *same* error and bounded.
    assert!(
        dist_norms.linf < 0.6,
        "accuracy degraded: {}",
        dist_norms.linf
    );
}

#[test]
fn hybrid_partition_respects_load_balance_parameter() {
    // More thickness → more CPU points, fewer GPU points, same answer.
    let problem = AdvectionProblem::general_case(14);
    let expect = reference(problem, 2);
    let spec = GpuSpec::tesla_c2050();
    let mut last_cpu_points = 0usize;
    for t in [1usize, 2, 3] {
        let part = decomp::BoxPartition::new((14, 14, 14), t);
        assert!(part.cpu_points() > last_cpu_points);
        last_cpu_points = part.cpu_points();
        let cfg = RunConfig::new(problem, 2)
            .tasks(2)
            .with_thickness(t)
            .with_block((8, 8));
        let got = overlap::Impl::HybridOverlap.run(&cfg, Some(&spec));
        assert_eq!(got.max_abs_diff(&expect), 0.0, "thickness {t}");
    }
}

#[test]
fn gpu_device_stats_reflect_the_schedule() {
    // The GPU-resident run should launch exactly one kernel per step and
    // move no PCIe traffic during the measured loop.
    let problem = AdvectionProblem::general_case(10);
    let cfg = RunConfig::new(problem, 5).with_block((8, 8));
    let gpu = Gpu::new(GpuSpec::tesla_c2050());
    let state = overlap::GpuResident::run_on(&cfg, &gpu);
    let stats = gpu.stats();
    assert_eq!(stats.stencil_launches, 5);
    assert_eq!(stats.h2d_transfers, 0, "resident run must not touch PCIe");
    assert_eq!(stats.d2h_transfers, 0);
    assert_eq!(stats.points_computed, 5 * 1000);
    let expect = reference(problem, 5);
    assert_eq!(state.max_abs_diff(&expect), 0.0);
}

#[test]
fn perfmodel_and_functional_layer_agree_on_structure() {
    // The perf model's geometry must match the functional partition: the
    // number of points the model assigns the CPU equals the functional
    // BoxPartition's count (continuous vs discrete, within rounding).
    let m = yona();
    for t in [1usize, 2, 4] {
        let s = GpuScenario::new(&m, 12, 12).with_thickness(t);
        let _ = s; // geometry itself is private; compare through step times:
        let part = decomp::BoxPartition::new((420, 420, 420), t);
        let model_like = {
            let b = 420 - 2 * t;
            420usize.pow(3) - b.pow(3)
        };
        assert_eq!(part.cpu_points(), model_like, "thickness {t}");
    }
}

#[test]
fn figures_regenerate_and_contain_paper_claims() {
    let figs = figures::all_figures();
    assert_eq!(figs.len(), 19);
    // Figure 8's note records the paper's optimum.
    let f8 = figs.iter().find(|f| f.id == "fig08").unwrap();
    assert!(f8.notes[0].contains("32x8"));
    // The anchors figure holds four paper-vs-model pairs.
    let anchors = figs.iter().find(|f| f.id == "anchors").unwrap();
    assert_eq!(anchors.series[0].points.len(), 4);
}

#[test]
fn simulated_cluster_runs_many_ranks() {
    // 27 ranks (3×3×3 process grid) on threads: a real all-to-neighbors
    // workout for the message-passing substrate.
    let problem = AdvectionProblem::general_case(18);
    let expect = reference(problem, 2);
    let cfg = RunConfig::new(problem, 2).tasks(27).with_threads(1);
    let got = overlap::Impl::Nonblocking.run(&cfg, None);
    assert_eq!(got.max_abs_diff(&expect), 0.0);
}
