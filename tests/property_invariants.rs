//! Property-based tests (proptest) on the core invariants: decomposition,
//! exchange planning, partitioning, packing, coefficients, and the
//! virtual-time engine.

use advect_core::coeffs::{Stencil27, Velocity};
use advect_core::field::{Field3, Range3};
use decomp::partition::{shell_and_core, thirds_along_z, BoxPartition};
use decomp::{Decomposition, ExchangePlan};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coefficients_always_sum_to_one(
        cx in -2.0f64..2.0, cy in -2.0f64..2.0, cz in -2.0f64..2.0,
        nu in 0.01f64..1.5,
    ) {
        let s = Stencil27::new(Velocity::new(cx, cy, cz), nu);
        prop_assert!((s.sum() - 1.0).abs() < 1e-12);
        // And the transcribed Table I always agrees.
        let t = Stencil27::from_table_i(Velocity::new(cx, cy, cz), nu);
        for i in 0..27 {
            prop_assert!((s.a[i] - t.a[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn decomposition_partitions_any_grid(
        ntasks in 1usize..60,
        gx in 4usize..24, gy in 4usize..24, gz in 4usize..24,
    ) {
        // Feasibility: (1, 1, ntasks) always fits when ntasks <= gz
        // (prime counts larger than every dimension have no aligned split).
        prop_assume!(ntasks <= gz);
        let d = Decomposition::new(ntasks, (gx, gy, gz));
        let total: usize = d.subdomains.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, gx * gy * gz);
        prop_assert!(d.subdomains.iter().all(|s| !s.is_empty()));
        // Extents differ by at most one per dimension.
        for dim in 0..3 {
            let sizes: Vec<usize> = d.subdomains.iter()
                .map(|s| [s.extent.0, s.extent.1, s.extent.2][dim]).collect();
            prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn exchange_plan_covers_halo_exactly_once(
        nx in 1usize..8, ny in 1usize..8, nz in 1usize..8,
    ) {
        let plan = ExchangePlan::new((nx, ny, nz), 1);
        let full = Range3::new(
            (-1, nx as i64 + 1), (-1, ny as i64 + 1), (-1, nz as i64 + 1));
        let interior = Range3::new((0, nx as i64), (0, ny as i64), (0, nz as i64));
        let mut covered = std::collections::HashMap::new();
        for phase in &plan.phases {
            for t in &phase.transfers {
                prop_assert_eq!(t.send_region.len(), t.recv_region.len());
                for p in t.recv_region.iter() {
                    *covered.entry(p).or_insert(0u32) += 1;
                }
            }
        }
        for p in full.iter() {
            let expected = u32::from(!interior.contains(p.0, p.1, p.2));
            prop_assert_eq!(covered.get(&p).copied().unwrap_or(0), expected,
                "point {:?}", p);
        }
    }

    #[test]
    fn shell_and_core_tiles_any_region(
        x0 in -3i64..3, w in 1i64..12,
        y0 in -3i64..3, h in 1i64..12,
        z0 in -3i64..3, d in 1i64..12,
        t in 0usize..8,
    ) {
        let region = Range3::new((x0, x0 + w), (y0, y0 + h), (z0, z0 + d));
        let (core, walls) = shell_and_core(region, t);
        let vol: usize = core.len() + walls.iter().map(|r| r.len()).sum::<usize>();
        prop_assert_eq!(vol, region.len());
        // Pairwise disjoint.
        let mut parts = vec![core];
        parts.extend(walls);
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                prop_assert!(parts[i].intersect(&parts[j]).is_empty());
            }
        }
    }

    #[test]
    fn box_partition_is_consistent(
        nx in 3usize..20, ny in 3usize..20, nz in 3usize..20,
        t in 0usize..6,
    ) {
        let p = BoxPartition::new((nx, ny, nz), t);
        prop_assert_eq!(p.cpu_points() + p.gpu_points(), nx * ny * nz);
        // Deep interior + boundary ring tile the block.
        let ring: usize = p.gpu_boundary_ring.iter().map(|r| r.len()).sum();
        prop_assert_eq!(p.gpu_deep_interior.len() + ring, p.gpu_points());
        // The halo ring is exactly the one-point shell around the block.
        if !p.gpu_block.is_empty() {
            let grown = Range3::new(
                (p.gpu_block.x.0 - 1, p.gpu_block.x.1 + 1),
                (p.gpu_block.y.0 - 1, p.gpu_block.y.1 + 1),
                (p.gpu_block.z.0 - 1, p.gpu_block.z.1 + 1),
            );
            prop_assert_eq!(p.h2d_points(), grown.len() - p.gpu_points());
        }
    }

    #[test]
    fn thirds_cover_without_overlap(
        nx in 1usize..10, ny in 1usize..10, nz in 1usize..16,
    ) {
        let region = Range3::new((0, nx as i64), (0, ny as i64), (0, nz as i64));
        let thirds = thirds_along_z(region);
        let vol: usize = thirds.iter().map(|t| t.len()).sum();
        prop_assert_eq!(vol, region.len());
        prop_assert!(thirds[0].intersect(&thirds[1]).is_empty());
        prop_assert!(thirds[1].intersect(&thirds[2]).is_empty());
    }

    #[test]
    fn pack_unpack_roundtrips_any_region(
        nx in 2usize..8, ny in 2usize..8, nz in 2usize..8,
        x0 in 0i64..3, y0 in 0i64..3, z0 in 0i64..3,
        w in 1i64..4, h in 1i64..4, d in 1i64..4,
        seed in 0u64..1000,
    ) {
        let region = Range3::new(
            (x0 - 1, (x0 - 1 + w).min(nx as i64 + 1)),
            (y0 - 1, (y0 - 1 + h).min(ny as i64 + 1)),
            (z0 - 1, (z0 - 1 + d).min(nz as i64 + 1)),
        );
        prop_assume!(!region.is_empty());
        let mut f = Field3::new(nx, ny, nz, 1);
        f.fill_interior(|x, y, z| ((x * 31 + y * 7 + z) as u64 ^ seed) as f64);
        f.copy_periodic_halo();
        let mut buf = vec![0.0; region.len()];
        prop_assert_eq!(f.pack(region, &mut buf), region.len());
        let mut g = Field3::new(nx, ny, nz, 1);
        g.unpack(region, &buf);
        for (x, y, z) in region.iter() {
            prop_assert_eq!(g.at(x, y, z), f.at(x, y, z));
        }
    }

    #[test]
    fn stencil_is_region_decomposable(
        n in 4usize..10,
        cut_x in 1i64..3, cut_z in 1i64..3,
    ) {
        // Applying the stencil over an arbitrary 4-way split must equal a
        // single full application.
        let s = Stencil27::new(Velocity::new(0.9, -0.4, 0.7), 0.8);
        let mut src = Field3::new(n, n, n, 1);
        src.fill_interior(|x, y, z| ((x * 13 + y * 5 + z * 3) % 17) as f64);
        src.copy_periodic_halo();
        let mut full = Field3::new(n, n, n, 1);
        advect_core::stencil::apply_stencil_interior(&src, &mut full, &s);
        let mut split = Field3::new(n, n, n, 1);
        let n64 = n as i64;
        for r in [
            Range3::new((0, cut_x), (0, n64), (0, cut_z)),
            Range3::new((cut_x, n64), (0, n64), (0, cut_z)),
            Range3::new((0, cut_x), (0, n64), (cut_z, n64)),
            Range3::new((cut_x, n64), (0, n64), (cut_z, n64)),
        ] {
            advect_core::stencil::apply_stencil_region(&src, &mut split, &s, r);
        }
        prop_assert_eq!(full.max_abs_diff(&split), 0.0);
    }

    #[test]
    fn event_schedule_is_always_consistent(
        durs in prop::collection::vec(0.0f64..10.0, 1..20),
        seed in 0usize..1000,
    ) {
        use perfmodel::{Res, Schedule};
        let resources = [Res::GpuCompute, Res::CopyH2D, Res::CopyD2H, Res::Nic, Res::Cpu, Res::None];
        let mut s = Schedule::new();
        let mut ids = Vec::new();
        for (i, &d) in durs.iter().enumerate() {
            let res = resources[(seed + i * 7) % resources.len()];
            // Depend on up to two arbitrary earlier ops.
            let mut deps = Vec::new();
            if !ids.is_empty() {
                deps.push(ids[(seed + i) % ids.len()]);
                deps.push(ids[(seed * 3 + i) % ids.len()]);
            }
            ids.push(s.add(res, d, &deps));
        }
        prop_assert!(s.validate());
        // Makespan is at least the busiest resource and at most the sum.
        let sum: f64 = durs.iter().sum();
        prop_assert!(s.makespan() <= sum + 1e-9);
        for r in resources.iter().take(5) {
            prop_assert!(s.makespan() + 1e-9 >= s.busy(*r));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cpu_model_times_are_positive_and_finite(
        exp in 0u32..11,
        tidx in 0usize..5,
    ) {
        use machine::jaguarpf;
        use perfmodel::cpu::{CpuImpl, CpuScenario};
        let m = jaguarpf();
        let cores = 12usize << exp;
        let t = m.thread_choices[tidx];
        prop_assume!(cores.is_multiple_of(t));
        let s = CpuScenario::new(&m, cores, t);
        for im in [CpuImpl::SingleTask, CpuImpl::BulkSync, CpuImpl::Nonblocking, CpuImpl::ThreadOverlap] {
            let step = s.step_time(im);
            prop_assert!(step.is_finite() && step > 0.0, "{im:?}: {step}");
        }
    }

    #[test]
    fn gpu_model_monotone_in_pcie_speed(
        nodes in 1usize..16,
        scale_idx in 0usize..4,
    ) {
        use machine::yona;
        use perfmodel::gpu::{GpuImpl, GpuScenario};
        let m = yona();
        let scales = [1.0f64, 2.0, 4.0, 8.0];
        let s0 = scales[scale_idx];
        let gf_at = |sc: f64| {
            GpuScenario::new(&m, nodes * 12, 12)
                .with_block((32, 8))
                .with_pcie_scale(sc)
                .gf(GpuImpl::BulkSync)
        };
        // Faster PCIe never hurts the bulk-synchronous implementation.
        prop_assert!(gf_at(s0 * 2.0) >= gf_at(s0) * 0.999);
    }

    #[test]
    fn more_nodes_never_reduce_total_gf_for_hybrid(
        nidx in 0usize..4,
    ) {
        use machine::yona;
        use perfmodel::sweep::best_gpu_gf;
        use perfmodel::gpu::GpuImpl;
        let m = yona();
        let nodes = [1usize, 2, 4, 8];
        let n = nodes[nidx];
        let a = best_gpu_gf(&m, GpuImpl::HybridOverlap, n * 12, (32, 8)).gf;
        let b = best_gpu_gf(&m, GpuImpl::HybridOverlap, n * 24, (32, 8)).gf;
        prop_assert!(b >= a * 0.999, "{n}->{} nodes: {a} -> {b}", 2 * n);
    }
}

// ---------------------------------------------------------------------------
// Differential tests: the row-vectorized fast path must be *bit-identical*
// (`max_abs_diff == 0.0`, same backing storage) to the scalar per-point
// oracle at every stencil entry point, on irregular regions — including
// degenerate and empty ones — and non-cubic grids.

/// A pseudo-random but deterministic field on an `nx × ny × nz` grid.
fn seeded_field(nx: usize, ny: usize, nz: usize, seed: u64) -> Field3 {
    let mut f = Field3::new(nx, ny, nz, 1);
    f.fill_interior(|x, y, z| ((x * 31 + y * 7 + z * 3) as u64 ^ seed) as f64 * 0.125);
    f.copy_periodic_halo();
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn region_fast_path_is_bit_identical_to_scalar(
        nx in 3usize..11, ny in 3usize..11, nz in 3usize..11,
        x0 in 0i64..6, x1 in 0i64..12,
        y0 in 0i64..6, y1 in 0i64..12,
        z0 in 0i64..6, z1 in 0i64..12,
        seed in 0u64..1000,
    ) {
        use advect_core::stencil::{apply_stencil_region, apply_stencil_region_scalar};
        // Clamping keeps the region inside the interior; x0 >= x1 (etc.)
        // yields degenerate or empty regions, which must also agree.
        let region = Range3::new(
            (x0.min(nx as i64), x1.min(nx as i64)),
            (y0.min(ny as i64), y1.min(ny as i64)),
            (z0.min(nz as i64), z1.min(nz as i64)),
        );
        let s = Stencil27::new(Velocity::new(0.8, -0.3, 0.5), 0.7);
        let src = seeded_field(nx, ny, nz, seed);
        let mut fast = Field3::new(nx, ny, nz, 1);
        let mut scalar = Field3::new(nx, ny, nz, 1);
        apply_stencil_region(&src, &mut fast, &s, region);
        apply_stencil_region_scalar(&src, &mut scalar, &s, region);
        prop_assert_eq!(fast.max_abs_diff(&scalar), 0.0);
        prop_assert_eq!(fast.data(), scalar.data());
    }

    #[test]
    fn slab_fast_path_is_bit_identical_to_scalar(
        nx in 3usize..10, ny in 3usize..10, nz in 4usize..10,
        cut in 1i64..5,
        seed in 0u64..1000,
    ) {
        use advect_core::stencil::{apply_stencil_slab, apply_stencil_slab_scalar};
        prop_assume!(cut < nz as i64);
        let s = Stencil27::new(Velocity::new(-0.6, 0.9, 0.2), 0.4);
        let src = seeded_field(nx, ny, nz, seed);
        let region = src.interior_range();
        let mut fast = Field3::new(nx, ny, nz, 1);
        for slab in &mut fast.z_slabs_mut(&[cut]) {
            apply_stencil_slab(&src, slab, &s, region);
        }
        let mut scalar = Field3::new(nx, ny, nz, 1);
        for slab in &mut scalar.z_slabs_mut(&[cut]) {
            apply_stencil_slab_scalar(&src, slab, &s, region);
        }
        prop_assert_eq!(fast.max_abs_diff(&scalar), 0.0);
    }

    #[test]
    fn shared_and_cells_fast_paths_are_bit_identical_to_scalar(
        nx in 3usize..10, ny in 3usize..10, nz in 3usize..10,
        x0 in 0i64..4, w in 0i64..10,
        seed in 0u64..1000,
    ) {
        use advect_core::field::SharedField;
        use advect_core::stencil::{
            apply_stencil_cells, apply_stencil_cells_scalar, apply_stencil_shared,
            apply_stencil_shared_scalar,
        };
        // An x-irregular region (possibly empty when w == 0).
        let region = Range3::new(
            (x0.min(nx as i64), (x0 + w).min(nx as i64)),
            (0, ny as i64),
            (0, nz as i64),
        );
        let s = Stencil27::new(Velocity::new(0.3, 0.3, -0.9), 1.1);
        let mut src = seeded_field(nx, ny, nz, seed);
        let mut out = [(); 4].map(|()| Field3::new(nx, ny, nz, 1));
        {
            let sh = SharedField::new(&mut out[0]);
            apply_stencil_shared(&src, &sh, &s, region);
        }
        {
            let sh = SharedField::new(&mut out[1]);
            apply_stencil_shared_scalar(&src, &sh, &s, region);
        }
        {
            let mut src2 = src.clone();
            let ssh = SharedField::new(&mut src2);
            let dsh = SharedField::new(&mut out[2]);
            apply_stencil_cells(&ssh, &dsh, &s, region);
        }
        {
            let ssh = SharedField::new(&mut src);
            let dsh = SharedField::new(&mut out[3]);
            apply_stencil_cells_scalar(&ssh, &dsh, &s, region);
        }
        prop_assert_eq!(out[0].max_abs_diff(&out[1]), 0.0);
        prop_assert_eq!(out[0].max_abs_diff(&out[2]), 0.0);
        prop_assert_eq!(out[0].max_abs_diff(&out[3]), 0.0);
    }

    #[test]
    fn simgpu_kernels_are_bit_identical_to_core_scalar(
        nx in 3usize..9, ny in 3usize..9, nz in 3usize..9,
        bx in 3usize..8, by in 3usize..8, bz in 3usize..5,
        seed in 0u64..1000,
    ) {
        use advect_core::stencil::apply_stencil_region_scalar;
        use simgpu::kernels::{
            run_stencil, run_stencil_3d, FieldDims, StencilLaunch, StencilLaunch3d,
        };
        let s = Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.9);
        let src = seeded_field(nx, ny, nz, seed);
        let mut scalar = Field3::new(nx, ny, nz, 1);
        apply_stencil_region_scalar(&src, &mut scalar, &s, src.interior_range());
        // FieldDims with halo 1 lays the buffer out exactly like Field3,
        // so the host field maps to the device buffer byte for byte.
        let dims = FieldDims { nx, ny, nz, halo: 1 };
        prop_assert_eq!(dims.len(), src.data().len());
        let mut dst2 = vec![0.0f64; dims.len()];
        run_stencil(src.data(), &mut dst2, &s.a, &StencilLaunch {
            dims,
            region: dims.interior(),
            block: (bx, by),
            periodic: false,
        });
        let mut dst3 = vec![0.0f64; dims.len()];
        run_stencil_3d(src.data(), &mut dst3, &s.a, &StencilLaunch3d {
            dims,
            region: dims.interior(),
            block: (bx, by, bz),
            periodic: false,
        });
        for (x, y, z) in dims.interior().iter() {
            let want = scalar.at(x, y, z);
            prop_assert_eq!(dst2[dims.idx(x, y, z)], want, "2d kernel at {:?}", (x, y, z));
            prop_assert_eq!(dst3[dims.idx(x, y, z)], want, "3d kernel at {:?}", (x, y, z));
        }
    }
}

#[test]
fn distributed_exchange_equals_periodic_for_random_task_counts() {
    // Deterministic but broad: every task count up to 12 on an 8³ grid.
    use advect_core::field::Field3;
    use simmpi::World;
    let n = 8usize;
    let mut global = Field3::new(n, n, n, 1);
    global.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
    global.copy_periodic_halo();
    // 11 is skipped: a prime count larger than every dimension of an 8³
    // grid has no axis-aligned decomposition.
    for ntasks in (1..=12).filter(|&t| t != 11) {
        let d = Decomposition::new(ntasks, (n, n, n));
        let dref = &d;
        let results = World::run(ntasks, move |comm| {
            let sub = dref.subdomains[comm.rank()];
            let mut local = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
            let (ox, oy, oz) = sub.offset;
            local.fill_interior(|x, y, z| {
                ((ox as i64 + x) + 10 * (oy as i64 + y) + 100 * (oz as i64 + z)) as f64
            });
            let plan = ExchangePlan::new(sub.extent, 1);
            let bufs = overlap::HaloBuffers::new(&plan, comm);
            overlap::halo::exchange_halos(&mut local, &plan, dref, comm.rank(), comm, &bufs);
            (comm.rank(), local)
        });
        for (rank, local) in results {
            let sub = d.subdomains[rank];
            for (x, y, z) in local.full_range().iter() {
                let gx = (sub.offset.0 as i64 + x).rem_euclid(n as i64);
                let gy = (sub.offset.1 as i64 + y).rem_euclid(n as i64);
                let gz = (sub.offset.2 as i64 + z).rem_euclid(n as i64);
                assert_eq!(local.at(x, y, z), global.at(gx, gy, gz), "ntasks {ntasks}");
            }
        }
    }
}
