//! Automatic tuning of (threads/task, box thickness, GPU block) — the
//! paper's Section VI calls for exactly this. Coordinate descent with
//! multi-start finds the exhaustive optimum at a fraction of the
//! evaluations, on both GPU clusters and across scales.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use advection_overlap::prelude::*;
use tuner::{exhaustive, multistart_descent, Objective, SearchSpace};

fn main() {
    for (m, node_counts) in [(yona(), vec![1usize, 4, 16]), (lens(), vec![1usize, 8, 31])] {
        println!(
            "== {} — tuning the CPU+GPU full-overlap implementation ==",
            m.name
        );
        let space = SearchSpace::for_machine(&m);
        println!("search space: {} configurations", space.len());
        println!(
            "{:>6} {:>30} {:>10} {:>12} {:>30} {:>10} {:>12}",
            "nodes", "exhaustive best", "GF", "evals", "descent best", "GF", "evals"
        );
        for nodes in node_counts {
            let cores = nodes * m.cores_per_node();
            let obj_ex = Objective::new(&m, GpuImpl::HybridOverlap, cores);
            let truth = exhaustive(&obj_ex, &space);
            let obj_cd = Objective::new(&m, GpuImpl::HybridOverlap, cores);
            let found = multistart_descent(&obj_cd, &space);
            let fmt = |c: tuner::Config| {
                format!(
                    "T={} t={} block {}x{}",
                    c.threads, c.thickness, c.block.0, c.block.1
                )
            };
            println!(
                "{nodes:>6} {:>30} {:>10.1} {:>12} {:>30} {:>10.1} {:>12}",
                fmt(truth.config),
                truth.gf,
                truth.evaluations,
                fmt(found.config),
                found.gf,
                found.evaluations
            );
        }
        println!();
    }
    println!(
        "observations matching the paper: the tuned thickness is a thin veneer that\n\
         shrinks with scale; the tuned block is 32-wide (32x8 on the C2050, 32x11 on\n\
         the C1060); and the thickness optimum depends on the thread count — the\n\
         interaction Section VI warns auto-tuners about."
    );
}
