//! Strong-scaling study (Figures 3–6): the fixed 420³ problem spread over
//! more and more cores of the two Cray machines, comparing the
//! bulk-synchronous implementation against the two overlap attempts, and
//! showing the threads-per-task tuning surface.
//!
//! ```text
//! cargo run --release --example strong_scaling
//! ```

use advection_overlap::prelude::*;

fn main() {
    for (m, max_exp) in [(jaguarpf(), 11u32), (hopper_ii(), 12u32)] {
        println!("== {} — best GF per implementation ==", m.name);
        println!(
            "{:>8} {:>14} {:>14} {:>14}  winner",
            "cores", "bulk-sync", "nonblocking", "thread-overlap"
        );
        let base = m.cores_per_node();
        for e in 0..max_exp {
            let cores = base << e;
            let b = best_cpu_gf(&m, CpuImpl::BulkSync, cores);
            let c = best_cpu_gf(&m, CpuImpl::Nonblocking, cores);
            let d = best_cpu_gf(&m, CpuImpl::ThreadOverlap, cores);
            let winner = if c.0 >= b.0 && c.0 >= d.0 {
                "nonblocking overlap"
            } else if b.0 >= d.0 {
                "bulk-synchronous"
            } else {
                "thread overlap"
            };
            println!(
                "{cores:>8} {:>14.1} {:>14.1} {:>14.1}  {winner}",
                b.0, c.0, d.0
            );
        }
        println!();
        println!("threads-per-task sweep for the bulk-synchronous implementation:");
        print!("{:>8}", "cores");
        for &t in m.thread_choices {
            print!(" {:>10}", format!("T={t}"));
        }
        println!("  best");
        for e in 0..max_exp {
            let cores = base << e;
            print!("{cores:>8}");
            let mut best = (0.0, 0usize);
            for &t in m.thread_choices {
                if cores % t == 0 {
                    let gf = CpuScenario::new(&m, cores, t).gf(CpuImpl::BulkSync);
                    if gf > best.0 {
                        best = (gf, t);
                    }
                    print!(" {gf:>10.1}");
                } else {
                    print!(" {:>10}", "-");
                }
            }
            println!("  T={}", best.1);
        }
        println!();
    }
    println!(
        "shapes to notice (the paper's findings): nonblocking overlap wins only while\n\
         per-core work is large — the crossover sits around 4-6k cores on JaguarPF and\n\
         an order of magnitude higher on Hopper II; the thread-overlap variant lags\n\
         everywhere; and the best threads-per-task grows with the core count."
    );
}
