//! Physics of the test case: advect the Gaussian pulse and watch the
//! numerics — exact translation at unit Courant number, second-order
//! convergence below it, and stability at the limit.
//!
//! ```text
//! cargo run --release --example gaussian_pulse
//! ```

use advection_overlap::prelude::*;

fn main() {
    // 1. At the maximum stable ν with c = (1,1,1) the Lax-Wendroff scheme
    //    degenerates to an exact one-cell shift per step: the pulse
    //    returns home after n steps with zero error.
    let n = 48;
    let mut exact = SerialStepper::new(AdvectionProblem::paper_case(n));
    for quarter in 1..=4 {
        exact.run(n as u64 / 4);
        let norms = exact.norms();
        println!(
            "unit Courant, {:>3}/{} period: Linf vs analytic = {:.2e}",
            quarter * n / 4,
            n,
            norms.linf
        );
    }

    // 2. Below the limit the scheme is dissipative/dispersive but second
    //    order: halving δ (and Δ with it) cuts the error ~4x.
    println!("\nconvergence at nu = 0.5, c = (1, 0.7, 0.4), fixed simulated time:");
    let mut last: Option<f64> = None;
    for g in [16usize, 32, 64, 96] {
        let problem = AdvectionProblem {
            velocity: Velocity::new(1.0, 0.7, 0.4),
            nu: 0.5,
            ..AdvectionProblem::paper_case(g)
        };
        let steps = (g / 4) as u64;
        let mut s = SerialStepper::new(problem);
        s.run(steps);
        let e = s.norms().l2;
        match last {
            None => println!("  {g:>3}³: L2 = {e:.3e}"),
            Some(prev) => println!(
                "  {g:>3}³: L2 = {e:.3e}  (ratio {:.2}, expect ≈4 when doubling)",
                prev / e
            ),
        }
        last = Some(e);
    }

    // 3. Stability: at the limit the max-norm never grows.
    let mut s = SerialStepper::new(AdvectionProblem::paper_case(24));
    let mut max_seen: f64 = 0.0;
    for _ in 0..120 {
        s.step();
        let m = s.state().data().iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        max_seen = max_seen.max(m);
    }
    println!("\n120 steps at the stability limit: max|u| stayed at {max_seen:.6} (initial peak 1)");
}
