//! The paper's closing speculations, run as experiments:
//!
//! 1. "An architecture with faster, lower-latency CPU-GPU communication
//!    could have a performance profile significantly different" — sweep
//!    the PCIe rate.
//! 2. "A computer tuned for our test might have a smaller number of CPU
//!    cores per GPU" — sweep the CPU complex per GPU.
//! 3. Attribute the bulk-synchronous GPU implementations' collapse:
//!    pageable copies vs. the serialized D2H → MPI → H2D chain.
//!
//! ```text
//! cargo run --release --example future_architectures
//! ```

use figures::extensions::{ext01_pcie_sweep, ext02_cores_per_gpu, ext03_pinned_ablation};

fn main() {
    for f in [
        ext01_pcie_sweep(),
        ext02_cores_per_gpu(),
        ext03_pinned_ablation(),
    ] {
        println!("{}", f.render_text());
    }
    println!(
        "reading: with 16x PCIe the streams implementation (IV-G) closes most of its\n\
         gap to the full overlap (IV-I), which barely moves — overlap matters less on\n\
         a machine with cheap CPU-GPU communication, exactly the paper's speculation.\n\
         Meanwhile a node keeps ~80% of its hybrid performance with just 2 CPU cores\n\
         per GPU: the veneer needs threads for packing and MPI, not flops."
    );
}
