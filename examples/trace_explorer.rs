//! Explore the span traces behind the paper's overlap story: run the
//! bulk-synchronous baseline (IV-B) and the full-overlap hybrid (IV-I)
//! with tracing on, print each run's phase breakdown and overlap
//! efficiencies, and export the hybrid's trace as Chrome-trace JSON for
//! [ui.perfetto.dev](https://ui.perfetto.dev).
//!
//! ```text
//! cargo run --release --example trace_explorer
//! ```

use advection_overlap::prelude::*;
use obs::Axis;

fn main() {
    let spec = GpuSpec::tesla_c2050();
    // Thickness 1 keeps the hybrid's GPU deep interior non-empty on the
    // 4-task subdomains, so there is an interior kernel for the PCIe
    // copies to overlap with.
    let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .tasks(4)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1)
        .with_trace(true);

    let (_, bulk) = Impl::BulkSync.run_with_report(&cfg, None);
    let (_, hybrid) = Impl::HybridOverlap.run_with_report(&cfg, Some(&spec));

    println!("== IV-B bulk-synchronous MPI: wall-clock phase breakdown ==");
    println!("{}", bulk.phase_breakdown(Axis::Wall).render_markdown());
    let b = bulk.mpi_compute_overlap();
    println!(
        "mpi<->compute: busy(mpi) {:.1} us, busy(compute) {:.1} us, \
         overlapped {:.1} us -> efficiency {:.3} (exactly 0: nothing hides)\n",
        b.busy_a * 1e6,
        b.busy_b * 1e6,
        b.both * 1e6,
        b.efficiency()
    );

    println!("== IV-I hybrid overlap: wall-clock phase breakdown ==");
    println!("{}", hybrid.phase_breakdown(Axis::Wall).render_markdown());
    println!("== IV-I hybrid overlap: virtual device timeline ==");
    println!(
        "{}",
        hybrid.phase_breakdown(Axis::Virtual).render_markdown()
    );
    let m = hybrid.mpi_compute_overlap();
    let p = hybrid.pcie_compute_overlap();
    println!(
        "mpi<->compute  overlapped {:.1} us -> efficiency {:.3}",
        m.both * 1e6,
        m.efficiency()
    );
    println!(
        "pcie<->compute overlapped {:.3} us -> efficiency {:.3}",
        p.both * 1e6,
        p.efficiency()
    );
    println!(
        "comm stats: peak {} bytes in flight, {:.1} us total wait\n",
        hybrid.peak_bytes_in_flight(),
        hybrid.total_wait_ns() as f64 / 1e3
    );

    let path = "trace_explorer_hybrid.json";
    std::fs::write(path, obs::chrome::chrome_trace(&hybrid.traces)).expect("write trace");
    println!(
        "wrote {path} - load it at ui.perfetto.dev: wall spans under \
         'rank N', the device timeline under 'rank N (virtual)'"
    );
}
