//! Watch the overlap happen on the simulated device's virtual timeline:
//! the same halo-update work issued bulk-synchronously (IV-F style), with
//! a second stream (IV-G style), and decoupled with async copies beside
//! the interior kernel (IV-I style). The Gantt charts show the copy
//! engines sliding under the compute engine as the schedule improves.
//!
//! The ASCII Gantt and the span tracer share one category taxonomy:
//! `Timeline::to_trace_events()` bridges the device timeline into
//! `obs` spans (`kernel.launch`, `pcie.h2d`, `pcie.d2h`), so the last
//! schedule is also written out as Chrome-trace JSON for Perfetto.
//!
//! ```text
//! cargo run --release --example device_timeline
//! ```

use advection_overlap::prelude::*;
use simgpu::{FieldDims, StencilLaunch, Stream};

fn main() {
    let n = 96usize;
    let problem = AdvectionProblem::general_case(n);
    let stencil = problem.stencil();
    let dims = FieldDims {
        nx: n,
        ny: n,
        nz: n,
        halo: 1,
    };
    let interior =
        advect_core::field::Range3::new((1, n as i64 - 1), (1, n as i64 - 1), (1, n as i64 - 1));
    // Halo traffic per direction: a few MB, so the PCIe time is of the
    // same order as the kernel (one node of the 420-case is like this).
    let ring = 500_000usize;
    let mut host = vec![0.0f64; ring];

    let mut run = |mode: &str| -> (f64, f64, String, Vec<obs::Span>) {
        let gpu = Gpu::new(GpuSpec::tesla_c2050());
        gpu.set_constant(stencil.a);
        let cur = gpu.alloc(dims.len());
        let new = gpu.alloc(dims.len());
        let staging = gpu.alloc(ring);
        let staging2 = gpu.alloc(ring);
        let s1 = gpu.create_stream();
        let s2 = gpu.create_stream();
        gpu.sync_device();
        gpu.reset_clock();
        let launch = StencilLaunch {
            dims,
            region: interior,
            block: (32, 8),
            periodic: false,
        };
        match mode {
            // Everything chained on the default stream.
            "bulk-sync (IV-F style)" => {
                gpu.d2h(Stream::DEFAULT, staging, 0, &mut host);
                gpu.h2d(Stream::DEFAULT, &host, staging, 0);
                gpu.launch_stencil(Stream::DEFAULT, cur, new, launch);
            }
            // Interior first; halo traffic chained on a second stream
            // (one direction must wait for the other: the MPI between
            // them serializes the copy engines).
            "streams (IV-G style)" => {
                gpu.launch_stencil(Stream::DEFAULT, cur, new, launch);
                gpu.d2h(s1, staging, 0, &mut host);
                gpu.h2d(s1, &host, staging, 0);
            }
            // Decoupled: each direction on its own stream, no mutual
            // dependency — both DMA engines run beside the kernel.
            _ => {
                gpu.h2d(s1, &host, staging, 0);
                gpu.launch_stencil(Stream::DEFAULT, cur, new, launch);
                gpu.d2h(s2, staging2, 0, &mut host);
            }
        }
        let t = gpu.sync_device();
        let tl = gpu.timeline();
        (
            t,
            tl.concurrency(),
            tl.render_gantt(56),
            tl.to_trace_events(),
        )
    };

    let mut base = 0.0;
    let mut last_spans = Vec::new();
    for mode in [
        "bulk-sync (IV-F style)",
        "streams (IV-G style)",
        "full overlap (IV-I style)",
    ] {
        let (t, conc, gantt, spans) = run(mode);
        if base == 0.0 {
            base = t;
        }
        println!("== {mode} ==");
        print!("{gantt}");
        println!(
            "virtual step time {:.3} ms ({:.2}x vs bulk), concurrency {conc:.2}\n",
            t * 1e3,
            base / t
        );
        last_spans = spans;
    }

    // The same timeline, through the tracer bridge: the Gantt rows above
    // become `kernel.launch` / `pcie.h2d` / `pcie.d2h` spans on the
    // virtual axis of a Chrome trace (process "rank 0 (virtual)").
    let trace = obs::Trace {
        rank: 0,
        spans: last_spans,
        dropped: 0,
    };
    let path = "device_timeline_trace.json";
    std::fs::write(path, obs::chrome::chrome_trace(&[trace])).expect("write trace");
    println!("wrote {path} (full-overlap schedule) - load it at ui.perfetto.dev");
}
