//! Quickstart: integrate 3-D linear advection and verify against the
//! analytic solution, exactly as the paper's test case does.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use advection_overlap::prelude::*;

fn main() {
    // The paper's configuration, scaled to a laptop: a periodic cube with
    // a centered Gaussian pulse, unit diagonal velocity, maximum stable ν.
    let problem = AdvectionProblem::paper_case(64);
    println!(
        "grid {n}³, velocity ({cx}, {cy}, {cz}), nu = {nu} (max stable)",
        n = problem.n,
        cx = problem.velocity.cx,
        cy = problem.velocity.cy,
        cz = problem.velocity.cz,
        nu = problem.nu,
    );

    // Serial reference.
    let mut serial = SerialStepper::new(problem);
    let steps = 32;
    let t0 = std::time::Instant::now();
    serial.run(steps);
    let serial_s = t0.elapsed().as_secs_f64();
    let norms = serial.norms();
    println!(
        "serial:   {steps} steps in {serial_s:.3}s — error vs analytic: L1 {:.2e}, L2 {:.2e}, Linf {:.2e}",
        norms.l1, norms.l2, norms.linf
    );

    // Multithreaded (the paper's single-task implementation, IV-A).
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let mut threaded = ThreadedStepper::new(problem, threads);
    let t0 = std::time::Instant::now();
    threaded.run(steps);
    let threaded_s = t0.elapsed().as_secs_f64();
    println!(
        "threaded: {steps} steps on {threads} threads in {threaded_s:.3}s (identical result: {})",
        threaded.state().max_abs_diff(serial.state()) == 0.0
    );

    // Performance accounting, the paper's way: 53 flops per point per step.
    let points = (problem.n as u64).pow(3);
    println!(
        "throughput: serial {:.2} GF, threaded {:.2} GF (53 flops/point/step)",
        advect_core::flops::gigaflops(points, steps, serial_s),
        advect_core::flops::gigaflops(points, steps, threaded_s),
    );

    // At the maximum stable ν with unit velocity the scheme is an exact
    // shift: after n steps the pulse returns to its starting position.
    let mut full_period = SerialStepper::new(AdvectionProblem::paper_case(32));
    full_period.run(32);
    println!(
        "exact-shift check (32³, 32 steps → one period): Linf error {:.2e}",
        full_period.norms().linf
    );
}
