//! A climate-flavored scenario (the paper's motivation is atmospheric
//! dynamics): transport several independent tracer fields, released from
//! different positions, through the same velocity field — each tracer
//! distributed over MPI tasks and verified against its own analytic
//! solution.
//!
//! ```text
//! cargo run --release --example tracer_transport
//! ```

use advection_overlap::prelude::*;

fn main() {
    let n = 32usize;
    let velocity = Velocity::unit_diagonal();
    let steps = 24u64;

    // Four tracers released from different positions.
    let centers = [
        [0.25, 0.25, 0.25],
        [0.75, 0.25, 0.50],
        [0.50, 0.75, 0.25],
        [0.75, 0.75, 0.75],
    ];
    println!(
        "transporting {} tracers on a {n}³ grid for {steps} steps (8 MPI tasks, 2 threads each)",
        centers.len()
    );
    for (t, &center) in centers.iter().enumerate() {
        let problem = AdvectionProblem {
            velocity,
            nu: velocity.max_stable_nu(),
            ..AdvectionProblem::paper_case(n)
        }
        .with_pulse(center, 0.08);
        let cfg = overlap::RunConfig::new(problem, steps)
            .tasks(8)
            .with_threads(2);
        let state = overlap::BulkSyncMpi::run(&cfg);
        // Each tracer is checked against its own analytic solution and the
        // serial reference.
        let mut reference = SerialStepper::new(problem);
        reference.run(steps);
        let norms = problem.norms_after(&state, steps);
        let mass = state.interior_sum();
        println!(
            "tracer {t} from {center:?}: bit-exact = {}, Linf vs analytic {:.2e}, mass {:.4}",
            state.max_abs_diff(reference.state()) == 0.0,
            norms.linf,
            mass
        );
        assert_eq!(state.max_abs_diff(reference.state()), 0.0);
    }
    println!("\nall tracers transported exactly (unit Courant number: pure translation).");
}
