//! Run all nine of the paper's implementations (Sections IV-A … IV-I)
//! functionally on the simulated substrates, verify each against the
//! serial reference, and show what the performance model predicts for
//! them on Yona — the machine where the paper's headline factor-of-two
//! result appears.
//!
//! ```text
//! cargo run --release --example overlap_comparison
//! ```

use advection_overlap::prelude::*;

fn main() {
    let problem = AdvectionProblem::general_case(16);
    let steps = 4;
    let spec = GpuSpec::tesla_c2050();

    let mut reference = SerialStepper::new(problem);
    reference.run(steps);

    println!(
        "functional layer: {}³ grid, {steps} steps, 4 MPI tasks, 2 threads/task",
        problem.n
    );
    println!(
        "{:<6} {:<28} {:>12} {:>10}",
        "sect.", "implementation", "max|diff|", "verified"
    );
    for im in overlap::Impl::ALL {
        let cfg = RunConfig::new(problem, steps)
            .tasks(if im.uses_mpi() { 4 } else { 1 })
            .with_threads(2)
            .with_block((8, 8))
            .with_thickness(if im == Impl::HybridOverlap { 1 } else { 2 });
        let state = im.run(&cfg, Some(&spec));
        let diff = state.max_abs_diff(reference.state());
        println!(
            "{:<6} {:<28} {:>12.1e} {:>10}",
            im.section(),
            im.name(),
            diff,
            if diff == 0.0 { "bit-exact" } else { "FAILED" }
        );
        assert_eq!(diff, 0.0);
    }

    // The performance layer: what each implementation achieves on Yona at
    // the paper's scales (best over tuning parameters).
    let m = yona();
    println!();
    println!("performance model: Yona, 420³, best over threads/task and box thickness (GF)");
    print!("{:<28}", "implementation");
    let node_counts = [1usize, 2, 4, 8, 16];
    for n in node_counts {
        print!(
            " {:>8}",
            format!("{n} node{}", if n > 1 { "s" } else { "" })
        );
    }
    println!();
    for im in perfmodel::AnyImpl::ALL {
        print!("{:<28}", im.label());
        for n in node_counts {
            let b = perfmodel::best_gf(&m, im, n * 12, (32, 8));
            if b.gf > 0.0 {
                print!(" {:>8.1}", b.gf);
            } else {
                print!(" {:>8}", "-");
            }
        }
        println!();
    }
    println!();
    println!(
        "the CPU+GPU full-overlap implementation (IV-I) dominates the other parallel\n\
         implementations by ≥2x and nearly matches the GPU-resident 86 GF per node —\n\
         the paper's headline result."
    );
}
