//! GPU thread-block tuning (Figures 7 and 8): sweep 2-D block shapes on
//! the two simulated Teslas and confirm the paper's optima — 32×11 on the
//! C1060 and 32×8 on the C2050 — then validate functionally that block
//! shape never changes the numerical answer.
//!
//! ```text
//! cargo run --release --example block_size_tuning
//! ```

use advection_overlap::prelude::*;
use simgpu::timing::{best_block, resident_gigaflops};

fn main() {
    for spec in [GpuSpec::tesla_c1060(), GpuSpec::tesla_c2050()] {
        println!(
            "== {} (max {} threads/block) ==",
            spec.name, spec.max_threads_per_block
        );
        println!("{:>6} {:>8} {:>8} {:>8} {:>8}", "y \\ x", 16, 32, 64, 128);
        for by in [2usize, 4, 6, 8, 11, 12, 16, 24, 32] {
            print!("{by:>6}");
            for bx in [16usize, 32, 64, 128] {
                if bx * by > spec.max_threads_per_block {
                    print!(" {:>8}", "-");
                    continue;
                }
                print!(" {:>8.1}", resident_gigaflops(&spec, 420, (bx, by)));
            }
            println!();
        }
        let ((bx, by), gf) = best_block(&spec, 420);
        println!("best block: {bx}x{by} at {gf:.1} GF\n");
    }

    // Functional check: the kernel computes the same answer at any block
    // shape (halo threads only load; the tap order is fixed).
    let problem = AdvectionProblem::general_case(12);
    let mut reference = SerialStepper::new(problem);
    reference.run(3);
    let spec = GpuSpec::tesla_c2050();
    for block in [(8, 8), (32, 8), (32, 11), (16, 4)] {
        let cfg = RunConfig::new(problem, 3).with_block(block);
        let state = Impl::GpuResident.run(&cfg, Some(&spec));
        assert_eq!(state.max_abs_diff(reference.state()), 0.0);
        println!("block {block:?}: bit-identical to the serial reference");
    }
}
