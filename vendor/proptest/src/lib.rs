//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements the subset of proptest the workspace's
//! property tests use: the `proptest!` macro over named strategies,
//! numeric `Range` strategies, `prop::collection::vec`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Sampling is deterministic: each test derives its RNG seed from its own
//! name, so failures reproduce exactly run-to-run (there is no shrinking —
//! the failing inputs are printed instead).

use std::ops::Range;

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert*` failed with this message.
    Fail(String),
}

/// Result type threaded through a generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xorshift* RNG used for strategy sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG (seed 0 is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a string, used to derive per-test RNG seeds.
pub fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A source of sampled values. The single-method analogue of proptest's
/// `Strategy`: `sample` draws one value.
pub trait Strategy {
    /// The type of sampled values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// `prop::collection::vec` and friends.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with sampled length and elements.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector strategy: `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `proptest::prelude` namespace mirror.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
    /// The `prop` module alias (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a proptest body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)*), a, b
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skip the current case when its sampled inputs are infeasible.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies. Each test runs `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::fxhash(concat!(module_path!(), "::", stringify!($name))));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let result: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match result {
                        Ok(()) => { case += 1; }
                        Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > cfg.cases * 64 {
                                panic!("proptest {}: too many rejected cases ({rejected})", stringify!($name));
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {case}: {msg}\n  inputs: {}",
                                stringify!($name),
                                [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(-3i64..9), &mut rng);
            assert!((-3..9).contains(&v));
            let f = Strategy::sample(&(0.5f64..2.5), &mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_and_asserts(x in 0usize..100, y in 1i64..5) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(y.signum(), 1);
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }
}
