//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides the exact subset of the `parking_lot` API the
//! workspace uses — `Mutex` (non-poisoning `lock()` returning a guard
//! directly) and `Condvar` (`wait(&mut guard)` and the timed
//! `wait_for(&mut guard, timeout)`) — implemented on top of `std::sync`.
//! Poisoning is absorbed: a poisoned lock yields its inner guard,
//! matching `parking_lot`'s poison-free semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Mutably borrow the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back in
    // through a `&mut` borrow (std's wait consumes the guard by value).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable with `parking_lot`'s `wait(&mut guard)` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses, releasing the lock
    /// while waiting. Returns whether the wait timed out (spurious
    /// wakeups report "not timed out", as in `parking_lot`).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Result of a [`Condvar::wait_for`]: whether the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed rather than a
    /// notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn wait_for_returns_on_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            std::thread::sleep(Duration::from_millis(5));
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            let res = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!res.timed_out() || *done);
        }
        t.join().unwrap();
    }
}
