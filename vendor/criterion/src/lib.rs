//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements the subset of the criterion API the bench
//! suite uses: `Criterion::benchmark_group`, group `sample_size` /
//! `warm_up_time` / `measurement_time` / `throughput`, `bench_function`
//! with `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. It reports median and min/max time per iteration plus element
//! throughput — enough to compare kernels and track regressions, without
//! criterion's statistics machinery.
//!
//! Command-line filters work like criterion's: any non-flag argument is a
//! substring filter on `group/function` ids. `--test` runs each benchmark
//! exactly once (used by `cargo test --benches`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (or flops) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The bench harness entry point.
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut test_mode = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" | "-t" => test_mode = true,
                s if s.starts_with('-') => {} // ignore harness flags (--bench, --verbose, …)
                s => filters.push(s.to_string()),
            }
        }
        Self { filters, test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement duration budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.criterion.test_mode {
            f(&mut b);
            println!("{full}: ok (test mode)");
            return self;
        }
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            warm_iters += b.iters;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Choose iterations per sample to fill the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], *samples.last().expect("samples"));
        let mut line = format!(
            "{full:<44} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            line.push_str(&format!("  thrpt: {}{unit}", fmt_rate(count / median)));
        }
        println!("{line}");
        self
    }

    /// End the group (printing nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the payload `iters` times, accumulating elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.3} ")
    }
}

/// Group several bench functions under one registry function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given registry functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert!(b.elapsed > Duration::ZERO || calls == 5);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
        assert!(fmt_rate(3e9).starts_with("3.000 G"));
    }
}
