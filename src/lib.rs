//! # advection-overlap
//!
//! A Rust reproduction of:
//!
//! > JB White III and JJ Dongarra, *Overlapping Computation and
//! > Communication for Advection on Hybrid Parallel Computers*,
//! > IPDPS 2011.
//!
//! This facade crate re-exports the workspace: start with
//! [`overlap::Impl`] to run any of the paper's nine implementations
//! functionally, and [`perfmodel`] / [`figures`] to regenerate the
//! paper's evaluation. See README.md for a tour and DESIGN.md for the
//! substitution strategy (the MPI, CUDA, and Cray/Infiniband substrates
//! are simulated — faithfully enough that every implementation is
//! bit-identical to the serial reference and every figure's shape
//! reproduces).
//!
//! ```
//! use advection_overlap::prelude::*;
//!
//! // Run the paper's best implementation (IV-I) on a small grid and
//! // verify it against the serial reference.
//! let problem = AdvectionProblem::paper_case(12);
//! let cfg = RunConfig::new(problem, 6).tasks(4).with_threads(2).with_thickness(1);
//! let state = Impl::HybridOverlap.run(&cfg, Some(&GpuSpec::tesla_c2050()));
//! let mut reference = SerialStepper::new(problem);
//! reference.run(6);
//! assert_eq!(state.max_abs_diff(reference.state()), 0.0);
//! ```

pub use advect_core;
pub use decomp;
pub use figures;
pub use machine;
pub use obs;
pub use overlap;
pub use perfmodel;
pub use simgpu;
pub use simmpi;
pub use tuner;

/// Common imports for examples and quick starts.
pub mod prelude {
    pub use advect_core::{
        AdvectionProblem, Field3, GaussianPulse, Norms, SerialStepper, Stencil27, ThreadedStepper,
        Velocity,
    };
    pub use machine::{hopper_ii, jaguarpf, lens, yona, Machine};
    pub use overlap::{Impl, RunConfig};
    pub use perfmodel::{best_cpu_gf, best_gpu_gf, CpuImpl, CpuScenario, GpuImpl, GpuScenario};
    pub use simgpu::{Gpu, GpuSpec};
    pub use simmpi::{Comm, World};
}
