//! `advect` — run the advection test case on the simulated substrates.
//!
//! ```text
//! advect --impl IV-I --grid 32 --steps 16 --tasks 8 --threads 2 \
//!        --thickness 2 --block 32x8 --gpu c2050 [--stats] [--deep-halo W]
//! ```
//!
//! Runs the chosen implementation functionally, verifies it against the
//! serial reference bit-for-bit, and reports error norms against the
//! analytic solution plus substrate statistics.

use advection_overlap::prelude::*;

#[derive(Debug)]
struct Args {
    implementation: String,
    grid: usize,
    steps: u64,
    tasks: usize,
    threads: usize,
    thickness: usize,
    block: (usize, usize),
    gpu: String,
    stats: bool,
    deep_halo: Option<usize>,
    velocity: Velocity,
    nu: Option<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            implementation: "IV-B".into(),
            grid: 24,
            steps: 8,
            tasks: 4,
            threads: 2,
            thickness: 2,
            block: (32, 8),
            gpu: "c2050".into(),
            stats: false,
            deep_halo: None,
            velocity: Velocity::unit_diagonal(),
            nu: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: advect [--impl IV-A..IV-I] [--grid N] [--steps N] [--tasks N]\n\
         \x20             [--threads N] [--thickness N] [--block WxH]\n\
         \x20             [--gpu c1060|c2050] [--velocity cx,cy,cz] [--nu F]\n\
         \x20             [--deep-halo W] [--stats]\n\
         \n\
         implementations: IV-A single task, IV-B bulk-sync MPI, IV-C nonblocking,\n\
         IV-D thread overlap, IV-E GPU resident, IV-F GPU bulk-sync, IV-G GPU\n\
         streams, IV-H hybrid bulk-sync, IV-I hybrid full overlap"
    );
    std::process::exit(2)
}

fn parse() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--impl" => a.implementation = val(),
            "--grid" => a.grid = val().parse().unwrap_or_else(|_| usage()),
            "--steps" => a.steps = val().parse().unwrap_or_else(|_| usage()),
            "--tasks" => a.tasks = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => a.threads = val().parse().unwrap_or_else(|_| usage()),
            "--thickness" => a.thickness = val().parse().unwrap_or_else(|_| usage()),
            "--block" => {
                let v = val();
                let (x, y) = v.split_once('x').unwrap_or_else(|| usage());
                a.block = (
                    x.parse().unwrap_or_else(|_| usage()),
                    y.parse().unwrap_or_else(|_| usage()),
                );
            }
            "--gpu" => a.gpu = val(),
            "--velocity" => {
                let v = val();
                let parts: Vec<f64> = v.split(',').filter_map(|p| p.parse().ok()).collect();
                if parts.len() != 3 {
                    usage();
                }
                a.velocity = Velocity::new(parts[0], parts[1], parts[2]);
            }
            "--nu" => a.nu = Some(val().parse().unwrap_or_else(|_| usage())),
            "--deep-halo" => a.deep_halo = Some(val().parse().unwrap_or_else(|_| usage())),
            "--stats" => a.stats = true,
            "-h" | "--help" => usage(),
            _ => {
                eprintln!("unknown flag: {flag}");
                usage();
            }
        }
    }
    a
}

fn impl_by_name(name: &str) -> Option<Impl> {
    overlap::Impl::ALL
        .into_iter()
        .find(|i| i.section().eq_ignore_ascii_case(name))
}

fn main() {
    let a = parse();
    let problem = AdvectionProblem {
        velocity: a.velocity,
        nu: a.nu.unwrap_or_else(|| a.velocity.max_stable_nu()),
        ..AdvectionProblem::paper_case(a.grid)
    };
    if !advect_core::is_stable(problem.velocity, problem.nu) {
        eprintln!(
            "warning: nu = {} is von-Neumann unstable for velocity ({}, {}, {})",
            problem.nu, a.velocity.cx, a.velocity.cy, a.velocity.cz
        );
    }
    let spec = match a.gpu.as_str() {
        "c1060" => GpuSpec::tesla_c1060(),
        "c2050" => GpuSpec::tesla_c2050(),
        other => {
            eprintln!("unknown GPU: {other}");
            usage();
        }
    };

    // Serial reference for verification.
    let mut reference = SerialStepper::new(problem);
    let t0 = std::time::Instant::now();
    reference.run(a.steps);
    let serial_s = t0.elapsed().as_secs_f64();

    let (label, state, elapsed) = if let Some(w) = a.deep_halo {
        let cfg = RunConfig::new(problem, a.steps)
            .tasks(a.tasks)
            .with_threads(a.threads);
        let t0 = std::time::Instant::now();
        let state = overlap::DeepHaloBulkSync::run(&cfg, w);
        (
            format!("deep-halo bulk-sync (width {w})"),
            state,
            t0.elapsed().as_secs_f64(),
        )
    } else {
        let im = impl_by_name(&a.implementation).unwrap_or_else(|| {
            eprintln!("unknown implementation: {}", a.implementation);
            usage();
        });
        let cfg = RunConfig::new(problem, a.steps)
            .tasks(if im.uses_mpi() { a.tasks } else { 1 })
            .with_threads(a.threads)
            .with_block(a.block)
            .with_thickness(a.thickness.max(usize::from(im == Impl::HybridOverlap)));
        let t0 = std::time::Instant::now();
        let state = im.run(&cfg, Some(&spec));
        (
            format!("{} ({})", im.name(), im.section()),
            state,
            t0.elapsed().as_secs_f64(),
        )
    };

    let diff = state.max_abs_diff(reference.state());
    let norms = problem.norms_after(&state, a.steps);
    println!("implementation : {label}");
    println!(
        "problem        : {n}³ grid, velocity ({cx}, {cy}, {cz}), nu {nu}, {steps} steps",
        n = a.grid,
        cx = a.velocity.cx,
        cy = a.velocity.cy,
        cz = a.velocity.cz,
        nu = problem.nu,
        steps = a.steps
    );
    println!(
        "vs serial      : max|diff| = {diff:.3e} ({})",
        if diff == 0.0 { "bit-exact" } else { "MISMATCH" }
    );
    println!(
        "vs analytic    : L1 {:.3e}  L2 {:.3e}  Linf {:.3e}",
        norms.l1, norms.l2, norms.linf
    );
    println!("wall time      : {elapsed:.3}s (serial reference {serial_s:.3}s)");
    if a.stats {
        let points = (a.grid as u64).pow(3);
        println!(
            "throughput     : {:.3} GF functional (53 flops/point/step)",
            advect_core::flops::gigaflops(points, a.steps, elapsed)
        );
    }
    if diff != 0.0 {
        std::process::exit(1);
    }
}
