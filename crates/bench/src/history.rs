//! Bench-snapshot trajectory: every committed `BENCH_<n>.json` at the
//! repository root, parsed into one ordered history. The history is the
//! single source for the CI perf gate (`bench_snapshot --check` routes
//! through [`History::check`] against the latest committed snapshot) and
//! for the `bench_history` regression dashboard (sparkline table plus
//! per-metric deltas between the two most recent snapshots).

use figures::json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// How a metric's movement should be read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: bigger is better.
    HigherIsBetter,
    /// Duration-like (`*_seconds`): smaller is better.
    LowerIsBetter,
    /// Overhead ratios (`*_ratio`): healthy near 1.0, drift either way
    /// is a finding, not a regression.
    NearOne,
    /// Benchmark configuration (grid sizes, task counts): not a metric.
    Config,
}

/// Keys that describe the benchmark setup rather than a measurement.
/// Any key ending in `_threads` or `_grid` is also configuration: it
/// records the shape a section ran at, not a result.
const CONFIG_KEYS: &[&str] = &[
    "grid",
    "flops_per_point",
    "exchange_tasks",
    "numa_nodes",
    "numa_cores_per_node",
    "timetile_llc_mib",
];

/// Whether a key is a latency in milliseconds (`serve_p99_ms`,
/// `serve_p99_ms_t4`): lower is better, and [`History::check`] gates it
/// with the tolerance inverted.
fn is_latency_ms(key: &str) -> bool {
    key.ends_with("_ms") || key.contains("_ms_t")
}

/// Classify a snapshot key by naming convention.
pub fn direction(key: &str) -> Direction {
    if CONFIG_KEYS.contains(&key) || key.ends_with("_threads") || key.ends_with("_grid") {
        Direction::Config
    } else if key.ends_with("_ratio") {
        Direction::NearOne
    } else if key.ends_with("_seconds") || is_latency_ms(key) {
        Direction::LowerIsBetter
    } else if key.ends_with("_share") {
        // Concentration shares (e.g. the largest rank's slice of total
        // wait-blame): a rise means one participant dominates.
        Direction::LowerIsBetter
    } else {
        Direction::HigherIsBetter
    }
}

/// One committed `BENCH_<n>.json`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The `<n>` in the filename; orders the history.
    pub index: u64,
    /// Where the snapshot was read from.
    pub path: PathBuf,
    /// Every numeric top-level field.
    pub values: BTreeMap<String, f64>,
}

impl Snapshot {
    /// Parse one snapshot file.
    pub fn load(index: u64, path: &Path) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Value::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let Value::Object(fields) = &doc else {
            return Err(format!("{}: not a JSON object", path.display()));
        };
        let mut values = BTreeMap::new();
        for (k, v) in fields {
            if let Some(x) = v.as_f64() {
                values.insert(k.clone(), x);
            }
        }
        if values.is_empty() {
            return Err(format!("{}: no numeric fields", path.display()));
        }
        Ok(Snapshot {
            index,
            path: path.to_path_buf(),
            values,
        })
    }

    /// A metric's value, if this snapshot recorded it.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// The thread count the section owning `key` ran at, if this
    /// snapshot recorded one: the longest `<section>_threads` key whose
    /// stem prefixes `key` (`stencil_threads` governs `stencil_fast_gf`).
    pub fn threads_for(&self, key: &str) -> Option<f64> {
        self.values
            .iter()
            .filter_map(|(k, v)| {
                let stem = k.strip_suffix("_threads")?;
                (!stem.is_empty() && key.starts_with(stem)).then_some((stem.len(), *v))
            })
            .max_by_key(|&(len, _)| len)
            .map(|(_, v)| v)
    }
}

/// The ordered sequence of committed snapshots.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Snapshots sorted by index, oldest first.
    pub snapshots: Vec<Snapshot>,
}

/// Absolute floor every `*_off_overhead_ratio` should clear under
/// [`History::check`]: each instrumentation layer, disabled, may cost at
/// most 10% of the exchange throughput measured before the layer
/// existed. Advisory (a below-floor ratio warns, it does not fail the
/// check): the fresh numerator and the committed denominator are by
/// construction measured in different host scheduler epochs, and the
/// exchange bench swings far more than 10% between epochs — the
/// *enforced* off-path contract is the deterministic zero-allocation
/// suite (`trace_alloc`/`fault_alloc`/`metrics_alloc`/`causal_alloc`).
pub const RATIO_FLOOR: f64 = 0.90;

/// One gate comparison from [`History::check`].
#[derive(Debug, Clone)]
pub struct Gate {
    /// Metric key.
    pub key: String,
    /// The freshly measured value.
    pub fresh: f64,
    /// The latest committed value.
    pub committed: f64,
    /// `fresh / committed`.
    pub ratio: f64,
    /// Whether the ratio clears the tolerance floor.
    pub ok: bool,
    /// Advisory gate: a miss is reported as a warning, not counted as a
    /// regression (see [`RATIO_FLOOR`] for why off-overhead ratios are
    /// advisory).
    pub warn: bool,
}

/// The outcome of gating fresh numbers against the latest snapshot.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The snapshot the gates compared against (its file path).
    pub baseline: Option<PathBuf>,
    /// Per-metric comparisons.
    pub gates: Vec<Gate>,
    /// Metrics without a committed baseline, skipped.
    pub skipped: Vec<String>,
}

impl CheckOutcome {
    /// Whether every *enforced* gate cleared its floor (advisory gates
    /// may warn without failing the check).
    pub fn passed(&self) -> bool {
        self.gates.iter().all(|g| g.ok || g.warn)
    }

    /// Number of failing enforced gates.
    pub fn regressions(&self) -> usize {
        self.gates.iter().filter(|g| !g.ok && !g.warn).count()
    }

    /// Number of advisory gates below their floor.
    pub fn warnings(&self) -> usize {
        self.gates.iter().filter(|g| !g.ok && g.warn).count()
    }
}

impl History {
    /// Scan `root` for `BENCH_<n>.json` files and load them in order.
    /// Unparseable files are errors; an empty directory yields an empty
    /// history (callers decide whether that is fatal).
    pub fn load(root: &Path) -> Result<History, String> {
        let mut snapshots = Vec::new();
        let entries = std::fs::read_dir(root).map_err(|e| format!("{}: {e}", root.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(index) = name
                .strip_prefix("BENCH_")
                .and_then(|r| r.strip_suffix(".json"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            snapshots.push(Snapshot::load(index, &entry.path())?);
        }
        snapshots.sort_by_key(|s| s.index);
        Ok(History { snapshots })
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.snapshots.last()
    }

    /// The next free snapshot index (`latest + 1`, or 1 when empty).
    pub fn next_index(&self) -> u64 {
        self.latest().map_or(1, |s| s.index + 1)
    }

    /// Every metric key recorded by any snapshot, config keys excluded.
    pub fn metric_keys(&self) -> Vec<String> {
        let mut keys = BTreeSet::new();
        for s in &self.snapshots {
            for k in s.values.keys() {
                if direction(k) != Direction::Config {
                    keys.insert(k.clone());
                }
            }
        }
        keys.into_iter().collect()
    }

    /// Gate fresh measurements against the latest committed snapshot:
    /// each `(key, fresh)` whose committed value exists and is positive
    /// must satisfy `fresh / committed >= tolerance`.
    ///
    /// `*_off_overhead_ratio` keys gate differently: they are already
    /// normalized against their pre-layer baseline, so they compare to
    /// the absolute [`RATIO_FLOOR`] regardless of what any snapshot
    /// committed — a drifting baseline must not grandfather in a real
    /// instrumentation overhead. These gates are *advisory* (a miss
    /// warns instead of failing): the fresh and committed sides of a
    /// cross-build ratio live in different scheduler epochs, and no
    /// same-run normalization can remove that without cancelling the
    /// measurement itself — the zero-allocation tests are the enforced
    /// off-path contract. Raw `*_per_sec` exchange-throughput keys are
    /// advisory for the same reason: on a 1-vCPU guest, hypervisor CPU
    /// steal — invisible to the guest and unbounded — swings the
    /// 4-thread exchange bench 2.5× with the binary unchanged (309→122M
    /// values/s observed within hours), so a raw-throughput floor gates
    /// the hypervisor, not the code. The enforced exchange-regression
    /// signal is `exchange_pooled_over_fresh`, whose two sides are
    /// measured seconds apart in the same run and epoch.
    pub fn check(&self, fresh: &[(&str, f64)], tolerance: f64) -> CheckOutcome {
        let mut outcome = CheckOutcome {
            baseline: self.latest().map(|s| s.path.clone()),
            gates: Vec::new(),
            skipped: Vec::new(),
        };
        for &(key, value) in fresh {
            if key.ends_with("_off_overhead_ratio") {
                outcome.gates.push(Gate {
                    key: key.to_string(),
                    fresh: value,
                    committed: RATIO_FLOOR,
                    ratio: value,
                    ok: value >= RATIO_FLOOR,
                    warn: true,
                });
                continue;
            }
            let committed = self.latest().and_then(|s| s.get(key)).unwrap_or(0.0);
            if committed <= 0.0 {
                outcome.skipped.push(key.to_string());
                continue;
            }
            let ratio = value / committed;
            // Latency keys invert: the gate trips when fresh grows past
            // 1/tolerance of committed. Both latency and request-rate
            // keys are advisory — they measure the shared runner's
            // scheduler as much as the code (the enforced server signal
            // is `serve_cache_hit_speedup`, a same-run ratio).
            let (ok, warn) = if is_latency_ms(key) {
                (ratio <= 1.0 / tolerance, true)
            } else {
                (
                    ratio >= tolerance,
                    key.ends_with("_per_sec") || key.ends_with("_rps") || key.contains("_rps_t"),
                )
            };
            outcome.gates.push(Gate {
                key: key.to_string(),
                fresh: value,
                committed,
                ratio,
                ok,
                warn,
            });
        }
        outcome
    }

    /// Markdown dashboard: one sparkline row per metric across the whole
    /// history, the latest value, and its delta against the previous
    /// snapshot classified by [`direction`].
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Bench history ({} snapshots)\n\n",
            self.snapshots.len()
        ));
        if self.snapshots.is_empty() {
            out.push_str("_No committed BENCH_<n>.json snapshots found._\n");
            return out;
        }
        let indices: Vec<String> = self.snapshots.iter().map(|s| s.index.to_string()).collect();
        out.push_str(&format!("Snapshots: {}\n\n", indices.join(" → ")));
        out.push_str("| metric | trend | latest | vs prev | reading |\n");
        out.push_str("|---|---|---|---|---|\n");
        for key in self.metric_keys() {
            let series: Vec<Option<f64>> = self.snapshots.iter().map(|s| s.get(&key)).collect();
            let present: Vec<&Snapshot> = self
                .snapshots
                .iter()
                .filter(|s| s.get(&key).is_some())
                .collect();
            let Some(&last_snap) = present.last() else {
                continue;
            };
            let latest = last_snap.get(&key).expect("present");
            let prev_snap = present.len().checked_sub(2).map(|i| present[i]);
            // A GF measured at 4 workers is not a trend against a GF
            // measured at 1: when both snapshots record the owning
            // section's thread count and they differ, refuse to compare.
            let (delta, reading) = match prev_snap {
                Some(prev) => match (prev.threads_for(&key), last_snap.threads_for(&key)) {
                    (Some(a), Some(b)) if a != b => (
                        format!("n/a ({}→{} threads)", a as u64, b as u64),
                        "not comparable".to_string(),
                    ),
                    _ => {
                        let p = prev.get(&key).expect("present");
                        if p != 0.0 {
                            let pct = (latest - p) / p * 100.0;
                            (format!("{pct:+.1}%"), classify(&key, pct))
                        } else {
                            ("new".to_string(), "—".to_string())
                        }
                    }
                },
                None => ("new".to_string(), "—".to_string()),
            };
            out.push_str(&format!(
                "| {key} | `{}` | {} | {delta} | {reading} |\n",
                sparkline(&series),
                fmt_value(latest),
            ));
        }
        // Overhead-ratio lineage: each instrumentation layer's off-cost
        // ratio, from the snapshot that introduced it onward.
        let ratios: Vec<String> = self
            .metric_keys()
            .into_iter()
            .filter(|k| k.ends_with("_overhead_ratio"))
            .collect();
        if !ratios.is_empty() {
            out.push_str("\n### Overhead-ratio lineage\n\n");
            out.push_str(
                "Each instrumentation layer must stay near 1.0 when \
                 disabled; the ratio compares exchange throughput with \
                 the layer's plumbing present-but-off against the \
                 snapshot that predates it.\n\n",
            );
            let mut header = String::from("| snapshot |");
            for r in &ratios {
                header.push_str(&format!(" {r} |"));
            }
            out.push_str(&header);
            out.push('\n');
            out.push_str(&format!("|---|{}\n", "---|".repeat(ratios.len())));
            for s in &self.snapshots {
                let mut row = format!("| {} |", s.index);
                for r in &ratios {
                    match s.get(r) {
                        Some(v) => row.push_str(&format!(" {v:.3} |")),
                        None => row.push_str(" — |"),
                    }
                }
                out.push_str(&row);
                out.push('\n');
            }
        }
        // Causal blame / divergence health from the latest snapshot that
        // carries the causal layer's keys (absent on snapshots predating
        // it): wait-blame concentration and model-vs-measured ranking
        // agreement from traced clean runs.
        if let Some(s) = self
            .snapshots
            .iter()
            .rev()
            .find(|s| s.get("blame_max_rank_share").is_some())
        {
            out.push_str(&format!(
                "\n### Causal blame / divergence (snapshot {})\n\n\
                 From one traced clean run per implementation: the \
                 largest rank's share of total wait-blame across the MPI \
                 implementations (toward 1.0 one rank dominates every \
                 wait; near 1/ranks the waits are balanced), and the \
                 model-vs-measured overlap ranking agreement over all \
                 nine implementations (1.0 = no confident inversion).\n\n\
                 | metric | value |\n|---|---|\n",
                s.index
            ));
            for key in ["blame_max_rank_share", "model_rank_agreement"] {
                if let Some(v) = s.get(key) {
                    out.push_str(&format!("| {key} | {v:.3} |\n"));
                }
            }
        }
        // Per-thread scaling curve from the latest snapshot that carries
        // one: pooled sweep and full-implementation GF with parallel
        // efficiency at each measured team width.
        if let Some(s) = self
            .snapshots
            .iter()
            .rev()
            .find(|s| s.values.keys().any(|k| k.starts_with("scaling_pool_t")))
        {
            let mut widths: Vec<u64> = s
                .values
                .keys()
                .filter_map(|k| {
                    k.strip_prefix("scaling_pool_t")?
                        .strip_suffix("_gf")?
                        .parse()
                        .ok()
                })
                .collect();
            widths.sort_unstable();
            out.push_str(&format!(
                "\n### Per-thread scaling (snapshot {})\n\n\
                 Parallel efficiency is `gf / (threads × gf₁)`; 1.0 is \
                 perfect scaling, and the curve bends where the team \
                 leaves the compute-bound regime.\n\n\
                 | threads | pool GF | pool eff | impl GF | impl eff |\n\
                 |---|---|---|---|---|\n",
                s.index
            ));
            for w in widths {
                let cell = |k: String| match s.get(&k) {
                    Some(v) => format!("{v:.3}"),
                    None => "—".to_string(),
                };
                out.push_str(&format!(
                    "| {w} | {} | {} | {} | {} |\n",
                    cell(format!("scaling_pool_t{w}_gf")),
                    cell(format!("scaling_pool_t{w}_eff")),
                    cell(format!("scaling_impl_t{w}_gf")),
                    cell(format!("scaling_impl_t{w}_eff")),
                ));
            }
        }
        // Steps-per-traversal curve from the latest snapshot that carries
        // a temporal-blocking section (absent on snapshots predating it):
        // implementation GF at each fused depth k and measured team width.
        if let Some(s) = self
            .snapshots
            .iter()
            .rev()
            .find(|s| s.values.keys().any(|k| k.starts_with("timetile_k")))
        {
            let mut ks: Vec<u64> = Vec::new();
            let mut ws: Vec<u64> = Vec::new();
            for key in s.values.keys() {
                if let Some((k, w)) = key
                    .strip_prefix("timetile_k")
                    .and_then(|r| r.strip_suffix("_gf"))
                    .and_then(|r| r.split_once("_t"))
                {
                    if let (Ok(k), Ok(w)) = (k.parse(), w.parse()) {
                        ks.push(k);
                        ws.push(w);
                    }
                }
            }
            ks.sort_unstable();
            ks.dedup();
            ws.sort_unstable();
            ws.dedup();
            out.push_str(&format!(
                "\n### Steps per traversal (snapshot {})\n\n\
                 Temporal blocking fuses k steps into one grid traversal; \
                 k = 1 is the classic streaming stepper on the same \
                 larger-than-LLC grid",
                s.index
            ));
            match (s.get("timetile_grid"), s.get("timetile_llc_mib")) {
                (Some(n), Some(mib)) => out.push_str(&format!(
                    " ({}³ against a {} MiB last-level cache).\n\n",
                    n as u64, mib as u64
                )),
                _ => out.push_str(".\n\n"),
            }
            let mut header = String::from("| steps/traversal |");
            for w in &ws {
                header.push_str(&format!(" {w}-thread GF |"));
            }
            out.push_str(&header);
            out.push('\n');
            out.push_str(&format!("|---|{}\n", "---|".repeat(ws.len())));
            for k in &ks {
                let mut row = format!("| {k} |");
                for w in &ws {
                    match s.get(&format!("timetile_k{k}_t{w}_gf")) {
                        Some(v) => row.push_str(&format!(" {v:.3} |")),
                        None => row.push_str(" — |"),
                    }
                }
                out.push_str(&row);
                out.push('\n');
            }
        }
        // Service saturation from the latest snapshot that carries the
        // run-server section (absent on snapshots predating it): the
        // load generator's closed-loop sweep over concurrent tenants,
        // plus the cache-hit speedup (cold execution over cached
        // response, same run — the one enforced server gate).
        if let Some(s) = self
            .snapshots
            .iter()
            .rev()
            .find(|s| s.values.keys().any(|k| k.starts_with("serve_rps_t")))
        {
            let mut tenants: Vec<u64> = s
                .values
                .keys()
                .filter_map(|k| k.strip_prefix("serve_rps_t")?.parse().ok())
                .collect();
            tenants.sort_unstable();
            out.push_str(&format!(
                "\n### Service saturation (snapshot {})\n\n\
                 Closed-loop load generation against the in-process run \
                 server, sweeping concurrent tenants",
                s.index
            ));
            match s.get("serve_threads") {
                Some(w) => out.push_str(&format!(" over {} worker(s).\n\n", w as u64)),
                None => out.push_str(".\n\n"),
            }
            out.push_str("| tenants | requests/s | p99 ms |\n|---|---|---|\n");
            for t in &tenants {
                let cell = |k: String| match s.get(&k) {
                    Some(v) => format!("{v:.1}"),
                    None => "—".to_string(),
                };
                out.push_str(&format!(
                    "| {t} | {} | {} |\n",
                    cell(format!("serve_rps_t{t}")),
                    cell(format!("serve_p99_ms_t{t}")),
                ));
            }
            if let Some(v) = s.get("serve_cache_hit_speedup") {
                out.push_str(&format!(
                    "\nCache-hit speedup (cold / cached, same run): **{v:.1}×**\n"
                ));
            }
        }
        out
    }

    /// JSON trajectory: the full per-snapshot values plus per-metric
    /// latest/delta summaries, for machine consumers (CI artifacts).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"snapshots\": [\n");
        for (i, s) in self.snapshots.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"index\": {}, \"path\": {}, \"values\": {{",
                s.index,
                figures::json::escape(&s.path.display().to_string())
            ));
            for (j, (k, v)) in s.values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", figures::json::escape(k), number(*v)));
            }
            out.push_str("}}");
            out.push_str(if i + 1 < self.snapshots.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"metrics\": {\n");
        let keys = self.metric_keys();
        for (i, key) in keys.iter().enumerate() {
            let present: Vec<&Snapshot> = self
                .snapshots
                .iter()
                .filter(|s| s.get(key).is_some())
                .collect();
            let latest = present.last().and_then(|s| s.get(key)).unwrap_or(0.0);
            let prev_snap = present.len().checked_sub(2).map(|i| present[i]);
            let comparable = match (prev_snap, present.last()) {
                (Some(prev), Some(last)) => match (prev.threads_for(key), last.threads_for(key)) {
                    (Some(a), Some(b)) => a == b,
                    _ => true,
                },
                _ => true,
            };
            let delta_pct = match prev_snap.and_then(|s| s.get(key)) {
                Some(p) if p != 0.0 && comparable => (latest - p) / p * 100.0,
                _ => 0.0,
            };
            out.push_str(&format!(
                "    {}: {{\"latest\": {}, \"delta_pct\": {}, \"comparable\": {comparable}}}",
                figures::json::escape(key),
                number(latest),
                number(delta_pct)
            ));
            out.push_str(if i + 1 < keys.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Human verdict for a percent move in `key`.
fn classify(key: &str, pct: f64) -> String {
    const NOISE_PCT: f64 = 5.0;
    if pct.abs() <= NOISE_PCT {
        return "steady".to_string();
    }
    match direction(key) {
        Direction::HigherIsBetter => {
            if pct > 0.0 {
                "improvement"
            } else {
                "regression"
            }
        }
        Direction::LowerIsBetter => {
            if pct < 0.0 {
                "improvement"
            } else {
                "regression"
            }
        }
        Direction::NearOne => "drift",
        Direction::Config => "—",
    }
    .to_string()
}

/// Eight-level sparkline over the present values; missing entries render
/// as `·`.
fn sparkline(series: &[Option<f64>]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let present: Vec<f64> = series.iter().flatten().copied().collect();
    let (lo, hi) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    series
        .iter()
        .map(|v| match v {
            None => '·',
            Some(x) => {
                if hi <= lo {
                    BARS[3]
                } else {
                    let t = ((x - lo) / (hi - lo) * 7.0).round() as usize;
                    BARS[t.min(7)]
                }
            }
        })
        .collect()
}

/// Compact value formatting: large throughputs get thousands separators
/// dropped in favor of engineering notation; small numbers keep 3 d.p.
fn fmt_value(v: f64) -> String {
    if v.abs() >= 1e6 {
        format!(
            "{:.2}e{}",
            v / 10f64.powi(v.abs().log10() as i32),
            v.abs().log10() as i32
        )
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// JSON number formatting shared with the exporters: finite, trailing
/// precision trimmed.
fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(index: u64, pairs: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            index,
            path: PathBuf::from(format!("BENCH_{index}.json")),
            values: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn loads_committed_history_in_order() {
        // The repo root carries the real snapshots this dashboard serves.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap();
        let h = History::load(root).expect("history parses");
        assert!(h.snapshots.len() >= 4, "expected committed snapshots");
        let indices: Vec<u64> = h.snapshots.iter().map(|s| s.index).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
        assert_eq!(h.next_index(), indices.last().unwrap() + 1);
        assert!(h.latest().unwrap().get("stencil_fast_gf").unwrap() > 0.0);
        let md = h.render_markdown();
        assert!(md.contains("stencil_fast_gf"), "{md}");
        assert!(md.contains("Overhead-ratio lineage"), "{md}");
        let json = h.render_json();
        let doc = Value::parse(&json).expect("valid json");
        assert!(doc["snapshots"].as_array().unwrap().len() >= 4);
    }

    #[test]
    fn direction_classification_follows_naming() {
        assert_eq!(direction("grid"), Direction::Config);
        assert_eq!(direction("sweep_threads"), Direction::Config);
        assert_eq!(direction("stencil_threads"), Direction::Config);
        assert_eq!(direction("scaling_grid"), Direction::Config);
        assert_eq!(direction("scaling_full_threads"), Direction::Config);
        assert_eq!(direction("numa_nodes"), Direction::Config);
        assert_eq!(direction("numa_cores_per_node"), Direction::Config);
        assert_eq!(direction("timetile_llc_mib"), Direction::Config);
        assert_eq!(direction("timetile_grid"), Direction::Config);
        assert_eq!(direction("timetile_full_threads"), Direction::Config);
        assert_eq!(direction("timetile_k4_t1_gf"), Direction::HigherIsBetter);
        assert_eq!(
            direction("timetile_k4_over_k1_t1"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction("tracing_off_overhead_ratio"), Direction::NearOne);
        assert_eq!(
            direction("figures_report_seconds"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction("stencil_fast_gf"), Direction::HigherIsBetter);
        assert_eq!(direction("scaling_pool_t4_gf"), Direction::HigherIsBetter);
        assert_eq!(direction("causal_off_overhead_ratio"), Direction::NearOne);
        assert_eq!(direction("blame_max_rank_share"), Direction::LowerIsBetter);
        assert_eq!(direction("model_rank_agreement"), Direction::HigherIsBetter);
        assert_eq!(direction("serve_threads"), Direction::Config);
        assert_eq!(direction("serve_rps_t4"), Direction::HigherIsBetter);
        assert_eq!(direction("serve_p99_ms_t4"), Direction::LowerIsBetter);
        assert_eq!(direction("serve_p99_ms"), Direction::LowerIsBetter);
        assert_eq!(
            direction("serve_cache_hit_speedup"),
            Direction::HigherIsBetter
        );
    }

    #[test]
    fn latency_gates_invert_and_rps_gates_warn() {
        let h = History {
            snapshots: vec![snap(
                9,
                &[
                    ("serve_p99_ms_t4", 10.0),
                    ("serve_rps_t4", 1000.0),
                    ("serve_cache_hit_speedup", 50.0),
                ],
            )],
        };
        // Latency improving (dropping) passes even though the raw ratio
        // 0.5 is far below the 0.75 tolerance...
        let faster = h.check(&[("serve_p99_ms_t4", 5.0)], 0.75);
        assert!(faster.passed(), "{faster:?}");
        assert_eq!(faster.warnings(), 0);
        // ...and regressing past 1/tolerance warns without failing (the
        // runner's scheduler owns most of the variance).
        let slower = h.check(&[("serve_p99_ms_t4", 20.0)], 0.75);
        assert!(slower.passed(), "advisory latency gate must not fail");
        assert_eq!(slower.warnings(), 1);
        // Request rate collapses warn like `_per_sec` keys...
        let slow_rps = h.check(&[("serve_rps_t4", 100.0)], 0.75);
        assert!(slow_rps.passed(), "{slow_rps:?}");
        assert_eq!(slow_rps.warnings(), 1);
        // ...while the same-run cache-hit speedup stays enforced.
        let broken_cache = h.check(&[("serve_cache_hit_speedup", 2.0)], 0.75);
        assert!(!broken_cache.passed());
        assert_eq!(broken_cache.regressions(), 1);
    }

    #[test]
    fn markdown_renders_the_saturation_table() {
        let h = History {
            snapshots: vec![snap(
                9,
                &[
                    ("serve_threads", 2.0),
                    ("serve_rps_t1", 800.0),
                    ("serve_p99_ms_t1", 4.2),
                    ("serve_rps_t4", 2100.0),
                    ("serve_p99_ms_t4", 9.8),
                    ("serve_cache_hit_speedup", 42.0),
                ],
            )],
        };
        let md = h.render_markdown();
        assert!(md.contains("Service saturation (snapshot 9)"), "{md}");
        assert!(md.contains("over 2 worker(s)"), "{md}");
        assert!(md.contains("| 1 | 800.0 | 4.2 |"), "{md}");
        assert!(md.contains("| 4 | 2100.0 | 9.8 |"), "{md}");
        assert!(md.contains("**42.0×**"), "{md}");
    }

    #[test]
    fn markdown_survives_snapshots_without_a_serve_section() {
        let h = History {
            snapshots: vec![snap(5, &[("stencil_fast_gf", 19.0)])],
        };
        let md = h.render_markdown();
        assert!(!md.contains("Service saturation"), "{md}");
    }

    #[test]
    fn markdown_renders_the_causal_section() {
        let h = History {
            snapshots: vec![
                // A pre-causal snapshot must not break the section.
                snap(7, &[("exchange_values_per_sec", 1.0e8)]),
                snap(
                    8,
                    &[
                        ("blame_max_rank_share", 0.412),
                        ("model_rank_agreement", 1.0),
                        ("causal_off_overhead_ratio", 1.02),
                    ],
                ),
            ],
        };
        let md = h.render_markdown();
        assert!(
            md.contains("Causal blame / divergence (snapshot 8)"),
            "{md}"
        );
        assert!(md.contains("| blame_max_rank_share | 0.412 |"), "{md}");
        assert!(md.contains("| model_rank_agreement | 1.000 |"), "{md}");
        // The causal off-ratio joins the overhead lineage table.
        assert!(md.contains("causal_off_overhead_ratio"), "{md}");
    }

    #[test]
    fn histories_without_causal_keys_still_render() {
        let h = History {
            snapshots: vec![snap(5, &[("stencil_fast_gf", 19.0)])],
        };
        let md = h.render_markdown();
        assert!(!md.contains("Causal blame / divergence"), "{md}");
        let json = h.render_json();
        Value::parse(&json).expect("valid json");
    }

    #[test]
    fn off_overhead_ratios_gate_on_the_absolute_floor() {
        // Even with a committed (mis-oriented) 0.697 in the history, the
        // ratio compares to the absolute floor: ≥ 0.90 is clean, below
        // warns — advisory, so the check still passes (the enforced
        // off-path contract is the zero-allocation suite).
        let h = History {
            snapshots: vec![snap(5, &[("tracing_off_overhead_ratio", 0.697)])],
        };
        let ok = h.check(&[("tracing_off_overhead_ratio", 1.43)], 0.75);
        assert!(ok.passed(), "{ok:?}");
        assert_eq!(ok.warnings(), 0);
        assert_eq!(ok.gates[0].committed, RATIO_FLOOR);
        let bad = h.check(&[("tracing_off_overhead_ratio", 0.85)], 0.75);
        assert!(bad.passed(), "advisory gates must not fail the check");
        // The relative tolerance would have cleared 0.85 against 0.697;
        // only the absolute floor flags it.
        assert_eq!(bad.warnings(), 1);
        assert_eq!(bad.regressions(), 0);
    }

    #[test]
    fn per_sec_keys_are_advisory_under_hypervisor_steal() {
        let h = History {
            snapshots: vec![snap(
                8,
                &[
                    ("exchange_values_per_sec", 260.0e6),
                    ("exchange_pooled_over_fresh", 1.10),
                ],
            )],
        };
        // A raw-throughput collapse warns (steal epochs swing it 2.5×
        // with the binary unchanged) but does not fail the check...
        let steal = h.check(&[("exchange_values_per_sec", 122.0e6)], 0.75);
        assert!(steal.passed(), "{steal:?}");
        assert_eq!(steal.warnings(), 1);
        assert_eq!(steal.regressions(), 0);
        // ...while the same-epoch pooled/fresh ratio stays enforced.
        let real = h.check(&[("exchange_pooled_over_fresh", 0.70)], 0.75);
        assert!(!real.passed());
        assert_eq!(real.regressions(), 1);
    }

    #[test]
    fn threads_for_picks_the_owning_section() {
        let s = snap(
            6,
            &[
                ("stencil_threads", 1.0),
                ("stencil_fast_gf", 19.0),
                ("exchange_threads", 1.0),
                ("sweep_threads", 4.0),
                ("scaling_full_threads", 4.0),
            ],
        );
        assert_eq!(s.threads_for("stencil_fast_gf"), Some(1.0));
        assert_eq!(s.threads_for("exchange_values_per_sec"), Some(1.0));
        // No `*_threads` stem prefixes the per-width scaling keys: the
        // width lives in the key itself, so trends always compare like
        // with like.
        assert_eq!(s.threads_for("scaling_pool_t4_gf"), None);
        assert_eq!(s.threads_for("figures_report_seconds"), None);
    }

    #[test]
    fn markdown_refuses_cross_thread_trends() {
        let h = History {
            snapshots: vec![
                snap(1, &[("stencil_threads", 1.0), ("stencil_fast_gf", 10.0)]),
                snap(2, &[("stencil_threads", 4.0), ("stencil_fast_gf", 30.0)]),
            ],
        };
        let md = h.render_markdown();
        assert!(md.contains("not comparable"), "{md}");
        assert!(md.contains("n/a (1→4 threads)"), "{md}");
        assert!(!md.contains("improvement"), "{md}");
        let json = h.render_json();
        let doc = Value::parse(&json).expect("valid json");
        let m = &doc["metrics"]["stencil_fast_gf"];
        assert_eq!(m["comparable"].as_bool(), Some(false));
        assert_eq!(m["delta_pct"].as_f64(), Some(0.0));
    }

    #[test]
    fn markdown_renders_the_scaling_table() {
        let h = History {
            snapshots: vec![snap(
                6,
                &[
                    ("scaling_pool_t1_gf", 19.0),
                    ("scaling_pool_t1_eff", 1.0),
                    ("scaling_pool_t4_gf", 20.0),
                    ("scaling_pool_t4_eff", 0.263),
                    ("scaling_impl_t1_gf", 8.0),
                    ("scaling_impl_t1_eff", 1.0),
                ],
            )],
        };
        let md = h.render_markdown();
        assert!(md.contains("Per-thread scaling (snapshot 6)"), "{md}");
        assert!(
            md.contains("| 1 | 19.000 | 1.000 | 8.000 | 1.000 |"),
            "{md}"
        );
        assert!(md.contains("| 4 | 20.000 | 0.263 | — | — |"), "{md}");
    }

    #[test]
    fn markdown_renders_the_timetile_table() {
        let h = History {
            snapshots: vec![snap(
                7,
                &[
                    ("timetile_grid", 256.0),
                    ("timetile_llc_mib", 260.0),
                    ("timetile_k1_t1_gf", 2.0),
                    ("timetile_k4_t1_gf", 3.0),
                    ("timetile_k1_t4_gf", 6.0),
                    ("timetile_k8_t4_gf", 9.5),
                ],
            )],
        };
        let md = h.render_markdown();
        assert!(md.contains("Steps per traversal (snapshot 7)"), "{md}");
        assert!(
            md.contains("(256³ against a 260 MiB last-level cache)"),
            "{md}"
        );
        assert!(
            md.contains("| steps/traversal | 1-thread GF | 4-thread GF |"),
            "{md}"
        );
        assert!(md.contains("| 1 | 2.000 | 6.000 |"), "{md}");
        assert!(md.contains("| 4 | 3.000 | — |"), "{md}");
        assert!(md.contains("| 8 | — | 9.500 |"), "{md}");
    }

    #[test]
    fn markdown_survives_snapshots_without_a_timetile_section() {
        // Every snapshot before PR 7 lacks timetile keys: the dashboard
        // must render them without the new table rather than erroring.
        let h = History {
            snapshots: vec![snap(5, &[("stencil_fast_gf", 19.0)])],
        };
        let md = h.render_markdown();
        assert!(!md.contains("Steps per traversal"), "{md}");
        assert!(md.contains("stencil_fast_gf"), "{md}");
    }

    #[test]
    fn check_gates_against_latest_and_skips_missing() {
        let h = History {
            snapshots: vec![
                snap(1, &[("stencil_fast_gf", 20.0)]),
                snap(2, &[("stencil_fast_gf", 10.0)]),
            ],
        };
        let outcome = h.check(
            &[("stencil_fast_gf", 9.0), ("exchange_values_per_sec", 1e8)],
            0.75,
        );
        // Gate compares against snapshot 2 (10.0), not snapshot 1 (20.0).
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(outcome.gates.len(), 1);
        assert!((outcome.gates[0].ratio - 0.9).abs() < 1e-12);
        assert_eq!(outcome.skipped, vec!["exchange_values_per_sec"]);

        let fail = h.check(&[("stencil_fast_gf", 5.0)], 0.75);
        assert!(!fail.passed());
        assert_eq!(fail.regressions(), 1);
    }

    #[test]
    fn markdown_classifies_regressions_and_improvements() {
        let h = History {
            snapshots: vec![
                snap(
                    1,
                    &[("stencil_fast_gf", 10.0), ("figures_report_seconds", 1.0)],
                ),
                snap(
                    2,
                    &[("stencil_fast_gf", 5.0), ("figures_report_seconds", 0.5)],
                ),
            ],
        };
        let md = h.render_markdown();
        assert!(md.contains("regression"), "{md}");
        assert!(md.contains("improvement"), "{md}");
        // Sparkline endpoints: low bar then high bar (or inverse).
        assert!(md.contains('█') && md.contains('▁'), "{md}");
    }

    #[test]
    fn sparkline_handles_gaps_and_flat_series() {
        assert_eq!(sparkline(&[Some(1.0), None, Some(1.0)]), "▄·▄");
        assert_eq!(sparkline(&[Some(0.0), Some(7.0)]), "▁█");
    }
}
