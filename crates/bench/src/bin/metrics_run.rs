//! Run every implementation with the metrics registry and span tracing
//! enabled, export each registry as Prometheus text and JSON, validate
//! the Prometheus exposition in-process, and print the critical-path
//! attribution table per implementation.
//!
//! This is CI's metrics smoke job: it proves the registries populate
//! under every schedule (at least one non-empty histogram each), that
//! the exporters emit well-formed output, and that the critical-path
//! analyzer runs over every implementation's trace.
//!
//! Usage: `cargo run --release -p bench --bin metrics_run [OUT_DIR]`

use advect_core::stepper::AdvectionProblem;
use bench::validate_prometheus;
use obs::Axis;
use overlap::{Impl, RunConfig};
use simgpu::GpuSpec;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let spec = GpuSpec::tesla_c2050();
    let base = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1)
        .with_trace(true)
        .with_metrics(true);

    let mut failures = 0;
    for im in Impl::ALL {
        let cfg = if im.uses_mpi() { base.tasks(4) } else { base };
        let (_, report) = im.run_with_report(&cfg, Some(&spec));

        let prom = report.metrics.render_prometheus();
        let prom_path = format!("{out_dir}/metrics_{}.prom", im.slug());
        std::fs::write(&prom_path, &prom).expect("write prometheus");
        let json_path = format!("{out_dir}/metrics_{}.json", im.slug());
        std::fs::write(&json_path, report.metrics.render_json()).expect("write json");

        println!("## {} — {} ({prom_path})", im.section(), im.name());
        match validate_prometheus(&prom) {
            Ok(check) => {
                println!(
                    "valid: {} samples ({} counters, {} gauges, {} histograms, \
                     {} non-empty)",
                    check.samples,
                    check.counters,
                    check.gauges,
                    check.histograms,
                    check.non_empty_histograms
                );
                if check.non_empty_histograms == 0 {
                    println!("EMPTY: no histogram observed anything");
                    failures += 1;
                }
            }
            Err(e) => {
                println!("INVALID: {e}");
                failures += 1;
            }
        }
        let step = report.metrics.histogram_snapshot("advect_step_ns");
        if step.count > 0 {
            println!(
                "steps: {} (p50 {} ns, p95 {} ns, p99 {} ns)",
                step.count,
                step.quantile(0.5),
                step.quantile(0.95),
                step.quantile(0.99)
            );
        }
        println!(
            "{}",
            report.critical_breakdown(Axis::Wall).render_markdown()
        );
        if im.uses_gpu() {
            println!(
                "{}",
                report.critical_breakdown(Axis::Virtual).render_markdown()
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} metrics export(s) failed validation");
        std::process::exit(1);
    }
}
