//! CI smoke gate for the pooled cache-blocked sweep's thread scaling.
//!
//! Measures the pooled tiled stencil (`apply_stencil_region_pooled`) at
//! the requested worker counts on the 128³ interior, checks each result
//! is **bit-identical** to the scalar per-point oracle, and gates the
//! parallel efficiency at the widest width against the latest committed
//! `BENCH_<n>.json` that carries a scaling table: the fresh efficiency
//! must be at least `floor` (default 0.6) times the committed one. The
//! relative gate makes the check portable across runners with different
//! core counts — a 2-core runner and the machine that committed the
//! snapshot both report low efficiency at 4 workers, and what CI catches
//! is a *drop* against that machine's own baseline (a serialization bug,
//! a lock on the steal path), not an underpowered runner.
//!
//! A noisy shared runner can produce one bad efficiency sample with
//! nothing wrong: an efficiency miss is re-measured up to three times,
//! and only the **best observed curve** is gated (and reported on
//! failure). A bitwise mismatch is never retried — a wrong answer is a
//! bug, not noise — and fails immediately.
//!
//! Usage: `cargo run --release -p bench --bin scaling_smoke [--widths 2,4] [--floor 0.6]`
//!
//! Exit code 1 on any bitwise mismatch or efficiency regression.

use advect_core::coeffs::{Stencil27, Velocity};
use advect_core::field::Field3;
use advect_core::flops::FLOPS_PER_POINT;
use advect_core::stencil::{apply_stencil_region_pooled, apply_stencil_region_scalar};
use advect_core::sweep::SweepPool;
use advect_core::tile::TileSpec;
use std::hint::black_box;
use std::time::Instant;

const N: usize = 128;

fn repo_root() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
}

fn time_median(warmup: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    times[times.len() / 2]
}

fn main() {
    let mut widths: Vec<usize> = vec![2, 4];
    let mut floor = 0.6f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--widths" => {
                let spec = args.next().expect("--widths needs a list");
                widths = spec.split(',').map(|w| w.parse().expect("width")).collect();
            }
            "--floor" => {
                floor = args
                    .next()
                    .expect("--floor needs a value")
                    .parse()
                    .expect("floor");
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    widths.retain(|&w| w > 1);
    widths.sort_unstable();
    widths.dedup();
    assert!(!widths.is_empty(), "need at least one width > 1");

    let s = Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.9);
    let mut src = Field3::new(N, N, N, 1);
    src.fill_interior(|x, y, z| ((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1);
    src.copy_periodic_halo();
    let region = src.interior_range();
    let tile = TileSpec::host(src.extents().0);
    let flops = (N as f64).powi(3) * FLOPS_PER_POINT as f64;

    // The scalar oracle once: every pooled result must match it bitwise.
    let mut oracle = Field3::new(N, N, N, 1);
    apply_stencil_region_scalar(&src, &mut oracle, &s, region);

    // A wrong answer fails on the spot — correctness is never "noise".
    let measure = |w: usize| -> f64 {
        let pool = SweepPool::new(w);
        let mut dst = Field3::new(N, N, N, 1);
        let t = time_median(1, 5, || {
            apply_stencil_region_pooled(black_box(&src), &mut dst, &s, region, tile, &pool);
        });
        if dst.data() != oracle.data() {
            eprintln!("scaling_smoke: {w}-worker pooled sweep diverged from the scalar oracle");
            eprintln!("scaling_smoke FAILED (bitwise mismatch is not retried)");
            std::process::exit(1);
        }
        flops / t / 1e9
    };
    // One full curve: (threads, GF, efficiency) at 1 and each width.
    let run_curve = || -> Vec<(usize, f64, f64)> {
        let gf1 = measure(1);
        let mut curve = vec![(1, gf1, 1.0)];
        for &w in &widths {
            let gf = measure(w);
            curve.push((w, gf, gf / (w as f64 * gf1)));
        }
        curve
    };

    // Gate the widest width against the committed curve, re-measuring an
    // efficiency miss up to MAX_ATTEMPTS times before declaring it real.
    const MAX_ATTEMPTS: usize = 3;
    let w_top = *widths.last().expect("widths nonempty");
    let history = bench::history::History::load(repo_root()).unwrap_or_default();
    let committed = history
        .snapshots
        .iter()
        .rev()
        .find_map(|s| s.get(&format!("scaling_pool_t{w_top}_eff")));
    let mut best: Vec<(usize, f64, f64)> = Vec::new();
    for attempt in 1..=MAX_ATTEMPTS {
        let curve = run_curve();
        for &(w, gf, eff) in &curve {
            println!("attempt {attempt} threads {w}: {gf:.3} GF (efficiency {eff:.3})");
        }
        let eff_top = curve.last().expect("nonempty").2;
        if best.is_empty() || eff_top > best.last().expect("nonempty").2 {
            best = curve;
        }
        let base = match committed {
            Some(base) if base > 0.0 => base,
            _ => {
                println!(
                    "efficiency@{w_top}: no committed scaling_pool_t{w_top}_eff, gate skipped"
                );
                println!("scaling_smoke passed");
                return;
            }
        };
        let rel = eff_top / base;
        if rel >= floor {
            println!(
                "efficiency@{w_top}: fresh {eff_top:.3} vs committed {base:.3} \
                 (x{rel:.2}, floor x{floor:.2}) ok"
            );
            println!("scaling_smoke passed");
            return;
        }
        println!(
            "efficiency@{w_top}: fresh {eff_top:.3} vs committed {base:.3} \
             (x{rel:.2}, floor x{floor:.2}) below floor{}",
            if attempt < MAX_ATTEMPTS {
                ", re-measuring"
            } else {
                ""
            }
        );
    }
    eprintln!("best observed curve after {MAX_ATTEMPTS} attempts:");
    for &(w, gf, eff) in &best {
        eprintln!("  threads {w}: {gf:.3} GF (efficiency {eff:.3})");
    }
    eprintln!("scaling_smoke FAILED: efficiency regression persisted across retries");
    std::process::exit(1);
}
