//! Writes a machine-readable benchmark snapshot (`BENCH_1.json` at the
//! repository root) so perf changes can be compared across commits:
//!
//! * stencil throughput in GF/s (53 flops/point, Table I count) for the
//!   row-vectorized fast path and its scalar per-point oracle on the
//!   128³ interior, plus the resulting speedup ratio;
//! * wall-clock seconds for the `figures --report` claim evaluation.
//!
//! Usage: `cargo run --release -p bench --bin bench_snapshot [OUT.json]`

use advect_core::coeffs::{Stencil27, Velocity};
use advect_core::field::Field3;
use advect_core::flops::FLOPS_PER_POINT;
use advect_core::stencil::{apply_stencil_region, apply_stencil_region_scalar};
use std::hint::black_box;
use std::time::Instant;

const N: usize = 128;

/// Median seconds per call over `samples` timed calls (after one warmup).
fn time_median(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    times[times.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("repo root")
            .join("BENCH_1.json")
            .to_string_lossy()
            .into_owned()
    });

    let s = Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.9);
    let mut src = Field3::new(N, N, N, 1);
    src.fill_interior(|x, y, z| ((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1);
    src.copy_periodic_halo();
    let mut dst = Field3::new(N, N, N, 1);
    let region = src.interior_range();
    let flops = (N as f64).powi(3) * FLOPS_PER_POINT as f64;

    let t_fast = time_median(9, || {
        apply_stencil_region(black_box(&src), &mut dst, &s, region)
    });
    let t_scalar = time_median(9, || {
        apply_stencil_region_scalar(black_box(&src), &mut dst, &s, region)
    });
    let gf_fast = flops / t_fast / 1e9;
    let gf_scalar = flops / t_scalar / 1e9;

    let t0 = Instant::now();
    let claims = figures::report::evaluate_claims();
    let report = figures::report::render_markdown(&claims);
    black_box(report.len());
    let t_report = t0.elapsed().as_secs_f64();

    let json = format!(
        "{{\n  \"grid\": {N},\n  \"flops_per_point\": {FLOPS_PER_POINT},\n  \
         \"stencil_fast_gf\": {gf_fast:.3},\n  \"stencil_scalar_gf\": {gf_scalar:.3},\n  \
         \"fast_over_scalar\": {:.3},\n  \"figures_report_seconds\": {t_report:.3},\n  \
         \"sweep_threads\": {}\n}}\n",
        gf_fast / gf_scalar,
        advect_core::sweep::SweepPool::global().threads(),
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
