//! Writes a machine-readable benchmark snapshot (`BENCH_<n>.json` at the
//! repository root, `<n>` one past the latest committed snapshot) so perf
//! changes can be compared across commits:
//!
//! * stencil throughput in GF/s (53 flops/point, Table I count) for the
//!   row-vectorized fast path and its scalar per-point oracle on the
//!   128³ interior, plus the resulting speedup ratio;
//! * steady-state halo-exchange throughput over the pooled fast path and
//!   the fresh-allocation baseline on a 64³ grid across 4 ranks —
//!   exchanged values/s, messages/s, and the pooled-over-fresh ratio;
//! * the tracing-off overhead ratio: the same pooled exchange loop runs
//!   through the disabled tracer hooks; dividing the committed
//!   `BENCH_2.json` (pre-tracing) throughput by today's shows what the
//!   no-op sink costs (≈1.0 means free, as designed);
//! * the fault-off overhead ratio: the fault-injection plumbing added to
//!   the mailbox delivery path must be free when no plan is armed;
//!   dividing the committed pre-fault `BENCH_3.json` exchange throughput
//!   by today's shows what the disarmed path costs (≈1.0 means free);
//! * the metrics-off overhead ratio: the exchange loop runs through the
//!   disabled registry hooks; dividing today's throughput by the
//!   committed pre-metrics `BENCH_4.json` value shows what the off path
//!   costs (note the orientation: ≥ 0.95 means at most 5% slower than
//!   before the metrics layer existed);
//! * wall-clock seconds for the `figures --report` claim evaluation.
//!
//! Usage: `cargo run --release -p bench --bin bench_snapshot [--check] [OUT.json]`
//!
//! With `--check`, the fresh numbers are additionally gated through
//! [`bench::history::History::check`] against the *latest* committed
//! `BENCH_<n>.json` discovered by scan: any throughput metric falling
//! below 75% of its committed value (25% tolerance for shared-runner
//! noise) fails the run with exit code 1. This is CI's perf-regression
//! gate.

use advect_core::coeffs::{Stencil27, Velocity};
use advect_core::field::Field3;
use advect_core::flops::FLOPS_PER_POINT;
use advect_core::stencil::{apply_stencil_region, apply_stencil_region_scalar};
use decomp::{Decomposition, ExchangePlan};
use overlap::halo::{exchange_halos, exchange_halos_fresh};
use overlap::HaloBuffers;
use simmpi::World;
use std::hint::black_box;
use std::time::Instant;

const N: usize = 128;
const EXCHANGE_N: usize = 64;
const EXCHANGE_TASKS: usize = 4;
const EXCHANGE_STEPS: usize = 16;

/// Median seconds per call over `samples` timed calls (after one warmup).
fn time_median(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    times[times.len() / 2]
}

/// Median seconds for `EXCHANGE_STEPS` steady-state halo exchanges on an
/// `EXCHANGE_N`³ grid over `EXCHANGE_TASKS` ranks. Each rank warms up
/// with one untimed exchange, barriers, then times the loop; the world's
/// median-across-ranks per launch feeds the median across launches.
fn time_exchange(samples: usize, pooled: bool) -> f64 {
    let d = Decomposition::new(EXCHANGE_TASKS, (EXCHANGE_N, EXCHANGE_N, EXCHANGE_N));
    let run_once = || {
        let dref = &d;
        let mut per_rank = World::run(EXCHANGE_TASKS, move |comm| {
            let sub = dref.subdomains[comm.rank()];
            let mut f = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
            f.fill_interior(|x, y, z| (x + y + z) as f64);
            let plan = ExchangePlan::new(sub.extent, 1);
            let bufs = HaloBuffers::new(&plan, comm);
            // Warm up: populate staging slots / mailbox paths untimed.
            if pooled {
                exchange_halos(&mut f, &plan, dref, comm.rank(), comm, &bufs);
            } else {
                exchange_halos_fresh(&mut f, &plan, dref, comm.rank(), comm);
            }
            comm.barrier();
            let t0 = Instant::now();
            for _ in 0..EXCHANGE_STEPS {
                if pooled {
                    exchange_halos(&mut f, &plan, dref, comm.rank(), comm, &bufs);
                } else {
                    exchange_halos_fresh(&mut f, &plan, dref, comm.rank(), comm);
                }
            }
            let dt = t0.elapsed().as_secs_f64();
            black_box(f.at(0, 0, 0));
            dt
        });
        per_rank.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
        per_rank[per_rank.len() / 2]
    };
    let mut times: Vec<f64> = (0..samples).map(|_| run_once()).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    times[times.len() / 2]
}

fn repo_root() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
}

/// A metric from a committed snapshot at the repository root, or 0.0
/// when the file or key is absent.
fn committed_f64(file: &str, key: &str) -> f64 {
    std::fs::read_to_string(repo_root().join(file))
        .ok()
        .and_then(|text| figures::json::Value::parse(&text).ok())
        .and_then(|v| v[key].as_f64())
        .unwrap_or(0.0)
}

/// Fraction of the committed value a fresh number may drop to before
/// `--check` fails: 25% headroom for shared-runner noise.
const CHECK_TOLERANCE: f64 = 0.75;

fn main() {
    let mut check = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => out_path = Some(other.to_string()),
        }
    }
    // The history must load before the new snapshot is written, or the
    // gate would compare today's numbers against themselves.
    let history = bench::history::History::load(repo_root()).unwrap_or_default();
    let out_path = out_path.unwrap_or_else(|| {
        repo_root()
            .join(format!("BENCH_{}.json", history.next_index()))
            .to_string_lossy()
            .into_owned()
    });

    let s = Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.9);
    let mut src = Field3::new(N, N, N, 1);
    src.fill_interior(|x, y, z| ((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1);
    src.copy_periodic_halo();
    let mut dst = Field3::new(N, N, N, 1);
    let region = src.interior_range();
    let flops = (N as f64).powi(3) * FLOPS_PER_POINT as f64;

    let t_fast = time_median(9, || {
        apply_stencil_region(black_box(&src), &mut dst, &s, region)
    });
    let t_scalar = time_median(9, || {
        apply_stencil_region_scalar(black_box(&src), &mut dst, &s, region)
    });
    let gf_fast = flops / t_fast / 1e9;
    let gf_scalar = flops / t_scalar / 1e9;

    // Comm layer: per-rank messages and values per steady-state exchange.
    let msgs = (6 * EXCHANGE_STEPS) as f64;
    let values = (6 * EXCHANGE_N * EXCHANGE_N * EXCHANGE_STEPS) as f64;
    let t_pooled = time_exchange(7, true);
    let t_fresh = time_exchange(7, false);
    let ex_values_per_s = values / t_pooled;
    let ex_msgs_per_s = msgs / t_pooled;
    let pooled_over_fresh = t_fresh / t_pooled;
    // Tracing-off overhead: this binary never enables tracing, so the
    // exchange above already paid the disabled hooks' cost. Against the
    // committed pre-tracing BENCH_2.json, >1.0 means the no-op sink
    // slowed the comm layer down; ≈1.0 (within noise) means zero-cost.
    let bench2 = committed_f64("BENCH_2.json", "exchange_values_per_sec");
    let tracing_off_overhead = if bench2 > 0.0 {
        bench2 / ex_values_per_s
    } else {
        0.0
    };
    // Fault-off overhead: the exchange above ran with no fault plan, so
    // it already paid the disarmed fault path (one `Option` check per
    // delivery). Against the committed pre-fault BENCH_3.json, ≈1.0
    // (within noise) means the fault subsystem is free when off.
    let bench3 = committed_f64("BENCH_3.json", "exchange_values_per_sec");
    let fault_off_overhead = if bench3 > 0.0 {
        bench3 / ex_values_per_s
    } else {
        0.0
    };
    // Metrics-off overhead: the exchange ran with no registry installed,
    // so it already paid the disabled metrics hooks (one `Option` check
    // per send/recv). Against the committed pre-metrics BENCH_4.json —
    // fresh over committed, so ≥ 0.95 means the off path costs at most
    // 5% (the direction differs from the two ratios above, which divide
    // committed by fresh).
    let bench4 = committed_f64("BENCH_4.json", "exchange_values_per_sec");
    let metrics_off_overhead = if bench4 > 0.0 {
        ex_values_per_s / bench4
    } else {
        0.0
    };

    let t0 = Instant::now();
    let claims = figures::report::evaluate_claims();
    let report = figures::report::render_markdown(&claims);
    black_box(report.len());
    let t_report = t0.elapsed().as_secs_f64();

    let json = format!(
        "{{\n  \"grid\": {N},\n  \"flops_per_point\": {FLOPS_PER_POINT},\n  \
         \"stencil_fast_gf\": {gf_fast:.3},\n  \"stencil_scalar_gf\": {gf_scalar:.3},\n  \
         \"fast_over_scalar\": {:.3},\n  \
         \"exchange_grid\": {EXCHANGE_N},\n  \"exchange_tasks\": {EXCHANGE_TASKS},\n  \
         \"exchange_values_per_sec\": {ex_values_per_s:.0},\n  \
         \"exchange_messages_per_sec\": {ex_msgs_per_s:.0},\n  \
         \"exchange_pooled_over_fresh\": {pooled_over_fresh:.3},\n  \
         \"tracing_off_overhead_ratio\": {tracing_off_overhead:.3},\n  \
         \"fault_off_overhead_ratio\": {fault_off_overhead:.3},\n  \
         \"metrics_off_overhead_ratio\": {metrics_off_overhead:.3},\n  \
         \"figures_report_seconds\": {t_report:.3},\n  \
         \"sweep_threads\": {}\n}}\n",
        gf_fast / gf_scalar,
        advect_core::sweep::SweepPool::global().threads(),
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out_path}");

    if check {
        let gates = [
            ("stencil_fast_gf", gf_fast),
            ("stencil_scalar_gf", gf_scalar),
            ("exchange_values_per_sec", ex_values_per_s),
            ("exchange_messages_per_sec", ex_msgs_per_s),
        ];
        let outcome = history.check(&gates, CHECK_TOLERANCE);
        match &outcome.baseline {
            Some(p) => eprintln!("check baseline: {}", p.display()),
            None => eprintln!("check baseline: none (no committed snapshots)"),
        }
        for key in &outcome.skipped {
            eprintln!("check {key}: no committed baseline, skipped");
        }
        for g in &outcome.gates {
            eprintln!(
                "check {}: fresh {:.3} vs committed {:.3} \
                 (x{:.2}, floor x{CHECK_TOLERANCE:.2}) {}",
                g.key,
                g.fresh,
                g.committed,
                g.ratio,
                if g.ok { "ok" } else { "REGRESSION" }
            );
        }
        if !outcome.passed() {
            eprintln!(
                "bench check FAILED: {} metric(s) regressed past the 25% tolerance",
                outcome.regressions()
            );
            std::process::exit(1);
        }
        eprintln!("bench check passed");
    }
}
