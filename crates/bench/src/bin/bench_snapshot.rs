//! Writes a machine-readable benchmark snapshot (`BENCH_<n>.json` at the
//! repository root, `<n>` one past the latest committed snapshot) so perf
//! changes can be compared across commits:
//!
//! * stencil throughput in GF/s (53 flops/point, Table I count) for the
//!   SIMD fast path and its scalar per-point oracle on the 128³
//!   interior, plus the resulting speedup ratio — single-threaded, and
//!   recorded as such via `stencil_threads`;
//! * a per-thread scaling table: the pooled cache-blocked sweep
//!   (`apply_stencil_region_pooled`) and the full IV-A implementation
//!   (`ThreadedStepper`) at 1/2/4/full workers, each with its parallel
//!   efficiency `gf / (threads · gf₁)` — keys embed the width
//!   (`scaling_pool_t4_gf`) so history never compares different thread
//!   counts as a trend;
//! * a temporal-blocking table: full-implementation GF/s at
//!   `k ∈ {1, 2, 4, 8}` fused steps per traversal
//!   ([`advect_core::timetile`]) on the smallest grid whose two state
//!   fields overflow the detected last-level cache, at one worker and
//!   the full machine — `k = 1` times the classic streaming stepper, so
//!   `timetile_k4_over_k1_t<w>` is the measured payoff of fusion; the
//!   host NUMA shape (`numa_nodes`, `numa_cores_per_node`) and LLC size
//!   are recorded alongside so the numbers stay interpretable;
//! * steady-state halo-exchange throughput over the pooled fast path and
//!   the fresh-allocation baseline on a 64³ grid across 4 ranks —
//!   exchanged values/s, messages/s, and the pooled-over-fresh ratio;
//! * four instrumentation off-overhead ratios, all oriented the same
//!   way: **today's exchange throughput divided by the committed
//!   pre-layer baseline** (`BENCH_2.json` predates tracing,
//!   `BENCH_3.json` predates fault injection, `BENCH_4.json` predates
//!   metrics, `BENCH_7.json` predates causal message stamping). ≥ 1.0
//!   means the disabled layer is free (or the comm path got faster
//!   since); the `--check` gate warns on any ratio below 0.90
//!   (advisory — the fresh and committed sides of a cross-build ratio
//!   are measured in different host scheduler epochs, so the
//!   zero-allocation tests, not this ratio, enforce the off-path
//!   contract). The causal
//!   ratio is additionally drift-corrected by the committed-vs-fresh
//!   single-threaded stencil throughput (a causal-free probe of
//!   same-day host speed), because its pre-layer baseline is the
//!   immediately preceding snapshot and has no accumulated comm-layer
//!   improvements to absorb host-speed drift between snapshot days;
//!   Earlier snapshots oriented tracing/fault the other way
//!   (committed / fresh), which mis-read comm-layer *improvements* as
//!   overhead — that is why `BENCH_5.json` shows 0.697;
//! * causal-layer health on test-scale grids: `blame_max_rank_share`,
//!   the largest rank's share of total wait-blame across traced clean
//!   runs of the MPI implementations (drift toward 1.0 means one rank
//!   dominates every wait), and `model_rank_agreement`, the
//!   model-vs-measured overlap ranking agreement over all nine
//!   implementations (1.0 means no confident inversion);
//! * run-server saturation: closed-loop requests/s and p99 latency at
//!   1/2/4 concurrent tenants over a fixed in-process worker pool
//!   (`serve_rps_t<n>`, `serve_p99_ms_t<n>`, advisory), plus
//!   `serve_cache_hit_speedup` — cold execution latency over cached
//!   response latency measured in the same run, the one enforced
//!   server gate;
//! * `recorder_off_overhead_ratio`: a second two-tenant sweep with every
//!   service-observability ring disabled (flight recorder, trace ring,
//!   event log), divided by the committed pre-recorder baseline
//!   (`BENCH_9.json` predates the flight recorder) — same orientation
//!   and same advisory status as the other `*_off_overhead_ratio` keys;
//!   the `recorder_alloc` zero-allocation test is the enforced
//!   contract;
//! * wall-clock seconds for the `figures --report` claim evaluation.
//!
//! Every timed section warms up untimed and reports a median-of-N, so a
//! single scheduler hiccup on a shared runner cannot move a metric.
//!
//! Usage: `cargo run --release -p bench --bin bench_snapshot [--check] [OUT.json]`
//!
//! With `--check`, the fresh numbers are additionally gated through
//! [`bench::history::History::check`] against the *latest* committed
//! `BENCH_<n>.json` discovered by scan: any throughput metric falling
//! below 75% of its committed value (25% tolerance for shared-runner
//! noise) fails the run with exit code 1. `*_off_overhead_ratio` keys
//! (vs the absolute 0.90 floor) and raw `*_per_sec` exchange keys are
//! advisory — below-floor prints a warning, because both are at the
//! mercy of hypervisor CPU-steal epochs that swing the exchange bench
//! 2.5× with the binary unchanged; the enforced signals are the
//! zero-allocation tests and the same-epoch `exchange_pooled_over_fresh`
//! ratio. This is CI's perf-regression gate.

use advect_core::coeffs::{Stencil27, Velocity};
use advect_core::field::Field3;
use advect_core::flops::FLOPS_PER_POINT;
use advect_core::stencil::{
    apply_stencil_region, apply_stencil_region_pooled, apply_stencil_region_scalar,
};
use advect_core::stepper::{AdvectionProblem, ThreadedStepper};
use advect_core::sweep::SweepPool;
use advect_core::tile::TileSpec;
use decomp::{Decomposition, ExchangePlan};
use overlap::halo::{exchange_halos, exchange_halos_fresh};
use overlap::{HaloBuffers, Impl, RunConfig, RunReport};
use simgpu::GpuSpec;
use simmpi::World;
use std::hint::black_box;
use std::time::Instant;

const N: usize = 128;
const IMPL_N: usize = 64;
const EXCHANGE_N: usize = 64;
const EXCHANGE_TASKS: usize = 4;
const EXCHANGE_STEPS: usize = 16;

/// Median seconds per call over `samples` timed calls, after `warmup`
/// untimed calls that fault pages in and settle the frequency governor.
fn time_median(warmup: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    times[times.len() / 2]
}

/// Median seconds for `EXCHANGE_STEPS` steady-state halo exchanges on an
/// `EXCHANGE_N`³ grid over `EXCHANGE_TASKS` ranks. Each rank warms up
/// with one untimed exchange, barriers, then times the loop; the world's
/// median-across-ranks per launch feeds the median across launches.
fn time_exchange(samples: usize, pooled: bool) -> f64 {
    let d = Decomposition::new(EXCHANGE_TASKS, (EXCHANGE_N, EXCHANGE_N, EXCHANGE_N));
    let run_once = || {
        let dref = &d;
        let mut per_rank = World::run(EXCHANGE_TASKS, move |comm| {
            let sub = dref.subdomains[comm.rank()];
            let mut f = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
            f.fill_interior(|x, y, z| (x + y + z) as f64);
            let plan = ExchangePlan::new(sub.extent, 1);
            let bufs = HaloBuffers::new(&plan, comm);
            // Warm up: populate staging slots / mailbox paths untimed.
            if pooled {
                exchange_halos(&mut f, &plan, dref, comm.rank(), comm, &bufs);
            } else {
                exchange_halos_fresh(&mut f, &plan, dref, comm.rank(), comm);
            }
            comm.barrier();
            let t0 = Instant::now();
            for _ in 0..EXCHANGE_STEPS {
                if pooled {
                    exchange_halos(&mut f, &plan, dref, comm.rank(), comm, &bufs);
                } else {
                    exchange_halos_fresh(&mut f, &plan, dref, comm.rank(), comm);
                }
            }
            let dt = t0.elapsed().as_secs_f64();
            black_box(f.at(0, 0, 0));
            dt
        });
        per_rank.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
        per_rank[per_rank.len() / 2]
    };
    let mut times: Vec<f64> = (0..samples).map(|_| run_once()).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    times[times.len() / 2]
}

fn repo_root() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
}

/// A metric from a committed snapshot at the repository root, or 0.0
/// when the file or key is absent.
fn committed_f64(file: &str, key: &str) -> f64 {
    std::fs::read_to_string(repo_root().join(file))
        .ok()
        .and_then(|text| figures::json::Value::parse(&text).ok())
        .and_then(|v| v[key].as_f64())
        .unwrap_or(0.0)
}

/// The team widths the scaling table measures: 1, 2, 4, and the full
/// machine, deduplicated (a 2-core host measures 1/2/4).
pub fn scaling_widths() -> Vec<usize> {
    let full = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut widths = vec![1, 2, 4, full];
    widths.sort_unstable();
    widths.dedup();
    widths
}

/// Smallest benchmark grid whose two state fields overflow `llc_bytes`
/// (2 fields × 8 bytes × n³), so the `k = 1` baseline streams from
/// memory and temporal fusion has traffic to save. Capped at 320³ to
/// bound snapshot wall-clock on huge-cache hosts.
fn timetile_grid(llc_bytes: usize) -> usize {
    const CANDIDATES: [usize; 8] = [96, 128, 160, 192, 224, 256, 288, 320];
    CANDIDATES
        .into_iter()
        .find(|&n| 16 * n * n * n > llc_bytes)
        .unwrap_or(320)
}

/// Fraction of the committed value a fresh number may drop to before
/// `--check` fails: 25% headroom for shared-runner noise.
const CHECK_TOLERANCE: f64 = 0.75;

/// Worker pool width for the run-server saturation sweep.
const SERVE_WORKERS: usize = 2;
/// Closed-loop requests each tenant issues during the sweep.
const SERVE_REQUESTS: usize = 24;
/// Tenant counts the saturation curve measures.
const SERVE_TENANTS: [usize; 3] = [1, 2, 4];

/// One tenant's request for the server sweep: half the sequence draws
/// from three shared hot keys (cache/dedup traffic), half is unique via
/// the fault seed (cold executions), mirroring `load_gen`'s mix.
fn serve_request(tenant: usize, seq: usize) -> serve::protocol::Request {
    let params = if seq.is_multiple_of(2) {
        let shapes = [(10u32, 2u32, 2u32), (10, 2, 4), (12, 1, 2)];
        let (grid, steps, tasks) = shapes[seq / 2 % shapes.len()];
        overlap::RunParams {
            impl_slug: "bulk_sync".into(),
            grid,
            steps,
            tasks,
            threads: 1,
            ..overlap::RunParams::default()
        }
    } else {
        overlap::RunParams {
            impl_slug: "bulk_sync".into(),
            grid: 8,
            steps: 1,
            tasks: 2,
            threads: 1,
            fault_seed: Some(1 + (tenant * 1000 + seq) as u64),
            ..overlap::RunParams::default()
        }
    };
    serve::protocol::Request {
        tenant: format!("tenant-{tenant}"),
        params,
        timeout_ms: None,
    }
}

/// Closed-loop sweep at `tenants` concurrent tenants against a fresh
/// in-process server: returns `(requests_per_second, p99_ms)`.
/// `recorder_off` disables every service-observability ring (flight
/// recorder, trace ring, event log) so the sweep exercises the
/// zero-cost-off path the `recorder_off_overhead_ratio` key reports on.
fn serve_sweep(tenants: usize, recorder_off: bool) -> (f64, f64) {
    let mut cfg = serve::server::ServerConfig {
        workers: SERVE_WORKERS,
        ..serve::server::ServerConfig::default()
    };
    if recorder_off {
        cfg.recorder_capacity = 0;
        cfg.trace_ring_capacity = 0;
        cfg.log_capacity = 0;
    }
    let server = serve::server::Server::start(cfg);
    let t0 = Instant::now();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(tenants * SERVE_REQUESTS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                let server = &server;
                scope.spawn(move || {
                    (0..SERVE_REQUESTS)
                        .map(|i| {
                            let req = serve_request(t, i);
                            let r0 = Instant::now();
                            server.run(&req).expect("sweep request succeeds");
                            r0.elapsed().as_nanos() as u64
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        for h in handles {
            latencies_ns.extend(h.join().expect("tenant thread"));
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    server.shutdown();
    latencies_ns.sort_unstable();
    let p99 = latencies_ns[(latencies_ns.len() - 1) * 99 / 100] as f64 / 1e6;
    (latencies_ns.len() as f64 / wall, p99)
}

/// Cache-hit speedup, both sides measured in the same run and epoch:
/// the median latency of cold executions over the median latency of
/// cached responses for an identical key.
fn serve_cache_speedup() -> f64 {
    let server = serve::server::Server::start(serve::server::ServerConfig {
        workers: SERVE_WORKERS,
        ..serve::server::ServerConfig::default()
    });
    let request = |seed: u64| serve::protocol::Request {
        tenant: "bench".into(),
        params: overlap::RunParams {
            impl_slug: "bulk_sync".into(),
            grid: 10,
            steps: 2,
            tasks: 2,
            threads: 1,
            fault_seed: Some(seed),
            ..overlap::RunParams::default()
        },
        timeout_ms: None,
    };
    let median = |mut v: Vec<u64>| -> f64 {
        v.sort_unstable();
        v[v.len() / 2] as f64
    };
    let cold: Vec<u64> = (1..=9)
        .map(|seed| {
            let t0 = Instant::now();
            let resp = server.run(&request(seed)).expect("cold run succeeds");
            assert!(!resp.cached);
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    // Warm one more key, then time repeated hits on it.
    server.run(&request(100)).expect("warm run succeeds");
    let cached: Vec<u64> = (0..9)
        .map(|_| {
            let t0 = Instant::now();
            let resp = server.run(&request(100)).expect("cached run succeeds");
            assert!(resp.cached);
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    server.shutdown();
    median(cold) / median(cached).max(1.0)
}

fn main() {
    let mut check = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => out_path = Some(other.to_string()),
        }
    }
    // The history must load before the new snapshot is written, or the
    // gate would compare today's numbers against themselves.
    let history = bench::history::History::load(repo_root()).unwrap_or_default();
    let out_path = out_path.unwrap_or_else(|| {
        repo_root()
            .join(format!("BENCH_{}.json", history.next_index()))
            .to_string_lossy()
            .into_owned()
    });

    let s = Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.9);
    let mut src = Field3::new(N, N, N, 1);
    src.fill_interior(|x, y, z| ((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1);
    src.copy_periodic_halo();
    let mut dst = Field3::new(N, N, N, 1);
    let region = src.interior_range();
    let flops = (N as f64).powi(3) * FLOPS_PER_POINT as f64;

    let t_fast = time_median(3, 21, || {
        apply_stencil_region(black_box(&src), &mut dst, &s, region)
    });
    let t_scalar = time_median(3, 21, || {
        apply_stencil_region_scalar(black_box(&src), &mut dst, &s, region)
    });
    let gf_fast = flops / t_fast / 1e9;
    let gf_scalar = flops / t_scalar / 1e9;

    // Per-thread scaling: the pooled cache-blocked sweep and the full
    // IV-A step at each team width, with parallel efficiency relative to
    // one worker. Keys embed the width, so a trend in the history always
    // compares like with like.
    let widths = scaling_widths();
    let tile = TileSpec::host(src.extents().0);
    let mut pool_gf: Vec<(usize, f64)> = Vec::new();
    for &w in &widths {
        let pool = SweepPool::new(w);
        let t = time_median(2, 11, || {
            apply_stencil_region_pooled(black_box(&src), &mut dst, &s, region, tile, &pool);
        });
        pool_gf.push((w, flops / t / 1e9));
    }
    let impl_flops = (IMPL_N as f64).powi(3) * FLOPS_PER_POINT as f64;
    let mut impl_gf: Vec<(usize, f64)> = Vec::new();
    for &w in &widths {
        let mut stepper = ThreadedStepper::new(AdvectionProblem::general_case(IMPL_N), w);
        let t = time_median(1, 5, || stepper.step());
        black_box(stepper.state().at(0, 0, 0));
        impl_gf.push((w, impl_flops / t / 1e9));
    }
    let efficiency = |curve: &[(usize, f64)], w: usize, gf: f64| -> f64 {
        let base = curve[0].1;
        if base > 0.0 {
            gf / (w as f64 * base)
        } else {
            0.0
        }
    };

    // Temporal blocking: GF/s of k fused steps per traversal on a grid
    // whose two state fields overflow the detected last-level cache —
    // k = 1 (the classic streaming stepper) pays full memory traffic
    // every step, so fusion has something to save. Measured at one
    // worker and at the full machine.
    let topo = advect_core::numa::host();
    let llc = advect_core::numa::host_llc_bytes();
    let tt_n = timetile_grid(llc);
    let tt_flops = (tt_n as f64).powi(3) * FLOPS_PER_POINT as f64;
    let tt_widths: Vec<usize> = {
        let full = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut v = vec![1, full];
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut tt_gf: Vec<(usize, usize, f64)> = Vec::new();
    for &w in &tt_widths {
        for k in [1usize, 2, 4, 8] {
            let problem = AdvectionProblem::general_case(tt_n);
            let gf = if k == 1 {
                let mut stepper = ThreadedStepper::new(problem, w);
                let t = time_median(1, 3, || stepper.step());
                black_box(stepper.state().at(0, 0, 0));
                tt_flops / t / 1e9
            } else {
                let mut stepper = ThreadedStepper::new(problem, w).with_time_tile(k);
                let t = time_median(1, 3, || stepper.run(k as u64));
                black_box(stepper.state().at(0, 0, 0));
                tt_flops * k as f64 / t / 1e9
            };
            tt_gf.push((k, w, gf));
        }
    }
    let tt_at = |k: usize, w: usize| -> f64 {
        tt_gf
            .iter()
            .find(|&&(kk, ww, _)| kk == k && ww == w)
            .map_or(0.0, |&(_, _, gf)| gf)
    };

    // Comm layer: per-rank messages and values per steady-state exchange.
    let msgs = (6 * EXCHANGE_STEPS) as f64;
    let values = (6 * EXCHANGE_N * EXCHANGE_N * EXCHANGE_STEPS) as f64;
    let t_pooled = time_exchange(11, true);
    let t_fresh = time_exchange(11, false);
    let ex_values_per_s = values / t_pooled;
    let ex_msgs_per_s = msgs / t_pooled;
    let pooled_over_fresh = t_fresh / t_pooled;
    // Instrumentation off-overhead ratios, all oriented fresh over the
    // committed pre-layer baseline: this binary enables none of the
    // layers, so the exchange above already paid every disabled hook.
    // ≥ 1.0 means free (or faster than before the layer existed);
    // anything below the 0.90 check floor *suggests* the off path costs
    // real throughput — suggests, because the two sides of the ratio
    // are measured in different scheduler epochs; the zero-allocation
    // tests are the enforced contract.
    let off_ratio = |pre_layer_file: &str| -> f64 {
        let baseline = committed_f64(pre_layer_file, "exchange_values_per_sec");
        if baseline > 0.0 {
            ex_values_per_s / baseline
        } else {
            0.0
        }
    };
    let tracing_off_overhead = off_ratio("BENCH_2.json");
    let fault_off_overhead = off_ratio("BENCH_3.json");
    let metrics_off_overhead = off_ratio("BENCH_4.json");
    // BENCH_7 predates causal message stamping; the exchange above ran
    // untraced, so it paid whatever the disabled causal hooks cost.
    // Unlike the older baselines above, BENCH_7 is the *immediately
    // preceding* snapshot — no intervening comm-layer improvements
    // absorb day-to-day host-speed drift, and on this host whole-run
    // throughput swings ±20–35% between snapshot days while interleaved
    // A/B runs of the pre-causal and causal builds land within a few
    // percent of each other. The raw ratio would therefore mostly
    // measure how fast the host happens to be today. Correct for that
    // with a causal-free probe of same-day host speed: the
    // single-threaded stencil, which never touches simmpi. Both probe
    // values are committed, so the correction is reproducible.
    let causal_off_overhead = {
        let raw = off_ratio("BENCH_7.json");
        let stencil_baseline = committed_f64("BENCH_7.json", "stencil_fast_gf");
        let drift = if stencil_baseline > 0.0 {
            gf_fast / stencil_baseline
        } else {
            1.0
        };
        if drift > 0.0 {
            raw / drift
        } else {
            raw
        }
    };

    // Causal-layer health on test-scale grids: one traced clean run per
    // implementation feeds wait-blame concentration (the largest rank's
    // share of total blame across the MPI impls — a drift toward 1.0
    // means one rank started dominating every wait) and the
    // model-vs-measured overlap ranking agreement into the history.
    let spec = GpuSpec::tesla_c2050();
    let blame_base = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .with_threads(2)
        .with_block((8, 8))
        .with_trace(true);
    let mut blame_runs: Vec<(Impl, RunConfig, RunReport)> = Vec::new();
    for im in Impl::ALL {
        let cfg = if im.uses_mpi() {
            blame_base.tasks(4)
        } else {
            blame_base
        };
        let (_, report) = im.run_with_report(&cfg, Some(&spec));
        blame_runs.push((im, cfg, report));
    }
    let blame_max_rank_share = blame_runs
        .iter()
        .filter(|(im, _, _)| im.uses_mpi())
        .map(|(_, _, r)| r.blame().max_outgoing_share())
        .fold(0.0, f64::max);
    let model_rank_agreement =
        bench::divergence::divergence_report(&blame_runs).ranking_agreement();

    // Run-server saturation: closed-loop load at 1/2/4 concurrent
    // tenants over a fixed worker pool, plus the cache-hit speedup
    // (cold execution over cached response, measured in the same run —
    // the one enforced server gate; rps and p99 are advisory because
    // the shared runner's scheduler owns most of their variance).
    let serve_curve: Vec<(usize, f64, f64)> = SERVE_TENANTS
        .iter()
        .map(|&t| {
            let (rps, p99) = serve_sweep(t, false);
            (t, rps, p99)
        })
        .collect();
    let cache_hit_speedup = serve_cache_speedup();
    // Recorder off-overhead: a two-tenant sweep with every service-
    // observability ring disabled, over the committed pre-recorder
    // baseline. BENCH_9's serve_rps_t2 was measured before the recorder
    // existed, so anything the disabled hooks cost shows up here —
    // modulo cross-epoch host drift, which is why the key is advisory
    // and the recorder_alloc test is the enforced contract.
    let recorder_off_overhead = {
        let (rps_off, _) = serve_sweep(2, true);
        let baseline = committed_f64("BENCH_9.json", "serve_rps_t2");
        if baseline > 0.0 {
            rps_off / baseline
        } else {
            0.0
        }
    };

    let t0 = Instant::now();
    let claims = figures::report::evaluate_claims();
    let report = figures::report::render_markdown(&claims);
    black_box(report.len());
    let t_report = t0.elapsed().as_secs_f64();

    let mut json = format!(
        "{{\n  \"grid\": {N},\n  \"flops_per_point\": {FLOPS_PER_POINT},\n  \
         \"stencil_threads\": 1,\n  \
         \"stencil_fast_gf\": {gf_fast:.3},\n  \"stencil_scalar_gf\": {gf_scalar:.3},\n  \
         \"fast_over_scalar\": {:.3},\n",
        gf_fast / gf_scalar,
    );
    json.push_str(&format!(
        "  \"scaling_grid\": {N},\n  \"scaling_impl_grid\": {IMPL_N},\n  \
         \"scaling_full_threads\": {},\n",
        widths.last().copied().unwrap_or(1),
    ));
    for &(w, gf) in &pool_gf {
        json.push_str(&format!(
            "  \"scaling_pool_t{w}_gf\": {gf:.3},\n  \
             \"scaling_pool_t{w}_eff\": {:.3},\n",
            efficiency(&pool_gf, w, gf),
        ));
    }
    for &(w, gf) in &impl_gf {
        json.push_str(&format!(
            "  \"scaling_impl_t{w}_gf\": {gf:.3},\n  \
             \"scaling_impl_t{w}_eff\": {:.3},\n",
            efficiency(&impl_gf, w, gf),
        ));
    }
    json.push_str(&format!(
        "  \"numa_nodes\": {},\n  \"numa_cores_per_node\": {},\n  \
         \"timetile_grid\": {tt_n},\n  \"timetile_llc_mib\": {},\n  \
         \"timetile_full_threads\": {},\n",
        topo.node_count(),
        topo.cores_per_node(),
        llc / (1024 * 1024),
        tt_widths.last().copied().unwrap_or(1),
    ));
    for &(k, w, gf) in &tt_gf {
        json.push_str(&format!("  \"timetile_k{k}_t{w}_gf\": {gf:.3},\n"));
    }
    for &w in &tt_widths {
        if tt_at(1, w) > 0.0 {
            json.push_str(&format!(
                "  \"timetile_k4_over_k1_t{w}\": {:.3},\n",
                tt_at(4, w) / tt_at(1, w),
            ));
        }
    }
    json.push_str(&format!("  \"serve_threads\": {SERVE_WORKERS},\n"));
    for &(t, rps, p99) in &serve_curve {
        json.push_str(&format!(
            "  \"serve_rps_t{t}\": {rps:.1},\n  \"serve_p99_ms_t{t}\": {p99:.3},\n"
        ));
    }
    json.push_str(&format!(
        "  \"serve_cache_hit_speedup\": {cache_hit_speedup:.1},\n  \
         \"recorder_off_overhead_ratio\": {recorder_off_overhead:.3},\n"
    ));
    json.push_str(&format!(
        "  \"exchange_grid\": {EXCHANGE_N},\n  \"exchange_tasks\": {EXCHANGE_TASKS},\n  \
         \"exchange_threads\": 1,\n  \
         \"exchange_values_per_sec\": {ex_values_per_s:.0},\n  \
         \"exchange_messages_per_sec\": {ex_msgs_per_s:.0},\n  \
         \"exchange_pooled_over_fresh\": {pooled_over_fresh:.3},\n  \
         \"tracing_off_overhead_ratio\": {tracing_off_overhead:.3},\n  \
         \"fault_off_overhead_ratio\": {fault_off_overhead:.3},\n  \
         \"metrics_off_overhead_ratio\": {metrics_off_overhead:.3},\n  \
         \"causal_off_overhead_ratio\": {causal_off_overhead:.3},\n  \
         \"blame_max_rank_share\": {blame_max_rank_share:.3},\n  \
         \"model_rank_agreement\": {model_rank_agreement:.3},\n  \
         \"figures_report_seconds\": {t_report:.3},\n  \
         \"sweep_threads\": {}\n}}\n",
        SweepPool::global().threads(),
    ));
    std::fs::write(&out_path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out_path}");

    if check {
        let mut gates = vec![
            ("stencil_fast_gf".to_string(), gf_fast),
            ("stencil_scalar_gf".to_string(), gf_scalar),
            ("exchange_values_per_sec".to_string(), ex_values_per_s),
            ("exchange_messages_per_sec".to_string(), ex_msgs_per_s),
            (
                "tracing_off_overhead_ratio".to_string(),
                tracing_off_overhead,
            ),
            ("fault_off_overhead_ratio".to_string(), fault_off_overhead),
            (
                "metrics_off_overhead_ratio".to_string(),
                metrics_off_overhead,
            ),
            ("causal_off_overhead_ratio".to_string(), causal_off_overhead),
            ("model_rank_agreement".to_string(), model_rank_agreement),
        ];
        for &(w, gf) in &pool_gf {
            gates.push((format!("scaling_pool_t{w}_gf"), gf));
        }
        for &(k, w, gf) in &tt_gf {
            gates.push((format!("timetile_k{k}_t{w}_gf"), gf));
        }
        for &w in &tt_widths {
            if tt_at(1, w) > 0.0 {
                gates.push((
                    format!("timetile_k4_over_k1_t{w}"),
                    tt_at(4, w) / tt_at(1, w),
                ));
            }
        }
        for &(t, rps, p99) in &serve_curve {
            gates.push((format!("serve_rps_t{t}"), rps));
            gates.push((format!("serve_p99_ms_t{t}"), p99));
        }
        gates.push(("serve_cache_hit_speedup".to_string(), cache_hit_speedup));
        gates.push((
            "recorder_off_overhead_ratio".to_string(),
            recorder_off_overhead,
        ));
        let gate_refs: Vec<(&str, f64)> = gates.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let outcome = history.check(&gate_refs, CHECK_TOLERANCE);
        match &outcome.baseline {
            Some(p) => eprintln!("check baseline: {}", p.display()),
            None => eprintln!("check baseline: none (no committed snapshots)"),
        }
        for key in &outcome.skipped {
            eprintln!("check {key}: no committed baseline, skipped");
        }
        for g in &outcome.gates {
            eprintln!(
                "check {}: fresh {:.3} vs floor-of {:.3} \
                 (x{:.2}) {}",
                g.key,
                g.fresh,
                g.committed,
                g.ratio,
                if g.ok {
                    "ok"
                } else if g.warn {
                    if g.key.starts_with("serve_") {
                        "WARN (advisory: scheduler-sensitive service metric)"
                    } else {
                        "WARN (advisory: cross-epoch ratio; zero-alloc tests enforce the off path)"
                    }
                } else {
                    "REGRESSION"
                }
            );
        }
        if !outcome.passed() {
            eprintln!(
                "bench check FAILED: {} metric(s) regressed past tolerance",
                outcome.regressions()
            );
            std::process::exit(1);
        }
        match outcome.warnings() {
            0 => eprintln!("bench check passed"),
            w => eprintln!("bench check passed ({w} advisory warning(s))"),
        }
    }
}
