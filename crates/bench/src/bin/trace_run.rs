//! Trace all nine implementations and export Chrome-trace JSON.
//!
//! Runs each implementation of Section IV on a small grid with span
//! tracing enabled, writes one `trace_<impl>.json` per implementation
//! (loadable in `ui.perfetto.dev` or `chrome://tracing`), validates each
//! export in-process, and prints the wall-clock phase breakdown plus the
//! measured MPI↔compute and PCIe↔compute overlap efficiencies.
//!
//! Usage: `cargo run --release -p bench --bin trace_run [OUT_DIR]`

use advect_core::stepper::AdvectionProblem;
use bench::validate_chrome_trace;
use obs::Axis;
use overlap::{Impl, RunConfig};
use simgpu::GpuSpec;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let spec = GpuSpec::tesla_c2050();
    // Thickness 1 keeps the hybrids' GPU deep interior non-empty on the
    // 4-task subdomains, so the interior kernel has PCIe traffic to
    // overlap with on the device timeline.
    let base = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1)
        .with_trace(true);

    let mut failures = 0;
    for im in Impl::ALL {
        let cfg = if im.uses_mpi() { base.tasks(4) } else { base };
        let (_, report) = im.run_with_report(&cfg, Some(&spec));
        let json = obs::chrome::chrome_trace(&report.traces);
        let path = format!("{out_dir}/trace_{}.json", im.slug());
        std::fs::write(&path, &json).expect("write trace");

        println!("## {} — {} ({})", im.section(), im.name(), path);
        match validate_chrome_trace(&json) {
            Ok(check) => {
                println!(
                    "valid: {} events on {} categories: {}",
                    check.complete_events,
                    check.categories.len(),
                    check
                        .categories
                        .iter()
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
            Err(e) => {
                println!("INVALID: {e}");
                failures += 1;
            }
        }
        let mpi = report.mpi_compute_overlap();
        let pcie = report.pcie_compute_overlap();
        println!(
            "overlap efficiency: mpi↔compute {:.3}, pcie↔compute {:.3}",
            mpi.efficiency(),
            pcie.efficiency()
        );
        println!("{}", report.phase_breakdown(Axis::Wall).render_markdown());
        if im.uses_gpu() {
            println!(
                "{}",
                report.phase_breakdown(Axis::Virtual).render_markdown()
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} trace export(s) failed validation");
        std::process::exit(1);
    }
}
