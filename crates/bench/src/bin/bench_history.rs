//! Renders the bench-snapshot trajectory: every committed
//! `BENCH_<n>.json` at the repository root becomes one ordered history,
//! printed as a markdown dashboard (sparkline per metric, latest-vs-
//! previous deltas, overhead-ratio lineage) and optionally written as a
//! JSON artifact for CI.
//!
//! Usage: `cargo run -p bench --bin bench_history [--json OUT.json] [--md OUT.md]`
//!
//! Exits nonzero when no snapshots are found (the dashboard existing is
//! itself a CI invariant).

use bench::history::History;

fn repo_root() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
}

fn main() {
    let mut json_out: Option<String> = None;
    let mut md_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_out = args.next(),
            "--md" => md_out = args.next(),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let history = match History::load(repo_root()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bench_history: {e}");
            std::process::exit(1);
        }
    };
    if history.snapshots.is_empty() {
        eprintln!("bench_history: no BENCH_<n>.json snapshots at the repo root");
        std::process::exit(1);
    }

    let md = history.render_markdown();
    print!("{md}");
    if let Some(path) = md_out {
        std::fs::write(&path, &md).expect("write markdown");
        eprintln!("wrote {path}");
    }
    if let Some(path) = json_out {
        std::fs::write(&path, history.render_json()).expect("write json");
        eprintln!("wrote {path}");
    }
}
