//! Causal blame, straggler-detection, and model-vs-measured divergence
//! reports over all nine implementations — the `blame-smoke` CI gate.
//!
//! Three passes, all of which must hold for exit code 0:
//!
//! 1. **Clean pass**: every implementation runs traced and fault-free;
//!    its wait-blame matrix is rendered to `blame_<impl>.{md,json}` and
//!    the straggler detector must stay quiet (any flag on a clean run is
//!    a false positive). A flag must survive every one of several
//!    repeated runs, so one descheduled thread on a shared runner
//!    cannot fail the gate.
//! 2. **Divergence pass**: each implementation's `perfmodel` timeline is
//!    aligned against its measured overlap efficiencies and exchange
//!    share (`divergence.{md,json}`); whenever the model confidently
//!    ranks one implementation's overlap above another's, the
//!    measurement must not confidently disagree (ranking agreement 1.0).
//! 3. **Straggler pass**: seeded fault plans throttle known ranks; the
//!    detector — which sees only span traces, never the plan — must name
//!    the injected ranks exactly across the seed sweep. A miss retries a
//!    few times before counting: the seeded plan is pure, so a genuine
//!    detector bug reproduces on every attempt, while a rank descheduled
//!    by a loaded host does not (the same transient-vs-persistent logic
//!    `scaling_smoke` applies to efficiency misses). One seeded blame
//!    report is written to `blame_straggler_seed<k>.md` as an exemplar.
//!
//! Usage: `cargo run --release -p bench --bin blame_run [OUT_DIR] [--seeds N]`

use advect_core::stepper::AdvectionProblem;
use bench::divergence::divergence_report;
use chaos::straggler::DetectConfig;
use overlap::{Impl, RunConfig, RunReport};
use simgpu::GpuSpec;

/// Traced clean-pass repeats per implementation; a false positive must
/// survive the straggler detector in every one of them.
const CLEAN_REPEATS: usize = 3;

/// Detection attempts per seed before a miss counts as a failure. Each
/// attempt is itself a median of [`chaos::straggler::DETECT_REPEATS`]
/// traced runs, so three attempts means a miss persisted through nine
/// runs — host scheduling transients do not.
const DETECT_ATTEMPTS: usize = 3;

fn main() {
    let mut out_dir = ".".to_string();
    let mut seeds_wanted = 32usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--seeds" {
            seeds_wanted = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--seeds takes a count");
        } else {
            out_dir = a;
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let mut failures = 0;
    let spec = GpuSpec::tesla_c2050();
    let base = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1)
        .with_trace(true);

    // Pass 1: clean runs — blame reports plus the false-positive gate.
    println!("# Clean pass: wait blame across the nine implementations\n");
    let mut runs: Vec<(Impl, RunConfig, RunReport)> = Vec::new();
    for im in Impl::ALL {
        let cfg = if im.uses_mpi() { base.tasks(4) } else { base };
        // A false positive must be flagged in every repeat: a genuine
        // straggler is slow in all of them, a host-scheduling transient
        // is not.
        let mut survivors: Option<Vec<usize>> = None;
        let mut last = None;
        for _ in 0..CLEAN_REPEATS {
            let (_, report) = im.run_with_report(&cfg, Some(&spec));
            let flagged = report.stragglers().flagged;
            survivors = Some(match survivors {
                None => flagged,
                Some(prev) => prev.into_iter().filter(|r| flagged.contains(r)).collect(),
            });
            last = Some(report);
        }
        let report = last.expect("at least one repeat");
        let flagged = survivors.unwrap_or_default();

        let blame = report.blame();
        std::fs::write(
            format!("{out_dir}/blame_{}.md", im.slug()),
            blame.render_markdown(),
        )
        .expect("write blame markdown");
        std::fs::write(
            format!("{out_dir}/blame_{}.json", im.slug()),
            blame.render_json(),
        )
        .expect("write blame json");

        let g = report.causal_graph();
        println!(
            "## {} — {}: {} causal edges, total blame {:.3} ms, flagged {:?}",
            im.section(),
            im.name(),
            g.edges.len(),
            blame.total_ns() as f64 / 1e6,
            flagged
        );
        if im.uses_mpi() && g.edges.is_empty() {
            println!("FAIL: an MPI implementation recorded no causal edges");
            failures += 1;
        }
        if g.unmatched_sends != 0 || g.unmatched_recvs != 0 {
            println!(
                "FAIL: {} unmatched sends, {} unmatched receive windows",
                g.unmatched_sends, g.unmatched_recvs
            );
            failures += 1;
        }
        if !flagged.is_empty() {
            println!("FAIL: clean run flagged ranks {flagged:?} as stragglers (false positive)");
            failures += 1;
        }
        runs.push((im, cfg, report));
    }

    // Pass 2: model-vs-measured divergence and the ranking gate.
    println!("\n# Divergence pass: model vs measured\n");
    let div = divergence_report(&runs);
    std::fs::write(format!("{out_dir}/divergence.md"), div.render_markdown())
        .expect("write divergence markdown");
    std::fs::write(format!("{out_dir}/divergence.json"), div.render_json())
        .expect("write divergence json");
    println!("{}", div.render_markdown());
    for inv in div.inversions() {
        println!(
            "FAIL: ranking inversion on {}: model prefers {} (Δ{:.3}), measurement prefers {} (Δ{:.3})",
            inv.dimension, inv.model_winner, inv.model_delta, inv.measured_winner, inv.measured_delta
        );
        failures += 1;
    }

    // Pass 3: seeded stragglers must be rediscovered from traces alone.
    // Larger grid than the (debug-friendly) default: in a release build
    // the default's compute is so quick that host scheduling quanta
    // rival the throttle signal; at n=64 × 8 steps the compute-scale
    // floor sits well above the noise again.
    println!("\n# Straggler pass: {seeds_wanted} seeded detections\n");
    let det = DetectConfig {
        n: 64,
        steps: 8,
        ..DetectConfig::default()
    };
    let seeds = det.usable_seeds(1, seeds_wanted);
    let mut exemplar_written = false;
    for &seed in &seeds {
        let mut injected = Vec::new();
        let mut flagged = Vec::new();
        let mut ok = false;
        let mut attempts = 0;
        while attempts < DETECT_ATTEMPTS && !ok {
            (injected, flagged) = det.detect(seed);
            ok = injected == flagged;
            attempts += 1;
        }
        println!(
            "seed {seed}: injected {injected:?} flagged {flagged:?} {}{}",
            if ok { "OK" } else { "MISS" },
            if attempts > 1 {
                format!(" (attempt {attempts})")
            } else {
                String::new()
            }
        );
        if !ok {
            failures += 1;
        }
        if !exemplar_written {
            let cfg = RunConfig::new(AdvectionProblem::general_case(det.n), det.steps)
                .tasks(det.tasks)
                .with_trace(true)
                .with_faults(overlap::FaultSpec {
                    mpi: det.plan(seed),
                    gpu: simgpu::GpuFaultPlan::off(),
                });
            let (_, report) = overlap::BulkSyncMpi::run_with_report(&cfg);
            std::fs::write(
                format!("{out_dir}/blame_straggler_seed{seed}.md"),
                report.blame().render_markdown(),
            )
            .expect("write seeded blame exemplar");
            exemplar_written = true;
        }
    }
    // A clean-run false positive must survive every trial (each trial is
    // already the intersection of CLEAN_REPEATS runs): genuine
    // stragglers are slow always, loaded-host bias is not.
    let mut survivors: Option<Vec<usize>> = None;
    for _ in 0..3 {
        let flagged = det.detect_clean();
        survivors = Some(match survivors {
            None => flagged,
            Some(prev) => prev.into_iter().filter(|r| flagged.contains(r)).collect(),
        });
        if survivors.as_ref().is_some_and(|s| s.is_empty()) {
            break;
        }
    }
    let clean_flags = survivors.unwrap_or_default();
    if !clean_flags.is_empty() {
        println!("FAIL: clean detection flagged ranks {clean_flags:?} in every trial");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("\n{failures} blame gate(s) failed");
        std::process::exit(1);
    }
    println!(
        "\nall blame gates passed: {} impls, {} seeds",
        Impl::ALL.len(),
        seeds.len()
    );
}
