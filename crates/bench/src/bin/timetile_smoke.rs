//! CI smoke gate for temporal blocking: the time-tiled multi-step
//! stepper must be **bit-identical** to the serial reference at every
//! fused depth and worker count, and the deep-halo implementation must
//! run exactly one fused traversal per halo exchange.
//!
//! Two checks, both exact:
//!
//! 1. **Oracle sweep** — for small grids, every fused depth `k`
//!    (including `k = 1` and a `k` that forces a partial final burst),
//!    and worker counts 1/2/4, `ThreadedStepper::with_time_tile(k)` is
//!    compared per-interior-point (`to_bits`) against the same number of
//!    straight [`SerialStepper`] steps. Any differing ulp fails.
//! 2. **Traversal count** — a traced deep-halo run at width 3 over 7
//!    steps must show exactly `ceil(7 / 3) = 3` `timetile.traversal`
//!    spans on every rank: one fused traversal per exchange, never one
//!    sweep per sub-step.
//!
//! Usage: `cargo run --release -p bench --bin timetile_smoke`
//!
//! Exit code 1 on any mismatch. Runs in seconds — the grids are tiny;
//! this gates correctness, not throughput (bench_snapshot does that).

use advect_core::stepper::{AdvectionProblem, SerialStepper, ThreadedStepper};
use overlap::deep_halo::DeepHaloBulkSync;
use overlap::runner::RunConfig;

/// Interior points where the tiled run differs bitwise from the serial
/// reference after `steps` steps.
fn mismatches(n: usize, k: usize, steps: u64, workers: usize) -> usize {
    let problem = AdvectionProblem::general_case(n);
    let mut serial = SerialStepper::new(problem);
    serial.run(steps);
    let mut tiled = ThreadedStepper::new(problem, workers).with_time_tile(k);
    tiled.run(steps);
    let want = serial.state();
    let got = tiled.state();
    want.interior_range()
        .iter()
        .filter(|&(x, y, z)| got.at(x, y, z).to_bits() != want.at(x, y, z).to_bits())
        .count()
}

fn main() {
    let mut failed = false;

    for n in [8usize, 12] {
        for k in [1usize, 2, 3, 4, 8] {
            if k > n {
                continue;
            }
            // k + 1 steps forces a partial final burst at every k > 1.
            let steps = (k + 1) as u64;
            for workers in [1usize, 2, 4] {
                let bad = mismatches(n, k, steps, workers);
                let ok = bad == 0;
                println!(
                    "oracle n {n} k {k} steps {steps} workers {workers}: {}",
                    if ok {
                        "bitwise ok".to_string()
                    } else {
                        format!("{bad} interior points differ")
                    }
                );
                failed |= !ok;
            }
        }
    }

    // One fused traversal per exchange: 7 steps at width 3 → bursts of
    // 3, 3, 1 → exactly three `timetile.traversal` spans per rank.
    let problem = AdvectionProblem::general_case(12);
    let cfg = RunConfig::new(problem, 7)
        .tasks(2)
        .with_threads(2)
        .with_trace(true);
    let (_, report) = DeepHaloBulkSync::run_with_report(&cfg, 3);
    if report.traces.is_empty() {
        println!("deep_halo: no traces collected");
        failed = true;
    }
    for trace in &report.traces {
        let traversals = trace
            .spans
            .iter()
            .filter(|s| s.label == "timetile.traversal")
            .count();
        let ok = traversals == 3;
        println!(
            "deep_halo rank {}: {traversals} timetile.traversal spans (want 3) {}",
            trace.rank,
            if ok { "ok" } else { "WRONG" }
        );
        failed |= !ok;
    }

    if failed {
        eprintln!("timetile_smoke FAILED");
        std::process::exit(1);
    }
    println!("timetile_smoke passed");
}
