//! Validate flight-recorder anomaly bundles on disk.
//!
//! ```text
//! dump_check FILE_OR_DIR [FILE_OR_DIR ...]
//! ```
//!
//! For each `dump_*.json` bundle: parse it, check the required members
//! (`kind`, `seq`, `captured_at_ns`, `request_events`, `trace`,
//! `metrics`, `slo`, `stats`), and run the embedded stitched trace
//! through [`bench::validate_chrome_trace`]. Exits non-zero if any
//! bundle fails, or if no bundle was found at all — the CI
//! recorder-smoke job points this at the server's `--dump-dir` after
//! inducing anomalies, so "no bundles" means the trigger never fired.

use bench::validate_chrome_trace;
use figures::json::Value;

fn check_bundle(path: &std::path::Path) -> Result<String, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
    let v = Value::parse(&body).map_err(|e| format!("parse: {e}"))?;
    let kind = v["kind"]
        .as_str()
        .ok_or("missing string member \"kind\"")?
        .to_string();
    for key in ["seq", "captured_at_ns"] {
        if !matches!(v[key], Value::Number(_)) {
            return Err(format!("missing numeric member {key:?}"));
        }
    }
    let events = v["request_events"]
        .as_array()
        .ok_or("missing array member \"request_events\"")?;
    if events.is_empty() {
        return Err("bundle has no request events".to_string());
    }
    for key in ["slo", "stats"] {
        if !matches!(v[key], Value::Object(_)) {
            return Err(format!("missing object member {key:?}"));
        }
    }
    if matches!(v["metrics"], Value::Null) {
        return Err("missing member \"metrics\"".to_string());
    }
    let trace_doc = v["trace"].to_string();
    let check = validate_chrome_trace(&trace_doc).map_err(|e| format!("trace: {e}"))?;
    Ok(format!(
        "kind={kind} events={} trace_complete={} flows={}/{}",
        events.len(),
        check.complete_events,
        check.flow_start_events,
        check.flow_finish_events
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: dump_check FILE_OR_DIR [FILE_OR_DIR ...]");
        std::process::exit(2);
    }
    let mut bundles: Vec<std::path::PathBuf> = Vec::new();
    for arg in &args {
        let path = std::path::PathBuf::from(arg);
        if path.is_dir() {
            let mut entries: Vec<_> = match std::fs::read_dir(&path) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("dump_") && n.ends_with(".json"))
                    })
                    .collect(),
                Err(e) => {
                    eprintln!("dump_check: {arg}: {e}");
                    std::process::exit(2);
                }
            };
            entries.sort();
            bundles.extend(entries);
        } else {
            bundles.push(path);
        }
    }
    if bundles.is_empty() {
        eprintln!("dump_check: no bundles found — did the anomaly trigger fire?");
        std::process::exit(1);
    }
    let mut failed = 0usize;
    for path in &bundles {
        match check_bundle(path) {
            Ok(summary) => println!("dump_check: {} OK ({summary})", path.display()),
            Err(e) => {
                eprintln!("dump_check: {} FAILED: {e}", path.display());
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("dump_check: {failed}/{} bundles failed", bundles.len());
        std::process::exit(1);
    }
    println!("dump_check: {} bundles valid", bundles.len());
}
