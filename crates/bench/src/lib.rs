//! Bench-suite support: the Criterion benches live in `benches/`; this
//! library hosts the Chrome-trace validator shared by the `trace_run`
//! binary and the CI trace smoke job. It lives here (not in `obs`) so
//! the tracing crate stays dependency-free — the validator reuses the
//! offline JSON parser from `figures::json`.

use figures::json::Value;
use std::collections::BTreeSet;

pub mod divergence;
pub mod history;

/// Summary of a validated Chrome-trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Complete ("X") duration events.
    pub complete_events: usize,
    /// Metadata ("M") events.
    pub meta_events: usize,
    /// Begin ("B") events (each matched by an "E" on its track).
    pub begin_events: usize,
    /// End ("E") events.
    pub end_events: usize,
    /// Flow-start ("s") events (each matched by an "f" with the same id).
    pub flow_start_events: usize,
    /// Flow-step ("t") events.
    pub flow_step_events: usize,
    /// Flow-finish ("f") events.
    pub flow_finish_events: usize,
    /// Distinct event categories (`cat` fields) present.
    pub categories: BTreeSet<String>,
}

impl TraceCheck {
    /// Whether every category in `wanted` appears in the trace.
    pub fn has_categories(&self, wanted: &[&str]) -> bool {
        wanted.iter().all(|c| self.categories.contains(*c))
    }
}

/// Validate a Chrome-trace JSON document as `trace_run` emits it:
/// well-formed JSON, a `traceEvents` array, every duration event carrying
/// finite non-negative timestamps, timestamps monotone in file order
/// within each `(pid, tid)` track (the property Perfetto's importer
/// relies on for streaming loads), and "B"/"E" begin/end events properly
/// nested per track — every "E" closes the most recent open "B" of the
/// same name, and no "B" is left open at the end of the document.
///
/// Flow events ("s"/"t"/"f") are validated as chains: each carries a
/// numeric `id`; a chain starts with exactly one "s", may pass through
/// "t" steps, and must end with exactly one "f"; timestamps never
/// decrease along a chain (an arrow cannot point backwards in time); the
/// only accepted bind point is `"bp":"e"` (the exporter binds arrows to
/// slice ends). An unterminated or restarted chain is an error.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = Value::parse(text)?;
    let events = doc["traceEvents"]
        .as_array()
        .ok_or("missing traceEvents array")?;
    let mut check = TraceCheck {
        complete_events: 0,
        meta_events: 0,
        begin_events: 0,
        end_events: 0,
        flow_start_events: 0,
        flow_step_events: 0,
        flow_finish_events: 0,
        categories: BTreeSet::new(),
    };
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    let mut open: std::collections::BTreeMap<(u64, u64), Vec<String>> = Default::default();
    // Per flow id: every `s`/`t`/`f` event as `(phase, ts, file index)`.
    // Chains are validated after the scan, because the export sorts all
    // events by (pid, tid, ts): an edge from a higher-pid sender to a
    // lower-pid receiver legitimately places its "f" before its "s" in
    // file order, and the Chrome trace format is order-independent.
    let mut flows: std::collections::BTreeMap<u64, Vec<(String, f64, usize)>> = Default::default();
    for (i, e) in events.iter().enumerate() {
        let ph = e["ph"].as_str().ok_or(format!("event {i}: missing ph"))?;
        if ph == "M" {
            check.meta_events += 1;
            continue;
        }
        if !matches!(ph, "X" | "B" | "E" | "s" | "t" | "f") {
            return Err(format!("event {i}: unexpected ph {ph:?}"));
        }
        let name = e["name"].as_str().ok_or(format!("event {i}: no name"))?;
        if name.is_empty() {
            return Err(format!("event {i}: empty name"));
        }
        if let Some(cat) = e["cat"].as_str() {
            check.categories.insert(cat.to_string());
        }
        let num = |k: &str| {
            e[k].as_f64()
                .filter(|v| v.is_finite())
                .ok_or(format!("event {i}: bad {k}"))
        };
        let (pid, tid) = (num("pid")? as u64, num("tid")? as u64);
        let ts = num("ts")?;
        if ts < 0.0 {
            return Err(format!("event {i}: negative ts"));
        }
        let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!(
                "event {i}: track ({pid},{tid}) timestamps not monotone \
                 ({ts} after {prev})"
            ));
        }
        *prev = ts;
        match ph {
            "X" => {
                check.complete_events += 1;
                if num("dur")? < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
            }
            "B" => {
                check.begin_events += 1;
                open.entry((pid, tid)).or_default().push(name.to_string());
            }
            "E" => {
                check.end_events += 1;
                let stack = open.entry((pid, tid)).or_default();
                match stack.pop() {
                    None => {
                        return Err(format!(
                            "event {i}: track ({pid},{tid}) \"E\" {name:?} \
                             without an open \"B\""
                        ));
                    }
                    Some(top) if top != name => {
                        return Err(format!(
                            "event {i}: track ({pid},{tid}) \"E\" {name:?} \
                             closes mismatched \"B\" {top:?}"
                        ));
                    }
                    Some(_) => {}
                }
            }
            "s" | "t" | "f" => {
                let id = num("id")? as u64;
                if let Some(bp) = e["bp"].as_str() {
                    if bp != "e" {
                        return Err(format!("event {i}: flow {id} bad bind point {bp:?}"));
                    }
                }
                match ph {
                    "s" => check.flow_start_events += 1,
                    "f" => check.flow_finish_events += 1,
                    _ => check.flow_step_events += 1,
                }
                flows.entry(id).or_default().push((ph.to_string(), ts, i));
            }
            _ => unreachable!(),
        }
    }
    for ((pid, tid), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("track ({pid},{tid}): \"B\" {name:?} never closed"));
        }
    }
    for (id, chain) in &flows {
        let starts: Vec<_> = chain.iter().filter(|(ph, _, _)| ph == "s").collect();
        let finishes: Vec<_> = chain.iter().filter(|(ph, _, _)| ph == "f").collect();
        let Some(&&(_, s_ts, _)) = starts.first() else {
            let (ph, _, i) = chain.first().expect("non-empty chain");
            return Err(format!("event {i}: flow {id} {ph:?} without an \"s\""));
        };
        if let Some(&&(_, _, i)) = starts.get(1) {
            return Err(format!("event {i}: flow {id} started twice"));
        }
        let Some(&&(_, f_ts, _)) = finishes.first() else {
            return Err(format!("flow {id}: \"s\" never finished by an \"f\""));
        };
        if let Some(&&(_, _, i)) = finishes.get(1) {
            return Err(format!("event {i}: flow {id} continues after \"f\""));
        }
        for (ph, ts, i) in chain.iter() {
            let (ts, i) = (*ts, *i);
            if ts < s_ts {
                return Err(format!(
                    "event {i}: flow {id} timestamps decrease along the \
                     chain ({ts} after {s_ts})"
                ));
            }
            if ph == "t" && ts > f_ts {
                return Err(format!("event {i}: flow {id} continues after \"f\""));
            }
        }
    }
    if check.complete_events == 0 && check.begin_events == 0 {
        return Err("no duration events".into());
    }
    Ok(check)
}

/// Summary of a validated Prometheus text exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromCheck {
    /// Total sample lines.
    pub samples: usize,
    /// Families declared `# TYPE ... counter`.
    pub counters: usize,
    /// Families declared `# TYPE ... gauge`.
    pub gauges: usize,
    /// Families declared `# TYPE ... histogram`.
    pub histograms: usize,
    /// Histogram families whose `_count` total is nonzero.
    pub non_empty_histograms: usize,
}

/// Validate a Prometheus text exposition as the metrics registry renders
/// it: every sample belongs to a family with a preceding `# TYPE` line,
/// values parse as finite numbers, and each histogram's bucket series is
/// cumulative (monotone in file order, capped by its `_count`).
pub fn validate_prometheus(text: &str) -> Result<PromCheck, String> {
    let mut check = PromCheck {
        samples: 0,
        counters: 0,
        gauges: 0,
        histograms: 0,
        non_empty_histograms: 0,
    };
    let mut types: std::collections::BTreeMap<String, String> = Default::default();
    // Per histogram family: last bucket value seen, running count total.
    let mut last_bucket: std::collections::BTreeMap<String, f64> = Default::default();
    let mut hist_count: std::collections::BTreeMap<String, f64> = Default::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with("# HELP") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().ok_or(format!("line {lineno}: bare TYPE"))?;
            let kind = parts
                .next()
                .ok_or(format!("line {lineno}: TYPE without kind"))?;
            match kind {
                "counter" => check.counters += 1,
                "gauge" => check.gauges += 1,
                "histogram" => check.histograms += 1,
                other => return Err(format!("line {lineno}: unknown TYPE {other:?}")),
            }
            types.insert(family.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {lineno}: unexpected comment {line:?}"));
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: no value: {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: bad value {value:?}"))?;
        if !value.is_finite() {
            return Err(format!("line {lineno}: non-finite value"));
        }
        let name = series.split('{').next().unwrap_or(series);
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(format!("line {lineno}: sample {name:?} has no TYPE"));
        }
        check.samples += 1;
        if types[family] == "histogram" {
            if name.ends_with("_bucket") {
                // A new label set restarts the cumulative series at its
                // first (smallest-le) bucket; within a series buckets
                // only grow.
                let prev = last_bucket.entry(family.to_string()).or_insert(0.0);
                if series.contains("le=\"+Inf\"") {
                    *prev = 0.0;
                } else {
                    if value + 1e-9 < *prev {
                        return Err(format!(
                            "line {lineno}: {family} bucket series not \
                             cumulative ({value} after {prev})"
                        ));
                    }
                    *prev = value;
                }
            } else if name.ends_with("_count") {
                *hist_count.entry(family.to_string()).or_insert(0.0) += value;
            }
        }
    }
    check.non_empty_histograms = hist_count.values().filter(|&&c| c > 0.0).count();
    if check.samples == 0 {
        return Err("no samples".into());
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{Category, Span, Trace};

    fn sample() -> String {
        let t = Trace {
            rank: 0,
            spans: vec![
                Span::wall(Category::MpiSend, "halo", 1, 0, 500),
                Span::wall(Category::ComputeInterior, "", 1, 600, 2_000),
                Span::virtual_span(Category::PcieH2d, "ring", 1, 0.0, 0.25),
            ],
            dropped: 0,
        };
        obs::chrome::chrome_trace(&[t])
    }

    #[test]
    fn validates_exporter_output() {
        let check = validate_chrome_trace(&sample()).expect("valid");
        assert_eq!(check.complete_events, 3);
        assert!(check.meta_events >= 1);
        assert!(check.has_categories(&["mpi.send", "compute.interior", "pcie.h2d"]));
        assert!(!check.has_categories(&["mpi.recv"]));
    }

    #[test]
    fn rejects_garbage_and_non_monotone_tracks() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let bad = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"X","pid":0,"tid":1,"ts":5.0,"dur":1.0},
            {"name":"b","cat":"c","ph":"X","pid":0,"tid":1,"ts":2.0,"dur":1.0}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
        // Same timestamps on different tracks are fine.
        let ok = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"X","pid":0,"tid":1,"ts":5.0,"dur":1.0},
            {"name":"b","cat":"c","ph":"X","pid":0,"tid":2,"ts":2.0,"dur":1.0}
        ]}"#;
        assert!(validate_chrome_trace(ok).is_ok());
    }

    #[test]
    fn validates_begin_end_pairing() {
        let ok = r#"{"traceEvents":[
            {"name":"outer","cat":"c","ph":"B","pid":0,"tid":1,"ts":1.0},
            {"name":"inner","cat":"c","ph":"B","pid":0,"tid":1,"ts":2.0},
            {"name":"inner","cat":"c","ph":"E","pid":0,"tid":1,"ts":3.0},
            {"name":"outer","cat":"c","ph":"E","pid":0,"tid":1,"ts":4.0}
        ]}"#;
        let check = validate_chrome_trace(ok).expect("nested B/E valid");
        assert_eq!(check.begin_events, 2);
        assert_eq!(check.end_events, 2);

        // The same names interleaved across tracks: stacks are per-track.
        let cross = r#"{"traceEvents":[
            {"name":"s","cat":"c","ph":"B","pid":0,"tid":1,"ts":1.0},
            {"name":"s","cat":"c","ph":"B","pid":0,"tid":2,"ts":1.5},
            {"name":"s","cat":"c","ph":"E","pid":0,"tid":1,"ts":2.0},
            {"name":"s","cat":"c","ph":"E","pid":0,"tid":2,"ts":2.5}
        ]}"#;
        assert!(validate_chrome_trace(cross).is_ok());
    }

    #[test]
    fn rejects_broken_begin_end_fixtures() {
        // E without a B.
        let orphan = r#"{"traceEvents":[
            {"name":"s","cat":"c","ph":"E","pid":0,"tid":1,"ts":1.0}
        ]}"#;
        let err = validate_chrome_trace(orphan).unwrap_err();
        assert!(err.contains("without an open"), "{err}");

        // E closing the wrong B (improper interleaving on one track).
        let crossed = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"B","pid":0,"tid":1,"ts":1.0},
            {"name":"b","cat":"c","ph":"B","pid":0,"tid":1,"ts":2.0},
            {"name":"a","cat":"c","ph":"E","pid":0,"tid":1,"ts":3.0}
        ]}"#;
        let err = validate_chrome_trace(crossed).unwrap_err();
        assert!(err.contains("mismatched"), "{err}");

        // B never closed.
        let unclosed = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"B","pid":0,"tid":1,"ts":1.0}
        ]}"#;
        let err = validate_chrome_trace(unclosed).unwrap_err();
        assert!(err.contains("never closed"), "{err}");

        // B/E timestamps share the per-track monotonicity requirement.
        let backwards = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"B","pid":0,"tid":1,"ts":5.0},
            {"name":"a","cat":"c","ph":"E","pid":0,"tid":1,"ts":4.0}
        ]}"#;
        let err = validate_chrome_trace(backwards).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn validates_flow_chains() {
        let ok = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"X","pid":0,"tid":1,"ts":1.0,"dur":4.0},
            {"name":"msg","cat":"flow","ph":"s","id":1,"pid":0,"tid":1,"ts":1.0},
            {"name":"msg","cat":"flow","ph":"t","id":1,"pid":1,"tid":1,"ts":2.0},
            {"name":"msg","cat":"flow","ph":"f","bp":"e","id":1,"pid":2,"tid":1,"ts":3.0},
            {"name":"msg","cat":"flow","ph":"s","id":2,"pid":0,"tid":1,"ts":4.0},
            {"name":"msg","cat":"flow","ph":"f","bp":"e","id":2,"pid":1,"tid":1,"ts":5.0}
        ]}"#;
        let check = validate_chrome_trace(ok).expect("valid flows");
        assert_eq!(check.flow_start_events, 2);
        assert_eq!(check.flow_step_events, 1);
        assert_eq!(check.flow_finish_events, 2);
    }

    #[test]
    fn validates_exporter_flow_output() {
        let t0 = Trace {
            rank: 0,
            spans: vec![Span::channel(Category::MpiSend, "send", 1, 0, 500, 1, 7, 0)],
            dropped: 0,
        };
        let t1 = Trace {
            rank: 1,
            spans: vec![Span::channel(
                Category::MpiWait,
                "wait",
                1,
                100,
                900,
                0,
                7,
                0,
            )],
            dropped: 0,
        };
        let check = validate_chrome_trace(&obs::chrome::chrome_trace(&[t0, t1])).expect("valid");
        assert_eq!(check.flow_start_events, 1);
        assert_eq!(check.flow_finish_events, 1);
        assert!(check.has_categories(&["flow"]));
    }

    #[test]
    fn rejects_broken_flow_fixtures() {
        // "f" with an id no "s" started.
        let orphan = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"X","pid":0,"tid":1,"ts":0.0,"dur":1.0},
            {"name":"msg","cat":"flow","ph":"f","bp":"e","id":9,"pid":0,"tid":1,"ts":1.0}
        ]}"#;
        let err = validate_chrome_trace(orphan).unwrap_err();
        assert!(err.contains("without an \"s\""), "{err}");

        // Flow id started twice.
        let dup = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"X","pid":0,"tid":1,"ts":0.0,"dur":1.0},
            {"name":"msg","cat":"flow","ph":"s","id":1,"pid":0,"tid":1,"ts":1.0},
            {"name":"msg","cat":"flow","ph":"s","id":1,"pid":1,"tid":1,"ts":2.0},
            {"name":"msg","cat":"flow","ph":"f","bp":"e","id":1,"pid":1,"tid":1,"ts":3.0}
        ]}"#;
        let err = validate_chrome_trace(dup).unwrap_err();
        assert!(err.contains("started twice"), "{err}");

        // Timestamps decreasing along the chain (arrow pointing backwards).
        let backwards = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"X","pid":0,"tid":1,"ts":0.0,"dur":9.0},
            {"name":"msg","cat":"flow","ph":"s","id":1,"pid":0,"tid":1,"ts":5.0},
            {"name":"msg","cat":"flow","ph":"f","bp":"e","id":1,"pid":1,"tid":1,"ts":4.0}
        ]}"#;
        let err = validate_chrome_trace(backwards).unwrap_err();
        assert!(err.contains("decrease along the chain"), "{err}");

        // "s" never finished.
        let unterminated = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"X","pid":0,"tid":1,"ts":0.0,"dur":1.0},
            {"name":"msg","cat":"flow","ph":"s","id":1,"pid":0,"tid":1,"ts":1.0}
        ]}"#;
        let err = validate_chrome_trace(unterminated).unwrap_err();
        assert!(err.contains("never finished"), "{err}");

        // Chain continuing after its "f".
        let after_f = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"X","pid":0,"tid":1,"ts":0.0,"dur":9.0},
            {"name":"msg","cat":"flow","ph":"s","id":1,"pid":0,"tid":1,"ts":1.0},
            {"name":"msg","cat":"flow","ph":"f","bp":"e","id":1,"pid":1,"tid":1,"ts":2.0},
            {"name":"msg","cat":"flow","ph":"t","id":1,"pid":1,"tid":1,"ts":3.0}
        ]}"#;
        let err = validate_chrome_trace(after_f).unwrap_err();
        assert!(err.contains("after \"f\""), "{err}");

        // Only end binding is accepted.
        let bad_bp = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"X","pid":0,"tid":1,"ts":0.0,"dur":9.0},
            {"name":"msg","cat":"flow","ph":"s","id":1,"pid":0,"tid":1,"ts":1.0},
            {"name":"msg","cat":"flow","ph":"f","bp":"b","id":1,"pid":1,"tid":1,"ts":2.0}
        ]}"#;
        let err = validate_chrome_trace(bad_bp).unwrap_err();
        assert!(err.contains("bad bind point"), "{err}");

        // A flow event without an id is malformed.
        let no_id = r#"{"traceEvents":[
            {"name":"x","cat":"c","ph":"X","pid":0,"tid":1,"ts":0.0,"dur":1.0},
            {"name":"msg","cat":"flow","ph":"s","pid":0,"tid":1,"ts":1.0}
        ]}"#;
        let err = validate_chrome_trace(no_id).unwrap_err();
        assert!(err.contains("bad id"), "{err}");
    }

    #[test]
    fn validates_registry_prometheus_output() {
        let m = obs::registry::Metrics::on();
        let c = m.counter("advect_test_total", "help", &[("rank", "0".into())]);
        c.add(3);
        let g = m.gauge("advect_test_pending", "help", &[]);
        g.set(-2);
        let h = m.histogram("advect_test_ns", "help", &[("rank", "1".into())]);
        for v in [5u64, 90, 4000, 4100] {
            h.observe(v);
        }
        let empty = m.histogram("advect_idle_ns", "help", &[]);
        let _ = empty;
        let text = m.render_prometheus();
        let check = validate_prometheus(&text).expect("valid exposition");
        assert_eq!(check.counters, 1);
        assert_eq!(check.gauges, 1);
        assert_eq!(check.histograms, 2);
        assert_eq!(check.non_empty_histograms, 1);
        assert!(check.samples >= 6);
    }

    #[test]
    fn rejects_malformed_prometheus() {
        assert!(validate_prometheus("").is_err());
        let no_type = "advect_x_total 3\n";
        let err = validate_prometheus(no_type).unwrap_err();
        assert!(err.contains("no TYPE"), "{err}");
        let non_cumulative = "\
# TYPE advect_h_ns histogram
advect_h_ns_bucket{le=\"1\"} 5
advect_h_ns_bucket{le=\"2\"} 3
";
        let err = validate_prometheus(non_cumulative).unwrap_err();
        assert!(err.contains("cumulative"), "{err}");
        let bad_value = "# TYPE advect_c_total counter\nadvect_c_total abc\n";
        assert!(validate_prometheus(bad_value).is_err());
    }
}
