//! Bench-suite support: the Criterion benches live in `benches/`; this
//! library hosts the Chrome-trace validator shared by the `trace_run`
//! binary and the CI trace smoke job. It lives here (not in `obs`) so
//! the tracing crate stays dependency-free — the validator reuses the
//! offline JSON parser from `figures::json`.

use figures::json::Value;
use std::collections::BTreeSet;

/// Summary of a validated Chrome-trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Complete ("X") duration events.
    pub complete_events: usize,
    /// Metadata ("M") events.
    pub meta_events: usize,
    /// Distinct event categories (`cat` fields) present.
    pub categories: BTreeSet<String>,
}

impl TraceCheck {
    /// Whether every category in `wanted` appears in the trace.
    pub fn has_categories(&self, wanted: &[&str]) -> bool {
        wanted.iter().all(|c| self.categories.contains(*c))
    }
}

/// Validate a Chrome-trace JSON document as `trace_run` emits it:
/// well-formed JSON, a `traceEvents` array, every duration event carrying
/// finite non-negative `ts`/`dur`, and timestamps monotone in file order
/// within each `(pid, tid)` track (the property Perfetto's importer
/// relies on for streaming loads).
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = Value::parse(text)?;
    let events = doc["traceEvents"]
        .as_array()
        .ok_or("missing traceEvents array")?;
    let mut check = TraceCheck {
        complete_events: 0,
        meta_events: 0,
        categories: BTreeSet::new(),
    };
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    for (i, e) in events.iter().enumerate() {
        let ph = e["ph"].as_str().ok_or(format!("event {i}: missing ph"))?;
        match ph {
            "M" => check.meta_events += 1,
            "X" => {
                check.complete_events += 1;
                let name = e["name"].as_str().ok_or(format!("event {i}: no name"))?;
                if name.is_empty() {
                    return Err(format!("event {i}: empty name"));
                }
                if let Some(cat) = e["cat"].as_str() {
                    check.categories.insert(cat.to_string());
                }
                let num = |k: &str| {
                    e[k].as_f64()
                        .filter(|v| v.is_finite())
                        .ok_or(format!("event {i}: bad {k}"))
                };
                let (pid, tid) = (num("pid")? as u64, num("tid")? as u64);
                let (ts, dur) = (num("ts")?, num("dur")?);
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
                if ts < *prev {
                    return Err(format!(
                        "event {i}: track ({pid},{tid}) timestamps not monotone \
                         ({ts} after {prev})"
                    ));
                }
                *prev = ts;
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    if check.complete_events == 0 {
        return Err("no duration events".into());
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{Category, Span, Trace};

    fn sample() -> String {
        let t = Trace {
            rank: 0,
            spans: vec![
                Span::wall(Category::MpiSend, "halo", 1, 0, 500),
                Span::wall(Category::ComputeInterior, "", 1, 600, 2_000),
                Span::virtual_span(Category::PcieH2d, "ring", 1, 0.0, 0.25),
            ],
            dropped: 0,
        };
        obs::chrome::chrome_trace(&[t])
    }

    #[test]
    fn validates_exporter_output() {
        let check = validate_chrome_trace(&sample()).expect("valid");
        assert_eq!(check.complete_events, 3);
        assert!(check.meta_events >= 1);
        assert!(check.has_categories(&["mpi.send", "compute.interior", "pcie.h2d"]));
        assert!(!check.has_categories(&["mpi.recv"]));
    }

    #[test]
    fn rejects_garbage_and_non_monotone_tracks() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let bad = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"X","pid":0,"tid":1,"ts":5.0,"dur":1.0},
            {"name":"b","cat":"c","ph":"X","pid":0,"tid":1,"ts":2.0,"dur":1.0}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
        // Same timestamps on different tracks are fine.
        let ok = r#"{"traceEvents":[
            {"name":"a","cat":"c","ph":"X","pid":0,"tid":1,"ts":5.0,"dur":1.0},
            {"name":"b","cat":"c","ph":"X","pid":0,"tid":2,"ts":2.0,"dur":1.0}
        ]}"#;
        assert!(validate_chrome_trace(ok).is_ok());
    }
}
