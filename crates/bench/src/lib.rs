//! Bench helpers live in the bench targets; this crate exists to host
//! the Criterion bench suite (see benches/).
