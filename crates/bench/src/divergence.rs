//! Model-vs-measured divergence glue: build each implementation's
//! `perfmodel` resource timeline, align it with a traced run's measured
//! overlap metrics, and assemble the [`obs::divergence::DivergenceReport`]
//! the `blame_run` binary renders and CI gates on.
//!
//! The model prices the paper-scale problem on Yona while the measured
//! runs use small test grids, so *absolute* times are incomparable by
//! construction — the aligned quantities are dimensionless: overlap
//! efficiencies and the exchange share of the step. The CI gate is
//! ordinal on top of that: when the model confidently ranks one
//! implementation's overlap above another's, the measurement must not
//! confidently disagree.

use obs::divergence::{
    model_pair_overlap, model_share, DivergenceReport, DivergenceRow, ModelInterval,
};
use obs::Resource;
use overlap::{Impl, RunConfig, RunReport};
use perfmodel::{CpuScenario, GpuImpl, GpuScenario, Res};

/// Map a schedule op to the measured-trace resource taxonomy. `Res::None`
/// ops are classified by tag (CPU walls and co-scheduled face kernels are
/// compute; host staging is staging; bare dependency nodes vanish).
fn resource_of(res: Res, tag: &str) -> Option<Resource> {
    match res {
        Res::Nic => Some(Resource::Mpi),
        Res::CopyH2D | Res::CopyD2H => Some(Resource::Pcie),
        Res::GpuCompute | Res::Cpu => Some(Resource::Compute),
        Res::None => match tag {
            "wall" | "faces" => Some(Resource::Compute),
            "stage" => Some(Resource::Staging),
            _ => None,
        },
    }
}

/// The per-step model timeline of an implementation, as resource busy
/// intervals. GPU implementations export their discrete-event schedule;
/// CPU implementations synthesize intervals from their step breakdowns
/// (serial vs hidden communication, exactly as each model composes its
/// step time).
pub fn model_intervals(im: Impl, cfg: &RunConfig) -> Vec<ModelInterval> {
    let m = machine::yona();
    let threads = cfg.threads.max(1);
    let cores = (cfg.ntasks * threads).max(1);
    if im.uses_gpu() {
        let gim = match im {
            Impl::GpuResident => GpuImpl::Resident,
            Impl::GpuBulkSync => GpuImpl::BulkSync,
            Impl::GpuStreams => GpuImpl::Streams,
            Impl::HybridBulkSync => GpuImpl::HybridBulkSync,
            Impl::HybridOverlap => GpuImpl::HybridOverlap,
            _ => unreachable!("uses_gpu covers exactly the GPU impls"),
        };
        let sc = GpuScenario::new(&m, cores.max(m.cores_per_node()), threads)
            .with_block(cfg.block)
            .with_thickness(cfg.thickness.max(1));
        return sc
            .schedule(gim)
            .ops()
            .into_iter()
            .filter_map(|(res, tag, start, end)| resource_of(res, tag).map(|r| (r, start, end)))
            .collect();
    }
    let sc = CpuScenario::new(&m, cores, threads);
    match im {
        Impl::SingleTask => {
            vec![(Resource::Compute, 0.0, sc.step_single_task())]
        }
        Impl::BulkSync => {
            // Strictly serial: the exchange, then the whole-domain sweep.
            let b = sc.breakdown_bulk_sync();
            vec![
                (Resource::Mpi, 0.0, b.communication),
                (
                    Resource::Compute,
                    b.communication,
                    b.communication + b.compute + b.overhead,
                ),
            ]
        }
        Impl::Nonblocking => {
            // The hidden part of the communication (total minus the
            // breakdown's unhidden remainder) runs under the interior
            // compute; the unhidden tail serializes after it.
            let total_comm = sc.breakdown_bulk_sync().communication;
            let b = sc.breakdown_nonblocking();
            let hidden = (total_comm - b.communication).max(0.0);
            let compute_end = b.compute + b.overhead;
            vec![
                (Resource::Compute, 0.0, compute_end),
                (Resource::Mpi, 0.0, hidden.min(compute_end)),
                (Resource::Mpi, compute_end, compute_end + b.communication),
            ]
        }
        Impl::ThreadOverlap => {
            // The master thread communicates while T−1 threads compute;
            // only the calibrated hide fraction actually overlaps.
            let comm = sc.breakdown_bulk_sync().communication;
            let hide = if threads > 1 {
                perfmodel::params::THREAD_OVERLAP_HIDE
            } else {
                0.0
            };
            let compute = sc.step_thread_overlap() - (1.0 - hide) * comm;
            let compute_end = compute.max(0.0);
            vec![
                (Resource::Compute, 0.0, compute_end),
                (Resource::Mpi, 0.0, (hide * comm).min(compute_end)),
                (
                    Resource::Mpi,
                    compute_end,
                    compute_end + (1.0 - hide) * comm,
                ),
            ]
        }
        _ => unreachable!("GPU impls handled above"),
    }
}

/// Align one implementation's model timeline against its measured traced
/// run.
pub fn divergence_row(im: Impl, cfg: &RunConfig, report: &RunReport) -> DivergenceRow {
    let iv = model_intervals(im, cfg);
    let mpi = report.mpi_compute_overlap();
    let pcie = report.pcie_compute_overlap();
    // `busy_a` accumulates across ranks while the makespan maxes, so
    // normalize to the per-rank average share of the run spent in MPI —
    // the model side is likewise a single rank's schedule share.
    let ranks = report.traces.len().max(1) as f64;
    let measured_exchange_share = if mpi.makespan > 0.0 {
        mpi.busy_a / (mpi.makespan * ranks)
    } else {
        0.0
    };
    DivergenceRow {
        slug: im.slug().to_string(),
        uses_mpi: im.uses_mpi(),
        uses_gpu: im.uses_gpu(),
        model_mpi_eff: model_pair_overlap(&iv, Resource::Mpi, Resource::Compute).efficiency(),
        measured_mpi_eff: mpi.efficiency(),
        model_pcie_eff: model_pair_overlap(&iv, Resource::Pcie, Resource::Compute).efficiency(),
        measured_pcie_eff: pcie.efficiency(),
        model_exchange_share: model_share(&iv, Resource::Mpi),
        measured_exchange_share,
    }
}

/// Assemble the divergence table from per-impl traced runs.
pub fn divergence_report(runs: &[(Impl, RunConfig, RunReport)]) -> DivergenceReport {
    DivergenceReport {
        rows: runs
            .iter()
            .map(|(im, cfg, report)| divergence_row(*im, cfg, report))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advect_core::stepper::AdvectionProblem;
    use simgpu::GpuSpec;

    fn traced_cfg(im: Impl) -> RunConfig {
        let cfg = RunConfig::new(AdvectionProblem::general_case(12), 2)
            .with_block((8, 8))
            .with_trace(true);
        if im.uses_mpi() {
            cfg.tasks(4)
        } else {
            cfg
        }
    }

    #[test]
    fn model_timelines_cover_the_expected_resources() {
        let cfg = traced_cfg(Impl::BulkSync);
        for im in Impl::ALL {
            let iv = model_intervals(im, &cfg);
            assert!(!iv.is_empty(), "{}: empty timeline", im.slug());
            let has = |r: Resource| iv.iter().any(|&(res, _, _)| res == r);
            assert_eq!(has(Resource::Mpi), im.uses_mpi(), "{}: mpi", im.slug());
            // Every GPU impl but the resident one moves halos over PCIe.
            let expects_pcie = im.uses_gpu() && im != Impl::GpuResident;
            assert_eq!(has(Resource::Pcie), expects_pcie, "{}: pcie", im.slug());
            assert!(has(Resource::Compute), "{}: no compute", im.slug());
            for &(_, s, e) in &iv {
                assert!(e >= s && s >= 0.0, "{}: bad interval", im.slug());
            }
        }
    }

    #[test]
    fn model_ranks_overlap_impls_above_bulk_sync() {
        let cfg = traced_cfg(Impl::BulkSync);
        let eff = |im: Impl| {
            let iv = model_intervals(im, &cfg);
            model_pair_overlap(&iv, Resource::Mpi, Resource::Compute).efficiency()
        };
        assert!(eff(Impl::BulkSync) < 0.05, "bulk-sync should not overlap");
        assert!(
            eff(Impl::Nonblocking) > eff(Impl::BulkSync) + 0.25,
            "nonblocking {} vs bulk {}",
            eff(Impl::Nonblocking),
            eff(Impl::BulkSync)
        );
        assert!(
            eff(Impl::HybridOverlap) > eff(Impl::HybridBulkSync),
            "IV-I should overlap MPI more than IV-H"
        );
    }

    #[test]
    fn measured_rows_align_against_real_runs() {
        let spec = GpuSpec::tesla_c2050();
        let im = Impl::BulkSync;
        let cfg = traced_cfg(im);
        let (_, report) = im.run_with_report(&cfg, Some(&spec));
        let row = divergence_row(im, &cfg, &report);
        assert_eq!(row.slug, "bulk_sync");
        assert!(row.uses_mpi && !row.uses_gpu);
        assert!(row.model_mpi_eff >= 0.0 && row.model_mpi_eff <= 1.0);
        assert!(row.measured_mpi_eff >= 0.0 && row.measured_mpi_eff <= 1.0);
        assert!(row.measured_exchange_share > 0.0, "traced run saw no MPI");
    }
}
