//! The flight-recorder bundle must be self-contained and loadable: its
//! embedded stitched trace has to pass the same structural validator
//! (`bench::validate_chrome_trace`) the per-run Chrome exports are held
//! to — per-track monotone timestamps, terminated flow chains, matched
//! begin/end pairs.

use bench::validate_chrome_trace;
use figures::json::Value;
use overlap::RunParams;
use serve::server::{Server, ServerConfig};
use serve::Request;

fn request(impl_slug: &str, seed: u64, trace: bool) -> Request {
    Request {
        tenant: "bundle".to_string(),
        params: RunParams {
            impl_slug: impl_slug.into(),
            grid: 10,
            steps: 2,
            tasks: 2,
            trace,
            fault_seed: Some(seed),
            ..RunParams::default()
        },
        timeout_ms: None,
    }
}

#[test]
fn manual_dump_bundle_round_trips_the_trace_validator() {
    let server = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    // Two traced runs (stored in the trace ring, stitched into the
    // export) plus an untraced one (request events only).
    server.run(&request("nonblocking", 11, true)).unwrap();
    server.run(&request("bulk_sync", 12, true)).unwrap();
    server.run(&request("bulk_sync", 13, false)).unwrap();

    let bundle = server.dump_json().expect("recorder is on");
    let v = Value::parse(&bundle).expect("bundle is valid JSON");
    assert_eq!(v["kind"].as_str(), Some("manual"));
    assert!(
        v["request_events"]
            .as_array()
            .is_some_and(|a| !a.is_empty()),
        "bundle carries the request timeline"
    );
    assert!(v["metrics"].as_array().is_some() || matches!(v["metrics"], Value::Object(_)));
    assert!(
        matches!(v["slo"], Value::Object(_)),
        "bundle carries SLO state"
    );

    // The embedded trace is a complete Chrome document: re-render it
    // and push it through the full validator.
    let trace_doc = v["trace"].to_string();
    let check = validate_chrome_trace(&trace_doc).expect("stitched trace validates");
    assert!(check.complete_events > 0, "{check:?}");
    assert!(
        check.flow_start_events >= 1 && check.flow_finish_events >= 1,
        "stitch arrows survive the round trip: {check:?}"
    );

    // The live export (what `{"cmd":"dump"}` feeds from) validates too.
    let live = server.stitched_trace();
    validate_chrome_trace(&live).expect("live stitched export validates");
    server.shutdown();
}
