//! Benches of the simulated substrates themselves: message passing
//! (simmpi), halo exchange over it, and the simulated GPU's dispatch
//! overheads — the costs a user of this library actually pays.

use advect_core::field::Field3;
use criterion::{criterion_group, criterion_main, Criterion};
use decomp::{Decomposition, ExchangePlan};
use overlap::halo::exchange_halos;
use simgpu::{FieldDims, Gpu, GpuSpec, StencilLaunch, Stream};
use simmpi::World;
use std::hint::black_box;
use std::time::Duration;

fn bench_message_passing(c: &mut Criterion) {
    let mut g = c.benchmark_group("simmpi");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("ring_1k_doubles_4_ranks", |b| {
        b.iter(|| {
            World::run(4, |comm| {
                let right = (comm.rank() + 1) % 4;
                let left = (comm.rank() + 3) % 4;
                let req = comm.irecv(left, 0);
                comm.send(right, 0, vec![1.0; 1024]);
                black_box(req.wait());
            })
        })
    });
    g.bench_function("allreduce_8_ranks_x16", |b| {
        b.iter(|| {
            World::run(8, |comm| {
                let mut acc = 0.0;
                for _ in 0..16 {
                    acc += comm.allreduce_sum(comm.rank() as f64);
                }
                acc
            })
        })
    });
    g.finish();
}

fn bench_halo_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_exchange");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for ntasks in [1usize, 8] {
        g.bench_function(format!("grid24_{ntasks}_tasks"), |b| {
            let d = Decomposition::new(ntasks, (24, 24, 24));
            b.iter(|| {
                let dref = &d;
                World::run(ntasks, move |comm| {
                    let sub = dref.subdomains[comm.rank()];
                    let mut f = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
                    f.fill_interior(|x, y, z| (x + y + z) as f64);
                    let plan = ExchangePlan::new(sub.extent, 1);
                    let bufs = overlap::HaloBuffers::new(&plan, comm);
                    exchange_halos(&mut f, &plan, dref, comm.rank(), comm, &bufs);
                    black_box(f.at(0, 0, 0))
                })
            })
        });
    }
    g.finish();
}

fn bench_gpu_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("simgpu_dispatch");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let gpu = Gpu::new(GpuSpec::tesla_c2050());
    gpu.set_constant([1.0 / 27.0; 27]);
    let dims = FieldDims {
        nx: 16,
        ny: 16,
        nz: 16,
        halo: 0,
    };
    let a = gpu.alloc(dims.len());
    let b_buf = gpu.alloc(dims.len());
    g.bench_function("kernel_launch_16cubed", |bch| {
        bch.iter(|| {
            gpu.launch_stencil(
                Stream::DEFAULT,
                a,
                b_buf,
                StencilLaunch {
                    dims,
                    region: dims.interior(),
                    block: (8, 8),
                    periodic: true,
                },
            );
            gpu.sync_device();
        })
    });
    let staging = gpu.alloc(4096);
    let mut host = vec![0.0; 4096];
    g.bench_function("pcie_roundtrip_4k", |bch| {
        bch.iter(|| {
            gpu.h2d(Stream::DEFAULT, &host, staging, 0);
            gpu.d2h(Stream::DEFAULT, staging, 0, &mut host);
            gpu.sync_device();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_message_passing,
    bench_halo_exchange,
    bench_gpu_dispatch
);
criterion_main!(benches);
