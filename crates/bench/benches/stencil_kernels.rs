//! Real-computation benches of the stencil kernels: the serial CPU sweep,
//! the region/slab variants, and the functional GPU kernel at the paper's
//! block shapes (the wall-clock counterpart of Figures 7/8's model sweep).

use advect_core::coeffs::{Stencil27, Velocity};
use advect_core::field::Field3;
use advect_core::flops::FLOPS_PER_POINT;
use advect_core::stencil::{
    apply_stencil_interior, apply_stencil_region, apply_stencil_region_scalar,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simgpu::kernels::{run_stencil, FieldDims, StencilLaunch};
use std::hint::black_box;
use std::time::Duration;

fn prepared(n: usize) -> (Field3, Field3, Stencil27) {
    let s = Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.9);
    let mut src = Field3::new(n, n, n, 1);
    src.fill_interior(|x, y, z| ((x * 13 + y * 7 + z * 3) % 17) as f64 * 0.1);
    src.copy_periodic_halo();
    let dst = Field3::new(n, n, n, 1);
    (src, dst, s)
}

fn bench_cpu_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_stencil");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for n in [32usize, 64] {
        let (src, mut dst, s) = prepared(n);
        g.throughput(Throughput::Elements((n as u64).pow(3) * FLOPS_PER_POINT));
        g.bench_function(format!("interior_{n}"), |b| {
            b.iter(|| apply_stencil_interior(black_box(&src), &mut dst, &s))
        });
        let shell = decomp::partition::shell_and_core(src.interior_range(), 1).1;
        g.bench_function(format!("boundary_shell_{n}"), |b| {
            b.iter(|| {
                for r in &shell {
                    apply_stencil_region(black_box(&src), &mut dst, &s, *r);
                }
            })
        });
    }
    g.finish();
}

fn bench_fast_vs_scalar(c: &mut Criterion) {
    // The headline comparison: row-vectorized fast path vs. the scalar
    // per-point oracle it is bit-identical to, on the full 128³ interior.
    let mut g = c.benchmark_group("fast_vs_scalar");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    let n = 128usize;
    let (src, mut dst, s) = prepared(n);
    let region = src.interior_range();
    g.throughput(Throughput::Elements((n as u64).pow(3) * FLOPS_PER_POINT));
    g.bench_function("fast_128", |b| {
        b.iter(|| apply_stencil_region(black_box(&src), &mut dst, &s, region))
    });
    g.bench_function("scalar_128", |b| {
        b.iter(|| apply_stencil_region_scalar(black_box(&src), &mut dst, &s, region))
    });
    g.finish();
}

fn bench_gpu_kernel_blocks(c: &mut Criterion) {
    // The functional SIMT kernel across the paper's interesting block
    // shapes: functional cost is roughly block-independent, which is why
    // the *timing model*, not the functional path, prices Figures 7/8.
    let mut g = c.benchmark_group("gpu_kernel_blocks");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let n = 48usize;
    let dims = FieldDims {
        nx: n,
        ny: n,
        nz: n,
        halo: 0,
    };
    let s = Stencil27::new(Velocity::unit_diagonal(), 0.9);
    let mut src = vec![0.0f64; dims.len()];
    for (i, v) in src.iter_mut().enumerate() {
        *v = (i % 23) as f64 * 0.05;
    }
    let mut dst = vec![0.0f64; dims.len()];
    for block in [(16usize, 8usize), (32, 8), (32, 11), (64, 4)] {
        g.bench_function(format!("{}x{}", block.0, block.1), |b| {
            b.iter(|| {
                run_stencil(
                    black_box(&src),
                    &mut dst,
                    &s.a,
                    &StencilLaunch {
                        dims,
                        region: dims.interior(),
                        block,
                        periodic: true,
                    },
                )
            })
        });
    }
    g.finish();
}

fn bench_halo_copy(c: &mut Criterion) {
    let mut g = c.benchmark_group("periodic_halo");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for n in [32usize, 64] {
        let (mut src, _, _) = prepared(n);
        g.bench_function(format!("copy_{n}"), |b| b.iter(|| src.copy_periodic_halo()));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cpu_stencil,
    bench_fast_vs_scalar,
    bench_gpu_kernel_blocks,
    bench_halo_copy
);
criterion_main!(benches);
