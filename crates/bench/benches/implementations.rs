//! Functional step cost of each of the nine implementations on the
//! simulated substrates (small grid): the wall-clock counterpart of
//! Figures 9/10's modeled comparison.

use advect_core::stepper::AdvectionProblem;
use criterion::{criterion_group, criterion_main, Criterion};
use overlap::{Impl, RunConfig};
use simgpu::GpuSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_implementations(c: &mut Criterion) {
    let mut g = c.benchmark_group("implementations");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let problem = AdvectionProblem::general_case(12);
    let spec = GpuSpec::tesla_c2050();
    for im in Impl::ALL {
        let cfg = RunConfig::new(problem, 2)
            .tasks(if im.uses_mpi() { 4 } else { 1 })
            .with_threads(2)
            .with_block((8, 8))
            .with_thickness(1);
        g.bench_function(im.section(), |b| {
            b.iter(|| black_box(im.run(&cfg, Some(&spec))))
        });
    }
    // The deep-halo extension at widths 1-3.
    for w in [1usize, 2, 3] {
        let cfg = RunConfig::new(problem, 3).tasks(4).with_threads(2);
        g.bench_function(format!("deep_halo_w{w}"), |b| {
            b.iter(|| black_box(overlap::DeepHaloBulkSync::run(&cfg, w)))
        });
    }
    g.finish();
}

fn bench_stability_analysis(c: &mut Criterion) {
    use advect_core::coeffs::Velocity;
    let mut g = c.benchmark_group("von_neumann");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("max_amplification_720", |b| {
        b.iter(|| {
            black_box(advect_core::max_amplification(
                Velocity::new(1.0, 0.5, 0.25),
                0.9,
                720,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_implementations, bench_stability_analysis);
criterion_main!(benches);
