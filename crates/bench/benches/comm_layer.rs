//! Benches of the communication layer's fast path: pooled halo exchange
//! vs. the fresh-allocation baseline at paper-scale grids, mailbox
//! matching under many-channel load, and scalar allreduce — the costs the
//! zero-allocation work in `simmpi`/`overlap` targets.

use advect_core::field::Field3;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use decomp::{Decomposition, ExchangePlan};
use overlap::halo::{exchange_halos, exchange_halos_fresh};
use overlap::HaloBuffers;
use simmpi::World;
use std::hint::black_box;
use std::time::Duration;

/// Steps per timed world launch: amortizes `World::run`'s thread spawn so
/// the measurement sees steady-state exchange cost, not setup.
const STEPS: usize = 8;

fn bench_halo_exchange(c: &mut Criterion) {
    for n in [64usize, 128] {
        let mut g = c.benchmark_group(format!("halo_exchange_{n}"));
        g.sample_size(10);
        g.warm_up_time(Duration::from_millis(500));
        g.measurement_time(Duration::from_secs(3));
        // f64 values crossing rank boundaries per timed iteration: six
        // messages of one n² face each, per rank, per step.
        for ntasks in [2usize, 4, 8] {
            g.throughput(Throughput::Elements((6 * n * n * ntasks * STEPS) as u64));
            g.bench_function(format!("pooled_{ntasks}_tasks"), |b| {
                let d = Decomposition::new(ntasks, (n, n, n));
                b.iter(|| {
                    let dref = &d;
                    World::run(ntasks, move |comm| {
                        let sub = dref.subdomains[comm.rank()];
                        let mut f = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
                        f.fill_interior(|x, y, z| (x + y + z) as f64);
                        let plan = ExchangePlan::new(sub.extent, 1);
                        let bufs = HaloBuffers::new(&plan, comm);
                        for _ in 0..STEPS {
                            exchange_halos(&mut f, &plan, dref, comm.rank(), comm, &bufs);
                        }
                        black_box(f.at(0, 0, 0))
                    })
                })
            });
            g.bench_function(format!("fresh_{ntasks}_tasks"), |b| {
                let d = Decomposition::new(ntasks, (n, n, n));
                b.iter(|| {
                    let dref = &d;
                    World::run(ntasks, move |comm| {
                        let sub = dref.subdomains[comm.rank()];
                        let mut f = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
                        f.fill_interior(|x, y, z| (x + y + z) as f64);
                        let plan = ExchangePlan::new(sub.extent, 1);
                        for _ in 0..STEPS {
                            exchange_halos_fresh(&mut f, &plan, dref, comm.rank(), comm);
                        }
                        black_box(f.at(0, 0, 0))
                    })
                })
            });
        }
        g.finish();
    }
}

fn bench_mailbox_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("mailbox_matching");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    // Rank 1 floods rank 0 with messages across many tags, then rank 0
    // drains them in reverse tag order — the worst case for the old
    // linear (src, tag) scan, O(1) per take with indexed channels.
    for tags in [8usize, 64] {
        const PER_TAG: usize = 16;
        g.throughput(Throughput::Elements((tags * PER_TAG) as u64));
        g.bench_function(format!("reverse_drain_{tags}_tags"), |b| {
            b.iter(|| {
                World::run(2, move |comm| {
                    if comm.rank() == 1 {
                        for tag in 0..tags as u64 {
                            for k in 0..PER_TAG {
                                comm.send(0, tag, vec![k as f64]);
                            }
                        }
                        0.0
                    } else {
                        let mut acc = 0.0;
                        for tag in (0..tags as u64).rev() {
                            for _ in 0..PER_TAG {
                                acc += comm.recv(1, tag)[0];
                            }
                        }
                        black_box(acc)
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for ntasks in [2usize, 8] {
        const ROUNDS: usize = 64;
        g.throughput(Throughput::Elements((ROUNDS * ntasks) as u64));
        g.bench_function(format!("sum_{ntasks}_tasks"), |b| {
            b.iter(|| {
                World::run(ntasks, move |comm| {
                    let mut acc = 0.0;
                    for r in 0..ROUNDS {
                        acc = comm.allreduce_sum(acc + r as f64 + comm.rank() as f64);
                    }
                    black_box(acc)
                })
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_halo_exchange,
    bench_mailbox_matching,
    bench_allreduce
);
criterion_main!(benches);
