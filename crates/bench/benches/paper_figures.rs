//! One bench per regenerated table/figure: the cost of producing each
//! output of the paper's evaluation from the models. Useful both as a
//! regression guard on the harness and as the canonical "regenerate
//! everything" entry point under `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_each_figure(c: &mut Criterion) {
    let mut g = c.benchmark_group("regenerate");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    type Gen = (&'static str, fn() -> figures::FigureData);
    let generators: Vec<Gen> = vec![
        ("table1", figures::tables::table1),
        ("fig02_loc", figures::loc::fig02),
        ("fig03_jaguar", figures::cpu_figs::fig03),
        ("fig04_hopper", figures::cpu_figs::fig04),
        ("fig05_jaguar_threads", figures::cpu_figs::fig05),
        ("fig06_hopper_threads", figures::cpu_figs::fig06),
        ("fig07_lens_blocks", figures::gpu_figs::fig07),
        ("fig08_yona_blocks", figures::gpu_figs::fig08),
        ("fig09_lens_impls", figures::cluster_figs::fig09),
        ("fig10_yona_impls", figures::cluster_figs::fig10),
        ("fig11_lens_combos", figures::cluster_figs::fig11),
        ("fig12_yona_combos", figures::cluster_figs::fig12),
        ("anchors_v_e", figures::cluster_figs::anchors),
    ];
    for (name, gen) in generators {
        g.bench_function(name, |b| b.iter(|| black_box(gen())));
    }
    g.bench_function("table2", |b| {
        b.iter(|| black_box(figures::tables::table2_text()))
    });
    g.bench_function("report_all_claims", |b| {
        b.iter(|| black_box(figures::report::evaluate_claims()))
    });
    g.finish();
}

fn bench_tuning(c: &mut Criterion) {
    use perfmodel::gpu::GpuImpl;
    let mut g = c.benchmark_group("tuner");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let m = machine::yona();
    let space = tuner::SearchSpace::for_machine(&m);
    g.bench_function("exhaustive_yona_4_nodes", |b| {
        b.iter(|| {
            let obj = tuner::Objective::new(&m, GpuImpl::HybridOverlap, 4 * 12);
            black_box(tuner::exhaustive(&obj, &space))
        })
    });
    g.bench_function("multistart_descent_yona_4_nodes", |b| {
        b.iter(|| {
            let obj = tuner::Objective::new(&m, GpuImpl::HybridOverlap, 4 * 12);
            black_box(tuner::multistart_descent(&obj, &space))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_each_figure, bench_tuning);
criterion_main!(benches);
