//! Figures 9–12: the GPU clusters (Lens, Yona) — best per implementation,
//! and the CPU-GPU overlap tuning sweeps.

use crate::data::{FigureData, Series};
use advect_core::sweep::SweepPool;
use machine::{lens, yona, Machine};
use perfmodel::gpu::{GpuImpl, GpuScenario};
use perfmodel::sweep::{best_gf, AnyImpl, THICKNESS_CHOICES};

/// Lens core counts (16-core nodes, up to all 31 nodes).
pub fn lens_cores() -> Vec<usize> {
    [1usize, 2, 4, 8, 16, 31].iter().map(|n| n * 16).collect()
}

/// Yona core counts (12-core nodes, up to all 16 nodes).
pub fn yona_cores() -> Vec<usize> {
    [1usize, 2, 4, 8, 16].iter().map(|n| n * 12).collect()
}

/// Best performance of each implementation (Figures 9, 10).
fn best_per_impl(
    id: &'static str,
    m: &Machine,
    cores: &[usize],
    block: (usize, usize),
) -> FigureData {
    // One sweep task per implementation; results come back in
    // `AnyImpl::ALL` order so the series order is identical to serial.
    let series = SweepPool::global().map(&AnyImpl::ALL, |im| Series {
        label: im.label().into(),
        points: cores
            .iter()
            .filter_map(|&c| {
                let b = best_gf(m, *im, c, block);
                (b.gf > 0.0).then_some((c as f64, b.gf))
            })
            .collect(),
    });
    let gpus_per = m.cores_per_node();
    FigureData {
        id,
        title: format!(
            "Best performance of each {} implementation; GPU implementations use one GPU per {gpus_per} cores",
            m.name
        ),
        x_label: "cores",
        y_label: "GF",
        series,
        notes: vec![
            "GPU-resident is single-GPU by definition: plotted only at one node".into(),
            "best over threads/task and (for hybrids) box thickness".into(),
        ],
    }
}

/// Figure 9: Lens.
pub fn fig09() -> FigureData {
    best_per_impl("fig09", &lens(), &lens_cores(), (32, 11))
}

/// Figure 10: Yona.
pub fn fig10() -> FigureData {
    best_per_impl("fig10", &yona(), &yona_cores(), (32, 8))
}

/// CPU-GPU overlap performance for (threads/task, thickness) combinations
/// (Figures 11, 12). As in the paper, only combinations that are best for
/// at least one core count are plotted.
fn overlap_combos(
    id: &'static str,
    m: &Machine,
    cores: &[usize],
    block: (usize, usize),
) -> FigureData {
    // Find the winning combination per core count. Each core count's
    // (threads × thickness) scan is one sweep task; the scan itself keeps
    // the serial strict-`>` fold so ties break identically, and the
    // dedup below runs serially over the pool's core-ordered results.
    let per_core = SweepPool::global().map(cores, |&c| {
        let mut best = (0.0f64, (0usize, 0usize));
        for &t in m.thread_choices {
            if c % t != 0 {
                continue;
            }
            for &th in &THICKNESS_CHOICES {
                let gf = GpuScenario::new(m, c, t)
                    .with_block(block)
                    .with_thickness(th)
                    .gf(GpuImpl::HybridOverlap);
                if gf > best.0 {
                    best = (gf, (t, th));
                }
            }
        }
        best.1
    });
    let mut winners: Vec<(usize, usize)> = Vec::new();
    for combo in per_core {
        if !winners.contains(&combo) {
            winners.push(combo);
        }
    }
    let series = SweepPool::global().map(&winners, |&(t, th)| Series {
        label: format!("{t} threads, thickness {th}"),
        points: cores
            .iter()
            .filter(|&&c| c % t == 0)
            .map(|&c| {
                (
                    c as f64,
                    GpuScenario::new(m, c, t)
                        .with_block(block)
                        .with_thickness(th)
                        .gf(GpuImpl::HybridOverlap),
                )
            })
            .collect(),
    });
    FigureData {
        id,
        title: format!(
            "CPU-GPU overlap implementation on {} for combinations of threads/task and box thickness",
            m.name
        ),
        x_label: "cores",
        y_label: "GF",
        series,
        notes: vec!["each plotted combination is the best for at least one core count".into()],
    }
}

/// Figure 11: Lens combos.
pub fn fig11() -> FigureData {
    overlap_combos("fig11", &lens(), &lens_cores(), (32, 11))
}

/// Figure 12: Yona combos.
pub fn fig12() -> FigureData {
    overlap_combos("fig12", &yona(), &yona_cores(), (32, 8))
}

/// The Section V-E one-node Yona anchors, paper vs. model.
pub fn anchors() -> FigureData {
    let m = yona();
    let one = |im: GpuImpl, threads: usize, thickness: usize| -> f64 {
        GpuScenario::new(&m, 12, threads)
            .with_block((32, 8))
            .with_thickness(thickness)
            .gf(im)
    };
    let measured = [
        one(GpuImpl::Resident, 12, 0),
        one(GpuImpl::BulkSync, 12, 0),
        one(GpuImpl::Streams, 12, 0),
        one(GpuImpl::HybridOverlap, 6, 3),
    ];
    let paper = [86.0, 24.0, 35.0, 82.0];
    FigureData {
        id: "anchors",
        title: "Section V-E one-node Yona anchors (GF)".into(),
        x_label: "anchor#",
        y_label: "GF",
        series: vec![
            Series {
                label: "paper".into(),
                points: paper.iter().enumerate().map(|(i, &v)| (i as f64 + 1.0, v)).collect(),
            },
            Series {
                label: "model".into(),
                points: measured
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i as f64 + 1.0, v))
                    .collect(),
            },
        ],
        notes: vec![
            "1 = GPU resident, 2 = IV-F bulk-sync, 3 = IV-G streams, 4 = IV-I overlap (thickness 3, 2 tasks/node)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_hybrid_overlap_dominates() {
        let f = fig10();
        let series =
            |label: &str| -> &Series { f.series.iter().find(|s| s.label == label).unwrap() };
        let hybrid = series("CPU+GPU full overlap");
        for other in [
            "GPU bulk-synchronous MPI",
            "GPU MPI overlap (streams)",
            "CPU+GPU bulk-synchronous",
            "bulk-synchronous MPI",
        ] {
            let o = series(other);
            for (h, p) in hybrid.points.iter().zip(o.points.iter()).skip(1) {
                assert!(
                    h.1 > 2.0 * p.1,
                    "{other} at {} cores: {} vs {}",
                    h.0,
                    h.1,
                    p.1
                );
            }
        }
    }

    #[test]
    fn fig09_gpu_impls_gain_more_from_overlap_than_cpu_impls() {
        let f = fig09();
        let series =
            |label: &str| -> &Series { f.series.iter().find(|s| s.label == label).unwrap() };
        let at_end = |s: &Series| s.points.last().unwrap().1;
        // CPU-only overlap gain is small on Lens…
        let cpu_gain =
            at_end(series("MPI nonblocking overlap")) / at_end(series("bulk-synchronous MPI"));
        assert!(cpu_gain < 1.15, "cpu gain {cpu_gain}");
        // …while the GPU side gains a lot.
        let gpu_gain =
            at_end(series("CPU+GPU full overlap")) / at_end(series("GPU bulk-synchronous MPI"));
        assert!(gpu_gain > 2.0, "gpu gain {gpu_gain}");
    }

    #[test]
    fn fig11_best_combo_thickness_decreases() {
        let f = fig11();
        // First series wins at the lowest core count; last series wins at
        // the highest. Thickness should not increase along the way.
        let thickness_of = |s: &Series| -> usize {
            s.label
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .expect("label ends with thickness")
        };
        let first = thickness_of(&f.series[0]);
        let last = thickness_of(f.series.last().unwrap());
        assert!(last <= first, "thickness grew: {first} -> {last}");
    }

    #[test]
    fn fig12_uses_few_tasks_per_node() {
        let f = fig12();
        for s in &f.series {
            let threads: usize = s.label.split(' ').next().unwrap().parse().unwrap();
            assert!(12 / threads <= 2, "combo with many tasks won: {}", s.label);
        }
    }

    #[test]
    fn anchors_within_band() {
        let f = anchors();
        let paper = &f.series[0].points;
        let model = &f.series[1].points;
        for (p, m) in paper.iter().zip(model) {
            let rel = (m.1 - p.1).abs() / p.1;
            assert!(
                rel < 0.25,
                "anchor {} off by {:.0}%: {} vs {}",
                p.0,
                rel * 100.0,
                m.1,
                p.1
            );
        }
    }
}
