//! Figures 3–6: CPU-only performance on JaguarPF and Hopper II.

use crate::data::{FigureData, Series};
use advect_core::sweep::SweepPool;
use machine::{hopper_ii, jaguarpf, Machine};
use perfmodel::cpu::{best_cpu_gf, CpuImpl, CpuScenario};

/// JaguarPF core counts: 12 … 12288 (powers of two nodes).
pub fn jaguar_cores() -> Vec<usize> {
    (0..11).map(|e| 12 << e).collect()
}

/// Hopper II core counts: 24 … 49152.
pub fn hopper_cores() -> Vec<usize> {
    (0..12).map(|e| 24 << e).collect()
}

/// Best performance of each CPU implementation vs. cores (Figures 3, 4).
fn best_per_impl(id: &'static str, m: &Machine, cores: &[usize]) -> FigureData {
    let impls = [
        (CpuImpl::SingleTask, "single task"),
        (CpuImpl::BulkSync, "bulk-synchronous MPI"),
        (CpuImpl::Nonblocking, "MPI nonblocking overlap"),
        (CpuImpl::ThreadOverlap, "MPI OpenMP-thread overlap"),
    ];
    // One sweep task per (implementation, core count); results come back
    // in submission order so the series are byte-identical to a serial run.
    let grid: Vec<(CpuImpl, usize)> = impls
        .iter()
        .flat_map(|&(im, _)| cores.iter().map(move |&c| (im, c)))
        .collect();
    let gfs = SweepPool::global().map(&grid, |&(im, c)| best_cpu_gf(m, im, c).0);
    let series = impls
        .iter()
        .enumerate()
        .map(|(i, (_, label))| Series {
            label: (*label).into(),
            points: cores
                .iter()
                .zip(&gfs[i * cores.len()..(i + 1) * cores.len()])
                .map(|(&c, &gf)| (c as f64, gf))
                .collect(),
        })
        .collect();
    FigureData {
        id,
        title: format!(
            "Best performance of each {} implementation for a range of core counts",
            m.name
        ),
        x_label: "cores",
        y_label: "GF",
        series,
        notes: vec![
            "each value is the best over the measured numbers of OpenMP threads per MPI task"
                .into(),
        ],
    }
}

/// Figure 3: JaguarPF.
pub fn fig03() -> FigureData {
    best_per_impl("fig03", &jaguarpf(), &jaguar_cores())
}

/// Figure 4: Hopper II (scales further thanks to Gemini).
pub fn fig04() -> FigureData {
    best_per_impl("fig04", &hopper_ii(), &hopper_cores())
}

/// Bulk-synchronous performance per threads-per-task (Figures 5, 6).
fn per_thread(id: &'static str, m: &Machine, cores: &[usize]) -> FigureData {
    let series = m
        .thread_choices
        .iter()
        .map(|&t| Series {
            label: format!("{t} threads/task"),
            points: cores
                .iter()
                .filter(|&&c| c % t == 0 && c >= t)
                .map(|&c| (c as f64, CpuScenario::new(m, c, t).gf(CpuImpl::BulkSync)))
                .collect(),
        })
        .collect();
    FigureData {
        id,
        title: format!(
            "Bulk-synchronous implementation on {} for various numbers of OpenMP threads per MPI task",
            m.name
        ),
        x_label: "cores",
        y_label: "GF",
        series,
        notes: vec![],
    }
}

/// Figure 5: JaguarPF threads-per-task sweep.
pub fn fig05() -> FigureData {
    per_thread("fig05", &jaguarpf(), &jaguar_cores())
}

/// Figure 6: Hopper II threads-per-task sweep.
pub fn fig06() -> FigureData {
    per_thread("fig06", &hopper_ii(), &hopper_cores())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_reproduces_crossover() {
        let f = fig03();
        let find =
            |label: &str| -> &Series { f.series.iter().find(|s| s.label.contains(label)).unwrap() };
        let bulk = find("bulk");
        let nb = find("nonblocking");
        let at = |s: &Series, c: f64| s.points.iter().find(|p| p.0 == c).unwrap().1;
        // Nonblocking slightly ahead at low counts, behind at 12288.
        assert!(at(nb, 192.0) > at(bulk, 192.0));
        assert!(at(nb, 12288.0) < at(bulk, 12288.0));
    }

    #[test]
    fn fig04_crossover_is_later_than_fig03() {
        let f3 = fig03();
        let f4 = fig04();
        let cross = |f: &FigureData| -> f64 {
            let bulk = f.series.iter().find(|s| s.label.contains("bulk")).unwrap();
            let nb = f
                .series
                .iter()
                .find(|s| s.label.contains("nonblocking"))
                .unwrap();
            for (b, n) in bulk.points.iter().zip(&nb.points) {
                if b.1 > n.1 && b.0 > 24.0 {
                    return b.0;
                }
            }
            f64::INFINITY
        };
        let c3 = cross(&f3);
        let c4 = cross(&f4);
        assert!(
            c4 > 2.0 * c3,
            "Jaguar crossover {c3}, Hopper crossover {c4}"
        );
    }

    #[test]
    fn fig05_has_five_thread_series() {
        let f = fig05();
        assert_eq!(f.series.len(), 5);
        // The 12-thread series starts at 12 cores (12 % 12 == 0).
        assert!(f.series.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    fn fig06_includes_24_thread_series() {
        let f = fig06();
        assert_eq!(f.series.len(), 6);
        let s24 = f.series.iter().find(|s| s.label.starts_with("24")).unwrap();
        // 24 threads/task is never the best series (the paper's finding).
        let s12 = f.series.iter().find(|s| s.label.starts_with("12")).unwrap();
        for (a, b) in s24.points.iter().zip(s12.points.iter()) {
            if a.0 == b.0 {
                assert!(a.1 <= b.1 * 1.001, "24 threads beat 12 at {} cores", a.0);
            }
        }
    }
}
