//! Step-time breakdowns and the weak-scaling contrast (ext05/ext06).
//!
//! * [`ext05_breakdown`] — where each modeled step spends its time
//!   (compute / communication / overhead) for IV-B and IV-C across
//!   scales: makes the Figure 3 crossover mechanical — the overhead bar
//!   stays put while the hideable communication bar shrinks.
//! * [`ext06_weak_scaling`] — the same machines under *weak* scaling
//!   (constant work per task). The paper chose strong scaling because
//!   climate grids are fixed; weak scaling would have hidden the
//!   crossover entirely, which this experiment demonstrates.

use crate::data::{FigureData, Series};
use machine::jaguarpf;
use perfmodel::cpu::{CpuImpl, CpuScenario};

/// Per-component step breakdown for IV-B vs IV-C on JaguarPF.
pub fn ext05_breakdown() -> FigureData {
    let m = jaguarpf();
    let cores: Vec<usize> = (0..11).map(|e| 12 << e).collect();
    let mut series: Vec<Series> = Vec::new();
    let mut push = |label: &str, f: &dyn Fn(&CpuScenario) -> f64| {
        series.push(Series {
            label: label.into(),
            points: cores
                .iter()
                .map(|&c| {
                    let s = CpuScenario::new(&m, c, 6);
                    (c as f64, f(&s) * 1e6)
                })
                .collect(),
        });
    };
    push("IV-B compute (µs)", &|s| s.breakdown_bulk_sync().compute);
    push("IV-B comm (µs)", &|s| {
        s.breakdown_bulk_sync().communication
    });
    push("IV-C unhidden comm (µs)", &|s| {
        s.breakdown_nonblocking().communication
    });
    push("IV-C overhead (µs)", &|s| {
        s.breakdown_nonblocking().overhead
    });
    FigureData {
        id: "ext05",
        title: "Extension: step-time breakdown, IV-B vs IV-C on JaguarPF (6 threads/task)".into(),
        x_label: "cores",
        y_label: "µs/step",
        series,
        notes: vec![
            "the crossover mechanism: IV-C hides most of IV-B's comm bar, but its \
             overhead bar is scale-invariant — once comm shrinks below it, IV-B wins"
                .into(),
        ],
    }
}

/// Weak scaling: constant ~105³ points per task, growing the grid with
/// the machine.
pub fn ext06_weak_scaling() -> FigureData {
    let m = jaguarpf();
    let mut bulk = Vec::new();
    let mut nonblocking = Vec::new();
    for e in 0..11u32 {
        let nodes = 1usize << e;
        let cores = nodes * 12;
        let grid = (105.0 * (2.0 * nodes as f64).cbrt()).round() as usize;
        let s = CpuScenario::new(&m, cores, 6).with_grid(grid);
        bulk.push((cores as f64, s.gf(CpuImpl::BulkSync)));
        nonblocking.push((cores as f64, s.gf(CpuImpl::Nonblocking)));
    }
    FigureData {
        id: "ext06",
        title: "Extension: weak scaling on JaguarPF (~105³ points per task)".into(),
        x_label: "cores",
        y_label: "GF",
        series: vec![
            Series {
                label: "bulk-synchronous MPI".into(),
                points: bulk,
            },
            Series {
                label: "MPI nonblocking overlap".into(),
                points: nonblocking,
            },
        ],
        notes: vec![
            "under weak scaling the per-core work never shrinks, so the overlap stays \
             profitable at every multi-node scale — the Fig. 3 crossover is a \
             strong-scaling artifact (the single-node point has shared-memory \
             communication and nothing to hide)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_shows_the_crossover_mechanism() {
        let f = ext05_breakdown();
        let at = |label: &str, c: f64| -> f64 {
            f.series
                .iter()
                .find(|s| s.label.starts_with(label))
                .unwrap()
                .points
                .iter()
                .find(|p| p.0 == c)
                .unwrap()
                .1
        };
        // At low core counts the unhidden comm + overhead of IV-C is far
        // below IV-B's comm bar…
        assert!(
            at("IV-C unhidden comm", 192.0) + at("IV-C overhead", 192.0) < at("IV-B comm", 192.0)
        );
        // …at the top, IV-C's overhead alone exceeds what hiding saves.
        let saved = at("IV-B comm", 12288.0) - at("IV-C unhidden comm", 12288.0);
        assert!(at("IV-C overhead", 12288.0) > saved);
    }

    #[test]
    fn weak_scaling_has_no_crossover() {
        // Multi-node points only: on a single node the halo exchange is a
        // shared-memory copy, so there is no latency to hide and the
        // overlap's fixed overhead makes IV-B marginally better there.
        let f = ext06_weak_scaling();
        let bulk = &f.series[0].points;
        let nb = &f.series[1].points;
        for (b, n) in bulk.iter().zip(nb).skip(1) {
            assert!(n.1 >= b.1, "crossover appeared at {} cores", b.0);
        }
        // And weak scaling is near-linear: efficiency at the top > 80%.
        let eff = (nb.last().unwrap().1 / nb[1].1) / 512.0;
        assert!(eff > 0.8, "weak-scaling efficiency {eff}");
    }
}
