//! Extension experiments: the what-ifs the paper's Conclusions raise but
//! could not measure.
//!
//! * [`ext01_pcie_sweep`] — "an architecture with faster, lower-latency
//!   CPU-GPU communication could have a performance profile significantly
//!   different from what we see": sweep the PCIe rate and watch the
//!   bulk-synchronous GPU implementations converge toward the overlap
//!   one, which barely moves (its PCIe is already off the critical path).
//! * [`ext02_cores_per_gpu`] — "a computer tuned for our test might have
//!   a smaller number of CPU cores per GPU": sweep the CPU complex per
//!   GPU and watch the full-overlap hybrid saturate with very few cores.
//! * [`ext03_pinned_ablation`] — attribute the IV-F/G collapse: give the
//!   bulk-synchronous implementations page-locked (pinned) copies at the
//!   full PCIe rate and measure how much of the gap to IV-I that closes —
//!   the serialization of the D2H → MPI → H2D chain accounts for the
//!   rest, which is exactly the paper's "decoupling" explanation.

use crate::data::{FigureData, Series};
use machine::{yona, CpuModel, Machine};
use perfmodel::gpu::{GpuImpl, GpuScenario};

/// PCIe-rate sweep on Yona (one node): GF of IV-F/G/I vs. PCIe scale.
pub fn ext01_pcie_sweep() -> FigureData {
    let m = yona();
    let scales = [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0];
    let mut series = Vec::new();
    for (im, label, threads, thickness) in [
        (GpuImpl::BulkSync, "IV-F bulk-sync", 12usize, 0usize),
        (GpuImpl::Streams, "IV-G streams", 12, 0),
        (GpuImpl::HybridOverlap, "IV-I full overlap", 6, 3),
    ] {
        let points = scales
            .iter()
            .map(|&sc| {
                (
                    sc,
                    GpuScenario::new(&m, 12, threads)
                        .with_block((32, 8))
                        .with_thickness(thickness)
                        .with_pcie_scale(sc)
                        .gf(im),
                )
            })
            .collect();
        series.push(Series {
            label: label.into(),
            points,
        });
    }
    FigureData {
        id: "ext01",
        title: "Extension: one Yona node vs. PCIe speed (scale on both pageable and pinned rates)"
            .into(),
        x_label: "pcie scale",
        y_label: "GF",
        series,
        notes: vec![
            "the paper's conclusion: faster CPU-GPU communication would change the profile — \
             mostly for the implementations that keep PCIe on the critical path"
                .into(),
        ],
    }
}

/// A Yona-like machine with a different CPU complex per GPU.
fn yona_with_cores(cores_per_socket: usize, thread_choice: &'static [usize]) -> Machine {
    let mut m = yona();
    m.cpu = CpuModel {
        cores_per_socket,
        ..m.cpu
    };
    m.thread_choices = thread_choice;
    m
}

/// Cores-per-GPU sweep: GF per node of the full-overlap hybrid when the
/// node has fewer (or more) CPU cores feeding the same GPU.
pub fn ext02_cores_per_gpu() -> FigureData {
    let configs: [(usize, &'static [usize]); 5] = [
        (1, &[1, 2]),
        (2, &[1, 2, 4]),
        (3, &[1, 2, 3, 6]),
        (6, &[1, 2, 3, 6, 12]),
        (12, &[1, 2, 3, 6, 12, 24]),
    ];
    let mut best_points = Vec::new();
    let mut veneer_points = Vec::new();
    for (cps, choices) in configs {
        let m = yona_with_cores(cps, choices);
        let cores = m.cores_per_node();
        let mut best = 0.0f64;
        for &t in m.thread_choices {
            if !cores.is_multiple_of(t) {
                continue;
            }
            for th in [1usize, 2, 3, 4, 6] {
                let gf = GpuScenario::new(&m, cores, t)
                    .with_block((32, 8))
                    .with_thickness(th)
                    .gf(GpuImpl::HybridOverlap);
                best = best.max(gf);
            }
        }
        best_points.push((cores as f64, best));
        // Thickness-1 veneer with one task: the minimal-CPU configuration.
        veneer_points.push((
            cores as f64,
            GpuScenario::new(&m, cores, cores)
                .with_block((32, 8))
                .with_thickness(1)
                .gf(GpuImpl::HybridOverlap),
        ));
    }
    FigureData {
        id: "ext02",
        title: "Extension: one hybrid node (C2050) vs. CPU cores per GPU".into(),
        x_label: "cores/GPU",
        y_label: "GF",
        series: vec![
            Series {
                label: "best configuration".into(),
                points: best_points,
            },
            Series {
                label: "thickness-1 veneer, 1 task".into(),
                points: veneer_points,
            },
        ],
        notes: vec![
            "the paper's conclusion: \"a computer tuned for our test might have a smaller \
             number of CPU cores per GPU\" — performance saturates with very few cores"
                .into(),
        ],
    }
}

/// Pinned-copy ablation on one Yona node: how much of the IV-F/G deficit
/// the pageable copies explain, vs. the chain serialization itself.
pub fn ext03_pinned_ablation() -> FigureData {
    let m = yona();
    let spec_rate = m.gpu.as_ref().expect("yona has a GPU").pcie_bw_gbs;
    let eval = |im: GpuImpl, threads: usize, thickness: usize, pinned: bool| -> f64 {
        let mut s = GpuScenario::new(&m, 12, threads)
            .with_block((32, 8))
            .with_thickness(thickness);
        if pinned {
            s = s.with_pageable_gbs(spec_rate);
        }
        s.gf(im)
    };
    let impls = [
        (GpuImpl::BulkSync, "IV-F bulk-sync", 12usize, 0usize),
        (GpuImpl::Streams, "IV-G streams", 12, 0),
        (GpuImpl::HybridBulkSync, "IV-H hybrid bulk-sync", 6, 2),
        (GpuImpl::HybridOverlap, "IV-I full overlap", 6, 3),
    ];
    let as_measured = Series {
        label: "pageable copies (as built)".into(),
        points: impls
            .iter()
            .enumerate()
            .map(|(i, &(im, _, t, th))| (i as f64 + 1.0, eval(im, t, th, false)))
            .collect(),
    };
    let pinned = Series {
        label: "page-locked copies (ablation)".into(),
        points: impls
            .iter()
            .enumerate()
            .map(|(i, &(im, _, t, th))| (i as f64 + 1.0, eval(im, t, th, true)))
            .collect(),
    };
    FigureData {
        id: "ext03",
        title: "Extension: pinned-copy ablation, one Yona node (1=IV-F, 2=IV-G, 3=IV-H, 4=IV-I)"
            .into(),
        x_label: "impl#",
        y_label: "GF",
        series: vec![as_measured, pinned],
        notes: vec![
            "pinning lifts IV-F/G substantially but the serialized D2H->MPI->H2D chain still \
             separates them from IV-I: the decoupling, not just the copy rate, is the win"
                .into(),
        ],
    }
}

/// Deep-halo (communication-avoiding) extension: amortized GF of halo
/// widths 1–3 on JaguarPF as built, and on a hypothetical
/// commodity-latency version of it (100 µs, 1 GB/s).
pub fn ext04_deep_halo() -> FigureData {
    use machine::jaguarpf;
    use perfmodel::cpu::CpuScenario;
    let mut ethernet = jaguarpf();
    ethernet.net.latency_s = 100e-6;
    ethernet.net.node_bw_gbs = 1.0;
    let cores: Vec<usize> = (0..11).map(|e| 12 << e).collect();
    let mut series = Vec::new();
    for (m, tag) in [(jaguarpf(), "SeaStar"), (ethernet, "100µs net")] {
        for w in [1usize, 2, 3] {
            let points = cores
                .iter()
                .map(|&c| {
                    let best = m
                        .thread_choices
                        .iter()
                        .filter(|&&t| c % t == 0)
                        .map(|&t| {
                            let s = CpuScenario::new(&m, c, t);
                            s.gigaflops(s.step_deep_halo(w))
                        })
                        .fold(0.0f64, f64::max);
                    (c as f64, best)
                })
                .collect();
            series.push(Series {
                label: format!("{tag}, width {w}"),
                points,
            });
        }
    }
    FigureData {
        id: "ext04",
        title: "Extension: communication-avoiding deep halos — amortized best GF vs cores".into(),
        x_label: "cores",
        y_label: "GF",
        series,
        notes: vec![
            "on SeaStar the redundant shell never beats the latency saved (width 1 best \
             everywhere); on a 100 µs commodity network widths 2-3 win at scale"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series<'a>(f: &'a FigureData, label: &str) -> &'a Series {
        f.series
            .iter()
            .find(|s| s.label.contains(label))
            .unwrap_or_else(|| panic!("missing series {label}"))
    }

    #[test]
    fn deep_halo_figure_shows_both_regimes() {
        let f = ext04_deep_halo();
        assert_eq!(f.series.len(), 6);
        let last = |label: &str| series(&f, label).points.last().unwrap().1;
        // SeaStar: width 1 best at the top end.
        assert!(last("SeaStar, width 1") > last("SeaStar, width 2"));
        // 100 µs network: width ≥ 2 best at the top end.
        assert!(last("100µs net, width 2") > last("100µs net, width 1"));
    }

    #[test]
    fn faster_pcie_helps_bulk_sync_most() {
        let f = ext01_pcie_sweep();
        let gain = |label: &str| -> f64 {
            let s = series(&f, label);
            s.points.last().unwrap().1 / s.points.iter().find(|p| p.0 == 1.0).unwrap().1
        };
        let g_f = gain("IV-F");
        let g_g = gain("IV-G");
        let g_i = gain("IV-I");
        assert!(g_f > 2.0, "IV-F gain {g_f}");
        assert!(g_g > 1.5, "IV-G gain {g_g}");
        assert!(g_i < 1.15, "IV-I should barely move: {g_i}");
        assert!(g_f > g_i && g_g > g_i);
    }

    #[test]
    fn with_fast_pcie_the_profiles_converge() {
        // At 16x PCIe the streams implementation approaches the overlap
        // one — the paper's "significantly different profile".
        let f = ext01_pcie_sweep();
        let at16 = |label: &str| series(&f, label).points.last().unwrap().1;
        let ratio = at16("IV-I") / at16("IV-G");
        assert!(ratio < 1.6, "still far apart at 16x: {ratio}");
        // At 1x they are far apart (the paper's measured world).
        let at1 = |label: &str| {
            series(&f, label)
                .points
                .iter()
                .find(|p| p.0 == 1.0)
                .unwrap()
                .1
        };
        assert!(at1("IV-I") / at1("IV-G") > 2.0);
    }

    #[test]
    fn hybrid_saturates_with_few_cores_per_gpu() {
        let f = ext02_cores_per_gpu();
        let best = series(&f, "best configuration");
        let at = |cores: f64| best.points.iter().find(|p| p.0 == cores).unwrap().1;
        // Going from 12 to 6 cores/GPU costs little…
        assert!(at(12.0) / at(6.0) < 1.10, "{} vs {}", at(12.0), at(6.0));
        // …and even 2 cores/GPU retains most of the performance.
        assert!(at(2.0) > 0.75 * at(12.0), "{} vs {}", at(2.0), at(12.0));
    }

    #[test]
    fn pinned_ablation_narrows_but_keeps_the_gap() {
        let f = ext03_pinned_ablation();
        let pageable = &series(&f, "pageable").points;
        let pinned = &series(&f, "page-locked").points;
        // Pinning helps IV-F and IV-G a lot.
        assert!(
            pinned[0].1 > 1.5 * pageable[0].1,
            "IV-F: {:?}",
            (pinned[0], pageable[0])
        );
        assert!(pinned[1].1 > 1.3 * pageable[1].1);
        // IV-I is unchanged (it already pins).
        assert!((pinned[3].1 - pageable[3].1).abs() < 1e-9);
        // The decoupling gap survives: IV-I still beats pinned IV-G.
        assert!(
            pageable[3].1 > 1.15 * pinned[1].1,
            "{} vs {}",
            pageable[3].1,
            pinned[1].1
        );
    }
}
