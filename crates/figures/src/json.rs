//! Minimal JSON support for figure export.
//!
//! The build environment is offline, so instead of `serde`/`serde_json`
//! this module provides the two things the crate needs: a writer used by
//! [`crate::data::FigureData::to_json`] (string escaping + number
//! formatting) and a small recursive-descent parser producing a [`Value`]
//! tree, used by tests and downstream tooling to validate exported JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is not preserved (sorted).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as bool, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

/// Escape a string for embedding in JSON (adds surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 the way `serde_json` does: integral values keep a
/// trailing `.0`, everything else uses the shortest round-trip form.
pub fn number(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => f.write_str(&number(*n)),
            Value::String(s) => f.write_str(&escape(s)),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(
            r#"{"id": "fig03", "points": [[12.0, 1.5], [24, 3]], "ok": true, "none": null}"#,
        )
        .unwrap();
        assert_eq!(v["id"], "fig03");
        assert_eq!(v["points"][1][1], 3.0);
        assert_eq!(v["ok"], Value::Bool(true));
        assert_eq!(v["none"], Value::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1, 2,]").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("{} trailing").is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let s = "line\n\"quoted\"\tand \\ backslash";
        let v = Value::parse(&escape(s)).unwrap();
        assert_eq!(v, s);
    }

    #[test]
    fn number_formatting_matches_serde_json() {
        assert_eq!(number(3.0), "3.0");
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.25), "-0.25");
        assert_eq!(number(12288.0), "12288.0");
    }

    #[test]
    fn display_round_trips() {
        let doc = r#"{"a": [1.5, "x"], "b": {"c": null}}"#;
        let v = Value::parse(doc).unwrap();
        let v2 = Value::parse(&v.to_string()).unwrap();
        assert_eq!(v, v2);
    }
}
