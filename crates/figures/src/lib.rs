//! # figures
//!
//! Regenerates every table and figure of the paper's evaluation section
//! from the performance models (and, for Table I and Figure 2, from the
//! numerics and the repository itself). One module per figure family;
//! the `figures` binary prints them all and can export JSON/CSV.
//!
//! | Output | Source |
//! |--------|--------|
//! | Table I | [`tables::table1`] |
//! | Table II | [`tables::table2_text`] |
//! | Figure 2 (LoC) | [`loc::fig02`] |
//! | Figures 3–6 (CPU scaling) | [`cpu_figs`] |
//! | Figures 7–8 (block sizes) | [`gpu_figs`] |
//! | Figures 9–12 (GPU clusters) | [`cluster_figs`] |
//! | §V-E anchors | [`cluster_figs::anchors`] |
//! | Extension experiments (§VI what-ifs) | [`extensions`] |

pub mod breakdown;
pub mod cluster_figs;
pub mod cpu_figs;
pub mod data;
pub mod extensions;
pub mod gpu_figs;
pub mod json;
pub mod loc;
pub mod plot;
pub mod report;
pub mod tables;

pub use data::{FigureData, Series};
pub use plot::{render_plot, PlotOptions};

/// All regenerable figures, in paper order.
///
/// The generators are independent, so they are evaluated on the
/// [`advect_core::sweep::SweepPool`]; results come back in this fixed
/// order regardless of worker count, so exported CSV/JSON stays
/// byte-identical to a serial run.
pub fn all_figures() -> Vec<FigureData> {
    type FigureFn = fn() -> FigureData;
    const GENERATORS: [FigureFn; 19] = [
        tables::table1,
        loc::fig02,
        cpu_figs::fig03,
        cpu_figs::fig04,
        cpu_figs::fig05,
        cpu_figs::fig06,
        gpu_figs::fig07,
        gpu_figs::fig08,
        cluster_figs::fig09,
        cluster_figs::fig10,
        cluster_figs::fig11,
        cluster_figs::fig12,
        cluster_figs::anchors,
        extensions::ext01_pcie_sweep,
        extensions::ext02_cores_per_gpu,
        extensions::ext03_pinned_ablation,
        extensions::ext04_deep_halo,
        breakdown::ext05_breakdown,
        breakdown::ext06_weak_scaling,
    ];
    advect_core::sweep::SweepPool::global().map(&GENERATORS, |g| g())
}

/// Look up a figure by id (e.g. "fig03").
pub fn figure_by_id(id: &str) -> Option<FigureData> {
    all_figures().into_iter().find(|f| f.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_outputs_regenerate() {
        let figs = all_figures();
        assert_eq!(figs.len(), 19);
        for f in &figs {
            assert!(!f.series.is_empty(), "{} has no series", f.id);
            assert!(
                f.series.iter().any(|s| !s.points.is_empty()),
                "{} has no points",
                f.id
            );
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(figure_by_id("fig07").is_some());
        assert!(figure_by_id("nope").is_none());
    }

    #[test]
    fn every_figure_renders_all_formats() {
        for f in all_figures() {
            assert!(!f.render_text().is_empty());
            assert!(!f.render_csv().is_empty());
            assert!(json::Value::parse(&f.to_json()).is_ok());
        }
    }
}
