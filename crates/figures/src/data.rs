//! Structured figure data with text and JSON rendering.

use crate::json;

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// One regenerated table or figure.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Identifier, e.g. "fig03".
    pub id: &'static str,
    /// Title matching the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// Y-axis label.
    pub y_label: &'static str,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form notes: deviations, calibration remarks.
    pub notes: Vec<String>,
}

impl FigureData {
    /// Render as an aligned text table (x column + one column per series).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        // Collect the x grid (union, sorted).
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        out.push_str(&format!("{:>12}", self.x_label));
        for s in &self.series {
            out.push_str(&format!(" {:>24}", truncate(&s.label, 24)));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{:>12}", trim_num(x)));
            for s in &self.series {
                match s.points.iter().find(|p| p.0 == x) {
                    Some(&(_, y)) => out.push_str(&format!(" {:>24}", trim_num(y))),
                    None => out.push_str(&format!(" {:>24}", "-")),
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Serialize to pretty JSON (2-space indent, struct field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json::escape(self.id)));
        out.push_str(&format!("  \"title\": {},\n", json::escape(&self.title)));
        out.push_str(&format!("  \"x_label\": {},\n", json::escape(self.x_label)));
        out.push_str(&format!("  \"y_label\": {},\n", json::escape(self.y_label)));
        out.push_str("  \"series\": [\n");
        for (i, s) in self.series.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": {},\n", json::escape(&s.label)));
            out.push_str("      \"points\": [\n");
            for (j, &(x, y)) in s.points.iter().enumerate() {
                out.push_str(&format!(
                    "        [\n          {},\n          {}\n        ]{}\n",
                    json::number(x),
                    json::number(y),
                    if j + 1 < s.points.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.series.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"notes\": [\n");
        for (i, n) in self.notes.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                json::escape(n),
                if i + 1 < self.notes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}");
        out
    }

    /// Render as CSV (x, then one column per series).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        for &x in &xs {
            out.push_str(&trim_num(x));
            for s in &self.series {
                out.push(',');
                if let Some(&(_, y)) = s.points.iter().find(|p| p.0 == x) {
                    out.push_str(&trim_num(y));
                }
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).chain(std::iter::once('…')).collect()
    }
}

fn trim_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        FigureData {
            id: "figXX",
            title: "sample".into(),
            x_label: "cores",
            y_label: "GF",
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(12.0, 1.5), (24.0, 3.0)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(24.0, 2.0)],
                },
            ],
            notes: vec!["hello".into()],
        }
    }

    #[test]
    fn text_render_includes_all_series_and_notes() {
        let t = sample().render_text();
        assert!(t.contains("figXX"));
        assert!(t.contains("note: hello"));
        assert!(t.contains("1.50"));
        // Missing point rendered as '-'.
        assert!(t.lines().any(|l| l.contains("12") && l.contains('-')));
    }

    #[test]
    fn json_round_trips_structure() {
        let j = sample().to_json();
        let v = crate::json::Value::parse(&j).unwrap();
        assert_eq!(v["id"], "figXX");
        assert_eq!(v["series"][0]["points"][1][1], 3.0);
        assert_eq!(v["notes"][0], "hello");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = sample().render_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "cores,a,b");
        assert_eq!(lines.count(), 2);
    }
}
