//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures                  print every table and figure as text
//! figures fig03 fig10      print selected figures
//! figures table2           print Table II
//! figures --json out/      also write each figure as JSON into out/
//! figures --csv out/       also write each figure as CSV into out/
//! figures --plot           render ASCII log-log plots instead of tables
//! ```

use figures::{all_figures, figure_by_id, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut plot = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_dir = it.next(),
            "--csv" => csv_dir = it.next(),
            "--plot" => plot = true,
            "--report" => {
                let claims = figures::report::evaluate_claims();
                println!("{}", figures::report::render_markdown(&claims));
                return;
            }
            "-h" | "--help" => {
                eprintln!("usage: figures [ids…] [--json DIR] [--csv DIR] [--plot] [--report]");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }

    let figs = if wanted.is_empty() {
        println!("{}", tables::table2_text());
        all_figures()
    } else {
        let mut out = Vec::new();
        for id in &wanted {
            if id == "table2" {
                println!("{}", tables::table2_text());
                continue;
            }
            match figure_by_id(id) {
                Some(f) => out.push(f),
                None => eprintln!("unknown figure id: {id}"),
            }
        }
        out
    };

    for f in &figs {
        if plot {
            println!(
                "{}",
                figures::render_plot(f, figures::PlotOptions::default())
            );
        } else {
            println!("{}", f.render_text());
        }
    }

    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json dir");
        for f in &figs {
            let path = format!("{dir}/{}.json", f.id);
            std::fs::write(&path, f.to_json()).expect("write json");
            eprintln!("wrote {path}");
        }
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for f in &figs {
            let path = format!("{dir}/{}.csv", f.id);
            std::fs::write(&path, f.render_csv()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}
