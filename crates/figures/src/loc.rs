//! Figure 2: lines of code per implementation.
//!
//! Two series: the paper's Fortran counts (215 and 860 stated exactly;
//! the rest derived from the stated ratios — "MPI parallelization adds
//! 57–73% more lines", "single GPU ... 6% more lines", "adding MPI
//! parallelism to the GPU computation almost triples the number of
//! lines"), and the measured non-blank non-comment LoC of our own Rust
//! implementation modules, counted from the embedded sources.

use crate::data::{FigureData, Series};

/// The nine implementation labels, in the paper's order.
pub const IMPL_LABELS: [&str; 9] = [
    "single task",
    "bulk-sync MPI",
    "nonblocking MPI",
    "thread-overlap MPI",
    "GPU resident",
    "GPU bulk-sync MPI",
    "GPU streams MPI",
    "hybrid bulk-sync",
    "hybrid full overlap",
];

/// The paper's Fortran LoC. 215 (single) and 860 (full overlap) are
/// stated exactly; the others follow the stated ratios.
pub const PAPER_FORTRAN_LOC: [u32; 9] = [215, 338, 372, 350, 228, 640, 670, 780, 860];

/// Our Rust sources per implementation (embedded at compile time).
const RUST_SOURCES: [&str; 9] = [
    include_str!("../../overlap/src/single_task.rs"),
    include_str!("../../overlap/src/bulk_sync.rs"),
    include_str!("../../overlap/src/nonblocking.rs"),
    include_str!("../../overlap/src/thread_overlap.rs"),
    include_str!("../../overlap/src/gpu_resident.rs"),
    include_str!("../../overlap/src/gpu_bulk_sync.rs"),
    include_str!("../../overlap/src/gpu_streams.rs"),
    include_str!("../../overlap/src/hybrid_bulk_sync.rs"),
    include_str!("../../overlap/src/hybrid_overlap.rs"),
];

/// Count lines that are neither blank nor comment-only (the paper's
/// counting rule: "minus blank lines and lines containing only comments").
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// Measured Rust LoC per implementation module.
pub fn rust_loc() -> [usize; 9] {
    RUST_SOURCES.map(loc)
}

/// Figure 2 data.
pub fn fig02() -> FigureData {
    let rust = rust_loc();
    FigureData {
        id: "fig02",
        title: "Lines of code for each implementation, minus blank lines and comments".into(),
        x_label: "impl#",
        y_label: "lines",
        series: vec![
            Series {
                label: "Fortran (paper)".into(),
                points: PAPER_FORTRAN_LOC
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i as f64 + 1.0, v as f64))
                    .collect(),
            },
            Series {
                label: "Rust (this repo)".into(),
                points: rust
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i as f64 + 1.0, v as f64))
                    .collect(),
            },
        ],
        notes: vec![
            format!(
                "impl order: {}",
                IMPL_LABELS
                    .iter()
                    .enumerate()
                    .map(|(i, l)| format!("{}={l}", i + 1))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            "paper values 215 and 860 stated exactly; others derived from stated ratios".into(),
            "Rust counts exclude each module's shared infrastructure (runner, halo, gpu_common)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counter_skips_blanks_and_comments() {
        let src = "// comment\n\nlet x = 1; // trailing comment counts\n   \n//! doc\n}";
        assert_eq!(loc(src), 2);
    }

    #[test]
    fn paper_ratios_hold() {
        let p = PAPER_FORTRAN_LOC;
        // Full overlap is exactly four times the single implementation.
        assert_eq!(p[8], 4 * p[0]);
        // MPI adds 57-73%.
        for mpi in [p[1], p[2], p[3]] {
            let ratio = mpi as f64 / p[0] as f64;
            assert!((1.57..=1.74).contains(&ratio), "ratio {ratio}");
        }
        // Single GPU ~6% more than single CPU.
        assert!((p[4] as f64 / p[0] as f64 - 1.06).abs() < 0.01);
    }

    #[test]
    fn rust_loc_shape_matches_paper_ordering() {
        let r = rust_loc();
        // The cheapest implementation is the single-task one; the most
        // expensive is the hybrid full overlap — same complexity ordering
        // as the paper reports.
        let min = *r.iter().min().unwrap();
        let max = *r.iter().max().unwrap();
        assert_eq!(r[0], min, "single task should be smallest: {r:?}");
        assert_eq!(r[8], max, "full overlap should be largest: {r:?}");
        // MPI implementations cost more than single task.
        assert!(r[1] > r[0] && r[2] > r[0]);
    }

    #[test]
    fn fig02_has_both_series() {
        let f = fig02();
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].points.len(), 9);
        assert_eq!(f.series[1].points.len(), 9);
    }
}
