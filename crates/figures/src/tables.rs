//! Table I (stencil coefficients) and Table II (machines).

use crate::data::{FigureData, Series};
use advect_core::coeffs::{Stencil27, Velocity};
use machine::all_machines;

/// Table I: the 27 coefficients, evaluated at a representative velocity.
///
/// The table is symbolic in the paper; we render it numerically at the
/// general test velocity and assert the structural identities
/// (Σa = 1, first/second moments) in the notes.
pub fn table1() -> FigureData {
    let v = Velocity::new(1.0, 0.5, 0.25);
    let nu = 0.9;
    let s = Stencil27::new(v, nu);
    let mut points = Vec::new();
    for k in -1i32..=1 {
        for j in -1i32..=1 {
            for i in -1i32..=1 {
                let idx = Stencil27::offset_index(i, j, k);
                points.push((idx as f64, s.at(i, j, k)));
            }
        }
    }
    FigureData {
        id: "table1",
        title: format!(
            "Coefficients a_ijk at c = ({}, {}, {}), nu = {} (flat index = (i+1)+3(j+1)+9(k+1))",
            v.cx, v.cy, v.cz, nu
        ),
        x_label: "index",
        y_label: "a_ijk",
        series: vec![Series {
            label: "a_ijk".into(),
            points,
        }],
        notes: vec![
            format!("sum of coefficients = {} (consistency requires 1)", s.sum()),
            format!(
                "first moments = ({:.6}, {:.6}, {:.6}) — must equal -c_d*nu",
                s.first_moment(0),
                s.first_moment(1),
                s.first_moment(2)
            ),
            "Table I transcription and tensor-product construction agree to machine \
             precision (advect-core::coeffs tests)"
                .into(),
        ],
    }
}

/// Table II: technical details of the tested computers.
pub fn table2_text() -> String {
    let machines = all_machines();
    let mut out = String::from("== table2 — Technical details of tested computers ==\n");
    let row = |label: &str, f: &dyn Fn(&machine::Machine) -> String| -> String {
        let mut line = format!("{label:<28}");
        for m in &machines {
            line.push_str(&format!(" {:>16}", f(m)));
        }
        line.push('\n');
        line
    };
    out.push_str(&row("System", &|m| m.name.to_string()));
    out.push_str(&row("Compute nodes", &|m| m.nodes.to_string()));
    out.push_str(&row("Memory per node (GB)", &|m| {
        m.mem_per_node_gb.to_string()
    }));
    out.push_str(&row("Opteron sockets per node", &|m| {
        m.cpu.sockets.to_string()
    }));
    out.push_str(&row("Cores per socket", &|m| {
        m.cpu.cores_per_socket.to_string()
    }));
    out.push_str(&row("Opteron clock (GHz)", &|m| {
        format!("{}", m.cpu.clock_ghz)
    }));
    out.push_str(&row("Interconnect", &|m| m.net.name.to_string()));
    out.push_str(&row("MPI", &|m| m.mpi.to_string()));
    out.push_str(&row("NVIDIA Tesla GPU", &|m| {
        m.gpu
            .as_ref()
            .map(|g| g.name.trim_start_matches("Tesla ").to_string())
            .unwrap_or_else(|| "-".into())
    }));
    out.push_str(&row("GPU memory (GB)", &|m| {
        m.gpu
            .as_ref()
            .map(|g| format!("{}", g.mem_gib))
            .unwrap_or_else(|| "-".into())
    }));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_27_coefficients_summing_to_one() {
        let t = table1();
        assert_eq!(t.series[0].points.len(), 27);
        let sum: f64 = t.series[0].points.iter().map(|p| p.1).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table2_lists_all_four_machines() {
        let t = table2_text();
        for name in ["JaguarPF", "Hopper II", "Lens", "Yona"] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("SeaStar"));
        assert!(t.contains("C2050"));
    }
}
