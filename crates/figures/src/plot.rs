//! ASCII line plots for figure data.
//!
//! The paper's scaling figures are log-log GF-vs-cores plots; this module
//! renders the same shape in a terminal: one glyph per series, log-scaled
//! axes where requested, a legend, and axis labels. Deliberately
//! dependency-free.

use crate::data::FigureData;

/// Glyphs assigned to series, in order.
const GLYPHS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&', '$', '~'];

/// Options for ASCII plotting.
#[derive(Debug, Clone, Copy)]
pub struct PlotOptions {
    /// Plot width in columns (interior of the frame).
    pub width: usize,
    /// Plot height in rows.
    pub height: usize,
    /// Log-scale the x axis.
    pub log_x: bool,
    /// Log-scale the y axis.
    pub log_y: bool,
}

impl Default for PlotOptions {
    fn default() -> Self {
        Self {
            width: 64,
            height: 20,
            log_x: true,
            log_y: true,
        }
    }
}

fn transform(v: f64, log: bool) -> f64 {
    if log {
        v.max(1e-12).log10()
    } else {
        v
    }
}

/// Render the figure as an ASCII plot with a legend.
pub fn render_plot(fig: &FigureData, opts: PlotOptions) -> String {
    let (w, h) = (opts.width.max(16), opts.height.max(6));
    let pts: Vec<(f64, f64)> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|p| p.1.is_finite() && p.1 > 0.0)
        .collect();
    if pts.is_empty() {
        return format!("== {} — {} ==\n(no data)\n", fig.id, fig.title);
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        let tx = transform(x, opts.log_x);
        let ty = transform(y, opts.log_y);
        x0 = x0.min(tx);
        x1 = x1.max(tx);
        y0 = y0.min(ty);
        y1 = y1.max(ty);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut canvas = vec![vec![' '; w]; h];
    for (si, s) in fig.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            if !(y.is_finite() && y > 0.0) {
                continue;
            }
            let tx = transform(x, opts.log_x);
            let ty = transform(y, opts.log_y);
            let col = (((tx - x0) / (x1 - x0)) * (w - 1) as f64).round() as usize;
            let row = (((ty - y0) / (y1 - y0)) * (h - 1) as f64).round() as usize;
            let r = h - 1 - row.min(h - 1);
            let c = col.min(w - 1);
            // Later series overwrite; collisions show the later glyph.
            canvas[r][c] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {} — {} ==\n", fig.id, fig.title));
    let y_top = if opts.log_y { 10f64.powf(y1) } else { y1 };
    let y_bot = if opts.log_y { 10f64.powf(y0) } else { y0 };
    out.push_str(&format!("{:>10} ┤\n", format_si(y_top)));
    for row in canvas {
        out.push_str("           │");
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} └{}\n", format_si(y_bot), "─".repeat(w)));
    let x_left = if opts.log_x { 10f64.powf(x0) } else { x0 };
    let x_right = if opts.log_x { 10f64.powf(x1) } else { x1 };
    out.push_str(&format!(
        "{:>12}{:>width$}\n",
        format_si(x_left),
        format_si(x_right),
        width = w
    ));
    out.push_str(&format!(
        "            x: {} ({}), y: {} ({})\n",
        fig.x_label,
        if opts.log_x { "log" } else { "linear" },
        fig.y_label,
        if opts.log_y { "log" } else { "linear" },
    ));
    for (si, s) in fig.series.iter().enumerate() {
        out.push_str(&format!(
            "            {} {}\n",
            GLYPHS[si % GLYPHS.len()],
            s.label
        ));
    }
    out
}

/// Human-scale number formatting (1.2k, 3.4M).
fn format_si(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Series;

    fn sample() -> FigureData {
        FigureData {
            id: "t",
            title: "sample".into(),
            x_label: "cores",
            y_label: "GF",
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(12.0, 10.0), (120.0, 100.0), (1200.0, 800.0)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(12.0, 8.0), (120.0, 60.0), (1200.0, 900.0)],
                },
            ],
            notes: vec![],
        }
    }

    #[test]
    fn plot_contains_glyphs_and_legend() {
        let p = render_plot(&sample(), PlotOptions::default());
        assert!(p.contains('o'));
        assert!(p.contains('+'));
        assert!(p.contains("o a"));
        assert!(p.contains("+ b"));
        assert!(p.contains("log"));
    }

    #[test]
    fn monotone_series_rises_left_to_right() {
        let p = render_plot(&sample(), PlotOptions::default());
        // The first 'o' (leftmost) must be on a lower row than the last.
        let rows: Vec<(usize, usize)> = p
            .lines()
            .enumerate()
            .flat_map(|(r, l)| {
                l.char_indices()
                    .filter(move |(_, ch)| *ch == 'o')
                    .map(move |(c, _)| (r, c))
            })
            .collect();
        let leftmost = rows.iter().min_by_key(|(_, c)| *c).unwrap();
        let rightmost = rows.iter().max_by_key(|(_, c)| *c).unwrap();
        assert!(
            leftmost.0 > rightmost.0,
            "left {leftmost:?} right {rightmost:?}"
        );
    }

    #[test]
    fn empty_figure_is_harmless() {
        let f = FigureData {
            id: "e",
            title: "empty".into(),
            x_label: "x",
            y_label: "y",
            series: vec![],
            notes: vec![],
        };
        assert!(render_plot(&f, PlotOptions::default()).contains("no data"));
    }

    #[test]
    fn si_formatting() {
        assert_eq!(format_si(12.0), "12");
        assert_eq!(format_si(49152.0), "49.2k");
        assert_eq!(format_si(1.25), "1.25");
    }

    #[test]
    fn real_figures_plot_without_panicking() {
        for f in crate::all_figures() {
            let _ = render_plot(&f, PlotOptions::default());
        }
    }
}
