//! The reproduction report: every checkable claim of the paper evaluated
//! live against the models, rendered as a markdown table.
//!
//! `figures --report` prints it; the tests require every claim to hold,
//! so the report can never silently drift from the code.

use machine::{hopper_ii, jaguarpf, lens, yona};
use perfmodel::cpu::{best_cpu_gf, CpuImpl};
use perfmodel::gpu::{GpuImpl, GpuScenario};
use perfmodel::sweep::{best_gf, best_gpu_gf, AnyImpl};
use simgpu::timing::best_block;
use simgpu::GpuSpec;

/// One evaluated claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short identifier.
    pub id: &'static str,
    /// Where the paper makes the claim.
    pub source: &'static str,
    /// What the paper says.
    pub paper: String,
    /// What the models produce.
    pub measured: String,
    /// Whether the reproduction satisfies the claim.
    pub holds: bool,
}

fn claim(
    id: &'static str,
    source: &'static str,
    paper: impl Into<String>,
    measured: impl Into<String>,
    holds: bool,
) -> Claim {
    Claim {
        id,
        source,
        paper: paper.into(),
        measured: measured.into(),
        holds,
    }
}

/// Evaluate every claim.
pub fn evaluate_claims() -> Vec<Claim> {
    let mut out = Vec::new();
    let y = yona();
    let l = lens();
    let j = jaguarpf();
    let h = hopper_ii();

    // --- Section V-E anchors.
    let resident = GpuScenario::new(&y, 12, 12)
        .with_block((32, 8))
        .gf(GpuImpl::Resident);
    let f = GpuScenario::new(&y, 12, 12)
        .with_block((32, 8))
        .gf(GpuImpl::BulkSync);
    let g = GpuScenario::new(&y, 12, 12)
        .with_block((32, 8))
        .gf(GpuImpl::Streams);
    let i = GpuScenario::new(&y, 12, 6)
        .with_block((32, 8))
        .with_thickness(3)
        .gf(GpuImpl::HybridOverlap);
    for (id, paper_v, got) in [
        ("anchor-resident", 86.0, resident),
        ("anchor-ivf", 24.0, f),
        ("anchor-ivg", 35.0, g),
        ("anchor-ivi", 82.0, i),
    ] {
        out.push(claim(
            id,
            "§V-E",
            format!("{paper_v} GF (one Yona node)"),
            format!("{got:.1} GF"),
            (got - paper_v).abs() / paper_v < 0.25,
        ));
    }
    let best_i = best_gpu_gf(&y, GpuImpl::HybridOverlap, 12, (32, 8)).gf;
    out.push(claim(
        "ivi-under-resident",
        "§VI",
        "IV-I nearly matches, but does not exceed, GPU-resident",
        format!("{best_i:.1} vs {resident:.1} GF"),
        best_i < resident && best_i > 0.85 * resident,
    ));

    // --- Figures 3/4: crossovers.
    let cross = |m: &machine::Machine| -> Option<usize> {
        let base = m.cores_per_node();
        (0..16)
            .map(|e| base << e)
            .take_while(|&c| c <= 49152)
            .find(|&c| {
                best_cpu_gf(m, CpuImpl::BulkSync, c).0 > best_cpu_gf(m, CpuImpl::Nonblocking, c).0
                    && c > base
            })
    };
    let cj = cross(&j);
    let ch = cross(&h);
    out.push(claim(
        "fig3-crossover",
        "Fig. 3",
        "bulk-sync overtakes nonblocking around 4-6k cores on JaguarPF",
        format!("{cj:?} cores"),
        matches!(cj, Some(c) if (3000..=13000).contains(&c)),
    ));
    out.push(claim(
        "fig4-crossover-later",
        "Fig. 4",
        "the crossover is much later on Hopper II",
        format!("JaguarPF {cj:?} vs Hopper {ch:?}"),
        match (cj, ch) {
            (Some(a), Some(b)) => b >= 2 * a,
            _ => false,
        },
    ));
    let d_lags = [192usize, 1536, 12288].iter().all(|&c| {
        best_cpu_gf(&j, CpuImpl::ThreadOverlap, c).0
            < best_cpu_gf(&j, CpuImpl::BulkSync, c)
                .0
                .max(best_cpu_gf(&j, CpuImpl::Nonblocking, c).0)
    });
    out.push(claim(
        "ivd-lags",
        "Figs. 3/4",
        "the OpenMP-thread overlap consistently lags",
        format!("lags at all sampled core counts: {d_lags}"),
        d_lags,
    ));

    // --- Figures 5/6: threads per task.
    let low_t = best_cpu_gf(&j, CpuImpl::BulkSync, 12).1;
    let high_t = best_cpu_gf(&j, CpuImpl::BulkSync, 12288).1;
    out.push(claim(
        "fig5-threads-grow",
        "Fig. 5",
        "the best threads/task generally increases with core count",
        format!("{low_t} at 12 cores -> {high_t} at 12288"),
        high_t > low_t,
    ));
    let never24 = (0..12).all(|e| best_cpu_gf(&h, CpuImpl::BulkSync, 24 << e).1 != 24);
    out.push(claim(
        "fig6-24-never",
        "Fig. 6",
        "24 threads/task is never optimal on Hopper II",
        format!("verified over 12 core counts: {never24}"),
        never24,
    ));

    // --- Figures 7/8: block shapes.
    let b1060 = best_block(&GpuSpec::tesla_c1060(), 420).0;
    let b2050 = best_block(&GpuSpec::tesla_c2050(), 420).0;
    out.push(claim(
        "fig7-block",
        "Fig. 7",
        "best C1060 block is 32x11",
        format!("{}x{}", b1060.0, b1060.1),
        b1060 == (32, 11),
    ));
    out.push(claim(
        "fig8-block",
        "Fig. 8",
        "best C2050 block is 32x8",
        format!("{}x{}", b2050.0, b2050.1),
        b2050 == (32, 8),
    ));

    // --- Figures 9/10.
    let lens_cores = 8 * 16;
    let hybrid_l = best_gpu_gf(&l, GpuImpl::HybridOverlap, lens_cores, (32, 11))
        .gf
        .max(best_gpu_gf(&l, GpuImpl::HybridBulkSync, lens_cores, (32, 11)).gf);
    let cpu_l = AnyImpl::ALL[1..4]
        .iter()
        .map(|im| best_gf(&l, *im, lens_cores, (32, 11)).gf)
        .fold(0.0f64, f64::max);
    let gpu_l = best_gpu_gf(&l, GpuImpl::BulkSync, lens_cores, (32, 11))
        .gf
        .max(best_gpu_gf(&l, GpuImpl::Streams, lens_cores, (32, 11)).gf);
    out.push(claim(
        "fig9-superadditive",
        "Fig. 9",
        "best CPU-GPU exceeds best-CPU + best-GPU-computation on Lens",
        format!("{hybrid_l:.0} vs {cpu_l:.0} + {gpu_l:.0} GF (8 nodes)"),
        hybrid_l > cpu_l + gpu_l,
    ));
    let yona_cores = 16 * 12;
    let i_y = best_gpu_gf(&y, GpuImpl::HybridOverlap, yona_cores, (32, 8)).gf;
    let cpu_y = AnyImpl::ALL[1..4]
        .iter()
        .map(|im| best_gf(&y, *im, yona_cores, (32, 8)).gf)
        .fold(0.0f64, f64::max);
    out.push(claim(
        "fig10-4x",
        "Fig. 10",
        "best CPU-GPU > 4x best CPU-only on Yona",
        format!("{i_y:.0} vs {cpu_y:.0} GF ({:.1}x, 16 nodes)", i_y / cpu_y),
        i_y > 4.0 * cpu_y,
    ));
    let dominated = [GpuImpl::BulkSync, GpuImpl::Streams, GpuImpl::HybridBulkSync]
        .iter()
        .all(|&im| i_y >= 2.0 * best_gpu_gf(&y, im, yona_cores, (32, 8)).gf);
    out.push(claim(
        "fig10-2x",
        "§VI",
        "IV-I outperforms the other parallel implementations by >= 2x",
        format!("verified vs IV-F/G/H at 16 Yona nodes: {dominated}"),
        dominated,
    ));

    // --- Figures 11/12.
    let t_low = best_gpu_gf(&l, GpuImpl::HybridOverlap, 16, (32, 11)).thickness;
    let t_high = best_gpu_gf(&l, GpuImpl::HybridOverlap, 31 * 16, (32, 11)).thickness;
    out.push(claim(
        "fig11-thickness",
        "Fig. 11",
        "the best box width decreases with increasing core count",
        format!("thickness {t_low} (1 node) -> {t_high} (31 nodes)"),
        t_high <= t_low,
    ));
    let b = best_gpu_gf(&y, GpuImpl::HybridOverlap, 8 * 12, (32, 8));
    out.push(claim(
        "fig12-veneer",
        "Fig. 12 / §V-E",
        "the best Yona box is a thin veneer with few tasks per node",
        format!("thickness {}, {} task(s)/node", b.thickness, 12 / b.threads),
        b.thickness <= 4 && 12 / b.threads <= 2,
    ));

    // --- Section V-C: 2-D vs 3-D blocks.
    let block_claim = [GpuSpec::tesla_c1060(), GpuSpec::tesla_c2050()]
        .iter()
        .all(|spec| {
            simgpu::timing::best_block(spec, 420).1 > simgpu::timing::best_block_3d(spec).1
        });
    out.push(claim(
        "2d-beats-3d-blocks",
        "§V-C",
        "2-D blocks beat 3-D blocks (better memory reuse)",
        format!("best 2-D GF > best 3-D GF on both GPUs: {block_claim}"),
        block_claim,
    ));

    // --- Stability (Section II).
    let stable = advect_core::is_stable(advect_core::Velocity::unit_diagonal(), 1.0)
        && !advect_core::is_stable(advect_core::Velocity::unit_diagonal(), 1.05);
    out.push(claim(
        "stability-bound",
        "§II",
        "numerically stable exactly up to the maximum stated nu",
        format!("von Neumann analysis confirms the bound: {stable}"),
        stable,
    ));

    out
}

/// Render claims as a markdown table.
pub fn render_markdown(claims: &[Claim]) -> String {
    let mut out = String::from(
        "# Reproduction report (generated)\n\n\
         | id | source | paper | reproduction | holds |\n\
         |---|---|---|---|---|\n",
    );
    for c in claims {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            c.id,
            c.source,
            c.paper,
            c.measured,
            if c.holds { "✓" } else { "✗" }
        ));
    }
    let held = claims.iter().filter(|c| c.holds).count();
    out.push_str(&format!("\n{held}/{} claims hold.\n", claims.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_holds() {
        let claims = evaluate_claims();
        assert!(claims.len() >= 15, "only {} claims evaluated", claims.len());
        for c in &claims {
            assert!(
                c.holds,
                "claim {} failed: paper '{}', measured '{}'",
                c.id, c.paper, c.measured
            );
        }
    }

    #[test]
    fn markdown_renders_all_rows() {
        let claims = evaluate_claims();
        let md = render_markdown(&claims);
        for c in &claims {
            assert!(md.contains(c.id));
        }
        assert!(md.contains(&format!("{}/{} claims hold", claims.len(), claims.len())));
    }
}
