//! Figures 7 and 8: GPU-resident performance vs. thread-block size.

use crate::data::{FigureData, Series};
use advect_core::flops::PAPER_GRID;
use advect_core::sweep::SweepPool;
use simgpu::timing::resident_gigaflops;
use simgpu::GpuSpec;

/// Block-size sweep for one GPU: one series per x extent, y on the x axis
/// (matching the paper's presentation).
fn block_sweep(id: &'static str, spec: &GpuSpec, system: &str) -> FigureData {
    // One sweep task per x extent; the pool returns the series in the
    // [16, 32, 64, 128] submission order, matching the serial loop.
    let series = SweepPool::global().map(&[16usize, 32, 64, 128], |&bx| {
        let mut points = Vec::new();
        for by in 1..=spec.max_threads_per_block / bx {
            let gf = resident_gigaflops(spec, PAPER_GRID, (bx, by));
            if gf > 0.0 {
                points.push((by as f64, gf));
            }
        }
        Series {
            label: format!("x = {bx}"),
            points,
        }
    });
    // Record the argmax in the notes (the paper's headline per figure).
    let mut best = ((0usize, 0usize), 0.0f64);
    for s in &series {
        let bx: usize = s.label[4..].parse().expect("label encodes x");
        for &(by, gf) in &s.points {
            if gf > best.1 {
                best = ((bx, by as usize), gf);
            }
        }
    }
    FigureData {
        id,
        title: format!(
            "GPU-resident implementation on {system} ({}) for a variety of 2-D block sizes",
            spec.name
        ),
        x_label: "block y",
        y_label: "GF",
        series,
        notes: vec![format!(
            "best block: {}x{} at {:.1} GF",
            best.0 .0, best.0 .1, best.1
        )],
    }
}

/// Figure 7: Lens (Tesla C1060). Paper's best: 32×11.
pub fn fig07() -> FigureData {
    block_sweep("fig07", &GpuSpec::tesla_c1060(), "Lens")
}

/// Figure 8: Yona (Tesla C2050). Paper's best: 32×8.
pub fn fig08() -> FigureData {
    block_sweep("fig08", &GpuSpec::tesla_c2050(), "Yona")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_best_is_32x11() {
        let f = fig07();
        assert!(f.notes[0].contains("32x11"), "{}", f.notes[0]);
    }

    #[test]
    fn fig08_best_is_32x8() {
        let f = fig08();
        assert!(f.notes[0].contains("32x8"), "{}", f.notes[0]);
    }

    #[test]
    fn x32_series_dominates_x16() {
        for f in [fig07(), fig08()] {
            let max_of = |label: &str| -> f64 {
                f.series
                    .iter()
                    .find(|s| s.label == label)
                    .unwrap()
                    .points
                    .iter()
                    .map(|p| p.1)
                    .fold(0.0, f64::max)
            };
            assert!(max_of("x = 32") > max_of("x = 16"), "{}", f.id);
            assert!(max_of("x = 32") > max_of("x = 128"), "{}", f.id);
        }
    }

    #[test]
    fn block_limits_respected() {
        // C1060 allows at most 512 threads: the x=32 series stops at y=16.
        let f = fig07();
        let s32 = f.series.iter().find(|s| s.label == "x = 32").unwrap();
        assert!(s32.points.iter().all(|p| p.0 <= 16.0));
        // C2050 allows 1024: y up to 32.
        let f8 = fig08();
        let s32 = f8.series.iter().find(|s| s.label == "x = 32").unwrap();
        assert!(s32.points.iter().any(|p| p.0 > 16.0));
    }
}
