//! # decomp
//!
//! Domain decomposition for the advection test case, following Section
//! IV-B of White & Dongarra (IPDPS 2011):
//!
//! * [`factor`] — split a task count into a 3-D process grid that makes
//!   subdomains "as close to cubic as possible", with no empty domains,
//!   and with the subdomain largest in x and smallest in z "to best
//!   enable memory locality";
//! * [`layout`] — per-rank subdomain extents (largest at most one point
//!   larger than the smallest in each dimension) and rank ↔ coordinate
//!   maps, with periodic 26-neighbor topology;
//! * [`exchange`] — the dimension-serialized 6-phase halo exchange that
//!   "reduces the number of neighbor exchanges from 26 to 6", as concrete
//!   send/receive regions plus tags;
//! * [`partition`] — interior/boundary splits for the overlap
//!   implementations: the boundary shell (impl. IV-C/D), the
//!   interior-thirds split along z (impl. IV-C), and the CPU-box /
//!   GPU-block partition of Figure 1 with tunable wall thickness
//!   (impls. IV-H/I).

pub mod exchange;
pub mod factor;
pub mod layout;
pub mod partition;

pub use exchange::{ExchangePlan, PhasePlan, Transfer};
pub use factor::factor3;
pub use layout::{Decomposition, Subdomain};
pub use partition::{shell_and_core, thirds_along_z, BoxPartition};
