//! The dimension-serialized 6-phase halo exchange.
//!
//! Each MPI task has 26 neighbors, but "the dimensions are serialized so
//! that the x corners can be sent to y neighbors, and x and y to z. This
//! well-established strategy reduces the number of neighbor exchanges from
//! 26 to 6." This module computes the exact send and receive regions for
//! each of the six transfers, for any subdomain extent and halo width.
//!
//! Regions are in interior-relative coordinates of the local field
//! (halo coordinates are negative or ≥ the extent). Tags encode
//! *which plane* was sent — `2·dim` for a low plane, `2·dim + 1` for a
//! high plane — so exchanges remain unambiguous even when a task is its
//! own neighbor or has the same task on both sides (process grids of
//! width 1 or 2 in a dimension).

use advect_core::field::Range3;

/// One of the six transfers of a full halo exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Dimension of the exchange (0 = x, 1 = y, 2 = z).
    pub dim: usize,
    /// Direction of the neighbor this transfer **sends to**: -1 or +1.
    /// The matching receive comes from the opposite neighbor.
    pub send_dir: i32,
    /// Interior region packed and sent.
    pub send_region: Range3,
    /// Halo region the received data is unpacked into.
    pub recv_region: Range3,
    /// Tag attached to the sent message.
    pub send_tag: u64,
    /// Tag expected on the received message.
    pub recv_tag: u64,
}

impl Transfer {
    /// Number of points moved in each direction.
    pub fn message_len(&self) -> usize {
        self.send_region.len()
    }
}

/// Both transfers of one dimension's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasePlan {
    /// Dimension of this phase.
    pub dim: usize,
    /// The low-plane and high-plane transfers.
    pub transfers: [Transfer; 2],
}

/// The full 3-phase (6-transfer) halo-exchange plan for one subdomain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangePlan {
    /// Subdomain interior extent.
    pub extent: (usize, usize, usize),
    /// Halo width.
    pub halo: usize,
    /// Phases in execution order: x, then y, then z.
    pub phases: [PhasePlan; 3],
}

impl ExchangePlan {
    /// Build the plan for a subdomain of the given interior extent and
    /// halo width.
    pub fn new(extent: (usize, usize, usize), halo: usize) -> Self {
        assert!(halo > 0, "halo width must be positive");
        let n = [extent.0 as i64, extent.1 as i64, extent.2 as i64];
        let h = halo as i64;
        // Range of dimension `d` during phase `phase`: dimensions already
        // exchanged are extended into the halo; later dimensions are
        // interior-only.
        let span = |d: usize, phase: usize| -> (i64, i64) {
            if d < phase {
                (-h, n[d] + h)
            } else {
                (0, n[d])
            }
        };
        let phases = [0usize, 1, 2].map(|dim| {
            let make = |send_dir: i32| -> Transfer {
                let (send_x, recv_x) = if send_dir < 0 {
                    // Send my low planes to the minus neighbor; receive the
                    // plus neighbor's low planes into my high halo.
                    ((0, h), (n[dim], n[dim] + h))
                } else {
                    // Send my high planes; receive into my low halo.
                    ((n[dim] - h, n[dim]), (-h, 0))
                };
                let mut send = [span(0, dim), span(1, dim), span(2, dim)];
                let mut recv = send;
                send[dim] = send_x;
                recv[dim] = recv_x;
                // Tag names the plane that was sent: low or high. The
                // receive pairing is symmetric: my low-plane send (to the
                // minus neighbor) matches the plus neighbor's low-plane
                // send arriving in my high halo — the same tag.
                let send_tag = 2 * dim as u64 + u64::from(send_dir > 0);
                let recv_tag = send_tag;
                Transfer {
                    dim,
                    send_dir,
                    send_region: Range3::new(send[0], send[1], send[2]),
                    recv_region: Range3::new(recv[0], recv[1], recv[2]),
                    send_tag,
                    recv_tag,
                }
            };
            PhasePlan {
                dim,
                transfers: [make(-1), make(1)],
            }
        });
        Self {
            extent,
            halo,
            phases,
        }
    }

    /// Total points sent per full exchange (both directions, all phases).
    pub fn total_sent(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| p.transfers.iter())
            .map(|t| t.message_len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_recv_volumes_match() {
        let plan = ExchangePlan::new((5, 7, 9), 1);
        for phase in &plan.phases {
            for t in &phase.transfers {
                assert_eq!(t.send_region.len(), t.recv_region.len());
                assert!(t.message_len() > 0);
            }
        }
    }

    #[test]
    fn phase_extents_grow_with_serialization() {
        let plan = ExchangePlan::new((4, 4, 4), 1);
        // x phase: 1×4×4 planes.
        assert_eq!(plan.phases[0].transfers[0].message_len(), 16);
        // y phase: (4+2)×1×4 planes — includes x halo (corners ride along).
        assert_eq!(plan.phases[1].transfers[0].message_len(), 24);
        // z phase: (4+2)×(4+2)×1 planes.
        assert_eq!(plan.phases[2].transfers[0].message_len(), 36);
    }

    #[test]
    fn six_transfers_cover_full_halo() {
        // The union of recv regions plus the interior must equal the full
        // allocation: every halo point is written exactly once.
        let (nx, ny, nz) = (3usize, 4, 5);
        let plan = ExchangePlan::new((nx, ny, nz), 1);
        let mut counts = vec![vec![vec![0u8; nz + 2]; ny + 2]; nx + 2];
        for phase in &plan.phases {
            for t in &phase.transfers {
                for (x, y, z) in t.recv_region.iter() {
                    counts[(x + 1) as usize][(y + 1) as usize][(z + 1) as usize] += 1;
                }
            }
        }
        for x in -1i64..=nx as i64 {
            for y in -1i64..=ny as i64 {
                for z in -1i64..=nz as i64 {
                    let interior = x >= 0
                        && x < nx as i64
                        && y >= 0
                        && y < ny as i64
                        && z >= 0
                        && z < nz as i64;
                    let c = counts[(x + 1) as usize][(y + 1) as usize][(z + 1) as usize];
                    if interior {
                        assert_eq!(c, 0, "interior point ({x},{y},{z}) written by exchange");
                    } else {
                        assert_eq!(c, 1, "halo point ({x},{y},{z}) written {c} times");
                    }
                }
            }
        }
    }

    #[test]
    fn send_regions_are_interior_or_previously_received() {
        // A send region may only contain interior points or halo points in
        // dimensions exchanged in *earlier* phases.
        let (nx, ny, nz) = (4i64, 5, 6);
        let plan = ExchangePlan::new((4, 5, 6), 1);
        for (pi, phase) in plan.phases.iter().enumerate() {
            for t in &phase.transfers {
                for (x, y, z) in t.send_region.iter() {
                    let halo_dims: Vec<usize> = [(x, nx), (y, ny), (z, nz)]
                        .iter()
                        .enumerate()
                        .filter(|(_, &(v, n))| v < 0 || v >= n)
                        .map(|(d, _)| d)
                        .collect();
                    for d in halo_dims {
                        assert!(d < pi, "phase {pi} sends halo of dim {d} not yet exchanged");
                    }
                }
            }
        }
    }

    #[test]
    fn tags_disambiguate_two_wide_grids() {
        let plan = ExchangePlan::new((4, 4, 4), 1);
        for phase in &plan.phases {
            let [a, b] = &phase.transfers;
            // The two messages a rank can receive from the *same* peer in
            // one phase must carry different tags.
            assert_ne!(a.recv_tag, b.recv_tag);
            assert_ne!(a.send_tag, b.send_tag);
            // A transfer's receive expects the peer's *same-direction*
            // send: my low-plane send pairs with the plus neighbor's
            // low-plane send landing in my high halo.
            assert_eq!(a.send_tag, a.recv_tag);
            assert_eq!(b.send_tag, b.recv_tag);
        }
    }

    #[test]
    fn halo_width_two_scales_regions() {
        let plan = ExchangePlan::new((6, 6, 6), 2);
        assert_eq!(plan.phases[0].transfers[0].message_len(), 2 * 6 * 6);
        assert_eq!(plan.phases[1].transfers[0].message_len(), 10 * 2 * 6);
        assert_eq!(plan.phases[2].transfers[0].message_len(), 10 * 10 * 2);
    }

    #[test]
    fn total_sent_counts_all_six() {
        let plan = ExchangePlan::new((4, 4, 4), 1);
        assert_eq!(plan.total_sent(), 2 * (16 + 24 + 36));
    }
}
