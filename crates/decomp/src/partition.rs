//! Interior/boundary partitions used by the overlap implementations.
//!
//! * [`shell_and_core`] — split a region into a core and a 6-wall shell of
//!   given thickness. With thickness 1 this is the paper's
//!   interior/boundary split ("boundary points are those that touch halo
//!   points", Section IV-C/D). With larger thickness it is the CPU box of
//!   Figure 1.
//! * [`thirds_along_z`] — partition the interior into thirds along z, one
//!   third per communication dimension (Section IV-C).
//! * [`BoxPartition`] — the CPU-box / GPU-block decomposition of Figure 1
//!   with all the derived interface regions the hybrid implementations
//!   need (GPU halo ring, GPU inner boundary, per-dimension CPU walls).

use advect_core::field::Range3;

/// Wall index order: x-low, x-high, y-low, y-high, z-low, z-high.
pub const WALL_ORDER: [(usize, i32); 6] = [(0, -1), (0, 1), (1, -1), (1, 1), (2, -1), (2, 1)];

/// Split `region` into a core (shrunk by `t` on every side) and six
/// disjoint walls that tile the rest. The x walls span the full y/z
/// extent, the y walls span the remaining x and full z, the z walls cover
/// the remaining center columns — so the union of core and walls is
/// exactly `region` with no overlaps, for any thickness (a thickness
/// larger than half the extent produces an empty core and clamped walls).
pub fn shell_and_core(region: Range3, t: usize) -> (Range3, [Range3; 6]) {
    let t = t as i64;
    let clamp_cut = |lo: i64, hi: i64| -> (i64, i64) {
        let l = (lo + t).min(hi);
        let r = (hi - t).max(l);
        (l, r)
    };
    let (xl, xr) = clamp_cut(region.x.0, region.x.1);
    let (yl, yr) = clamp_cut(region.y.0, region.y.1);
    let (zl, zr) = clamp_cut(region.z.0, region.z.1);
    let core = Range3::new((xl, xr), (yl, yr), (zl, zr));
    let walls = [
        // x walls: full y and z extent.
        Range3::new((region.x.0, xl), region.y, region.z),
        Range3::new((xr, region.x.1), region.y, region.z),
        // y walls: center x, full z.
        Range3::new((xl, xr), (region.y.0, yl), region.z),
        Range3::new((xl, xr), (yr, region.y.1), region.z),
        // z walls: center x and y.
        Range3::new((xl, xr), (yl, yr), (region.z.0, zl)),
        Range3::new((xl, xr), (yl, yr), (zr, region.z.1)),
    ];
    (core, walls)
}

/// Split a region into up-to-three z-chunks of near-equal size
/// (Section IV-C: "partition the interior points into thirds along the z
/// dimension", one third overlapped with each communication dimension).
pub fn thirds_along_z(region: Range3) -> [Range3; 3] {
    let z0 = region.z.0;
    let z1 = region.z.1;
    let n = (z1 - z0).max(0);
    let c1 = z0 + n / 3;
    let c2 = z0 + 2 * n / 3;
    [
        Range3::new(region.x, region.y, (z0, c1)),
        Range3::new(region.x, region.y, (c1, c2)),
        Range3::new(region.x, region.y, (c2, z1)),
    ]
}

/// The CPU-box / GPU-block partition of Figure 1.
///
/// The GPU computes an interior block; the CPU computes the enclosing box
/// whose wall thickness is the tunable load-balance parameter. Both
/// partitions also need one-point interface rings:
///
/// * the GPU needs the innermost CPU ring as halo (`gpu_halo_ring`),
/// * the CPU walls need the outermost GPU ring as "inner halo"
///   (`gpu_boundary_ring`), which the GPU computes in dedicated boundary
///   kernels and ships back each step.
/// ```
/// use decomp::BoxPartition;
/// // A 10³ subdomain with a 2-point CPU veneer:
/// let p = BoxPartition::new((10, 10, 10), 2);
/// assert_eq!(p.gpu_points(), 6 * 6 * 6);
/// assert_eq!(p.cpu_points() + p.gpu_points(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct BoxPartition {
    /// Local subdomain interior extent.
    pub extent: (usize, usize, usize),
    /// CPU wall thickness (0 = everything on the GPU).
    pub thickness: usize,
    /// The GPU's interior block.
    pub gpu_block: Range3,
    /// The six CPU walls tiling the box (order: [`WALL_ORDER`]).
    pub cpu_walls: [Range3; 6],
    /// The GPU block's outermost one-point shell — computed by the GPU
    /// boundary kernels, shipped to the CPU each step (6 walls + core of
    /// the block; only the walls are the ring).
    pub gpu_boundary_ring: [Range3; 6],
    /// The GPU block's deep interior (block minus the boundary ring) —
    /// computed by the GPU interior kernel.
    pub gpu_deep_interior: Range3,
    /// The innermost one-point shell of the CPU box (CPU points adjacent
    /// to the GPU block) — shipped to the GPU as halo each step.
    pub gpu_halo_ring: [Range3; 6],
}

impl BoxPartition {
    /// Build the partition for a subdomain of the given extent and CPU
    /// wall thickness.
    pub fn new(extent: (usize, usize, usize), thickness: usize) -> Self {
        let full = Range3::new(
            (0, extent.0 as i64),
            (0, extent.1 as i64),
            (0, extent.2 as i64),
        );
        let (gpu_block, cpu_walls) = shell_and_core(full, thickness);
        let (gpu_deep_interior, gpu_boundary_ring) = shell_and_core(gpu_block, 1);
        // The halo ring: the one-point shell just outside the GPU block.
        // For thickness ≥ 1 this is the innermost shell of the CPU box;
        // for thickness 0 (no CPU box — implementations IV-F/G) it is the
        // subdomain's MPI halo itself.
        let grown = Range3::new(
            (gpu_block.x.0 - 1, gpu_block.x.1 + 1),
            (gpu_block.y.0 - 1, gpu_block.y.1 + 1),
            (gpu_block.z.0 - 1, gpu_block.z.1 + 1),
        );
        let mut gpu_halo_ring = shell_and_core(grown, 1).1;
        if gpu_block.is_empty() {
            // No GPU block: no interface rings.
            gpu_halo_ring = [Range3::new((0, 0), (0, 0), (0, 0)); 6];
        }
        Self {
            extent,
            thickness,
            gpu_block,
            cpu_walls,
            gpu_boundary_ring,
            gpu_deep_interior,
            gpu_halo_ring,
        }
    }

    /// Number of points the CPU computes.
    pub fn cpu_points(&self) -> usize {
        self.cpu_walls.iter().map(|w| w.len()).sum()
    }

    /// Number of points the GPU computes.
    pub fn gpu_points(&self) -> usize {
        self.gpu_block.len()
    }

    /// Points shipped CPU→GPU per step (halo ring).
    pub fn h2d_points(&self) -> usize {
        self.gpu_halo_ring.iter().map(|r| r.len()).sum()
    }

    /// Points shipped GPU→CPU per step (boundary ring).
    pub fn d2h_points(&self) -> usize {
        self.gpu_boundary_ring.iter().map(|r| r.len()).sum()
    }

    /// The CPU walls of one dimension `(low, high)`, for the per-dimension
    /// overlap of implementation IV-I.
    pub fn cpu_walls_of_dim(&self, dim: usize) -> (Range3, Range3) {
        (self.cpu_walls[2 * dim], self.cpu_walls[2 * dim + 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_tiles(region: Range3, parts: &[Range3]) {
        // Every point of `region` covered exactly once.
        let vol: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(vol, region.len(), "total volume mismatch");
        for (i, a) in parts.iter().enumerate() {
            for b in parts.iter().skip(i + 1) {
                assert!(a.intersect(b).is_empty(), "parts overlap: {a:?} vs {b:?}");
            }
            assert_eq!(a.intersect(&region).len(), a.len(), "part escapes region");
        }
    }

    #[test]
    fn shell_and_core_tile_for_thickness_one() {
        let region = Range3::new((0, 6), (0, 7), (0, 8));
        let (core, walls) = shell_and_core(region, 1);
        assert_eq!(core, Range3::new((1, 5), (1, 6), (1, 7)));
        let mut parts = vec![core];
        parts.extend(walls);
        assert_tiles(region, &parts);
    }

    #[test]
    fn shell_and_core_tile_for_many_thicknesses() {
        let region = Range3::new((0, 9), (0, 11), (0, 7));
        for t in 0..8 {
            let (core, walls) = shell_and_core(region, t);
            let mut parts = vec![core];
            parts.extend(walls);
            assert_tiles(region, &parts);
        }
    }

    #[test]
    fn thickness_zero_is_all_core() {
        let region = Range3::new((0, 5), (0, 5), (0, 5));
        let (core, walls) = shell_and_core(region, 0);
        assert_eq!(core, region);
        assert!(walls.iter().all(|w| w.is_empty()));
    }

    #[test]
    fn oversized_thickness_empties_core() {
        let region = Range3::new((0, 4), (0, 4), (0, 4));
        let (core, walls) = shell_and_core(region, 3);
        assert!(core.is_empty());
        let vol: usize = walls.iter().map(|w| w.len()).sum();
        assert_eq!(vol, 64);
    }

    #[test]
    fn thirds_tile_the_region() {
        for nz in 1..12 {
            let region = Range3::new((0, 4), (0, 4), (0, nz));
            let thirds = thirds_along_z(region);
            let vol: usize = thirds.iter().map(|t| t.len()).sum();
            assert_eq!(vol, region.len());
            // Near-equal: sizes differ by at most one z plane.
            let mut sizes: Vec<i64> = thirds.iter().map(|t| t.z.1 - t.z.0).collect();
            sizes.sort_unstable();
            assert!(sizes[2] - sizes[0] <= 1, "nz = {nz}: {sizes:?}");
        }
    }

    #[test]
    fn box_partition_tiles_subdomain() {
        for t in 0..5 {
            let p = BoxPartition::new((10, 9, 8), t);
            let full = Range3::new((0, 10), (0, 9), (0, 8));
            let mut parts = vec![p.gpu_block];
            parts.extend(p.cpu_walls);
            assert_tiles(full, &parts);
            assert_eq!(p.cpu_points() + p.gpu_points(), 720);
        }
    }

    #[test]
    fn gpu_block_ring_plus_deep_interior_tile_block() {
        let p = BoxPartition::new((12, 12, 12), 2);
        let mut parts = vec![p.gpu_deep_interior];
        parts.extend(p.gpu_boundary_ring);
        assert_tiles(p.gpu_block, &parts);
    }

    #[test]
    fn halo_ring_is_adjacent_cpu_points() {
        let p = BoxPartition::new((10, 10, 10), 2);
        // Ring points are inside the subdomain, outside the GPU block, and
        // within distance 1 of the block.
        let full = Range3::new((0, 10), (0, 10), (0, 10));
        for r in &p.gpu_halo_ring {
            for (x, y, z) in r.iter() {
                assert!(full.contains(x, y, z));
                assert!(!p.gpu_block.contains(x, y, z));
                let near_x = x >= p.gpu_block.x.0 - 1 && x < p.gpu_block.x.1 + 1;
                let near_y = y >= p.gpu_block.y.0 - 1 && y < p.gpu_block.y.1 + 1;
                let near_z = z >= p.gpu_block.z.0 - 1 && z < p.gpu_block.z.1 + 1;
                assert!(near_x && near_y && near_z, "({x},{y},{z}) not adjacent");
            }
        }
        // And the ring covers the whole one-point shell around the block.
        let expect: usize = {
            let grown = Range3::new(
                (p.gpu_block.x.0 - 1, p.gpu_block.x.1 + 1),
                (p.gpu_block.y.0 - 1, p.gpu_block.y.1 + 1),
                (p.gpu_block.z.0 - 1, p.gpu_block.z.1 + 1),
            );
            grown.len() - p.gpu_block.len()
        };
        assert_eq!(p.h2d_points(), expect);
    }

    #[test]
    fn thin_veneer_thickness_one() {
        // The paper's key configuration: a one-point CPU veneer.
        let p = BoxPartition::new((20, 20, 20), 1);
        assert_eq!(p.gpu_block, Range3::new((1, 19), (1, 19), (1, 19)));
        assert_eq!(p.cpu_points(), 20 * 20 * 20 - 18 * 18 * 18);
    }

    #[test]
    fn all_cpu_when_thickness_huge() {
        let p = BoxPartition::new((6, 6, 6), 10);
        assert_eq!(p.gpu_points(), 0);
        assert_eq!(p.cpu_points(), 216);
        assert_eq!(p.h2d_points(), 0);
        assert_eq!(p.d2h_points(), 0);
    }

    #[test]
    fn thickness_zero_ring_is_the_mpi_halo() {
        // With no CPU box (implementations IV-F/G) the GPU's halo ring is
        // the subdomain's halo: every ring point lies outside the interior
        // and within distance 1 of it.
        let p = BoxPartition::new((5, 6, 7), 0);
        assert_eq!(p.gpu_block, Range3::new((0, 5), (0, 6), (0, 7)));
        let full = p.gpu_block;
        let expected = (7 * 8 * 9) - (5 * 6 * 7);
        assert_eq!(p.h2d_points(), expected);
        for r in &p.gpu_halo_ring {
            for (x, y, z) in r.iter() {
                assert!(!full.contains(x, y, z));
                assert!((-1..=5).contains(&x) && (-1..=6).contains(&y) && (-1..=7).contains(&z));
            }
        }
        // The boundary ring the GPU ships out is the subdomain's skin.
        assert_eq!(p.d2h_points(), 5 * 6 * 7 - 3 * 4 * 5);
    }

    #[test]
    fn wall_dim_accessor_matches_order() {
        let p = BoxPartition::new((10, 10, 10), 2);
        let (lo, hi) = p.cpu_walls_of_dim(0);
        assert_eq!(lo, p.cpu_walls[0]);
        assert_eq!(hi, p.cpu_walls[1]);
        let (lo, hi) = p.cpu_walls_of_dim(2);
        assert_eq!(lo, p.cpu_walls[4]);
        assert_eq!(hi, p.cpu_walls[5]);
    }
}
