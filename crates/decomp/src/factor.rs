//! Near-cubic factorization of a task count into a 3-D process grid.
//!
//! The paper's data-distribution algorithm "gives each task a subdomain
//! that is as close to the same size as possible and as close to cubic as
//! possible, with the constraint that no task gets an empty domain", and
//! arranges that "the subdomain size is largest in the x dimension and
//! smallest in the z dimension, to best enable memory locality" (fewer
//! cuts along x keeps x-lines long and contiguous).

/// Choose process counts `(px, py, pz)` with `px·py·pz = ntasks` for a
/// global grid of `(gx, gy, gz)` points.
///
/// Among all factor triples that leave no task empty (`p_d ≤ g_d`), picks
/// the one whose subdomains are closest to cubic (minimum surface-to-volume
/// ratio of the average subdomain), breaking ties so that the subdomain is
/// largest in x and smallest in z (`px ≤ py ≤ pz` for a cubic grid).
///
/// Panics if no factor triple fits the grid — either `ntasks` exceeds the
/// number of grid points, or (e.g. for a prime `ntasks` larger than every
/// dimension) no axis-aligned split with non-empty subdomains exists.
pub fn factor3(ntasks: usize, (gx, gy, gz): (usize, usize, usize)) -> (usize, usize, usize) {
    assert!(ntasks > 0, "need at least one task");
    assert!(
        ntasks <= gx * gy * gz,
        "{ntasks} tasks cannot all get non-empty subdomains of a {gx}x{gy}x{gz} grid"
    );
    let mut best: Option<((usize, usize, usize), f64)> = None;
    for px in divisors(ntasks) {
        if px > gx {
            continue;
        }
        let rest = ntasks / px;
        for py in divisors(rest) {
            if py > gy {
                continue;
            }
            let pz = rest / py;
            if pz > gz {
                continue;
            }
            // Average subdomain dimensions.
            let sx = gx as f64 / px as f64;
            let sy = gy as f64 / py as f64;
            let sz = gz as f64 / pz as f64;
            // Surface-to-volume ratio; minimal for a cube.
            let cost = 2.0 * (sx * sy + sy * sz + sx * sz) / (sx * sy * sz);
            let candidate = ((px, py, pz), cost);
            best = match best {
                None => Some(candidate),
                Some((bp, bc)) => {
                    let better = cost < bc - 1e-12
                        || (cost < bc + 1e-12 && prefer_x_largest((px, py, pz), bp));
                    if better {
                        Some(candidate)
                    } else {
                        Some((bp, bc))
                    }
                }
            };
        }
    }
    best.unwrap_or_else(|| {
        panic!(
            "no axis-aligned factorization of {ntasks} tasks fits a              {gx}x{gy}x{gz} grid with non-empty subdomains"
        )
    })
    .0
}

/// Tie-break: prefer the triple with fewer cuts in x, then fewer in y
/// (subdomain largest in x, smallest in z).
fn prefer_x_largest(a: (usize, usize, usize), b: (usize, usize, usize)) -> bool {
    (a.0, a.1, a.2) < (b.0, b.1, b.2)
}

/// All divisors of `n`, ascending.
fn divisors(n: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: (usize, usize, usize) = (420, 420, 420);

    #[test]
    fn product_is_preserved() {
        for n in 1..=200 {
            let (px, py, pz) = factor3(n, G);
            assert_eq!(px * py * pz, n, "n = {n}");
        }
    }

    #[test]
    fn perfect_cubes_give_cubic_grids() {
        assert_eq!(factor3(1, G), (1, 1, 1));
        assert_eq!(factor3(8, G), (2, 2, 2));
        assert_eq!(factor3(27, G), (3, 3, 3));
        assert_eq!(factor3(64, G), (4, 4, 4));
        assert_eq!(factor3(125, G), (5, 5, 5));
        assert_eq!(factor3(343, G), (7, 7, 7));
    }

    #[test]
    fn x_gets_fewest_cuts() {
        // Subdomain largest in x ⇒ px ≤ py ≤ pz.
        for n in [2, 4, 6, 12, 24, 48, 96, 100, 500, 3000] {
            let (px, py, pz) = factor3(n, G);
            assert!(px <= py && py <= pz, "n = {n}: ({px},{py},{pz})");
        }
    }

    #[test]
    fn prime_task_counts_put_cuts_in_z() {
        assert_eq!(factor3(7, G), (1, 1, 7));
        assert_eq!(factor3(13, G), (1, 1, 13));
    }

    #[test]
    fn no_empty_domains_for_large_counts() {
        // 1024 tasks on a 8×8×8 grid: must not pick a dimension > 8.
        let (px, py, pz) = factor3(512, (8, 8, 8));
        assert_eq!((px, py, pz), (8, 8, 8));
        let (px, py, pz) = factor3(64, (4, 8, 64));
        assert!(px <= 4 && py <= 8 && pz <= 64);
        assert_eq!(px * py * pz, 64);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn too_many_tasks_panics() {
        factor3(100, (4, 4, 4));
    }

    #[test]
    #[should_panic(expected = "no axis-aligned factorization")]
    fn infeasible_prime_count_panics() {
        // 11 is prime and larger than every dimension of an 8x8x8 grid:
        // the only triple is 1x1x11, which does not fit.
        factor3(11, (8, 8, 8));
    }

    #[test]
    fn divisors_are_sorted_and_complete() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(49), vec![1, 7, 49]);
    }

    #[test]
    fn paper_scale_counts_factor_reasonably() {
        // Jaguar-scale task counts should produce balanced grids.
        let (px, py, pz) = factor3(12000, G);
        assert_eq!(px * py * pz, 12000);
        // Aspect ratio of the *subdomain* stays moderate.
        let (sx, sy, sz) = (420.0 / px as f64, 420.0 / py as f64, 420.0 / pz as f64);
        let max = sx.max(sy).max(sz);
        let min = sx.min(sy).min(sz);
        assert!(
            max / min <= 3.0,
            "aspect {} for ({px},{py},{pz})",
            max / min
        );
    }
}
