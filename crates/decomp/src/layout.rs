//! Per-rank subdomain layout and the periodic process topology.

use crate::factor::factor3;

/// One task's subdomain of the global grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subdomain {
    /// Global offset of interior point (0, 0, 0).
    pub offset: (usize, usize, usize),
    /// Interior extent.
    pub extent: (usize, usize, usize),
}

impl Subdomain {
    /// Number of interior points.
    pub fn len(&self) -> usize {
        self.extent.0 * self.extent.1 * self.extent.2
    }

    /// Whether the subdomain is empty (never true for valid decompositions).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a global point lies inside this subdomain.
    pub fn contains_global(&self, g: (usize, usize, usize)) -> bool {
        (0..3).all(|d| {
            let o = [self.offset.0, self.offset.1, self.offset.2][d];
            let e = [self.extent.0, self.extent.1, self.extent.2][d];
            let p = [g.0, g.1, g.2][d];
            p >= o && p < o + e
        })
    }
}

/// A full decomposition of a global grid over `ntasks` ranks.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Global grid extent.
    pub global: (usize, usize, usize),
    /// Process grid (px, py, pz).
    pub pgrid: (usize, usize, usize),
    /// Per-rank subdomains, indexed by rank.
    pub subdomains: Vec<Subdomain>,
}

impl Decomposition {
    /// Decompose `global` over `ntasks` ranks using the paper's algorithm:
    /// near-cubic process grid, block distribution with sizes differing by
    /// at most one point per dimension.
    pub fn new(ntasks: usize, global: (usize, usize, usize)) -> Self {
        let pgrid = factor3(ntasks, global);
        let starts = |g: usize, p: usize| -> Vec<usize> {
            // Block distribution: first (g % p) blocks get one extra point.
            let base = g / p;
            let rem = g % p;
            (0..=p).map(|i| i * base + i.min(rem)).collect()
        };
        let xs = starts(global.0, pgrid.0);
        let ys = starts(global.1, pgrid.1);
        let zs = starts(global.2, pgrid.2);
        let mut subdomains = Vec::with_capacity(ntasks);
        for rank in 0..ntasks {
            let (cx, cy, cz) = Self::coords_of(rank, pgrid);
            subdomains.push(Subdomain {
                offset: (xs[cx], ys[cy], zs[cz]),
                extent: (
                    xs[cx + 1] - xs[cx],
                    ys[cy + 1] - ys[cy],
                    zs[cz + 1] - zs[cz],
                ),
            });
        }
        Self {
            global,
            pgrid,
            subdomains,
        }
    }

    /// Number of ranks.
    pub fn ntasks(&self) -> usize {
        self.subdomains.len()
    }

    /// Process-grid coordinates of a rank (x fastest).
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        Self::coords_of(rank, self.pgrid)
    }

    fn coords_of(rank: usize, (px, py, _pz): (usize, usize, usize)) -> (usize, usize, usize) {
        (rank % px, (rank / px) % py, rank / (px * py))
    }

    /// Rank of process-grid coordinates (periodic wrap applied).
    pub fn rank_of(&self, c: (isize, isize, isize)) -> usize {
        let (px, py, pz) = self.pgrid;
        let w = |v: isize, p: usize| -> usize { v.rem_euclid(p as isize) as usize };
        let (cx, cy, cz) = (w(c.0, px), w(c.1, py), w(c.2, pz));
        cx + px * (cy + py * cz)
    }

    /// The rank's neighbor in direction `dir ∈ {-1, +1}` of dimension
    /// `dim ∈ {0, 1, 2}` with periodic wrap. May be the rank itself.
    pub fn neighbor(&self, rank: usize, dim: usize, dir: i32) -> usize {
        let (cx, cy, cz) = self.coords(rank);
        let mut c = (cx as isize, cy as isize, cz as isize);
        match dim {
            0 => c.0 += dir as isize,
            1 => c.1 += dir as isize,
            2 => c.2 += dir as isize,
            _ => panic!("dimension must be 0, 1, or 2"),
        }
        self.rank_of(c)
    }

    /// All 26 distinct-direction neighbors of a rank (may contain
    /// duplicates and the rank itself for small process grids).
    pub fn neighbors26(&self, rank: usize) -> Vec<usize> {
        let (cx, cy, cz) = self.coords(rank);
        let mut out = Vec::with_capacity(26);
        for dz in -1isize..=1 {
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if (dx, dy, dz) == (0, 0, 0) {
                        continue;
                    }
                    out.push(self.rank_of((cx as isize + dx, cy as isize + dy, cz as isize + dz)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subdomains_partition_the_grid() {
        for ntasks in [1, 2, 3, 5, 8, 12, 27, 40] {
            let d = Decomposition::new(ntasks, (13, 11, 17));
            let total: usize = d.subdomains.iter().map(|s| s.len()).sum();
            assert_eq!(total, 13 * 11 * 17, "ntasks = {ntasks}");
            assert!(d.subdomains.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn every_global_point_owned_exactly_once() {
        let d = Decomposition::new(10, (7, 6, 5));
        for x in 0..7 {
            for y in 0..6 {
                for z in 0..5 {
                    let owners = d
                        .subdomains
                        .iter()
                        .filter(|s| s.contains_global((x, y, z)))
                        .count();
                    assert_eq!(owners, 1, "point ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn extents_differ_by_at_most_one() {
        let d = Decomposition::new(9, (420, 420, 420));
        for dim in 0..3 {
            let sizes: Vec<usize> = d
                .subdomains
                .iter()
                .map(|s| [s.extent.0, s.extent.1, s.extent.2][dim])
                .collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            assert!(max - min <= 1, "dim {dim}: {max} vs {min}");
        }
    }

    #[test]
    fn cubic_count_divisor_gives_identical_cubes() {
        // 27 tasks, 3 | 420 ⇒ every task has the same cubic subdomain.
        let d = Decomposition::new(27, (420, 420, 420));
        assert_eq!(d.pgrid, (3, 3, 3));
        for s in &d.subdomains {
            assert_eq!(s.extent, (140, 140, 140));
        }
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomposition::new(24, (420, 420, 420));
        for rank in 0..24 {
            let c = d.coords(rank);
            assert_eq!(d.rank_of((c.0 as isize, c.1 as isize, c.2 as isize)), rank);
        }
    }

    #[test]
    fn neighbors_wrap_periodically() {
        let d = Decomposition::new(8, (8, 8, 8)); // 2×2×2
                                                  // In a 2-wide dimension, both neighbors are the same rank.
        let r = 0;
        assert_eq!(d.neighbor(r, 0, -1), d.neighbor(r, 0, 1));
        assert_ne!(d.neighbor(r, 0, 1), r);
    }

    #[test]
    fn single_task_is_its_own_neighbor() {
        let d = Decomposition::new(1, (8, 8, 8));
        for dim in 0..3 {
            assert_eq!(d.neighbor(0, dim, -1), 0);
            assert_eq!(d.neighbor(0, dim, 1), 0);
        }
        assert!(d.neighbors26(0).iter().all(|&n| n == 0));
    }

    #[test]
    fn twenty_six_neighbors_listed() {
        let d = Decomposition::new(27, (27, 27, 27));
        let n = d.neighbors26(13);
        assert_eq!(n.len(), 26);
        // Center rank of a 3×3×3 grid: all neighbors distinct.
        let mut sorted = n.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 26);
    }
}
