//! Implementation IV-I: CPU and GPU computation partitioned for overlap
//! with nonblocking MPI and CPU-GPU communication.
//!
//! The most-extensive overlap, and the paper's best performer. Same
//! kernels and Figure 1 decomposition as IV-H, but:
//!
//! * the GPU interior runs on one stream while a second stream carries
//!   the halo-ring upload, the GPU boundary kernels, and the new
//!   boundary-ring download — so GPU compute, PCIe traffic, and CPU work
//!   all overlap;
//! * MPI communication in each dimension overlaps the computation of the
//!   CPU interior/inner-boundary points of that dimension's walls; the
//!   outer boundary points (which need MPI halos) come last;
//! * the new GPU boundary ring is downloaded *this* step into the new
//!   state, so the next step needs no blocking ring download — this is
//!   the decoupling of MPI communication from CPU-GPU communication that
//!   Section V-E identifies as the real win.

use crate::gpu_common::DeviceField;
use crate::halo::HaloBuffers;
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::{Field3, SharedField};
use advect_core::stencil::apply_stencil_cells_tiled;
use advect_core::team::ThreadTeam;
use decomp::partition::{shell_and_core, BoxPartition};
use decomp::ExchangePlan;
use simgpu::{Gpu, GpuSpec, StencilLaunch, Stream};
use simmpi::World;

/// The full-overlap hybrid implementation.
pub struct HybridOverlap;

impl HybridOverlap {
    /// Run and return the assembled global state (from rank 0).
    ///
    /// Panics if `cfg.thickness == 0`: the full-overlap schedule uploads
    /// the GPU's halo ring *before* the MPI exchange, which is only
    /// possible when a CPU veneer (thickness ≥ 1) separates the GPU block
    /// from the MPI halo — precisely the decoupling Section V-E credits
    /// for this implementation's performance. Thickness 0 is
    /// implementation IV-G's territory.
    pub fn run(cfg: &RunConfig, spec: &GpuSpec) -> Field3 {
        Self::run_with_report(cfg, spec).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig, spec: &GpuSpec) -> (Field3, crate::runner::RunReport) {
        assert!(
            cfg.thickness >= 1,
            "IV-I needs a CPU veneer (thickness >= 1); use IV-G for thickness 0"
        );
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "hybrid_overlap", rank);
            let sub = decomp_ref.subdomains[rank];
            let gpu = Gpu::new(spec.clone()).with_fault_plan(cfg.fault.gpu.for_rank(rank));
            gpu.install_tracer(tracer.clone());
            gpu.install_metrics(metrics_ref, rank);
            gpu.set_constant(cfg.problem.stencil().a);
            let mut cur = local_initial_field(cfg, decomp_ref, rank);
            let mut new = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
            let mut dev = DeviceField::from_host(&gpu, &cur);
            let part = BoxPartition::new(sub.extent, cfg.thickness);
            let plan = ExchangePlan::new(sub.extent, 1);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            let team = ThreadTeam::new(cfg.threads);
            let stencil = cfg.problem.stencil();
            let tile = cfg.tile_spec(cur.extents().0);
            let full = cur.interior_range();
            // Inner parts of walls (computable before MPI completes) vs.
            // outer boundary points (touching the MPI halo).
            let (inner1, outer_shell) = shell_and_core(full, 1);
            let s_halo = gpu.create_stream();
            comm.barrier();
            for _ in 0..cfg.steps {
                let step_t0 = step_hist.start();
                // 1. GPU interior kernel on the compute stream.
                if !part.gpu_deep_interior.is_empty() {
                    gpu.launch_stencil(
                        Stream::DEFAULT,
                        dev.cur,
                        dev.new,
                        StencilLaunch {
                            dims: dev.dims,
                            region: part.gpu_deep_interior,
                            block: cfg.block,
                            periodic: false,
                        },
                    );
                }
                // 2. Async halo-ring upload, boundary kernels, and new
                //    boundary-ring download, all on the halo stream.
                dev.regions_h2d(&gpu, s_halo, dev.cur, &part.gpu_halo_ring, &cur);
                for &face in &part.gpu_boundary_ring {
                    if face.is_empty() {
                        continue;
                    }
                    gpu.launch_stencil(
                        s_halo,
                        dev.cur,
                        dev.new,
                        StencilLaunch {
                            dims: dev.dims,
                            region: face,
                            block: cfg.block,
                            periodic: false,
                        },
                    );
                }
                dev.regions_d2h(&gpu, s_halo, dev.new, &part.gpu_boundary_ring, &mut new);
                // 3. Per-dimension: MPI phase overlapped with the inner
                //    points of that dimension's walls. `cur` is shared
                //    because the phase completion writes its halo while
                //    wall computation reads its interior — disjoint points,
                //    all routed through SharedField cells.
                {
                    let cur_shared = SharedField::new(&mut cur);
                    let writer = SharedField::new(&mut new);
                    for dim in 0..3 {
                        let phase = &plan.phases[dim];
                        let mut recvs = Vec::with_capacity(2);
                        for (i, t) in phase.transfers.iter().enumerate() {
                            let from = decomp_ref.neighbor(rank, t.dim, -t.send_dir);
                            recvs.push((i, comm.irecv(from, t.recv_tag)));
                        }
                        for (i, t) in phase.transfers.iter().enumerate() {
                            let to = decomp_ref.neighbor(rank, t.dim, t.send_dir);
                            let mut buf = halo_bufs.take(dim, i, t.send_region.len(), comm);
                            {
                                let _span = tracer.span(obs::Category::Pack, "halo.pack");
                                cur_shared.pack_into(t.send_region, &mut buf);
                            }
                            comm.send_pooled(to, t.send_tag, buf);
                        }
                        // Inner wall points of this dimension, overlapped
                        // with the communication just initiated.
                        let (lo, hi) = part.cpu_walls_of_dim(dim);
                        let walls = [lo.intersect(&inner1), hi.intersect(&inner1)];
                        let cur_ref = &cur_shared;
                        let writer_ref = &writer;
                        let throttle = comm.throttle_start();
                        {
                            let _span = tracer.span(obs::Category::ComputeVeneer, "walls.inner");
                            team.parallel(|ctx| {
                                for (i, w) in walls.iter().enumerate() {
                                    if i % ctx.num_threads == ctx.tid && !w.is_empty() {
                                        apply_stencil_cells_tiled(
                                            cur_ref, writer_ref, &stencil, *w, tile,
                                        );
                                    }
                                }
                            });
                        }
                        comm.throttle_end(throttle);
                        for (i, req) in recvs {
                            let data = req.wait();
                            {
                                let _span = tracer.span(obs::Category::Unpack, "halo.unpack");
                                cur_shared.unpack(phase.transfers[i].recv_region, &data);
                            }
                            halo_bufs.deposit(dim, i, data);
                        }
                    }
                    // 4. Outer boundary points of every wall (need halos).
                    let mut outer_regions = Vec::new();
                    for w in &part.cpu_walls {
                        for s in &outer_shell {
                            let r = w.intersect(s);
                            if !r.is_empty() {
                                outer_regions.push(r);
                            }
                        }
                    }
                    let cur_ref = &cur_shared;
                    let writer_ref = &writer;
                    let _span = tracer.span(obs::Category::ComputeVeneer, "walls.outer");
                    team.parallel(|ctx| {
                        for (i, w) in outer_regions.iter().enumerate() {
                            if i % ctx.num_threads == ctx.tid {
                                apply_stencil_cells_tiled(cur_ref, writer_ref, &stencil, *w, tile);
                            }
                        }
                    });
                }
                // 5. Synchronize the CUDA streams; advance the state.
                gpu.sync_device();
                for w in &part.cpu_walls {
                    cur.copy_region_from(&new, *w);
                }
                for r in &part.gpu_boundary_ring {
                    cur.copy_region_from(&new, *r);
                }
                dev.swap();
                step_hist.observe_since(step_t0);
            }
            comm.barrier();
            let mut final_host = cur.clone();
            if !part.gpu_block.is_empty() {
                gpu.sync_device();
                let data = gpu.read_untimed(dev.cur);
                for (x, y, z) in part.gpu_block.iter() {
                    *final_host.at_mut(x, y, z) = data[dev.dims.idx(x, y, z)];
                }
            }
            tracer.absorb(&gpu.timeline().to_trace_events());
            (
                assemble_global(cfg, decomp_ref, comm, &final_host),
                comm.stats(),
                comm.fault_stats(),
                Some(gpu.stats()),
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }
}
