//! Implementation IV-E: GPU resident.
//!
//! The whole problem lives in GPU global memory for the length of the
//! computation, with no memory exchanges with the CPU: the layout is
//! halo-free and the kernel's halo threads wrap around the global domain
//! to implement periodicity. The CPU issues one kernel call per step,
//! flipping the arguments between two state buffers. This is the
//! best-case scenario the parallel GPU implementations are measured
//! against (86 GF on Yona, Section V-E).

use crate::runner::{RunConfig, RunReport};
use advect_core::field::Field3;
use simgpu::{FieldDims, Gpu, GpuSpec, StencilLaunch, Stream};

/// The single-GPU resident implementation.
pub struct GpuResident;

impl GpuResident {
    /// Run on a device of the given spec; returns the final state.
    pub fn run(cfg: &RunConfig, spec: &GpuSpec) -> Field3 {
        assert_eq!(cfg.ntasks, 1, "IV-E runs on a single task");
        let gpu = Gpu::new(spec.clone());
        Self::run_on(cfg, &gpu)
    }

    /// Run on a fresh device, returning the final state plus a report
    /// carrying the device counters (and, when traced, the kernel-launch
    /// wall spans plus the device timeline bridged onto the virtual axis).
    pub fn run_with_report(cfg: &RunConfig, spec: &GpuSpec) -> (Field3, RunReport) {
        assert_eq!(cfg.ntasks, 1, "IV-E runs on a single task");
        let gpu = Gpu::new(spec.clone()).with_fault_plan(cfg.fault.gpu);
        let tracer = obs::Tracer::enabled(cfg.trace, 0, obs::Anchor::now());
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        gpu.install_tracer(tracer.clone());
        gpu.install_metrics(&metrics, 0);
        let out = Self::run_on(cfg, &gpu);
        tracer.absorb(&gpu.timeline().to_trace_events());
        let mut report = RunReport {
            comm: vec![simmpi::CommStats::default()],
            fault: vec![simmpi::FaultStats::default()],
            gpu: vec![gpu.stats()],
            metrics,
            ..RunReport::default()
        };
        if let Some(t) = crate::runner::finish_trace(&tracer) {
            report.traces.push(t);
        }
        (out, report)
    }

    /// Run on an existing device (lets callers inspect device stats).
    pub fn run_on(cfg: &RunConfig, gpu: &Gpu) -> Field3 {
        let n = cfg.problem.n;
        let dims = FieldDims {
            nx: n,
            ny: n,
            nz: n,
            halo: 0,
        };
        gpu.set_constant(cfg.problem.stencil().a);
        let init = cfg.problem.initial_field();
        let mut flat = vec![0.0; dims.len()];
        for (x, y, z) in dims.interior().iter() {
            flat[dims.idx(x, y, z)] = init.at(x, y, z);
        }
        let mut cur = gpu.alloc(dims.len());
        let mut new = gpu.alloc(dims.len());
        gpu.upload_untimed(cur, &flat);
        // The CPU and GPU synchronize immediately before timer calls; the
        // initial copy is excluded from measurement.
        gpu.sync_device();
        gpu.reset_clock();
        for _ in 0..cfg.steps {
            gpu.launch_stencil(
                Stream::DEFAULT,
                cur,
                new,
                StencilLaunch {
                    dims,
                    region: dims.interior(),
                    block: cfg.block,
                    periodic: true,
                },
            );
            std::mem::swap(&mut cur, &mut new);
        }
        gpu.sync_device();
        let data = gpu.read_untimed(cur);
        let mut out = Field3::new(n, n, n, 1);
        for (x, y, z) in dims.interior().iter() {
            *out.at_mut(x, y, z) = data[dims.idx(x, y, z)];
        }
        out
    }
}
