//! Implementation IV-D: MPI using OpenMP threading for overlap.
//!
//! Instead of nonblocking MPI, an asynchronous thread overlaps the
//! communication: the master thread (`!$omp master`) performs the
//! (blocking) MPI exchange and then joins the computation of interior
//! points, while the other threads begin computing interior points
//! immediately. The interior loop uses `schedule(guided)` — chunks
//! proportional to the remaining work divided by the number of threads —
//! so the late-joining master picks up whatever remains. An OpenMP
//! barrier ensures communication is complete before the boundary points
//! are computed.
//!
//! The concurrent halo mutation (master) and interior reads (workers) are
//! disjoint by the interior/boundary split; both go through
//! [`advect_core::field::SharedField`]'s `UnsafeCell` cells, keeping the
//! overlap sound.

use crate::halo::{exchange_halos_shared, HaloBuffers};
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::{Field3, Range3, SharedField};
use advect_core::stencil::{apply_stencil_cells_tiled, copy_region_slab};
use advect_core::team::{GuidedChunks, ThreadTeam};
use decomp::partition::shell_and_core;
use decomp::ExchangePlan;
use simmpi::World;

/// The OpenMP-thread-overlap distributed implementation.
pub struct ThreadOverlapMpi;

impl ThreadOverlapMpi {
    /// Run and return the assembled global state (from rank 0).
    pub fn run(cfg: &RunConfig) -> Field3 {
        Self::run_with_report(cfg).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig) -> (Field3, crate::runner::RunReport) {
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "thread_overlap", rank);
            let sub = decomp_ref.subdomains[rank];
            let mut cur = local_initial_field(cfg, decomp_ref, rank);
            let mut new = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
            let plan = ExchangePlan::new(sub.extent, 1);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            let team = ThreadTeam::new(cfg.threads);
            let stencil = cfg.problem.stencil();
            let tile = cfg.tile_spec(cur.extents().0);
            let full = cur.interior_range();
            let (core, shell) = shell_and_core(full, 1);
            let cuts = crate::bulk_sync::z_cuts(sub.extent.2, cfg.threads);
            comm.barrier();
            for _ in 0..cfg.steps {
                let step_t0 = step_hist.start();
                {
                    let core_planes = (core.z.1 - core.z.0).max(0) as usize;
                    let queue = GuidedChunks::new(0..core_planes, cfg.threads, 1);
                    let cur_shared = SharedField::new(&mut cur);
                    let new_shared = SharedField::new(&mut new);
                    let cur_ref = &cur_shared;
                    let new_ref = &new_shared;
                    let tracer_ref = &tracer;
                    team.parallel(|ctx| {
                        if ctx.is_master() {
                            // Master: communicate, then join the guided loop.
                            exchange_halos_shared(
                                cur_ref, &plan, decomp_ref, rank, comm, &halo_bufs,
                            );
                        }
                        {
                            let _span =
                                tracer_ref.span(obs::Category::ComputeInterior, "interior.guided");
                            while let Some(chunk) = queue.next_chunk() {
                                let region = Range3::new(
                                    core.x,
                                    core.y,
                                    (core.z.0 + chunk.start as i64, core.z.0 + chunk.end as i64),
                                );
                                apply_stencil_cells_tiled(cur_ref, new_ref, &stencil, region, tile);
                            }
                        }
                        // Communication (master reached here) is complete
                        // before any thread computes boundary points.
                        ctx.barrier();
                        for (i, region) in shell.iter().enumerate() {
                            if i % ctx.num_threads == ctx.tid {
                                apply_stencil_cells_tiled(
                                    cur_ref, new_ref, &stencil, *region, tile,
                                );
                            }
                        }
                    });
                }
                // Step 3: state copy (the straggler-throttled section:
                // pure compute, outside the master's comm window).
                let throttle = comm.throttle_start();
                {
                    let src = &new;
                    let slabs = cur.z_slabs_mut(&cuts);
                    team.parallel_with(slabs, |_ctx, mut slab| {
                        copy_region_slab(src, &mut slab, full);
                    });
                }
                comm.throttle_end(throttle);
                step_hist.observe_since(step_t0);
            }
            comm.barrier();
            (
                assemble_global(cfg, decomp_ref, comm, &cur),
                comm.stats(),
                comm.fault_stats(),
                None,
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }
}
