//! Implementation IV-C: MPI using nonblocking communication for overlap.
//!
//! The local domain is partitioned into interior points and boundary
//! points (those that touch halo points). The interior is further split
//! into thirds along z; the first third is computed between the
//! nonblocking initiation of the x communication and its completion, the
//! second within y, and the third within z. The boundary points are
//! computed after all communication completes.

use crate::halo::{complete_phase, post_phase_recvs, send_phase, HaloBuffers};
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::Field3;
use advect_core::stencil::{apply_stencil_slab_tiled, copy_region_slab};
use advect_core::team::ThreadTeam;
use decomp::partition::{shell_and_core, thirds_along_z};
use decomp::ExchangePlan;
use simmpi::World;

/// The nonblocking-overlap distributed implementation.
pub struct NonblockingMpi;

impl NonblockingMpi {
    /// Run and return the assembled global state (from rank 0).
    pub fn run(cfg: &RunConfig) -> Field3 {
        Self::run_with_report(cfg).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig) -> (Field3, crate::runner::RunReport) {
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "nonblocking", rank);
            let sub = decomp_ref.subdomains[rank];
            let mut cur = local_initial_field(cfg, decomp_ref, rank);
            let mut new = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
            let plan = ExchangePlan::new(sub.extent, 1);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            let team = ThreadTeam::new(cfg.threads);
            let stencil = cfg.problem.stencil();
            let tile = cfg.tile_spec(cur.extents().0);
            let full = cur.interior_range();
            let (core, shell) = shell_and_core(full, 1);
            let thirds = thirds_along_z(core);
            let cuts = crate::bulk_sync::z_cuts(sub.extent.2, cfg.threads);
            comm.barrier();
            for _ in 0..cfg.steps {
                let step_t0 = step_hist.start();
                // Interleave: initiate phase d, compute interior third d,
                // complete phase d.
                for (d, third) in thirds.iter().enumerate() {
                    let inflight = post_phase_recvs(&plan.phases[d], decomp_ref, rank, comm);
                    send_phase(&plan.phases[d], &cur, decomp_ref, rank, comm, &halo_bufs);
                    let throttle = comm.throttle_start();
                    {
                        let _span = tracer.span(obs::Category::ComputeInterior, "interior.third");
                        let src = &cur;
                        let slabs = new.z_slabs_mut(&cuts);
                        team.parallel_with(slabs, |_ctx, mut slab| {
                            apply_stencil_slab_tiled(src, &mut slab, &stencil, *third, tile);
                        });
                    }
                    comm.throttle_end(throttle);
                    complete_phase(inflight, &mut cur, comm, &halo_bufs);
                }
                // Boundary points after communication.
                {
                    let _span = tracer.span(obs::Category::ComputeInterior, "boundary");
                    let src = &cur;
                    let slabs = new.z_slabs_mut(&cuts);
                    team.parallel_with(slabs, |_ctx, mut slab| {
                        for region in &shell {
                            apply_stencil_slab_tiled(src, &mut slab, &stencil, *region, tile);
                        }
                    });
                }
                // Step 3: state copy.
                {
                    let src = &new;
                    let slabs = cur.z_slabs_mut(&cuts);
                    team.parallel_with(slabs, |_ctx, mut slab| {
                        copy_region_slab(src, &mut slab, full);
                    });
                }
                step_hist.observe_since(step_t0);
            }
            comm.barrier();
            (
                assemble_global(cfg, decomp_ref, comm, &cur),
                comm.stats(),
                comm.fault_stats(),
                None,
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }
}
