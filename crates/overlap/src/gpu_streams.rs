//! Implementation IV-G: GPU with MPI overlap using CUDA streams.
//!
//! Two streams: the interior kernel runs on one while the other carries
//! the halo traffic — CPU-GPU buffer copies, then the boundary-face
//! kernels. The interior computation thus overlaps the MPI communication,
//! the buffer copies, and (on GPUs with concurrent kernels) the boundary
//! computation. The CPU ends the step by synchronizing the two streams.

use crate::gpu_common::DeviceField;
use crate::halo::{exchange_halos, HaloBuffers};
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::Field3;
use decomp::partition::BoxPartition;
use decomp::ExchangePlan;
use simgpu::{Gpu, GpuSpec, StencilLaunch, Stream};
use simmpi::World;

/// The streams-overlap multi-GPU implementation.
pub struct GpuStreamsMpi;

impl GpuStreamsMpi {
    /// Run and return the assembled global state (from rank 0).
    pub fn run(cfg: &RunConfig, spec: &GpuSpec) -> Field3 {
        Self::run_with_report(cfg, spec).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig, spec: &GpuSpec) -> (Field3, crate::runner::RunReport) {
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "gpu_streams", rank);
            let sub = decomp_ref.subdomains[rank];
            let gpu = Gpu::new(spec.clone()).with_fault_plan(cfg.fault.gpu.for_rank(rank));
            gpu.install_tracer(tracer.clone());
            gpu.install_metrics(metrics_ref, rank);
            gpu.set_constant(cfg.problem.stencil().a);
            let mut host = local_initial_field(cfg, decomp_ref, rank);
            let mut dev = DeviceField::from_host(&gpu, &host);
            let part = BoxPartition::new(sub.extent, 0);
            let plan = ExchangePlan::new(sub.extent, 1);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            let s_halo = gpu.create_stream();
            comm.barrier();
            for _ in 0..cfg.steps {
                let step_t0 = step_hist.start();
                // Interior kernel first, on the default stream: it overlaps
                // everything the halo stream does below.
                if !part.gpu_deep_interior.is_empty() {
                    gpu.launch_stencil(
                        Stream::DEFAULT,
                        dev.cur,
                        dev.new,
                        StencilLaunch {
                            dims: dev.dims,
                            region: part.gpu_deep_interior,
                            block: cfg.block,
                            periodic: false,
                        },
                    );
                }
                // Halo stream: boundary buffers out, MPI, halo buffers in,
                // boundary kernels.
                dev.regions_d2h(&gpu, s_halo, dev.cur, &part.gpu_boundary_ring, &mut host);
                gpu.sync_stream(s_halo);
                exchange_halos(&mut host, &plan, decomp_ref, rank, comm, &halo_bufs);
                dev.regions_h2d(&gpu, s_halo, dev.cur, &part.gpu_halo_ring, &host);
                for &face in &part.gpu_boundary_ring {
                    if face.is_empty() {
                        continue;
                    }
                    gpu.launch_stencil(
                        s_halo,
                        dev.cur,
                        dev.new,
                        StencilLaunch {
                            dims: dev.dims,
                            region: face,
                            block: cfg.block,
                            periodic: false,
                        },
                    );
                }
                // The CPU ends the time step by synchronizing the streams.
                gpu.sync_device();
                dev.swap();
                step_hist.observe_since(step_t0);
            }
            comm.barrier();
            dev.interior_to_host(&gpu, dev.cur, &mut host);
            tracer.absorb(&gpu.timeline().to_trace_events());
            (
                assemble_global(cfg, decomp_ref, comm, &host),
                comm.stats(),
                comm.fault_stats(),
                Some(gpu.stats()),
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }
}
