//! Halo-exchange executors over `simmpi`.
//!
//! [`exchange_halos`] performs the full bulk-synchronous 6-transfer
//! exchange (implementation IV-B's Step 1). The phase-level pieces
//! ([`post_phase_recvs`], [`send_phase`], [`complete_phase`]) are exposed
//! separately so the overlap implementations (IV-C, IV-I) can interleave
//! computation between a phase's initiation and completion.
//!
//! All paths stage messages through [`HaloBuffers`]: persistent per-rank
//! buffers, one slot per transfer, derived once from the
//! [`ExchangePlan`]. A send takes its slot's buffer, packs into it, and
//! ships it; the matching receive's payload (exactly the same size — a
//! phase's partner subdomains agree on every non-phase extent) refills
//! the slot. After the first step the exchange therefore allocates
//! nothing: no fresh `Vec` per message, no pool traffic, just six
//! buffers circulating between a rank and its neighbors.
//! [`exchange_halos_fresh`] keeps the old allocate-per-message path as
//! the differential-testing and benchmarking baseline.

use advect_core::field::Field3;
use decomp::{Decomposition, ExchangePlan, PhasePlan};
use obs::Category;
use parking_lot::Mutex;
use simmpi::{Comm, PooledBuf, RecvRequest};

/// Persistent per-rank staging for the six transfers of a halo exchange.
///
/// Slots are interior-mutable (a `parking_lot::Mutex` around the array)
/// so the thread-overlap implementation's master thread can drive an
/// exchange through a shared reference while worker threads compute. The
/// lock is uncontended in every schedule — only the communicating thread
/// touches it.
pub struct HaloBuffers {
    /// `slots[dim][i]`: staging for transfer `i` of phase `dim`.
    slots: Mutex<[[Option<PooledBuf>; 2]; 3]>,
}

impl HaloBuffers {
    /// Derive staging from a plan, pre-leasing all six buffers from the
    /// communicator's pool (the only leases a steady-state exchange ever
    /// makes).
    pub fn new(plan: &ExchangePlan, comm: &Comm) -> Self {
        let slots = plan
            .phases
            .map(|p| p.transfers.map(|t| Some(comm.lease(t.send_region.len()))));
        Self {
            slots: Mutex::new(slots),
        }
    }

    /// Take the staging buffer for transfer `i` of phase `dim`, leasing a
    /// fresh one from the pool if the slot is empty (first use, or a
    /// caller that dropped a payload instead of depositing it).
    pub fn take(&self, dim: usize, i: usize, len: usize, comm: &Comm) -> PooledBuf {
        match self.slots.lock()[dim][i].take() {
            Some(buf) => {
                debug_assert_eq!(
                    buf.len(),
                    len,
                    "slot ({dim},{i}) staged a wrong-size buffer"
                );
                comm.note_buffer_recycled();
                buf
            }
            None => comm.lease(len),
        }
    }

    /// Refill the slot for transfer `i` of phase `dim` with a received
    /// payload, keeping it rank-local for the next step's send.
    pub fn deposit(&self, dim: usize, i: usize, buf: PooledBuf) {
        self.slots.lock()[dim][i] = Some(buf);
    }
}

/// Pending receives of one phase, to be completed after overlapped work.
pub struct PhaseInFlight<'a> {
    phase: PhasePlan,
    recvs: Vec<(usize, RecvRequest<'a>)>,
}

/// Post the nonblocking receives of one phase (before sending, so the
/// matching sends never block — the paper's master thread "first issues
/// nonblocking receive calls").
pub fn post_phase_recvs<'a>(
    phase: &PhasePlan,
    decomp: &Decomposition,
    rank: usize,
    comm: &'a Comm,
) -> PhaseInFlight<'a> {
    let mut recvs = Vec::with_capacity(2);
    for (i, t) in phase.transfers.iter().enumerate() {
        // The transfer sending toward `send_dir` receives from the
        // opposite neighbor.
        let from = decomp.neighbor(rank, t.dim, -t.send_dir);
        recvs.push((i, comm.irecv(from, t.recv_tag)));
    }
    PhaseInFlight {
        phase: *phase,
        recvs,
    }
}

/// Pack and send both directions of a phase through the staging slots.
pub fn send_phase(
    phase: &PhasePlan,
    field: &Field3,
    decomp: &Decomposition,
    rank: usize,
    comm: &Comm,
    bufs: &HaloBuffers,
) {
    for (i, t) in phase.transfers.iter().enumerate() {
        let to = decomp.neighbor(rank, t.dim, t.send_dir);
        let mut buf = bufs.take(phase.dim, i, t.send_region.len(), comm);
        {
            let _span = comm.tracer().span(Category::Pack, "halo.pack");
            field.pack(t.send_region, &mut buf);
        }
        comm.send_pooled(to, t.send_tag, buf);
    }
}

/// Wait for a phase's receives, unpack them into the halo, and refill the
/// staging slots with the received buffers.
pub fn complete_phase(
    inflight: PhaseInFlight<'_>,
    field: &mut Field3,
    comm: &Comm,
    bufs: &HaloBuffers,
) {
    let phase = inflight.phase;
    for (i, req) in inflight.recvs {
        let data = req.wait();
        let region = phase.transfers[i].recv_region;
        debug_assert_eq!(data.len(), region.len());
        {
            let _span = comm.tracer().span(Category::Unpack, "halo.unpack");
            field.unpack(region, &data);
        }
        bufs.deposit(phase.dim, i, data);
    }
}

/// The full halo exchange operating through a
/// [`advect_core::field::SharedField`], for the
/// thread-overlap implementation (IV-D) where the master thread exchanges
/// halos while worker threads concurrently read disjoint interior points.
pub fn exchange_halos_shared(
    field: &advect_core::field::SharedField<'_>,
    plan: &ExchangePlan,
    decomp: &Decomposition,
    rank: usize,
    comm: &Comm,
    bufs: &HaloBuffers,
) {
    for phase in &plan.phases {
        let mut recvs = Vec::with_capacity(2);
        for (i, t) in phase.transfers.iter().enumerate() {
            let from = decomp.neighbor(rank, t.dim, -t.send_dir);
            recvs.push((i, comm.irecv(from, t.recv_tag)));
        }
        for (i, t) in phase.transfers.iter().enumerate() {
            let to = decomp.neighbor(rank, t.dim, t.send_dir);
            let mut buf = bufs.take(phase.dim, i, t.send_region.len(), comm);
            {
                let _span = comm.tracer().span(Category::Pack, "halo.pack");
                field.pack_into(t.send_region, &mut buf);
            }
            comm.send_pooled(to, t.send_tag, buf);
        }
        for (i, req) in recvs {
            let data = req.wait();
            {
                let _span = comm.tracer().span(Category::Unpack, "halo.unpack");
                field.unpack(phase.transfers[i].recv_region, &data);
            }
            bufs.deposit(phase.dim, i, data);
        }
    }
}

/// The full bulk-synchronous halo exchange: for each dimension in order,
/// post receives, send, complete.
pub fn exchange_halos(
    field: &mut Field3,
    plan: &ExchangePlan,
    decomp: &Decomposition,
    rank: usize,
    comm: &Comm,
    bufs: &HaloBuffers,
) {
    for phase in &plan.phases {
        let inflight = post_phase_recvs(phase, decomp, rank, comm);
        send_phase(phase, field, decomp, rank, comm, bufs);
        complete_phase(inflight, field, comm, bufs);
    }
}

/// The pre-pool exchange: allocates a fresh buffer per message and drops
/// every received payload. Kept as the differential-testing oracle and
/// the benchmark baseline the pooled path is measured against.
pub fn exchange_halos_fresh(
    field: &mut Field3,
    plan: &ExchangePlan,
    decomp: &Decomposition,
    rank: usize,
    comm: &Comm,
) {
    for phase in &plan.phases {
        let inflight = post_phase_recvs(phase, decomp, rank, comm);
        for t in &phase.transfers {
            let to = decomp.neighbor(rank, t.dim, t.send_dir);
            comm.send(to, t.send_tag, field.pack_vec(t.send_region));
        }
        let phase = inflight.phase;
        for (i, req) in inflight.recvs {
            let data = req.wait();
            let region = phase.transfers[i].recv_region;
            debug_assert_eq!(data.len(), region.len());
            field.unpack(region, &data.into_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::World;

    /// Distributed halo exchange must reproduce the single-field periodic
    /// halo for every rank count.
    #[test]
    fn distributed_exchange_matches_periodic_halo() {
        let n = 8usize;
        for ntasks in [1usize, 2, 3, 4, 6, 8] {
            let decomp = Decomposition::new(ntasks, (n, n, n));
            // Reference: one global field with periodic halos.
            let mut global = advect_core::field::Field3::new(n, n, n, 1);
            global.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
            global.copy_periodic_halo();

            let decomp_ref = &decomp;
            let results = World::run(ntasks, move |comm| {
                let rank = comm.rank();
                let sub = decomp_ref.subdomains[rank];
                let (ox, oy, oz) = sub.offset;
                let mut local =
                    advect_core::field::Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
                local.fill_interior(|x, y, z| {
                    ((ox as i64 + x) + 10 * (oy as i64 + y) + 100 * (oz as i64 + z)) as f64
                });
                let plan = ExchangePlan::new(sub.extent, 1);
                let bufs = HaloBuffers::new(&plan, comm);
                exchange_halos(&mut local, &plan, decomp_ref, rank, comm, &bufs);
                (rank, local)
            });

            for (rank, local) in results {
                let sub = decomp.subdomains[rank];
                let (ox, oy, oz) = (
                    sub.offset.0 as i64,
                    sub.offset.1 as i64,
                    sub.offset.2 as i64,
                );
                for (x, y, z) in local.full_range().iter() {
                    // Map to global coordinates with periodic wrap.
                    let gx = (ox + x).rem_euclid(n as i64);
                    let gy = (oy + y).rem_euclid(n as i64);
                    let gz = (oz + z).rem_euclid(n as i64);
                    assert_eq!(
                        local.at(x, y, z),
                        global.at(gx, gy, gz),
                        "ntasks={ntasks} rank={rank} local ({x},{y},{z})"
                    );
                }
            }
        }
    }

    /// Repeated exchanges through [`HaloBuffers`] never lease beyond the
    /// initial six buffers: the staging slots self-recycle.
    #[test]
    fn steady_state_exchange_allocates_nothing() {
        let n = 8usize;
        for ntasks in [2usize, 4] {
            let decomp = Decomposition::new(ntasks, (n, n, n));
            let decomp_ref = &decomp;
            let results = World::run(ntasks, move |comm| {
                let rank = comm.rank();
                let sub = decomp_ref.subdomains[rank];
                let mut local =
                    advect_core::field::Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
                local.fill_interior(|x, y, z| (x + y + z) as f64);
                let plan = ExchangePlan::new(sub.extent, 1);
                let bufs = HaloBuffers::new(&plan, comm);
                let warm = comm.stats();
                for _ in 0..10 {
                    exchange_halos(&mut local, &plan, decomp_ref, rank, comm, &bufs);
                }
                (warm, comm.stats())
            });
            for (rank, (warm, done)) in results.iter().enumerate() {
                assert_eq!(
                    done.buffers_allocated, warm.buffers_allocated,
                    "rank {rank}: steady-state exchange allocated buffers"
                );
                assert_eq!(
                    done.buffers_recycled - warm.buffers_recycled,
                    6 * 10,
                    "rank {rank}: every send reused its staging slot"
                );
            }
        }
    }
}
