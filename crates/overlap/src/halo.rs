//! Halo-exchange executors over `simmpi`.
//!
//! [`exchange_halos`] performs the full bulk-synchronous 6-transfer
//! exchange (implementation IV-B's Step 1). The phase-level pieces
//! ([`post_phase_recvs`], [`send_phase`], [`complete_phase`]) are exposed
//! separately so the overlap implementations (IV-C, IV-I) can interleave
//! computation between a phase's initiation and completion.

use advect_core::field::Field3;
use decomp::{Decomposition, ExchangePlan, PhasePlan};
use simmpi::{Comm, RecvRequest};

/// Pending receives of one phase, to be completed after overlapped work.
pub struct PhaseInFlight<'a> {
    phase: PhasePlan,
    recvs: Vec<(usize, RecvRequest<'a>)>,
}

/// Post the nonblocking receives of one phase (before sending, so the
/// matching sends never block — the paper's master thread "first issues
/// nonblocking receive calls").
pub fn post_phase_recvs<'a>(
    phase: &PhasePlan,
    decomp: &Decomposition,
    rank: usize,
    comm: &'a Comm,
) -> PhaseInFlight<'a> {
    let mut recvs = Vec::with_capacity(2);
    for (i, t) in phase.transfers.iter().enumerate() {
        // The transfer sending toward `send_dir` receives from the
        // opposite neighbor.
        let from = decomp.neighbor(rank, t.dim, -t.send_dir);
        recvs.push((i, comm.irecv(from, t.recv_tag)));
    }
    PhaseInFlight {
        phase: *phase,
        recvs,
    }
}

/// Pack and send both directions of a phase.
pub fn send_phase(
    phase: &PhasePlan,
    field: &Field3,
    decomp: &Decomposition,
    rank: usize,
    comm: &Comm,
) {
    for t in &phase.transfers {
        let to = decomp.neighbor(rank, t.dim, t.send_dir);
        let mut buf = vec![0.0; t.send_region.len()];
        field.pack(t.send_region, &mut buf);
        comm.send(to, t.send_tag, buf);
    }
}

/// Wait for a phase's receives and unpack them into the halo.
pub fn complete_phase(inflight: PhaseInFlight<'_>, field: &mut Field3) {
    let phase = inflight.phase;
    for (i, req) in inflight.recvs {
        let data = req.wait();
        let region = phase.transfers[i].recv_region;
        debug_assert_eq!(data.len(), region.len());
        field.unpack(region, &data);
    }
}

/// The full halo exchange operating through a
/// [`advect_core::field::SharedField`], for the
/// thread-overlap implementation (IV-D) where the master thread exchanges
/// halos while worker threads concurrently read disjoint interior points.
pub fn exchange_halos_shared(
    field: &advect_core::field::SharedField<'_>,
    plan: &ExchangePlan,
    decomp: &Decomposition,
    rank: usize,
    comm: &Comm,
) {
    for phase in &plan.phases {
        let mut recvs = Vec::with_capacity(2);
        for (i, t) in phase.transfers.iter().enumerate() {
            let from = decomp.neighbor(rank, t.dim, -t.send_dir);
            recvs.push((i, comm.irecv(from, t.recv_tag)));
        }
        for t in &phase.transfers {
            let to = decomp.neighbor(rank, t.dim, t.send_dir);
            comm.send(to, t.send_tag, field.pack(t.send_region));
        }
        for (i, req) in recvs {
            let data = req.wait();
            field.unpack(phase.transfers[i].recv_region, &data);
        }
    }
}

/// The full bulk-synchronous halo exchange: for each dimension in order,
/// post receives, send, complete.
pub fn exchange_halos(
    field: &mut Field3,
    plan: &ExchangePlan,
    decomp: &Decomposition,
    rank: usize,
    comm: &Comm,
) {
    for phase in &plan.phases {
        let inflight = post_phase_recvs(phase, decomp, rank, comm);
        send_phase(phase, field, decomp, rank, comm);
        complete_phase(inflight, field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::World;

    /// Distributed halo exchange must reproduce the single-field periodic
    /// halo for every rank count.
    #[test]
    fn distributed_exchange_matches_periodic_halo() {
        let n = 8usize;
        for ntasks in [1usize, 2, 3, 4, 6, 8] {
            let decomp = Decomposition::new(ntasks, (n, n, n));
            // Reference: one global field with periodic halos.
            let mut global = advect_core::field::Field3::new(n, n, n, 1);
            global.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
            global.copy_periodic_halo();

            let decomp_ref = &decomp;
            let results = World::run(ntasks, move |comm| {
                let rank = comm.rank();
                let sub = decomp_ref.subdomains[rank];
                let (ox, oy, oz) = sub.offset;
                let mut local =
                    advect_core::field::Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
                local.fill_interior(|x, y, z| {
                    ((ox as i64 + x) + 10 * (oy as i64 + y) + 100 * (oz as i64 + z)) as f64
                });
                let plan = ExchangePlan::new(sub.extent, 1);
                exchange_halos(&mut local, &plan, decomp_ref, rank, comm);
                (rank, local)
            });

            for (rank, local) in results {
                let sub = decomp.subdomains[rank];
                let (ox, oy, oz) = (
                    sub.offset.0 as i64,
                    sub.offset.1 as i64,
                    sub.offset.2 as i64,
                );
                for (x, y, z) in local.full_range().iter() {
                    // Map to global coordinates with periodic wrap.
                    let gx = (ox + x).rem_euclid(n as i64);
                    let gy = (oy + y).rem_euclid(n as i64);
                    let gz = (oz + z).rem_euclid(n as i64);
                    assert_eq!(
                        local.at(x, y, z),
                        global.at(gx, gy, gz),
                        "ntasks={ntasks} rank={rank} local ({x},{y},{z})"
                    );
                }
            }
        }
    }
}
