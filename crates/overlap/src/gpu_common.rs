//! Shared plumbing for the GPU implementations: device-resident fields in
//! the same layout as host [`Field3`]s, and ring transfers (pack → PCIe →
//! unpack) between device state and a host mirror.

use advect_core::field::{Field3, Range3};
use simgpu::{FieldDims, Gpu, GpuBuffer, Stream};

/// A device-resident field pair (current and new state) in host layout.
pub struct DeviceField {
    /// Field layout (interior + halo) shared by both buffers.
    pub dims: FieldDims,
    /// Current-state buffer.
    pub cur: GpuBuffer,
    /// New-state buffer (swapped with `cur` each step — the paper flips
    /// kernel arguments "to avoid the need for an extra copy operation").
    pub new: GpuBuffer,
    /// Linear staging buffer for pack/unpack + PCIe transfers.
    pub staging: GpuBuffer,
}

impl DeviceField {
    /// Allocate device state matching `host` and upload its current
    /// contents (untimed — initialization is excluded from measurements).
    pub fn from_host(gpu: &Gpu, host: &Field3) -> Self {
        let (nx, ny, nz) = host.interior();
        let dims = FieldDims {
            nx,
            ny,
            nz,
            halo: host.halo(),
        };
        let cur = gpu.alloc(dims.len());
        let new = gpu.alloc(dims.len());
        // Staging sized for the largest transfer we make: a full halo
        // shell (single allocation reused for every ring transfer).
        let shell = dims.len() - nx * ny * nz;
        let staging = gpu.alloc(shell.max(nx * ny).max(1) * 2);
        gpu.upload_untimed(cur, host.data());
        Self {
            dims,
            cur,
            new,
            staging,
        }
    }

    /// Swap current and new state (pointer flip).
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.new);
    }

    /// Download a set of regions of a device buffer into the host mirror:
    /// pack kernel → device-to-host copy → host unpack.
    pub fn regions_d2h(
        &self,
        gpu: &Gpu,
        stream: Stream,
        src: GpuBuffer,
        regions: &[Range3],
        host: &mut Field3,
    ) {
        for &r in regions {
            if r.is_empty() {
                continue;
            }
            gpu.launch_pack(stream, src, self.dims, r, self.staging, 0);
            let mut buf = vec![0.0; r.len()];
            gpu.d2h(stream, self.staging, 0, &mut buf);
            host.unpack(r, &buf);
        }
    }

    /// Upload a set of regions of the host mirror into a device buffer:
    /// host pack → host-to-device copy → unpack kernel.
    pub fn regions_h2d(
        &self,
        gpu: &Gpu,
        stream: Stream,
        dst: GpuBuffer,
        regions: &[Range3],
        host: &Field3,
    ) {
        for &r in regions {
            if r.is_empty() {
                continue;
            }
            let mut buf = vec![0.0; r.len()];
            host.pack(r, &mut buf);
            gpu.h2d(stream, &buf, self.staging, 0);
            gpu.launch_unpack(stream, dst, self.dims, r, self.staging, 0);
        }
    }

    /// Download the full interior of a device buffer into the host mirror
    /// (final verification readback; untimed).
    pub fn interior_to_host(&self, gpu: &Gpu, src: GpuBuffer, host: &mut Field3) {
        gpu.sync_device();
        let data = gpu.read_untimed(src);
        for (x, y, z) in host.interior_range().iter() {
            *host.at_mut(x, y, z) = data[self.dims.idx(x, y, z)];
        }
    }
}
