//! Implementation IV-H: CPU and GPU computation with bulk-synchronous MPI.
//!
//! Each task's domain is partitioned as a block in a box (Figure 1): the
//! GPU computes the interior block, the CPU the enclosing box whose wall
//! thickness balances the load. A step starts by exchanging the inner
//! halo/boundary buffers with the GPU and the outer halos/boundaries with
//! other tasks through MPI; then the GPU kernels and the CPU wall
//! computation run — CPU and GPU computation may overlap, but all
//! communication is up-front and serial.

use crate::gpu_common::DeviceField;
use crate::halo::{exchange_halos, HaloBuffers};
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::{Field3, SharedField};
use advect_core::stencil::apply_stencil_shared_tiled;
use advect_core::team::ThreadTeam;
use decomp::partition::BoxPartition;
use decomp::ExchangePlan;
use simgpu::{Gpu, GpuSpec, StencilLaunch, Stream};
use simmpi::World;

/// The hybrid bulk-synchronous implementation.
pub struct HybridBulkSync;

impl HybridBulkSync {
    /// Run and return the assembled global state (from rank 0).
    pub fn run(cfg: &RunConfig, spec: &GpuSpec) -> Field3 {
        Self::run_with_report(cfg, spec).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig, spec: &GpuSpec) -> (Field3, crate::runner::RunReport) {
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "hybrid_bulk_sync", rank);
            let sub = decomp_ref.subdomains[rank];
            let gpu = Gpu::new(spec.clone()).with_fault_plan(cfg.fault.gpu.for_rank(rank));
            gpu.install_tracer(tracer.clone());
            gpu.install_metrics(metrics_ref, rank);
            gpu.set_constant(cfg.problem.stencil().a);
            let mut cur = local_initial_field(cfg, decomp_ref, rank);
            let mut new = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
            let mut dev = DeviceField::from_host(&gpu, &cur);
            let part = BoxPartition::new(sub.extent, cfg.thickness);
            let plan = ExchangePlan::new(sub.extent, 1);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            let team = ThreadTeam::new(cfg.threads);
            let stencil = cfg.problem.stencil();
            let tile = cfg.tile_spec(cur.extents().0);
            comm.barrier();
            for _ in 0..cfg.steps {
                let step_t0 = step_hist.start();
                // Inner exchange: GPU boundary ring to the CPU...
                dev.regions_d2h(
                    &gpu,
                    Stream::DEFAULT,
                    dev.cur,
                    &part.gpu_boundary_ring,
                    &mut cur,
                );
                gpu.sync_device();
                // ...outer exchange: MPI halos...
                exchange_halos(&mut cur, &plan, decomp_ref, rank, comm, &halo_bufs);
                // ...inner exchange: CPU ring back to the GPU as its halo.
                dev.regions_h2d(&gpu, Stream::DEFAULT, dev.cur, &part.gpu_halo_ring, &cur);
                // GPU kernels for the inner block points (async)...
                for &face in &part.gpu_boundary_ring {
                    if face.is_empty() {
                        continue;
                    }
                    gpu.launch_stencil(
                        Stream::DEFAULT,
                        dev.cur,
                        dev.new,
                        StencilLaunch {
                            dims: dev.dims,
                            region: face,
                            block: cfg.block,
                            periodic: false,
                        },
                    );
                }
                if !part.gpu_deep_interior.is_empty() {
                    gpu.launch_stencil(
                        Stream::DEFAULT,
                        dev.cur,
                        dev.new,
                        StencilLaunch {
                            dims: dev.dims,
                            region: part.gpu_deep_interior,
                            block: cfg.block,
                            periodic: false,
                        },
                    );
                }
                // ...while the CPU computes the outer box points.
                let throttle = comm.throttle_start();
                {
                    let _span = tracer.span(obs::Category::ComputeVeneer, "cpu.walls");
                    let src = &cur;
                    let writer = SharedField::new(&mut new);
                    let walls = &part.cpu_walls;
                    team.parallel(|ctx| {
                        for (i, w) in walls.iter().enumerate() {
                            if i % ctx.num_threads == ctx.tid && !w.is_empty() {
                                apply_stencil_shared_tiled(src, &writer, &stencil, *w, tile);
                            }
                        }
                    });
                }
                // State copy: CPU walls; the GPU flips buffers.
                for w in &part.cpu_walls {
                    cur.copy_region_from(&new, *w);
                }
                comm.throttle_end(throttle);
                gpu.sync_device();
                dev.swap();
                step_hist.observe_since(step_t0);
            }
            comm.barrier();
            // Pull the GPU block into the host state for verification.
            let mut final_host = cur.clone();
            if !part.gpu_block.is_empty() {
                let data = {
                    gpu.sync_device();
                    gpu.read_untimed(dev.cur)
                };
                for (x, y, z) in part.gpu_block.iter() {
                    *final_host.at_mut(x, y, z) = data[dev.dims.idx(x, y, z)];
                }
            }
            tracer.absorb(&gpu.timeline().to_trace_events());
            (
                assemble_global(cfg, decomp_ref, comm, &final_host),
                comm.stats(),
                comm.fault_stats(),
                Some(gpu.stats()),
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }
}
