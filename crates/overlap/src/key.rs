//! Canonical run request keys.
//!
//! A simulation request — `(implementation × grid × steps × machine ×
//! fault seed × trace/metrics flags)` plus the shape knobs each
//! implementation actually reads — canonicalizes into a [`RunKey`]: the
//! unit of request-keyed caching and in-flight deduplication in
//! `crates/serve`. Two requests that would execute identically must
//! produce the *same* key, so canonicalization zeroes every knob the
//! chosen implementation ignores (a CPU implementation's GPU block
//! shape, a single-task run's task count) instead of carrying the
//! caller's incidental values into the cache key.
//!
//! Every run is a pure function of its key: the functional substrates
//! are deterministic (fault schedules replay exactly from the seed), so
//! the assembled state, the comm/GPU counters, and the device timeline
//! depend only on the key. Wall-clock-derived artifacts (span
//! timestamps, wait histograms) vary per execution, which is why cached
//! responses are byte-identical only *because* the cache stores the
//! rendered artifact of one execution.

use crate::runner::{FaultSpec, RunConfig, RunReport};
use crate::Impl;
use advect_core::field::Field3;
use advect_core::stepper::AdvectionProblem;
use simgpu::GpuSpec;

/// The machine axis of a request: which Table II host the run models.
/// Only the GPU choice is observable in a functional run, so the
/// machines canonicalize to the GPU they carry — and every CPU-only
/// implementation canonicalizes to [`MachineKind::Cpu`] regardless of
/// what the caller named.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MachineKind {
    /// No GPU in play (any machine; CPU-only implementations).
    Cpu,
    /// Lens: Tesla C1060.
    Lens,
    /// Yona: Tesla C2050.
    Yona,
}

impl MachineKind {
    /// Parse a machine name as requests spell it. `"cpu"` (or an empty
    /// string) means "no particular machine"; the Table II names map to
    /// their GPUs. JaguarPF and Hopper II carry no GPU, so they are
    /// only valid for CPU implementations and canonicalize to `Cpu`.
    pub fn parse(name: &str) -> Result<(MachineKind, bool), String> {
        match name.to_ascii_lowercase().as_str() {
            "" | "cpu" | "none" => Ok((MachineKind::Cpu, false)),
            "jaguarpf" => Ok((MachineKind::Cpu, true)),
            "hopper_ii" | "hopper-ii" | "hopper" => Ok((MachineKind::Cpu, true)),
            "lens" | "c1060" | "tesla_c1060" => Ok((MachineKind::Lens, false)),
            "yona" | "c2050" | "tesla_c2050" => Ok((MachineKind::Yona, false)),
            other => Err(format!(
                "unknown machine {other:?}: expected cpu|jaguarpf|hopper_ii|lens|yona"
            )),
        }
    }

    /// Canonical name (the wire spelling).
    pub fn name(&self) -> &'static str {
        match self {
            MachineKind::Cpu => "cpu",
            MachineKind::Lens => "lens",
            MachineKind::Yona => "yona",
        }
    }

    /// The GPU this machine contributes to a run.
    pub fn gpu_spec(&self) -> Option<GpuSpec> {
        match self {
            MachineKind::Cpu => None,
            MachineKind::Lens => Some(GpuSpec::tesla_c1060()),
            MachineKind::Yona => Some(GpuSpec::tesla_c2050()),
        }
    }
}

/// The raw shape of a run request, before canonicalization. All fields
/// are the caller's literal values; [`RunParams::canonicalize`] turns
/// them into a [`RunKey`] or explains why they cannot run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunParams {
    /// Implementation slug (`bulk_sync`, `hybrid_overlap`, …).
    pub impl_slug: String,
    /// Cubic grid edge length.
    pub grid: u32,
    /// Time steps.
    pub steps: u32,
    /// MPI tasks.
    pub tasks: u32,
    /// Threads per task.
    pub threads: u32,
    /// GPU thread-block shape.
    pub block: (u32, u32),
    /// CPU box thickness for the hybrid implementations.
    pub thickness: u32,
    /// Machine name (see [`MachineKind::parse`]).
    pub machine: String,
    /// Seeded fault injection; `None` runs clean.
    pub fault_seed: Option<u64>,
    /// Request the Chrome span trace artifact.
    pub trace: bool,
    /// Request the Prometheus metrics artifact.
    pub metrics: bool,
}

impl Default for RunParams {
    fn default() -> Self {
        Self {
            impl_slug: "bulk_sync".to_string(),
            grid: 12,
            steps: 2,
            tasks: 2,
            threads: 1,
            block: (8, 8),
            thickness: 2,
            machine: String::new(),
            fault_seed: None,
            trace: false,
            metrics: false,
        }
    }
}

/// Hard caps on what a single request may ask for, so one tenant cannot
/// park a grid that takes minutes on a shared worker. Servers pick the
/// caps; the defaults bound a request to roughly test scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Largest accepted grid edge.
    pub max_grid: u32,
    /// Largest accepted step count.
    pub max_steps: u32,
    /// Largest accepted task count.
    pub max_tasks: u32,
    /// Largest accepted threads-per-task.
    pub max_threads: u32,
}

impl Default for RunLimits {
    fn default() -> Self {
        Self {
            max_grid: 48,
            max_steps: 64,
            max_tasks: 16,
            max_threads: 16,
        }
    }
}

/// A canonicalized, validated run request: the cache and dedup key.
///
/// Construction goes through [`RunParams::canonicalize`], which is the
/// only way the invariants hold (ignored knobs zeroed, machine resolved,
/// bounds checked) — hence the private fields and accessor methods.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunKey {
    implementation: Impl,
    grid: u32,
    steps: u32,
    tasks: u32,
    threads: u32,
    block: (u32, u32),
    thickness: u32,
    machine: MachineKind,
    fault_seed: Option<u64>,
    trace: bool,
    metrics: bool,
}

impl RunParams {
    /// Validate and canonicalize into a [`RunKey`].
    ///
    /// Knobs the chosen implementation never reads are forced to a
    /// fixed value so they cannot split the cache: CPU implementations
    /// get `block = (0, 0)` and `machine = cpu`; non-MPI implementations
    /// get `tasks = 1`; the pure-GPU implementations get `threads = 1`;
    /// non-hybrid implementations get `thickness = 0`.
    pub fn canonicalize(&self, limits: &RunLimits) -> Result<RunKey, String> {
        let implementation = Impl::from_slug(&self.impl_slug)
            .ok_or_else(|| format!("unknown impl {:?}", self.impl_slug))?;
        if self.grid < 8 || self.grid > limits.max_grid {
            return Err(format!(
                "grid {} out of range 8..={}",
                self.grid, limits.max_grid
            ));
        }
        if self.steps < 1 || self.steps > limits.max_steps {
            return Err(format!(
                "steps {} out of range 1..={}",
                self.steps, limits.max_steps
            ));
        }
        let (machine, gpu_less) = MachineKind::parse(&self.machine)?;
        let machine = if implementation.uses_gpu() {
            if machine == MachineKind::Cpu {
                if gpu_less {
                    return Err(format!(
                        "machine {:?} has no GPU but {} needs one",
                        self.machine,
                        implementation.slug()
                    ));
                }
                // No machine named: default GPU runs to Yona's C2050,
                // the paper's primary hybrid host.
                MachineKind::Yona
            } else {
                machine
            }
        } else {
            MachineKind::Cpu
        };
        let tasks = if implementation.uses_mpi() {
            if self.tasks < 1 || self.tasks > limits.max_tasks {
                return Err(format!(
                    "tasks {} out of range 1..={}",
                    self.tasks, limits.max_tasks
                ));
            }
            if self.tasks > self.grid {
                return Err(format!(
                    "tasks {} exceed the {}-plane z extent",
                    self.tasks, self.grid
                ));
            }
            self.tasks
        } else {
            1
        };
        let threads = match implementation {
            Impl::GpuResident | Impl::GpuBulkSync | Impl::GpuStreams => 1,
            _ => {
                if self.threads < 1 || self.threads > limits.max_threads {
                    return Err(format!(
                        "threads {} out of range 1..={}",
                        self.threads, limits.max_threads
                    ));
                }
                self.threads
            }
        };
        let block = if implementation.uses_gpu() {
            let (bx, by) = self.block;
            if !(1..=64).contains(&bx) || !(1..=64).contains(&by) {
                return Err(format!("block {bx}x{by} out of range 1..=64 per axis"));
            }
            (bx, by)
        } else {
            (0, 0)
        };
        let thickness = match implementation {
            Impl::HybridBulkSync | Impl::HybridOverlap => {
                if implementation == Impl::HybridOverlap && self.thickness == 0 {
                    return Err("hybrid_overlap needs thickness >= 1".to_string());
                }
                if self.thickness > self.grid / 2 {
                    return Err(format!(
                        "thickness {} exceeds half the {}-point grid",
                        self.thickness, self.grid
                    ));
                }
                self.thickness
            }
            _ => 0,
        };
        Ok(RunKey {
            implementation,
            grid: self.grid,
            steps: self.steps,
            tasks,
            threads,
            block,
            thickness,
            machine,
            fault_seed: self.fault_seed,
            trace: self.trace,
            metrics: self.metrics,
        })
    }
}

impl RunKey {
    /// The implementation this key runs.
    pub fn implementation(&self) -> Impl {
        self.implementation
    }

    /// Cubic grid edge length.
    pub fn grid(&self) -> u32 {
        self.grid
    }

    /// Time steps.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// MPI tasks (canonicalized: 1 for non-MPI implementations).
    pub fn tasks(&self) -> u32 {
        self.tasks
    }

    /// Threads per task (canonicalized: 1 where unread).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The machine axis after canonicalization.
    pub fn machine(&self) -> MachineKind {
        self.machine
    }

    /// Seeded fault injection, if any.
    pub fn fault_seed(&self) -> Option<u64> {
        self.fault_seed
    }

    /// Whether the trace artifact was requested.
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// Whether the metrics artifact was requested.
    pub fn metrics(&self) -> bool {
        self.metrics
    }

    /// The [`RunConfig`] this key induces.
    pub fn config(&self) -> RunConfig {
        let mut cfg = RunConfig::new(
            AdvectionProblem::general_case(self.grid as usize),
            self.steps as u64,
        )
        .tasks(self.tasks as usize)
        .with_threads(self.threads as usize)
        .with_thickness(self.thickness as usize)
        .with_trace(self.trace)
        .with_metrics(self.metrics);
        if self.implementation.uses_gpu() {
            cfg = cfg.with_block((self.block.0 as usize, self.block.1 as usize));
        }
        if let Some(seed) = self.fault_seed {
            cfg = cfg.with_faults(FaultSpec::chaos(seed));
        }
        cfg
    }

    /// The GPU this key runs on (`None` for CPU implementations).
    pub fn gpu_spec(&self) -> Option<GpuSpec> {
        if self.implementation.uses_gpu() {
            self.machine.gpu_spec()
        } else {
            None
        }
    }

    /// Execute the run this key describes. Deterministic in everything
    /// but wall-clock-derived observations; `Send`, so a server worker
    /// can carry it to any thread.
    pub fn execute(&self) -> (Field3, RunReport) {
        let spec = self.gpu_spec();
        self.implementation
            .run_with_report(&self.config(), spec.as_ref())
    }

    /// A compact human-readable tag (`bulk_sync/g12/s3/t4x2/yona/f7`),
    /// used in logs and load reports; *not* the cache key (the struct
    /// itself is).
    pub fn tag(&self) -> String {
        let mut tag = format!(
            "{}/g{}/s{}/t{}x{}",
            self.implementation.slug(),
            self.grid,
            self.steps,
            self.tasks,
            self.threads
        );
        if self.implementation.uses_gpu() {
            tag.push_str(&format!(
                "/b{}x{}/{}",
                self.block.0,
                self.block.1,
                self.machine.name()
            ));
        }
        if self.thickness > 0 {
            tag.push_str(&format!("/h{}", self.thickness));
        }
        if let Some(seed) = self.fault_seed {
            tag.push_str(&format!("/f{seed}"));
        }
        if self.trace {
            tag.push_str("/trace");
        }
        if self.metrics {
            tag.push_str("/metrics");
        }
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_zeroes_unread_knobs() {
        let limits = RunLimits::default();
        let mut p = RunParams {
            impl_slug: "bulk_sync".into(),
            block: (32, 8),
            machine: "yona".into(),
            thickness: 3,
            ..RunParams::default()
        };
        let key = p.canonicalize(&limits).unwrap();
        // A CPU implementation ignores block, machine, and thickness:
        // all are canonicalized away so they cannot split the cache.
        assert_eq!(key.machine(), MachineKind::Cpu);
        assert_eq!(key.block, (0, 0));
        assert_eq!(key.thickness, 0);

        p.machine = "lens".into();
        let key2 = p.canonicalize(&limits).unwrap();
        assert_eq!(key, key2, "machine must not split CPU cache keys");

        p.impl_slug = "single_task".into();
        p.tasks = 8;
        let key3 = p.canonicalize(&limits).unwrap();
        assert_eq!(key3.tasks(), 1, "non-MPI implementations run one task");

        p.impl_slug = "gpu_resident".into();
        p.threads = 6;
        let key4 = p.canonicalize(&limits).unwrap();
        assert_eq!(key4.threads(), 1, "pure-GPU implementations ignore threads");
        assert_eq!(key4.machine(), MachineKind::Lens);
    }

    #[test]
    fn validation_rejects_bad_requests() {
        let limits = RunLimits::default();
        let bad = |f: &dyn Fn(&mut RunParams)| {
            let mut p = RunParams::default();
            f(&mut p);
            p.canonicalize(&limits).unwrap_err()
        };
        assert!(bad(&|p| p.impl_slug = "warp_drive".into()).contains("unknown impl"));
        assert!(bad(&|p| p.grid = 4).contains("grid"));
        assert!(bad(&|p| p.grid = 4096).contains("grid"));
        assert!(bad(&|p| p.steps = 0).contains("steps"));
        assert!(bad(&|p| p.tasks = 200).contains("tasks"));
        assert!(bad(&|p| {
            p.grid = 8;
            p.tasks = 12;
        })
        .contains("z extent"));
        assert!(bad(&|p| p.machine = "cray_iii".into()).contains("unknown machine"));
        assert!(bad(&|p| {
            p.impl_slug = "gpu_streams".into();
            p.machine = "jaguarpf".into();
        })
        .contains("no GPU"));
        assert!(bad(&|p| {
            p.impl_slug = "hybrid_overlap".into();
            p.thickness = 0;
        })
        .contains("thickness"));
        assert!(bad(&|p| {
            p.impl_slug = "gpu_streams".into();
            p.block = (0, 8);
        })
        .contains("block"));
    }

    #[test]
    fn keys_execute_bit_identical_to_serial() {
        use advect_core::stepper::SerialStepper;
        let key = RunParams {
            impl_slug: "nonblocking".into(),
            grid: 12,
            steps: 3,
            tasks: 4,
            threads: 2,
            ..RunParams::default()
        }
        .canonicalize(&RunLimits::default())
        .unwrap();
        let (state, report) = key.execute();
        let mut serial = SerialStepper::new(AdvectionProblem::general_case(12));
        serial.run(3);
        assert_eq!(state.max_abs_diff(serial.state()), 0.0);
        assert_eq!(report.comm.len(), 4);
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn tags_are_compact_and_distinct() {
        let limits = RunLimits::default();
        let a = RunParams::default().canonicalize(&limits).unwrap();
        let b = RunParams {
            fault_seed: Some(7),
            trace: true,
            ..RunParams::default()
        }
        .canonicalize(&limits)
        .unwrap();
        assert_ne!(a, b);
        assert_ne!(a.tag(), b.tag());
        assert!(b.tag().contains("/f7"), "{}", b.tag());
        assert!(b.tag().contains("/trace"), "{}", b.tag());
    }
}
