//! # overlap
//!
//! The nine implementations of White & Dongarra (IPDPS 2011), Section IV,
//! running *functionally* on the `simmpi` (MPI) and `simgpu` (CUDA)
//! substrates. Every implementation produces results **bit-identical** to
//! the serial reference — halo exchange, packing, kernel tap order,
//! stream synchronization and the hybrid partition must all be exactly
//! right for that to hold, which is what the tests at the bottom of this
//! file check.
//!
//! | Section | Implementation | Module |
//! |---------|----------------|--------|
//! | IV-A | Single task, multithreaded | [`single_task`] |
//! | IV-B | Bulk-synchronous MPI | [`bulk_sync`] |
//! | IV-C | Nonblocking MPI overlap | [`nonblocking`] |
//! | IV-D | OpenMP-thread overlap | [`thread_overlap`] |
//! | IV-E | GPU resident | [`gpu_resident`] |
//! | IV-F | GPU + bulk-synchronous MPI | [`gpu_bulk_sync`] |
//! | IV-G | GPU + MPI overlap via streams | [`gpu_streams`] |
//! | IV-H | CPU+GPU, bulk-synchronous | [`hybrid_bulk_sync`] |
//! | IV-I | CPU+GPU full overlap | [`hybrid_overlap`] |

pub mod bulk_sync;
pub mod deep_halo;
pub mod gpu_bulk_sync;
pub mod gpu_common;
pub mod gpu_resident;
pub mod gpu_streams;
pub mod halo;
pub mod hybrid_bulk_sync;
pub mod hybrid_overlap;
pub mod key;
pub mod nonblocking;
pub mod runner;
pub mod single_task;
pub mod thread_overlap;

pub use bulk_sync::BulkSyncMpi;
pub use deep_halo::DeepHaloBulkSync;
pub use gpu_bulk_sync::GpuBulkSyncMpi;
pub use gpu_resident::GpuResident;
pub use gpu_streams::GpuStreamsMpi;
pub use halo::HaloBuffers;
pub use hybrid_bulk_sync::HybridBulkSync;
pub use hybrid_overlap::HybridOverlap;
pub use key::{MachineKind, RunKey, RunLimits, RunParams};
pub use nonblocking::NonblockingMpi;
pub use runner::{FaultSpec, RunConfig, RunReport};
pub use single_task::SingleTask;
pub use thread_overlap::ThreadOverlapMpi;

use advect_core::field::Field3;
use simgpu::GpuSpec;

/// The nine implementations, as a uniform enumeration for harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Impl {
    /// IV-A: single task, multithreaded.
    SingleTask,
    /// IV-B: bulk-synchronous MPI.
    BulkSync,
    /// IV-C: nonblocking-MPI overlap.
    Nonblocking,
    /// IV-D: OpenMP-thread overlap.
    ThreadOverlap,
    /// IV-E: GPU resident.
    GpuResident,
    /// IV-F: GPU + bulk-synchronous MPI.
    GpuBulkSync,
    /// IV-G: GPU + streams overlap.
    GpuStreams,
    /// IV-H: hybrid bulk-synchronous.
    HybridBulkSync,
    /// IV-I: hybrid full overlap.
    HybridOverlap,
}

impl Impl {
    /// All nine, in the paper's order.
    pub const ALL: [Impl; 9] = [
        Impl::SingleTask,
        Impl::BulkSync,
        Impl::Nonblocking,
        Impl::ThreadOverlap,
        Impl::GpuResident,
        Impl::GpuBulkSync,
        Impl::GpuStreams,
        Impl::HybridBulkSync,
        Impl::HybridOverlap,
    ];

    /// The paper's section naming this implementation.
    pub fn section(&self) -> &'static str {
        match self {
            Impl::SingleTask => "IV-A",
            Impl::BulkSync => "IV-B",
            Impl::Nonblocking => "IV-C",
            Impl::ThreadOverlap => "IV-D",
            Impl::GpuResident => "IV-E",
            Impl::GpuBulkSync => "IV-F",
            Impl::GpuStreams => "IV-G",
            Impl::HybridBulkSync => "IV-H",
            Impl::HybridOverlap => "IV-I",
        }
    }

    /// Short human name, as used in the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Impl::SingleTask => "single task",
            Impl::BulkSync => "bulk-synchronous MPI",
            Impl::Nonblocking => "MPI nonblocking overlap",
            Impl::ThreadOverlap => "MPI OpenMP-thread overlap",
            Impl::GpuResident => "GPU resident",
            Impl::GpuBulkSync => "GPU bulk-synchronous MPI",
            Impl::GpuStreams => "GPU MPI overlap (streams)",
            Impl::HybridBulkSync => "CPU+GPU bulk-synchronous",
            Impl::HybridOverlap => "CPU+GPU full overlap",
        }
    }

    /// Machine-friendly identifier (the module name): used for trace
    /// file names and JSON keys.
    pub fn slug(&self) -> &'static str {
        match self {
            Impl::SingleTask => "single_task",
            Impl::BulkSync => "bulk_sync",
            Impl::Nonblocking => "nonblocking",
            Impl::ThreadOverlap => "thread_overlap",
            Impl::GpuResident => "gpu_resident",
            Impl::GpuBulkSync => "gpu_bulk_sync",
            Impl::GpuStreams => "gpu_streams",
            Impl::HybridBulkSync => "hybrid_bulk_sync",
            Impl::HybridOverlap => "hybrid_overlap",
        }
    }

    /// Inverse of [`Impl::slug`]: resolve a request's implementation
    /// name. Returns `None` for anything that is not one of the nine.
    pub fn from_slug(slug: &str) -> Option<Impl> {
        Impl::ALL.iter().copied().find(|i| i.slug() == slug)
    }

    /// Whether this implementation uses a GPU.
    pub fn uses_gpu(&self) -> bool {
        matches!(
            self,
            Impl::GpuResident
                | Impl::GpuBulkSync
                | Impl::GpuStreams
                | Impl::HybridBulkSync
                | Impl::HybridOverlap
        )
    }

    /// Whether this implementation uses MPI.
    pub fn uses_mpi(&self) -> bool {
        !matches!(self, Impl::SingleTask | Impl::GpuResident)
    }

    /// Run the implementation and return the final global state.
    /// `spec` is required for GPU implementations.
    pub fn run(&self, cfg: &RunConfig, spec: Option<&GpuSpec>) -> Field3 {
        let gpu = || spec.expect("GPU implementations need a GpuSpec");
        match self {
            Impl::SingleTask => SingleTask::run(cfg),
            Impl::BulkSync => BulkSyncMpi::run(cfg),
            Impl::Nonblocking => NonblockingMpi::run(cfg),
            Impl::ThreadOverlap => ThreadOverlapMpi::run(cfg),
            Impl::GpuResident => GpuResident::run(cfg, gpu()),
            Impl::GpuBulkSync => GpuBulkSyncMpi::run(cfg, gpu()),
            Impl::GpuStreams => GpuStreamsMpi::run(cfg, gpu()),
            Impl::HybridBulkSync => HybridBulkSync::run(cfg, gpu()),
            Impl::HybridOverlap => HybridOverlap::run(cfg, gpu()),
        }
    }

    /// Run the implementation, returning the final global state plus the
    /// per-rank [`RunReport`] (stats, and span traces when
    /// [`RunConfig::trace`] is set).
    pub fn run_with_report(&self, cfg: &RunConfig, spec: Option<&GpuSpec>) -> (Field3, RunReport) {
        let gpu = || spec.expect("GPU implementations need a GpuSpec");
        match self {
            Impl::SingleTask => SingleTask::run_with_report(cfg),
            Impl::BulkSync => BulkSyncMpi::run_with_report(cfg),
            Impl::Nonblocking => NonblockingMpi::run_with_report(cfg),
            Impl::ThreadOverlap => ThreadOverlapMpi::run_with_report(cfg),
            Impl::GpuResident => GpuResident::run_with_report(cfg, gpu()),
            Impl::GpuBulkSync => GpuBulkSyncMpi::run_with_report(cfg, gpu()),
            Impl::GpuStreams => GpuStreamsMpi::run_with_report(cfg, gpu()),
            Impl::HybridBulkSync => HybridBulkSync::run_with_report(cfg, gpu()),
            Impl::HybridOverlap => HybridOverlap::run_with_report(cfg, gpu()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advect_core::stepper::{AdvectionProblem, SerialStepper};

    fn reference(problem: AdvectionProblem, steps: u64) -> Field3 {
        let mut s = SerialStepper::new(problem);
        s.run(steps);
        s.state().clone()
    }

    fn check(im: Impl, cfg: &RunConfig, spec: Option<&GpuSpec>, what: &str) {
        let expect = reference(cfg.problem, cfg.steps);
        let got = im.run(cfg, spec);
        let diff = got.max_abs_diff(&expect);
        assert_eq!(
            diff,
            0.0,
            "{} ({what}) diverges from serial by {diff}",
            im.name()
        );
    }

    #[test]
    fn single_task_matches_serial() {
        let cfg = RunConfig::new(AdvectionProblem::general_case(12), 4).with_threads(3);
        check(Impl::SingleTask, &cfg, None, "3 threads");
    }

    #[test]
    fn bulk_sync_matches_serial_across_task_counts() {
        for ntasks in [1usize, 2, 4, 5, 8] {
            let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
                .tasks(ntasks)
                .with_threads(2);
            check(Impl::BulkSync, &cfg, None, "tasks sweep");
        }
    }

    #[test]
    fn nonblocking_matches_serial_across_task_counts() {
        for ntasks in [1usize, 3, 4, 8] {
            let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
                .tasks(ntasks)
                .with_threads(2);
            check(Impl::Nonblocking, &cfg, None, "tasks sweep");
        }
    }

    #[test]
    fn thread_overlap_matches_serial_across_task_counts() {
        for ntasks in [1usize, 2, 4] {
            for threads in [1usize, 2, 4] {
                let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
                    .tasks(ntasks)
                    .with_threads(threads);
                check(Impl::ThreadOverlap, &cfg, None, "tasks × threads");
            }
        }
    }

    #[test]
    fn gpu_resident_matches_serial() {
        let spec = GpuSpec::tesla_c2050();
        for block in [(8, 8), (32, 8), (5, 3)] {
            let cfg = RunConfig::new(AdvectionProblem::general_case(11), 3).with_block(block);
            check(Impl::GpuResident, &cfg, Some(&spec), "block sweep");
        }
    }

    #[test]
    fn gpu_bulk_sync_matches_serial() {
        let spec = GpuSpec::tesla_c1060();
        for ntasks in [1usize, 2, 4] {
            let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
                .tasks(ntasks)
                .with_block((8, 8));
            check(Impl::GpuBulkSync, &cfg, Some(&spec), "tasks sweep");
        }
    }

    #[test]
    fn gpu_streams_matches_serial() {
        let spec = GpuSpec::tesla_c2050();
        for ntasks in [1usize, 2, 4] {
            let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
                .tasks(ntasks)
                .with_block((8, 8));
            check(Impl::GpuStreams, &cfg, Some(&spec), "tasks sweep");
        }
    }

    #[test]
    fn hybrid_bulk_sync_matches_serial_across_thickness() {
        let spec = GpuSpec::tesla_c2050();
        for thickness in [0usize, 1, 2, 3, 6] {
            let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
                .tasks(2)
                .with_threads(2)
                .with_block((8, 8))
                .with_thickness(thickness);
            check(Impl::HybridBulkSync, &cfg, Some(&spec), "thickness sweep");
        }
    }

    #[test]
    fn hybrid_overlap_matches_serial_across_thickness() {
        let spec = GpuSpec::tesla_c2050();
        for thickness in [1usize, 2, 3, 6] {
            let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
                .tasks(2)
                .with_threads(2)
                .with_block((8, 8))
                .with_thickness(thickness);
            check(Impl::HybridOverlap, &cfg, Some(&spec), "thickness sweep");
        }
    }

    #[test]
    fn hybrid_overlap_matches_serial_across_tasks() {
        let spec = GpuSpec::tesla_c2050();
        for ntasks in [1usize, 3, 4, 8] {
            let cfg = RunConfig::new(AdvectionProblem::general_case(12), 2)
                .tasks(ntasks)
                .with_threads(2)
                .with_block((8, 8))
                .with_thickness(1);
            check(Impl::HybridOverlap, &cfg, Some(&spec), "tasks sweep");
        }
    }

    #[test]
    fn all_implementations_agree_on_paper_velocity() {
        // The paper's configuration (unit Courant number) on a small grid:
        // all nine implementations produce the same state.
        let spec = GpuSpec::tesla_c2050();
        let cfg = RunConfig::new(AdvectionProblem::paper_case(12), 3)
            .tasks(1)
            .with_threads(2)
            .with_block((8, 8))
            .with_thickness(2);
        let expect = reference(cfg.problem, cfg.steps);
        for im in Impl::ALL {
            let cfg = if im.uses_mpi() { cfg.tasks(4) } else { cfg };
            let got = im.run(&cfg, Some(&spec));
            assert_eq!(
                got.max_abs_diff(&expect),
                0.0,
                "{} diverges on the paper case",
                im.name()
            );
        }
    }

    #[test]
    fn hybrid_overlap_rejects_zero_thickness() {
        let spec = GpuSpec::tesla_c2050();
        let cfg = RunConfig::new(AdvectionProblem::general_case(8), 1)
            .with_thickness(0)
            .with_block((8, 8));
        let r = std::panic::catch_unwind(|| Impl::HybridOverlap.run(&cfg, Some(&spec)));
        assert!(r.is_err());
    }

    #[test]
    fn impl_metadata_is_consistent() {
        assert_eq!(Impl::ALL.len(), 9);
        let gpu_count = Impl::ALL.iter().filter(|i| i.uses_gpu()).count();
        assert_eq!(gpu_count, 5);
        let mpi_count = Impl::ALL.iter().filter(|i| i.uses_mpi()).count();
        assert_eq!(mpi_count, 7);
        for im in Impl::ALL {
            assert!(im.section().starts_with("IV-"));
        }
    }
}
