//! Implementation IV-B: bulk-synchronous MPI.
//!
//! Each step performs the whole halo exchange (dimension-serialized,
//! nonblocking receives posted first), then the full local stencil, then
//! the state copy — no overlap of communication and computation.

use crate::halo::{exchange_halos, HaloBuffers};
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::Field3;
use advect_core::stencil::{apply_stencil_slab_tiled, copy_region_slab};
use advect_core::team::ThreadTeam;
use decomp::ExchangePlan;
use simmpi::World;

/// Static z cut points for a thread team — the threads-aware partitioner
/// now lives in `advect_core::tile`; re-exported for the other runners.
pub(crate) use advect_core::tile::z_cuts;

/// The bulk-synchronous distributed implementation.
pub struct BulkSyncMpi;

impl BulkSyncMpi {
    /// Run and return the assembled global state (from rank 0).
    pub fn run(cfg: &RunConfig) -> Field3 {
        Self::run_with_report(cfg).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig) -> (Field3, crate::runner::RunReport) {
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "bulk_sync", rank);
            let sub = decomp_ref.subdomains[rank];
            let mut cur = local_initial_field(cfg, decomp_ref, rank);
            let mut new = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, 1);
            let plan = ExchangePlan::new(sub.extent, 1);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            let team = ThreadTeam::new(cfg.threads);
            let cuts = z_cuts(sub.extent.2, cfg.threads);
            let region = cur.interior_range();
            comm.barrier(); // the paper barriers before starting the timer
            for _ in 0..cfg.steps {
                let step_t0 = step_hist.start();
                // Step 1: full exchange, master thread drives communication.
                exchange_halos(&mut cur, &plan, decomp_ref, rank, comm, &halo_bufs);
                // Step 2: stencil over the whole interior, threaded by z-slab.
                let throttle = comm.throttle_start();
                {
                    let _span = tracer.span(obs::Category::ComputeInterior, "stencil");
                    let src = &cur;
                    let stencil = cfg.problem.stencil();
                    let tile = cfg.tile_spec(cur.extents().0);
                    let slabs = new.z_slabs_mut(&cuts);
                    team.parallel_with(slabs, |_ctx, mut slab| {
                        apply_stencil_slab_tiled(src, &mut slab, &stencil, region, tile);
                    });
                }
                // Step 3: copy new state to current state.
                {
                    let src = &new;
                    let slabs = cur.z_slabs_mut(&cuts);
                    team.parallel_with(slabs, |_ctx, mut slab| {
                        copy_region_slab(src, &mut slab, region);
                    });
                }
                comm.throttle_end(throttle);
                step_hist.observe_since(step_t0);
            }
            comm.barrier();
            (
                assemble_global(cfg, decomp_ref, comm, &cur),
                comm.stats(),
                comm.fault_stats(),
                None,
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }
}
