//! Extension implementation: communication-avoiding deep halos.
//!
//! The paper's implementations exchange a one-point halo every step. A
//! classic alternative for the latency-dominated regime its Figures 3/4
//! expose at high core counts is a **deep halo**: exchange a `W`-point
//! halo once, then take `W` stencil steps locally, recomputing a shrinking
//! shell of neighbor points redundantly instead of communicating. Message
//! *count* drops by `W×` (latency), message volume grows slightly, and
//! compute grows by the redundant shell — a trade that pays exactly where
//! IV-C stopped paying.
//!
//! Correctness is exact, not approximate: after an exchange the sub-step
//! `s` (0-based) computes the region extended `W-1-s` points beyond the
//! interior, which needs source values `W-s` points out — available by
//! induction. The result is **bit-identical** to the serial reference
//! because every computed value sees exactly the same inputs in the same
//! tap order.

use crate::halo::{exchange_halos, HaloBuffers};
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::{Field3, Range3, SharedField};
use advect_core::stencil::apply_stencil_shared_tiled;
use advect_core::team::{split_static, ThreadTeam};
use decomp::ExchangePlan;
use simmpi::World;

/// The deep-halo (communication-avoiding) bulk-synchronous implementation.
pub struct DeepHaloBulkSync;

impl DeepHaloBulkSync {
    /// Run with halo width `width` (1 reduces to IV-B's schedule) and
    /// return the assembled global state.
    pub fn run(cfg: &RunConfig, width: usize) -> Field3 {
        Self::run_with_report(cfg, width).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig, width: usize) -> (Field3, crate::runner::RunReport) {
        assert!(width >= 1, "halo width must be at least 1");
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "deep_halo", rank);
            let sub = decomp_ref.subdomains[rank];
            let (nx, ny, nz) = sub.extent;
            assert!(
                width <= nx.min(ny).min(nz),
                "halo width {width} exceeds subdomain extent ({nx},{ny},{nz})"
            );
            // Wide-halo fields: reuse the initial fill, then re-home it
            // into width-W storage.
            let narrow = local_initial_field(cfg, decomp_ref, rank);
            let mut cur = Field3::new(nx, ny, nz, width);
            for (x, y, z) in cur.interior_range().iter() {
                *cur.at_mut(x, y, z) = narrow.at(x, y, z);
            }
            let mut new = Field3::new(nx, ny, nz, width);
            let plan = ExchangePlan::new(sub.extent, width);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            let team = ThreadTeam::new(cfg.threads);
            let stencil = cfg.problem.stencil();
            let tile = cfg.tile_spec(cur.extents().0);
            comm.barrier();
            let mut remaining = cfg.steps;
            while remaining > 0 {
                let step_t0 = step_hist.start();
                exchange_halos(&mut cur, &plan, decomp_ref, rank, comm, &halo_bufs);
                let burst = (width as u64).min(remaining);
                let throttle = comm.throttle_start();
                let _span = tracer.span(obs::Category::ComputeInterior, "burst");
                for s in 0..burst {
                    // Extend the computed region beyond the interior by
                    // the halo depth still valid after this sub-step.
                    let e = (width as i64) - 1 - s as i64;
                    let region = Range3::new(
                        (-e, nx as i64 + e),
                        (-e, ny as i64 + e),
                        (-e, nz as i64 + e),
                    );
                    {
                        let src = &cur;
                        let writer = SharedField::new(&mut new);
                        let writer_ref = &writer;
                        let zspan = (region.z.1 - region.z.0) as usize;
                        team.parallel(|ctx| {
                            let chunk = split_static(0..zspan, ctx.num_threads, ctx.tid);
                            if chunk.is_empty() {
                                return;
                            }
                            let zr = (
                                region.z.0 + chunk.start as i64,
                                region.z.0 + chunk.end as i64,
                            );
                            apply_stencil_shared_tiled(
                                src,
                                writer_ref,
                                &stencil,
                                Range3::new(region.x, region.y, zr),
                                tile,
                            );
                        });
                    }
                    std::mem::swap(&mut cur, &mut new);
                }
                drop(_span);
                comm.throttle_end(throttle);
                step_hist.observe_since(step_t0);
                remaining -= burst;
            }
            comm.barrier();
            (
                assemble_global(cfg, decomp_ref, comm, &cur),
                comm.stats(),
                comm.fault_stats(),
                None,
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }

    /// Redundant points computed per interior point per step for halo
    /// width `w` on a cubic subdomain of side `n` (the compute overhead
    /// the latency saving must beat).
    pub fn redundancy(n: usize, w: usize) -> f64 {
        let n = n as f64;
        let mut extended = 0.0;
        for s in 0..w {
            let e = (w - 1 - s) as f64;
            extended += (n + 2.0 * e).powi(3);
        }
        extended / (w as f64 * n.powi(3)) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advect_core::stepper::{AdvectionProblem, SerialStepper};

    fn reference(problem: AdvectionProblem, steps: u64) -> Field3 {
        let mut s = SerialStepper::new(problem);
        s.run(steps);
        s.state().clone()
    }

    #[test]
    fn deep_halo_matches_serial_bitwise() {
        let problem = AdvectionProblem::general_case(12);
        for width in [1usize, 2, 3] {
            for steps in [1u64, 2, 4, 5] {
                let expect = reference(problem, steps);
                let cfg = RunConfig::new(problem, steps).tasks(4).with_threads(2);
                let got = DeepHaloBulkSync::run(&cfg, width);
                assert_eq!(
                    got.max_abs_diff(&expect),
                    0.0,
                    "width {width}, steps {steps}"
                );
            }
        }
    }

    #[test]
    fn deep_halo_handles_partial_final_burst() {
        // 7 steps at width 3: bursts of 3, 3, 1.
        let problem = AdvectionProblem::general_case(12);
        let expect = reference(problem, 7);
        let cfg = RunConfig::new(problem, 7).tasks(2).with_threads(2);
        let got = DeepHaloBulkSync::run(&cfg, 3);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn deep_halo_exchanges_fewer_times() {
        // The point of the scheme: width W runs W× fewer exchanges. Verify
        // via message counts on a 2-rank world.
        let problem = AdvectionProblem::general_case(10);
        let count_messages = |width: usize| -> u64 {
            let decomp = decomp::Decomposition::new(2, (10, 10, 10));
            let dref = &decomp;
            let results = World::run(2, move |comm| {
                let sub = dref.subdomains[comm.rank()];
                let mut cur = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, width);
                cur.fill_interior(|x, y, z| (x + y + z) as f64);
                let plan = ExchangePlan::new(sub.extent, width);
                let bufs = HaloBuffers::new(&plan, comm);
                let stencil = problem.stencil();
                let mut new = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, width);
                let mut remaining = 6u64;
                while remaining > 0 {
                    exchange_halos(&mut cur, &plan, dref, comm.rank(), comm, &bufs);
                    let burst = (width as u64).min(remaining);
                    for s in 0..burst {
                        let e = (width as i64) - 1 - s as i64;
                        let (nx, ny, nz) = sub.extent;
                        let region = Range3::new(
                            (-e, nx as i64 + e),
                            (-e, ny as i64 + e),
                            (-e, nz as i64 + e),
                        );
                        let writer = SharedField::new(&mut new);
                        let tile = advect_core::tile::TileSpec::host(cur.extents().0);
                        apply_stencil_shared_tiled(&cur, &writer, &stencil, region, tile);
                        std::mem::swap(&mut cur, &mut new);
                    }
                    remaining -= burst;
                }
                comm.stats().messages_sent
            });
            results.iter().sum()
        };
        let w1 = count_messages(1);
        let w3 = count_messages(3);
        assert_eq!(w1, 3 * w3, "w1 {w1}, w3 {w3}");
    }

    #[test]
    fn redundancy_grows_with_width_and_shrinks_with_domain() {
        let r2_small = DeepHaloBulkSync::redundancy(20, 2);
        let r2_big = DeepHaloBulkSync::redundancy(100, 2);
        let r3_small = DeepHaloBulkSync::redundancy(20, 3);
        assert!(r2_small > r2_big);
        assert!(r3_small > r2_small);
        assert_eq!(DeepHaloBulkSync::redundancy(50, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "halo width")]
    fn rejects_width_larger_than_subdomain() {
        let problem = AdvectionProblem::general_case(8);
        let cfg = RunConfig::new(problem, 1).tasks(8); // 4³-ish subdomains
        let _ = DeepHaloBulkSync::run(&cfg, 5);
    }
}
