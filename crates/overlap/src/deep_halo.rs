//! Extension implementation: communication-avoiding deep halos.
//!
//! The paper's implementations exchange a one-point halo every step. A
//! classic alternative for the latency-dominated regime its Figures 3/4
//! expose at high core counts is a **deep halo**: exchange a `W`-point
//! halo once, then take `W` stencil steps locally, recomputing a shrinking
//! shell of neighbor points redundantly instead of communicating. Message
//! *count* drops by `W×` (latency), message volume grows slightly, and
//! compute grows by the redundant shell — a trade that pays exactly where
//! IV-C stopped paying.
//!
//! Correctness is exact, not approximate: after an exchange, sub-step
//! `s` (0-based) needs source values valid `W-s` points beyond the
//! interior — available by induction from the depth-`W` exchange. The
//! result is **bit-identical** to the serial reference because every
//! computed value sees exactly the same inputs in the same tap order.
//!
//! Since PR 7 the `W` licensed sub-steps are executed as **one
//! time-tiled traversal** ([`advect_core::timetile::advance_pooled`]):
//! instead of `W` whole-grid sweeps between exchanges (each streaming
//! the subdomain through memory), each trapezoid tile is advanced all
//! `W` steps while hot in cache. The trace shows exactly one
//! `timetile.traversal` span per exchange.

use crate::halo::{exchange_halos, HaloBuffers};
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::Field3;
use advect_core::sweep::SweepPool;
use decomp::ExchangePlan;
use simmpi::World;

/// The deep-halo (communication-avoiding) bulk-synchronous implementation.
pub struct DeepHaloBulkSync;

impl DeepHaloBulkSync {
    /// Run with halo width `width` (1 reduces to IV-B's schedule) and
    /// return the assembled global state.
    pub fn run(cfg: &RunConfig, width: usize) -> Field3 {
        Self::run_with_report(cfg, width).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig, width: usize) -> (Field3, crate::runner::RunReport) {
        assert!(width >= 1, "halo width must be at least 1");
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "deep_halo", rank);
            let sub = decomp_ref.subdomains[rank];
            let (nx, ny, nz) = sub.extent;
            assert!(
                width <= nx.min(ny).min(nz),
                "halo width {width} exceeds subdomain extent ({nx},{ny},{nz})"
            );
            // Wide-halo fields: reuse the initial fill, then re-home it
            // into width-W storage.
            let narrow = local_initial_field(cfg, decomp_ref, rank);
            let pool = SweepPool::new(cfg.threads);
            let mut cur = Field3::new_placed(nx, ny, nz, width, &pool);
            for (x, y, z) in cur.interior_range().iter() {
                *cur.at_mut(x, y, z) = narrow.at(x, y, z);
            }
            let mut new = Field3::new_placed(nx, ny, nz, width, &pool);
            let plan = ExchangePlan::new(sub.extent, width);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            let stencil = cfg.problem.stencil();
            let tile = match cfg.tile {
                Some((ty, tz)) => advect_core::tile::TileSpec::new(ty, tz),
                None => advect_core::timetile::tile_for_host(cur.extents().0, width, cfg.threads),
            };
            comm.barrier();
            let mut remaining = cfg.steps;
            while remaining > 0 {
                let step_t0 = step_hist.start();
                exchange_halos(&mut cur, &plan, decomp_ref, rank, comm, &halo_bufs);
                let burst = (width as u64).min(remaining);
                let throttle = comm.throttle_start();
                {
                    // One fused traversal advances the interior by the
                    // whole burst — the depth-`width` exchange licenses
                    // every skirt read the trapezoid tiles make.
                    let _span = tracer.span(obs::Category::ComputeInterior, "timetile.traversal");
                    advect_core::timetile::advance_pooled(
                        &cur,
                        &mut new,
                        &stencil,
                        cur.interior_range(),
                        burst as usize,
                        tile,
                        &pool,
                    );
                    std::mem::swap(&mut cur, &mut new);
                }
                comm.throttle_end(throttle);
                step_hist.observe_since(step_t0);
                remaining -= burst;
            }
            comm.barrier();
            (
                assemble_global(cfg, decomp_ref, comm, &cur),
                comm.stats(),
                comm.fault_stats(),
                None,
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }

    /// Redundant points computed per interior point per step for halo
    /// width `w` on a cubic subdomain of side `n` (the compute overhead
    /// the latency saving must beat).
    pub fn redundancy(n: usize, w: usize) -> f64 {
        let n = n as f64;
        let mut extended = 0.0;
        for s in 0..w {
            let e = (w - 1 - s) as f64;
            extended += (n + 2.0 * e).powi(3);
        }
        extended / (w as f64 * n.powi(3)) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use advect_core::stepper::{AdvectionProblem, SerialStepper};

    fn reference(problem: AdvectionProblem, steps: u64) -> Field3 {
        let mut s = SerialStepper::new(problem);
        s.run(steps);
        s.state().clone()
    }

    #[test]
    fn deep_halo_matches_serial_bitwise() {
        let problem = AdvectionProblem::general_case(12);
        for width in [1usize, 2, 3] {
            for steps in [1u64, 2, 4, 5] {
                let expect = reference(problem, steps);
                let cfg = RunConfig::new(problem, steps).tasks(4).with_threads(2);
                let got = DeepHaloBulkSync::run(&cfg, width);
                assert_eq!(
                    got.max_abs_diff(&expect),
                    0.0,
                    "width {width}, steps {steps}"
                );
            }
        }
    }

    #[test]
    fn deep_halo_handles_partial_final_burst() {
        // 7 steps at width 3: bursts of 3, 3, 1.
        let problem = AdvectionProblem::general_case(12);
        let expect = reference(problem, 7);
        let cfg = RunConfig::new(problem, 7).tasks(2).with_threads(2);
        let got = DeepHaloBulkSync::run(&cfg, 3);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn deep_halo_exchanges_fewer_times() {
        // The point of the scheme: width W runs W× fewer exchanges. Verify
        // via message counts on a 2-rank world.
        let problem = AdvectionProblem::general_case(10);
        let count_messages = |width: usize| -> u64 {
            let decomp = decomp::Decomposition::new(2, (10, 10, 10));
            let dref = &decomp;
            let results = World::run(2, move |comm| {
                let sub = dref.subdomains[comm.rank()];
                let mut cur = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, width);
                cur.fill_interior(|x, y, z| (x + y + z) as f64);
                let plan = ExchangePlan::new(sub.extent, width);
                let bufs = HaloBuffers::new(&plan, comm);
                let stencil = problem.stencil();
                let mut new = Field3::new(sub.extent.0, sub.extent.1, sub.extent.2, width);
                let pool = SweepPool::new(1);
                let tile = advect_core::tile::TileSpec::host(cur.extents().0);
                let mut remaining = 6u64;
                while remaining > 0 {
                    exchange_halos(&mut cur, &plan, dref, comm.rank(), comm, &bufs);
                    let burst = (width as u64).min(remaining);
                    advect_core::timetile::advance_pooled(
                        &cur,
                        &mut new,
                        &stencil,
                        cur.interior_range(),
                        burst as usize,
                        tile,
                        &pool,
                    );
                    std::mem::swap(&mut cur, &mut new);
                    remaining -= burst;
                }
                comm.stats().messages_sent
            });
            results.iter().sum()
        };
        let w1 = count_messages(1);
        let w3 = count_messages(3);
        assert_eq!(w1, 3 * w3, "w1 {w1}, w3 {w3}");
    }

    #[test]
    fn deep_halo_runs_one_traversal_per_exchange() {
        // 7 steps at width 3 → bursts of 3, 3, 1: exactly three fused
        // traversals per rank, one per exchange, visible in the trace.
        let problem = AdvectionProblem::general_case(12);
        let cfg = RunConfig::new(problem, 7)
            .tasks(2)
            .with_threads(2)
            .with_trace(true);
        let (_, report) = DeepHaloBulkSync::run_with_report(&cfg, 3);
        assert!(!report.traces.is_empty());
        for trace in &report.traces {
            let traversals = trace
                .spans
                .iter()
                .filter(|s| s.label == "timetile.traversal")
                .count();
            assert_eq!(traversals, 3, "rank {}", trace.rank);
        }
    }

    #[test]
    fn redundancy_grows_with_width_and_shrinks_with_domain() {
        let r2_small = DeepHaloBulkSync::redundancy(20, 2);
        let r2_big = DeepHaloBulkSync::redundancy(100, 2);
        let r3_small = DeepHaloBulkSync::redundancy(20, 3);
        assert!(r2_small > r2_big);
        assert!(r3_small > r2_small);
        assert_eq!(DeepHaloBulkSync::redundancy(50, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "halo width")]
    fn rejects_width_larger_than_subdomain() {
        let problem = AdvectionProblem::general_case(8);
        let cfg = RunConfig::new(problem, 1).tasks(8); // 4³-ish subdomains
        let _ = DeepHaloBulkSync::run(&cfg, 5);
    }
}
