//! Implementation IV-A: single task, multiple threads.

use crate::runner::RunConfig;
use advect_core::field::Field3;
use advect_core::stepper::ThreadedStepper;

/// The baseline: one task, OpenMP-style threading over the three
/// algorithmic steps (halo copy, stencil, state copy).
pub struct SingleTask;

impl SingleTask {
    /// Run the configured number of steps and return the final state.
    pub fn run(cfg: &RunConfig) -> Field3 {
        assert_eq!(cfg.ntasks, 1, "IV-A is a single-task implementation");
        let mut stepper = ThreadedStepper::new(cfg.problem, cfg.threads);
        stepper.run(cfg.steps);
        stepper.state().clone()
    }
}
