//! Implementation IV-A: single task, multiple threads.

use crate::runner::{RunConfig, RunReport};
use advect_core::field::Field3;
use advect_core::stepper::ThreadedStepper;

/// The baseline: one task, OpenMP-style threading over the three
/// algorithmic steps (halo copy, stencil, state copy).
pub struct SingleTask;

impl SingleTask {
    /// Run the configured number of steps and return the final state.
    pub fn run(cfg: &RunConfig) -> Field3 {
        Self::run_with_report(cfg).0
    }

    /// Run, returning the final state plus a report. There is no
    /// communication and no device; when traced, each step contributes
    /// one `compute.interior` span covering the threaded step.
    pub fn run_with_report(cfg: &RunConfig) -> (Field3, RunReport) {
        assert_eq!(cfg.ntasks, 1, "IV-A is a single-task implementation");
        let tracer = obs::Tracer::enabled(cfg.trace, 0, obs::Anchor::now());
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let step_hist = crate::runner::step_histogram(&metrics, "single_task", 0);
        let mut stepper = ThreadedStepper::new(cfg.problem, cfg.threads);
        if let Some((ty, tz)) = cfg.tile {
            stepper = stepper.with_tile(advect_core::tile::TileSpec::new(ty, tz));
        }
        for _ in 0..cfg.steps {
            let step_t0 = step_hist.start();
            let _span = tracer.span(obs::Category::ComputeInterior, "step");
            stepper.step();
            drop(_span);
            step_hist.observe_since(step_t0);
        }
        let mut report = RunReport {
            comm: vec![simmpi::CommStats::default()],
            fault: vec![simmpi::FaultStats::default()],
            metrics,
            ..RunReport::default()
        };
        if let Some(t) = crate::runner::finish_trace(&tracer) {
            report.traces.push(t);
        }
        (stepper.state().clone(), report)
    }
}
