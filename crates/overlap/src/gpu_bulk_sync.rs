//! Implementation IV-F: GPU with bulk-synchronous MPI.
//!
//! Multi-GPU: CPUs perform the MPI communication. Separate kernels handle
//! the interior points and the boundary faces; buffers keep CPU-GPU
//! communication in large contiguous chunks. Each step, a CPU copies
//! boundary buffers from the GPU, communicates the boundaries as in the
//! CPU-only bulk-synchronous implementation, copies halo buffers back to
//! the GPU, and makes kernel calls for the faces and interior — all
//! serialized on the default stream (no overlap).

use crate::gpu_common::DeviceField;
use crate::halo::{exchange_halos, HaloBuffers};
use crate::runner::{assemble_global, local_initial_field, RunConfig};
use advect_core::field::Field3;
use decomp::partition::BoxPartition;
use decomp::ExchangePlan;
use simgpu::{Gpu, GpuSpec, StencilLaunch, Stream};
use simmpi::World;

/// The bulk-synchronous multi-GPU implementation.
pub struct GpuBulkSyncMpi;

impl GpuBulkSyncMpi {
    /// Run and return the assembled global state (from rank 0).
    pub fn run(cfg: &RunConfig, spec: &GpuSpec) -> Field3 {
        Self::run_with_report(cfg, spec).0
    }

    /// Run, returning the global state plus per-rank substrate statistics.
    pub fn run_with_report(cfg: &RunConfig, spec: &GpuSpec) -> (Field3, crate::runner::RunReport) {
        let decomp = cfg.decomposition();
        let decomp_ref = &decomp;
        let anchor = obs::Anchor::now();
        let metrics = obs::registry::Metrics::enabled(cfg.metrics);
        let metrics_ref = &metrics;
        let results = World::run_with_faults(cfg.ntasks, cfg.fault.mpi, move |comm| {
            let tracer = crate::runner::rank_instruments(cfg, comm, anchor, metrics_ref);
            let rank = comm.rank();
            let step_hist = crate::runner::step_histogram(metrics_ref, "gpu_bulk_sync", rank);
            let sub = decomp_ref.subdomains[rank];
            let gpu = Gpu::new(spec.clone()).with_fault_plan(cfg.fault.gpu.for_rank(rank));
            gpu.install_tracer(tracer.clone());
            gpu.install_metrics(metrics_ref, rank);
            gpu.set_constant(cfg.problem.stencil().a);
            // Host mirror: only its skin and halos are kept current.
            let mut host = local_initial_field(cfg, decomp_ref, rank);
            let mut dev = DeviceField::from_host(&gpu, &host);
            // With no CPU box (thickness 0) the GPU block is the whole
            // subdomain; the partition provides the face/interior split.
            let part = BoxPartition::new(sub.extent, 0);
            let plan = ExchangePlan::new(sub.extent, 1);
            let halo_bufs = HaloBuffers::new(&plan, comm);
            comm.barrier();
            for _ in 0..cfg.steps {
                let step_t0 = step_hist.start();
                // CPU copies boundary buffers from the GPU...
                dev.regions_d2h(
                    &gpu,
                    Stream::DEFAULT,
                    dev.cur,
                    &part.gpu_boundary_ring,
                    &mut host,
                );
                gpu.sync_device();
                // ...communicates the boundaries...
                exchange_halos(&mut host, &plan, decomp_ref, rank, comm, &halo_bufs);
                // ...copies halo buffers back to the GPU...
                dev.regions_h2d(&gpu, Stream::DEFAULT, dev.cur, &part.gpu_halo_ring, &host);
                // ...and makes kernel calls for the faces and interior.
                for &face in &part.gpu_boundary_ring {
                    if face.is_empty() {
                        continue;
                    }
                    gpu.launch_stencil(
                        Stream::DEFAULT,
                        dev.cur,
                        dev.new,
                        StencilLaunch {
                            dims: dev.dims,
                            region: face,
                            block: cfg.block,
                            periodic: false,
                        },
                    );
                }
                if !part.gpu_deep_interior.is_empty() {
                    gpu.launch_stencil(
                        Stream::DEFAULT,
                        dev.cur,
                        dev.new,
                        StencilLaunch {
                            dims: dev.dims,
                            region: part.gpu_deep_interior,
                            block: cfg.block,
                            periodic: false,
                        },
                    );
                }
                gpu.sync_device();
                dev.swap();
                step_hist.observe_since(step_t0);
            }
            comm.barrier();
            dev.interior_to_host(&gpu, dev.cur, &mut host);
            tracer.absorb(&gpu.timeline().to_trace_events());
            (
                assemble_global(cfg, decomp_ref, comm, &host),
                comm.stats(),
                comm.fault_stats(),
                Some(gpu.stats()),
                crate::runner::finish_trace(&tracer),
            )
        });
        crate::runner::collect_report(results, metrics)
    }
}
