//! Shared run configuration and distributed-state assembly.

use advect_core::field::Field3;
use advect_core::stepper::AdvectionProblem;
use decomp::Decomposition;
use simmpi::Comm;

/// Fault injection for a run: the MPI-side plan (delivery perturbation,
/// stragglers, bounded waits) and the GPU-side plan (launch jitter, PCIe
/// slowdown), driven by one construction so soak sweeps perturb both
/// substrates from a single seed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Perturbations of the message-passing substrate.
    pub mpi: simmpi::FaultPlan,
    /// Perturbations of the device timeline.
    pub gpu: simgpu::GpuFaultPlan,
}

impl FaultSpec {
    /// The neutral spec: nothing is perturbed, zero cost.
    pub const fn off() -> Self {
        Self {
            mpi: simmpi::FaultPlan::off(),
            gpu: simgpu::GpuFaultPlan::off(),
        }
    }

    /// Moderate everything-on chaos on both substrates from one seed.
    pub fn chaos(seed: u64) -> Self {
        Self {
            mpi: simmpi::FaultPlan::chaos(seed),
            gpu: simgpu::GpuFaultPlan::chaos(seed),
        }
    }

    /// Whether both plans are at their neutral values.
    pub fn is_off(&self) -> bool {
        self.mpi.is_off() && self.gpu.is_off()
    }
}

/// Configuration shared by every implementation run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// The advection problem (cubic grid).
    pub problem: AdvectionProblem,
    /// Time steps to take.
    pub steps: u64,
    /// MPI tasks (1 for the single-task and GPU-resident implementations).
    pub ntasks: usize,
    /// OpenMP threads per task.
    pub threads: usize,
    /// GPU thread-block shape for GPU implementations.
    pub block: (usize, usize),
    /// CPU box thickness for the hybrid implementations (Figure 1).
    pub thickness: usize,
    /// Record per-rank span traces during the run ([`RunReport::traces`]).
    /// Off by default: the substrates then trace into a static no-op sink
    /// and allocate no trace buffers.
    pub trace: bool,
    /// Fault injection for the run ([`FaultSpec::off`] by default: no
    /// perturbation, no fault state allocated).
    pub fault: FaultSpec,
    /// Record runtime metrics during the run ([`RunReport::metrics`]).
    /// Off by default: the substrates then observe into disabled handles
    /// and allocate no metric state (see
    /// [`obs::registry::metric_states_allocated`]).
    pub metrics: bool,
    /// Explicit cache-blocking tile `(ty, tz)` for the interior sweeps;
    /// `None` (default) derives one from the host cache heuristic
    /// ([`advect_core::tile::TileSpec::host`]).
    pub tile: Option<(usize, usize)>,
}

impl RunConfig {
    /// A convenient default: given problem and steps, single task, one
    /// thread, the paper's Yona block size, thickness 2.
    pub fn new(problem: AdvectionProblem, steps: u64) -> Self {
        Self {
            problem,
            steps,
            ntasks: 1,
            threads: 1,
            block: (32, 8),
            thickness: 2,
            trace: false,
            fault: FaultSpec::off(),
            metrics: false,
            tile: None,
        }
    }

    /// Set the task count.
    pub fn tasks(mut self, n: usize) -> Self {
        self.ntasks = n;
        self
    }

    /// Set threads per task.
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Set the GPU block shape.
    pub fn with_block(mut self, b: (usize, usize)) -> Self {
        self.block = b;
        self
    }

    /// Set the CPU box thickness.
    pub fn with_thickness(mut self, t: usize) -> Self {
        self.thickness = t;
        self
    }

    /// Enable or disable span tracing for the run.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Run under seeded fault injection on both substrates.
    pub fn with_faults(mut self, fault: FaultSpec) -> Self {
        self.fault = fault;
        self
    }

    /// Enable or disable the runtime metrics registry for the run.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Force a cache-blocking tile for the interior sweeps.
    pub fn with_tile(mut self, ty: usize, tz: usize) -> Self {
        self.tile = Some((ty, tz));
        self
    }

    /// The tile the run's sweeps use, for x-rows of allocated width `sx`:
    /// the explicit override when set, otherwise the host heuristic.
    pub fn tile_spec(&self, sx: usize) -> advect_core::tile::TileSpec {
        match self.tile {
            Some((ty, tz)) => advect_core::tile::TileSpec::new(ty, tz),
            None => advect_core::tile::TileSpec::host(sx),
        }
    }

    /// The decomposition this configuration induces.
    pub fn decomposition(&self) -> Decomposition {
        let n = self.problem.n;
        Decomposition::new(self.ntasks, (n, n, n))
    }
}

/// Per-run substrate statistics, one entry per rank.
///
/// Lets callers (and the instrumentation tests) verify *how* an
/// implementation communicated — message counts, traffic volumes, kernel
/// launches, PCIe transfers — independently of what it computed.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-rank message-passing counters.
    pub comm: Vec<simmpi::CommStats>,
    /// Per-rank fault-path observations (all-default when the run had no
    /// fault plan): held/redelivered deliveries, bounded-wait retries,
    /// max stall, straggler throttle time.
    pub fault: Vec<simmpi::FaultStats>,
    /// Per-rank device counters (empty for CPU-only implementations).
    pub gpu: Vec<simgpu::GpuStats>,
    /// Per-rank span traces (empty unless [`RunConfig::trace`]). Wall
    /// spans cover the host's real timing; virtual spans carry the device
    /// timeline bridged through `Timeline::to_trace_events`.
    pub traces: Vec<obs::Trace>,
    /// The run's metrics registry (disabled unless [`RunConfig::metrics`]):
    /// per-channel halo-exchange latency/wait/in-flight histograms from
    /// `simmpi`, kernel and PCIe-transfer histograms from `simgpu`, and
    /// the per-step `advect_step_ns` histogram every runner observes.
    /// Render with [`obs::registry::Metrics::render_prometheus`] or
    /// [`obs::registry::Metrics::render_json`].
    pub metrics: obs::registry::Metrics,
}

impl RunReport {
    /// Total point-to-point messages sent across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.comm.iter().map(|c| c.messages_sent).sum()
    }

    /// Total f64 values sent across all ranks.
    pub fn total_values_sent(&self) -> u64 {
        self.comm.iter().map(|c| c.values_sent).sum()
    }

    /// Total stencil kernel launches across all ranks.
    pub fn total_stencil_launches(&self) -> u64 {
        self.gpu.iter().map(|g| g.stencil_launches).sum()
    }

    /// Total host→device transfers across all ranks.
    pub fn total_h2d_transfers(&self) -> u64 {
        self.gpu.iter().map(|g| g.h2d_transfers).sum()
    }

    /// Total device→host transfers across all ranks.
    pub fn total_d2h_transfers(&self) -> u64 {
        self.gpu.iter().map(|g| g.d2h_transfers).sum()
    }

    /// Total f64 values moved over PCIe (both directions).
    pub fn total_pcie_points(&self) -> u64 {
        self.gpu.iter().map(|g| g.h2d_points + g.d2h_points).sum()
    }

    /// Total nanoseconds ranks spent blocked waiting for messages.
    pub fn total_wait_ns(&self) -> u64 {
        self.comm.iter().map(|c| c.wait_ns).sum()
    }

    /// Largest per-rank mailbox byte high-water mark — the peak volume
    /// that was in flight toward any single rank.
    pub fn peak_bytes_in_flight(&self) -> u64 {
        self.comm
            .iter()
            .map(|c| c.peak_bytes_in_flight)
            .max()
            .unwrap_or(0)
    }

    /// Measured MPI↔compute concurrency, aggregated over ranks on the
    /// wall clock: how much of the in-flight/collective MPI time ran
    /// while this rank's CPU compute spans were open. Requires
    /// [`RunConfig::trace`]; zero otherwise.
    pub fn mpi_compute_overlap(&self) -> obs::metrics::PairOverlap {
        obs::metrics::pair_overlap_all(
            &self.traces,
            obs::Resource::Mpi,
            obs::Resource::Compute,
            obs::Axis::Wall,
        )
    }

    /// Measured PCIe↔compute concurrency on the device's virtual clock
    /// (the simulator executes eagerly in wall time; overlap between copy
    /// engines and kernels only exists on the scheduled timeline).
    /// Requires [`RunConfig::trace`]; zero otherwise.
    pub fn pcie_compute_overlap(&self) -> obs::metrics::PairOverlap {
        obs::metrics::pair_overlap_all(
            &self.traces,
            obs::Resource::Pcie,
            obs::Resource::Compute,
            obs::Axis::Virtual,
        )
    }

    /// Per-rank busy seconds per category on the chosen axis.
    pub fn phase_breakdown(&self, axis: obs::Axis) -> obs::breakdown::Breakdown {
        obs::breakdown::phase_breakdown(&self.traces, axis)
    }

    /// Critical-path attribution over the run's traces on the chosen
    /// axis: which categories bound the makespan and which spans were
    /// fully hidden (slack). Requires [`RunConfig::trace`]; empty
    /// otherwise.
    pub fn critical_breakdown(&self, axis: obs::Axis) -> obs::critical::CriticalBreakdown {
        obs::critical::critical_path_breakdown(&self.traces, axis)
    }

    /// The run's causal message-flow graph: one edge per stamped send
    /// matched to the receive-side span that consumed it. Requires
    /// [`RunConfig::trace`]; empty otherwise.
    pub fn causal_graph(&self) -> obs::causal::CausalGraph {
        obs::causal::build(&self.traces)
    }

    /// Wait-blame attribution over the causal graph: for every blocked
    /// window, the rank whose late send bounded it, with cascaded blame
    /// chased upstream to its root cause. Requires [`RunConfig::trace`].
    pub fn blame(&self) -> obs::causal::Blame {
        obs::causal::blame(&self.causal_graph())
    }

    /// Straggler detection over the blame matrix: ranks whose outgoing
    /// blame is a robust outlier. Requires [`RunConfig::trace`].
    ///
    /// The detector is anchored to the run's compute scale: no rank is
    /// flagged unless its outgoing blame exceeds twice the smallest
    /// per-rank compute-busy time. Clean-run blame is bounded by
    /// per-step imbalance (a fraction of one rank's compute), while a
    /// throttled rank owes a multiple of its whole compute budget, so
    /// the floor separates them regardless of grid size or host speed.
    pub fn stragglers(&self) -> obs::causal::StragglerVerdict {
        obs::causal::detect_stragglers_with(&self.blame(), self.straggler_floor_ns())
    }

    /// The compute-scale anchor fed to the straggler detector: twice the
    /// smallest per-rank compute-busy time, in nanoseconds. Repeated-run
    /// detectors (e.g. `chaos::straggler`) median this across runs
    /// alongside the blame matrices.
    pub fn straggler_floor_ns(&self) -> f64 {
        let min_compute_s = self
            .traces
            .iter()
            .map(|t| {
                obs::metrics::union_seconds(&obs::metrics::busy_intervals(
                    &t.spans,
                    obs::Resource::Compute,
                    obs::Axis::Wall,
                ))
            })
            .fold(f64::INFINITY, f64::min);
        if min_compute_s.is_finite() {
            2.0 * min_compute_s * 1e9
        } else {
            0.0
        }
    }

    /// Total messages held in limbo by jitter/reorder decisions.
    pub fn total_delayed(&self) -> u64 {
        self.fault.iter().map(|f| f.delayed).sum()
    }

    /// Total messages dropped and redelivered.
    pub fn total_redelivered(&self) -> u64 {
        self.fault.iter().map(|f| f.redelivered).sum()
    }

    /// Total bounded-wait timeouts that fired across ranks.
    pub fn total_retries(&self) -> u64 {
        self.fault.iter().map(|f| f.retries).sum()
    }

    /// Longest blocked wait any rank observed completing a receive, in
    /// nanoseconds.
    pub fn max_stall_ns(&self) -> u64 {
        self.fault.iter().map(|f| f.max_stall_ns).max().unwrap_or(0)
    }

    /// Total nanoseconds slept modeling straggler compute and allreduce
    /// stalls.
    pub fn total_throttle_ns(&self) -> u64 {
        self.fault
            .iter()
            .map(|f| f.compute_throttle_ns + f.allreduce_stall_ns)
            .sum()
    }
}

/// What each rank closure hands back: the assembled global state (rank 0
/// only), its comm counters, fault observations, device counters, and
/// span trace.
pub(crate) type RankResult = (
    Option<Field3>,
    simmpi::CommStats,
    simmpi::FaultStats,
    Option<simgpu::GpuStats>,
    Option<obs::Trace>,
);

/// Assemble per-rank `(global, comm, fault, gpu, trace)` results into
/// `(Field3, RunReport)` — shared tail of every implementation's
/// `run_with_report`. The run's metrics registry (shared by every rank)
/// rides along in the report.
pub(crate) fn collect_report(
    results: Vec<RankResult>,
    metrics: obs::registry::Metrics,
) -> (Field3, RunReport) {
    let mut report = RunReport {
        metrics,
        ..RunReport::default()
    };
    let mut global = None;
    for (g, c, f, d, t) in results {
        if let Some(g) = g {
            global = Some(g);
        }
        report.comm.push(c);
        report.fault.push(f);
        if let Some(d) = d {
            report.gpu.push(d);
        }
        if let Some(t) = t {
            report.traces.push(t);
        }
    }
    (global.expect("rank 0 assembles the global state"), report)
}

/// Per-rank instrumentation setup shared by every runner: build the
/// rank's recorder against the run's shared anchor (the no-op sink when
/// [`RunConfig::trace`] is off) and install it — together with the run's
/// metrics registry — into the communicator so the `mpi.*`/pack/unpack
/// layers record through both.
pub(crate) fn rank_instruments(
    cfg: &RunConfig,
    comm: &Comm,
    anchor: obs::Anchor,
    registry: &obs::registry::Metrics,
) -> obs::Tracer {
    let tracer = obs::Tracer::enabled(cfg.trace, comm.rank(), anchor);
    comm.install_tracer(tracer.clone());
    comm.install_metrics(registry);
    tracer
}

/// The per-rank `advect_step_ns{impl,rank}` histogram: wall time per
/// advection step, observed by every runner's step loop. The off handle
/// is returned without touching the registry when metrics are disabled,
/// so unmetered loops never render label strings.
pub(crate) fn step_histogram(
    registry: &obs::registry::Metrics,
    slug: &'static str,
    rank: usize,
) -> obs::registry::Histogram {
    if !registry.is_on() {
        return obs::registry::Histogram::off();
    }
    registry.histogram(
        "advect_step_ns",
        "Wall time per advection step, nanoseconds",
        &[("impl", slug.to_string()), ("rank", rank.to_string())],
    )
}

/// The rank's contribution to [`RunReport::traces`]: `Some` only when the
/// run was traced. Call after all rank-local threads have quiesced.
pub(crate) fn finish_trace(tracer: &obs::Tracer) -> Option<obs::Trace> {
    tracer.is_on().then(|| tracer.finish())
}

/// A rank's local field, allocated and filled from the global initial
/// condition for its subdomain.
pub fn local_initial_field(cfg: &RunConfig, decomp: &Decomposition, rank: usize) -> Field3 {
    let sub = decomp.subdomains[rank];
    let (nx, ny, nz) = sub.extent;
    let (ox, oy, oz) = sub.offset;
    let pulse = cfg.problem.pulse();
    let d = cfg.problem.spacing;
    let mut f = Field3::new(nx, ny, nz, 1);
    f.fill_interior(|x, y, z| {
        use advect_core::analytic::AnalyticSolution;
        pulse.eval(
            (ox as i64 + x) as f64 * d,
            (oy as i64 + y) as f64 * d,
            (oz as i64 + z) as f64 * d,
            0.0,
        )
    });
    f
}

/// Gather every rank's interior to rank 0 and assemble the global field.
/// Returns `Some(global)` on rank 0, `None` elsewhere.
pub fn assemble_global(
    cfg: &RunConfig,
    decomp: &Decomposition,
    comm: &Comm,
    local: &Field3,
) -> Option<Field3> {
    let payload = local.pack_vec(local.interior_range());
    let all = comm.gather_to_root(payload)?;
    let n = cfg.problem.n;
    let mut global = Field3::new(n, n, n, 1);
    for (rank, data) in all.iter().enumerate() {
        let s = decomp.subdomains[rank];
        let (ox, oy, oz) = (s.offset.0 as i64, s.offset.1 as i64, s.offset.2 as i64);
        let (ex, ey, ez) = s.extent;
        // Payloads are packed x fastest, so each (y, z) run is one
        // contiguous x-row of the global field.
        let mut i = 0;
        for z in 0..ez as i64 {
            for y in 0..ey as i64 {
                global
                    .row_mut(ox, oy + y, oz + z, ex)
                    .copy_from_slice(&data[i..i + ex]);
                i += ex;
            }
        }
    }
    Some(global)
}
