//! Zero-cost-when-disabled guarantee for causal stamping (own binary:
//! the assertion reads the process-global causal-seq allocation counter,
//! which any traced run elsewhere in the same process would perturb).

use advect_core::stepper::AdvectionProblem;
use overlap::{BulkSyncMpi, NonblockingMpi, RunConfig};

#[test]
fn untraced_runs_allocate_no_causal_state() {
    let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .tasks(4)
        .with_block((8, 8));

    // Steady state: untraced runs exchange thousands of messages, but
    // with no trace sink there is no one to hand a causal ID to — the
    // per-channel sequence counters must never be materialized.
    for _ in 0..2 {
        let (_, report) = BulkSyncMpi::run_with_report(&cfg);
        assert!(report.traces.is_empty());
        let (_, report) = NonblockingMpi::run_with_report(&cfg);
        assert!(report.traces.is_empty());
    }
    assert_eq!(
        simmpi::causal_states_allocated(),
        0,
        "tracing is off: no causal sequence state may be allocated"
    );

    // Control: a traced run does stamp messages, so the zero above is
    // meaningful — and the stamps make it into a non-empty causal graph.
    let (_, report) = BulkSyncMpi::run_with_report(&cfg.with_trace(true));
    assert!(simmpi::causal_states_allocated() > 0);
    let g = report.causal_graph();
    assert!(!g.edges.is_empty(), "traced run produced no causal edges");
}
