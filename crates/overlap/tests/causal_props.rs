//! Property tests for the causal message-flow graph: over random
//! implementations, grids, task counts, and fault seeds, every stamped
//! message must find its receive window, per-channel delivery must stay
//! FIFO, and the happens-before relation must stay acyclic.

use advect_core::stepper::AdvectionProblem;
use overlap::{FaultSpec, Impl, RunConfig};
use proptest::prelude::*;
use simgpu::GpuSpec;

/// The MPI implementations whose exchanges the causal graph models.
const MPI_IMPLS: [Impl; 4] = [
    Impl::BulkSync,
    Impl::Nonblocking,
    Impl::ThreadOverlap,
    Impl::HybridBulkSync,
];

fn causal_graph(im: Impl, n: usize, tasks: usize, fault: FaultSpec) -> obs::causal::CausalGraph {
    let spec = GpuSpec::tesla_c2050();
    let cfg = RunConfig::new(AdvectionProblem::general_case(n), 2)
        .tasks(tasks)
        .with_block((8, 8))
        .with_trace(true)
        .with_faults(fault);
    let (_, report) = im.run_with_report(&cfg, im.uses_gpu().then_some(&spec));
    report.causal_graph()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every stamped send is consumed by exactly one receive window and
    /// vice versa — even under seeded delivery perturbation, which may
    /// delay messages through limbo but never lose them.
    #[test]
    fn every_message_is_matched(
        im_ix in 0usize..MPI_IMPLS.len(),
        n in 10usize..16,
        tasks in 2usize..5,
        seed in 0u64..1_000,
    ) {
        // Odd seeds run under seeded chaos, even seeds fault-free.
        let fault = if seed % 2 == 1 { FaultSpec::chaos(seed) } else { FaultSpec::default() };
        let g = causal_graph(MPI_IMPLS[im_ix], n, tasks, fault);
        prop_assert!(!g.edges.is_empty(), "no causal edges recorded");
        prop_assert_eq!(g.unmatched_sends, 0, "sends without a receive window");
        prop_assert_eq!(g.unmatched_recvs, 0, "receive windows without a send");
    }

    /// Per-channel sequence numbers arrive contiguous from zero and are
    /// consumed in order: the mailbox preserves FIFO per (src, dst, tag)
    /// even when limbo reorders delivery across channels.
    #[test]
    fn channels_never_overtake(
        im_ix in 0usize..MPI_IMPLS.len(),
        tasks in 2usize..5,
        seed in 0u64..1_000,
    ) {
        // Odd seeds run under seeded chaos, even seeds fault-free.
        let fault = if seed % 2 == 1 { FaultSpec::chaos(seed) } else { FaultSpec::default() };
        let g = causal_graph(MPI_IMPLS[im_ix], 12, tasks, fault);
        prop_assert!(g.non_overtaking(), "per-channel FIFO order violated");
    }

    /// The happens-before relation (program order within each rank's
    /// track, plus send-to-receive edges) is a partial order: real
    /// executions cannot produce a causal cycle.
    #[test]
    fn happens_before_is_acyclic(
        im_ix in 0usize..MPI_IMPLS.len(),
        tasks in 2usize..5,
        seed in 0u64..1_000,
    ) {
        // Odd seeds run under seeded chaos, even seeds fault-free.
        let fault = if seed % 2 == 1 { FaultSpec::chaos(seed) } else { FaultSpec::default() };
        let g = causal_graph(MPI_IMPLS[im_ix], 12, tasks, fault);
        prop_assert!(g.hb_acyclic(), "happens-before contains a cycle");
    }
}
