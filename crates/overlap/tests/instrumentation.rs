//! Instrumentation tests: verify *how* each implementation communicates —
//! message counts, traffic volumes, kernel launches, PCIe transfers — not
//! just what it computes. These pin the schedules the performance models
//! price.

use advect_core::stepper::AdvectionProblem;
use decomp::ExchangePlan;
use overlap::{
    BulkSyncMpi, DeepHaloBulkSync, GpuBulkSyncMpi, GpuStreamsMpi, HybridBulkSync, HybridOverlap,
    NonblockingMpi, RunConfig,
};
use simgpu::GpuSpec;

fn cfg(tasks: usize, steps: u64) -> RunConfig {
    RunConfig::new(AdvectionProblem::general_case(12), steps)
        .tasks(tasks)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1)
}

#[test]
fn bulk_sync_sends_six_messages_per_rank_per_step() {
    let steps = 4u64;
    let c = cfg(4, steps);
    let (_, report) = BulkSyncMpi::run_with_report(&c);
    for (rank, stats) in report.comm.iter().enumerate() {
        assert_eq!(stats.messages_sent, 6 * steps, "rank {rank}");
        assert_eq!(stats.messages_received, 6 * steps, "rank {rank}");
    }
    // Volume: each rank ships its exchange plan's total per step.
    let decomp = c.decomposition();
    let expected: u64 = (0..4)
        .map(|r| ExchangePlan::new(decomp.subdomains[r].extent, 1).total_sent() as u64)
        .sum();
    assert_eq!(report.total_values_sent(), expected * steps);
}

#[test]
fn nonblocking_moves_exactly_the_same_traffic_as_bulk_sync() {
    // The overlap is temporal, not volumetric: same messages, same bytes.
    let (_, bulk) = BulkSyncMpi::run_with_report(&cfg(4, 3));
    let (_, nonblocking) = NonblockingMpi::run_with_report(&cfg(4, 3));
    assert_eq!(bulk.total_messages(), nonblocking.total_messages());
    assert_eq!(bulk.total_values_sent(), nonblocking.total_values_sent());
}

#[test]
fn deep_halo_trades_messages_for_volume() {
    let steps = 6u64;
    let (_, w1) = DeepHaloBulkSync::run_with_report(&cfg(4, steps), 1);
    let (_, w3) = DeepHaloBulkSync::run_with_report(&cfg(4, steps), 3);
    // 3x fewer messages...
    assert_eq!(w1.total_messages(), 3 * w3.total_messages());
    // ...each carrying more data (3 planes plus wider corner extensions —
    // on this small grid the per-message volume more than triples, which
    // is exactly why deep halos only pay in the latency-dominated regime).
    let per_msg_w1 = w1.total_values_sent() as f64 / w1.total_messages() as f64;
    let per_msg_w3 = w3.total_values_sent() as f64 / w3.total_messages() as f64;
    assert!(
        per_msg_w3 > 3.0 * per_msg_w1,
        "{per_msg_w3} vs {per_msg_w1}"
    );
}

#[test]
fn gpu_bulk_sync_moves_the_ring_every_step() {
    let steps = 3u64;
    let spec = GpuSpec::tesla_c2050();
    let c = cfg(2, steps);
    let (_, report) = GpuBulkSyncMpi::run_with_report(&c, &spec);
    assert_eq!(report.gpu.len(), 2, "one device per rank");
    for stats in &report.gpu {
        // 6 boundary-ring faces out, 6 halo-ring faces in, per step.
        assert_eq!(stats.d2h_transfers, 6 * steps);
        assert_eq!(stats.h2d_transfers, 6 * steps);
        // 6 face kernels + 1 interior kernel per step.
        assert_eq!(stats.stencil_launches, 7 * steps);
        // 6 packs + 6 unpacks per step.
        assert_eq!(stats.pack_launches, 12 * steps);
    }
    // PCIe volume per rank per step: boundary ring + halo ring.
    let decomp = c.decomposition();
    let expected: u64 = (0..2)
        .map(|r| {
            let part = decomp::BoxPartition::new(decomp.subdomains[r].extent, 0);
            (part.d2h_points() + part.h2d_points()) as u64
        })
        .sum();
    assert_eq!(report.total_pcie_points(), expected * steps);
}

#[test]
fn gpu_streams_moves_identical_traffic_to_gpu_bulk_sync() {
    let spec = GpuSpec::tesla_c2050();
    let (_, f) = GpuBulkSyncMpi::run_with_report(&cfg(2, 3), &spec);
    let (_, g) = GpuStreamsMpi::run_with_report(&cfg(2, 3), &spec);
    assert_eq!(f.total_pcie_points(), g.total_pcie_points());
    assert_eq!(f.total_stencil_launches(), g.total_stencil_launches());
    assert_eq!(f.total_messages(), g.total_messages());
}

#[test]
fn hybrid_moves_less_pcie_than_gpu_only_for_thick_walls() {
    // A thicker CPU box shrinks the GPU block, so its interface rings —
    // and the PCIe traffic — shrink with it.
    let spec = GpuSpec::tesla_c2050();
    let thin = HybridBulkSync::run_with_report(&cfg(2, 2).with_thickness(1), &spec).1;
    let thick = HybridBulkSync::run_with_report(&cfg(2, 2).with_thickness(3), &spec).1;
    assert!(
        thick.total_pcie_points() < thin.total_pcie_points(),
        "thick {} vs thin {}",
        thick.total_pcie_points(),
        thin.total_pcie_points()
    );
}

#[test]
fn hybrid_overlap_pcie_traffic_is_ring_sized() {
    let steps = 2u64;
    let spec = GpuSpec::tesla_c2050();
    let c = cfg(2, steps).with_thickness(2);
    let (_, report) = HybridOverlap::run_with_report(&c, &spec);
    let decomp = c.decomposition();
    let expected: u64 = (0..2)
        .map(|r| {
            let part = decomp::BoxPartition::new(decomp.subdomains[r].extent, 2);
            (part.d2h_points() + part.h2d_points()) as u64
        })
        .sum();
    assert_eq!(report.total_pcie_points(), expected * steps);
    // MPI traffic is the plain one-point exchange, independent of the box.
    let (_, cpu_only) = BulkSyncMpi::run_with_report(&cfg(2, steps));
    assert_eq!(report.total_values_sent(), cpu_only.total_values_sent());
}

#[test]
fn single_node_self_exchange_still_counts_messages() {
    // One task: all six messages are self-sends, still counted.
    let (_, report) = BulkSyncMpi::run_with_report(&cfg(1, 2));
    assert_eq!(report.comm[0].messages_sent, 12);
    assert_eq!(report.comm[0].messages_received, 12);
}
