//! Instrumentation tests: verify *how* each implementation communicates —
//! message counts, traffic volumes, kernel launches, PCIe transfers — not
//! just what it computes. These pin the schedules the performance models
//! price.

use advect_core::stepper::AdvectionProblem;
use decomp::ExchangePlan;
use obs::{Axis, Category};
use overlap::{
    BulkSyncMpi, DeepHaloBulkSync, GpuBulkSyncMpi, GpuStreamsMpi, HybridBulkSync, HybridOverlap,
    NonblockingMpi, RunConfig, ThreadOverlapMpi,
};
use simgpu::GpuSpec;

fn cfg(tasks: usize, steps: u64) -> RunConfig {
    RunConfig::new(AdvectionProblem::general_case(12), steps)
        .tasks(tasks)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1)
}

#[test]
fn bulk_sync_sends_six_messages_per_rank_per_step() {
    let steps = 4u64;
    let c = cfg(4, steps);
    let (_, report) = BulkSyncMpi::run_with_report(&c);
    for (rank, stats) in report.comm.iter().enumerate() {
        assert_eq!(stats.messages_sent, 6 * steps, "rank {rank}");
        assert_eq!(stats.messages_received, 6 * steps, "rank {rank}");
    }
    // Volume: each rank ships its exchange plan's total per step.
    let decomp = c.decomposition();
    let expected: u64 = (0..4)
        .map(|r| ExchangePlan::new(decomp.subdomains[r].extent, 1).total_sent() as u64)
        .sum();
    assert_eq!(report.total_values_sent(), expected * steps);
}

#[test]
fn nonblocking_moves_exactly_the_same_traffic_as_bulk_sync() {
    // The overlap is temporal, not volumetric: same messages, same bytes.
    let (_, bulk) = BulkSyncMpi::run_with_report(&cfg(4, 3));
    let (_, nonblocking) = NonblockingMpi::run_with_report(&cfg(4, 3));
    assert_eq!(bulk.total_messages(), nonblocking.total_messages());
    assert_eq!(bulk.total_values_sent(), nonblocking.total_values_sent());
}

#[test]
fn deep_halo_trades_messages_for_volume() {
    let steps = 6u64;
    let (_, w1) = DeepHaloBulkSync::run_with_report(&cfg(4, steps), 1);
    let (_, w3) = DeepHaloBulkSync::run_with_report(&cfg(4, steps), 3);
    // 3x fewer messages...
    assert_eq!(w1.total_messages(), 3 * w3.total_messages());
    // ...each carrying more data (3 planes plus wider corner extensions —
    // on this small grid the per-message volume more than triples, which
    // is exactly why deep halos only pay in the latency-dominated regime).
    let per_msg_w1 = w1.total_values_sent() as f64 / w1.total_messages() as f64;
    let per_msg_w3 = w3.total_values_sent() as f64 / w3.total_messages() as f64;
    assert!(
        per_msg_w3 > 3.0 * per_msg_w1,
        "{per_msg_w3} vs {per_msg_w1}"
    );
}

#[test]
fn gpu_bulk_sync_moves_the_ring_every_step() {
    let steps = 3u64;
    let spec = GpuSpec::tesla_c2050();
    let c = cfg(2, steps);
    let (_, report) = GpuBulkSyncMpi::run_with_report(&c, &spec);
    assert_eq!(report.gpu.len(), 2, "one device per rank");
    for stats in &report.gpu {
        // 6 boundary-ring faces out, 6 halo-ring faces in, per step.
        assert_eq!(stats.d2h_transfers, 6 * steps);
        assert_eq!(stats.h2d_transfers, 6 * steps);
        // 6 face kernels + 1 interior kernel per step.
        assert_eq!(stats.stencil_launches, 7 * steps);
        // 6 packs + 6 unpacks per step.
        assert_eq!(stats.pack_launches, 12 * steps);
    }
    // PCIe volume per rank per step: boundary ring + halo ring.
    let decomp = c.decomposition();
    let expected: u64 = (0..2)
        .map(|r| {
            let part = decomp::BoxPartition::new(decomp.subdomains[r].extent, 0);
            (part.d2h_points() + part.h2d_points()) as u64
        })
        .sum();
    assert_eq!(report.total_pcie_points(), expected * steps);
}

#[test]
fn gpu_streams_moves_identical_traffic_to_gpu_bulk_sync() {
    let spec = GpuSpec::tesla_c2050();
    let (_, f) = GpuBulkSyncMpi::run_with_report(&cfg(2, 3), &spec);
    let (_, g) = GpuStreamsMpi::run_with_report(&cfg(2, 3), &spec);
    assert_eq!(f.total_pcie_points(), g.total_pcie_points());
    assert_eq!(f.total_stencil_launches(), g.total_stencil_launches());
    assert_eq!(f.total_messages(), g.total_messages());
}

#[test]
fn hybrid_moves_less_pcie_than_gpu_only_for_thick_walls() {
    // A thicker CPU box shrinks the GPU block, so its interface rings —
    // and the PCIe traffic — shrink with it.
    let spec = GpuSpec::tesla_c2050();
    let thin = HybridBulkSync::run_with_report(&cfg(2, 2).with_thickness(1), &spec).1;
    let thick = HybridBulkSync::run_with_report(&cfg(2, 2).with_thickness(3), &spec).1;
    assert!(
        thick.total_pcie_points() < thin.total_pcie_points(),
        "thick {} vs thin {}",
        thick.total_pcie_points(),
        thin.total_pcie_points()
    );
}

#[test]
fn hybrid_overlap_pcie_traffic_is_ring_sized() {
    let steps = 2u64;
    let spec = GpuSpec::tesla_c2050();
    let c = cfg(2, steps).with_thickness(2);
    let (_, report) = HybridOverlap::run_with_report(&c, &spec);
    let decomp = c.decomposition();
    let expected: u64 = (0..2)
        .map(|r| {
            let part = decomp::BoxPartition::new(decomp.subdomains[r].extent, 2);
            (part.d2h_points() + part.h2d_points()) as u64
        })
        .sum();
    assert_eq!(report.total_pcie_points(), expected * steps);
    // MPI traffic is the plain one-point exchange, independent of the box.
    let (_, cpu_only) = BulkSyncMpi::run_with_report(&cfg(2, steps));
    assert_eq!(report.total_values_sent(), cpu_only.total_values_sent());
}

#[test]
fn single_node_self_exchange_still_counts_messages() {
    // One task: all six messages are self-sends, still counted.
    let (_, report) = BulkSyncMpi::run_with_report(&cfg(1, 2));
    assert_eq!(report.comm[0].messages_sent, 12);
    assert_eq!(report.comm[0].messages_received, 12);
}

#[test]
fn traced_runs_carry_one_trace_per_rank_and_untraced_none() {
    let (_, off) = BulkSyncMpi::run_with_report(&cfg(4, 2));
    assert!(off.traces.is_empty(), "untraced run must record no spans");
    let (_, on) = BulkSyncMpi::run_with_report(&cfg(4, 2).with_trace(true));
    assert_eq!(on.traces.len(), 4, "one trace per rank");
    for t in &on.traces {
        assert_eq!(t.dropped, 0, "rank {}: spans dropped", t.rank);
        assert!(
            t.spans.iter().any(|s| s.cat == Category::MpiSend),
            "rank {}: no mpi.send spans",
            t.rank
        );
        assert!(
            t.spans.iter().any(|s| s.cat == Category::ComputeInterior),
            "rank {}: no compute spans",
            t.rank
        );
        assert!(
            t.spans.iter().any(|s| s.cat == Category::Pack),
            "rank {}: no pack spans",
            t.rank
        );
    }
}

#[test]
fn bulk_sync_has_exactly_zero_mpi_compute_overlap() {
    // Structural, not statistical: in IV-B every in-flight receive window
    // closes (wait returns) before the stencil block opens, on the same
    // thread, so the measured overlap is exactly zero however the ranks
    // are scheduled.
    let (_, report) = BulkSyncMpi::run_with_report(&cfg(4, 3).with_trace(true));
    let o = report.mpi_compute_overlap();
    assert!(o.busy_a > 0.0, "MPI busy time must be measured");
    assert!(o.busy_b > 0.0, "compute busy time must be measured");
    assert_eq!(o.both, 0.0, "IV-B must show no MPI\u{2194}compute overlap");
    assert_eq!(o.efficiency(), 0.0);
}

#[test]
fn nonblocking_and_thread_overlap_measure_real_mpi_compute_overlap() {
    // IV-C: the interior third is computed inside the posted-irecv
    // window of the same thread — overlap is structural there too.
    let (_, nb) = NonblockingMpi::run_with_report(&cfg(4, 3).with_trace(true));
    let o = nb.mpi_compute_overlap();
    assert!(o.both > 0.0, "IV-C overlap {o:?}");
    assert!(o.efficiency() > 0.0 && o.efficiency() <= 1.0);

    // IV-D: worker threads compute while the master drives the blocking
    // exchange; their spans are concurrent on the wall clock.
    let (_, to) = ThreadOverlapMpi::run_with_report(&cfg(4, 3).with_trace(true));
    let o = to.mpi_compute_overlap();
    assert!(o.both > 0.0, "IV-D overlap {o:?}");
}

#[test]
fn hybrid_overlap_beats_bulk_sync_on_both_overlap_metrics() {
    // The paper's claim, measured rather than modeled: IV-I overlaps MPI
    // with CPU compute (wall clock) and PCIe with GPU compute (device
    // timeline); IV-B overlaps neither.
    let spec = GpuSpec::tesla_c2050();
    let (_, bulk) = BulkSyncMpi::run_with_report(&cfg(4, 3).with_trace(true));
    let (_, hybrid) = HybridOverlap::run_with_report(&cfg(4, 3).with_trace(true), &spec);

    let mpi_bulk = bulk.mpi_compute_overlap();
    let mpi_hybrid = hybrid.mpi_compute_overlap();
    assert!(
        mpi_hybrid.both > mpi_bulk.both,
        "hybrid {mpi_hybrid:?} vs bulk {mpi_bulk:?}"
    );
    assert!(mpi_hybrid.efficiency() > mpi_bulk.efficiency());

    let pcie_bulk = bulk.pcie_compute_overlap();
    let pcie_hybrid = hybrid.pcie_compute_overlap();
    assert_eq!(pcie_bulk.both, 0.0, "IV-B has no PCIe traffic at all");
    assert!(
        pcie_hybrid.both > 0.0,
        "IV-I device timeline must overlap copies with kernels: {pcie_hybrid:?}"
    );
    assert!(pcie_hybrid.efficiency() > pcie_bulk.efficiency());
}

#[test]
fn hybrid_veneer_keeps_pcie_spans_shorter_than_interior_kernels() {
    // Figure 1's economics on the trace: the PCIe rings scale with the
    // GPU block's surface while the interior kernel scales with its
    // volume, so for a healthy veneer (thickness 1-3 on a subdomain big
    // enough to keep the deep interior non-empty) every individual PCIe
    // transfer is shorter than the longest interior kernel.
    let spec = GpuSpec::tesla_c2050();
    for thickness in [1usize, 2, 3] {
        let c = RunConfig::new(AdvectionProblem::general_case(20), 2)
            .tasks(2)
            .with_threads(2)
            .with_block((8, 8))
            .with_thickness(thickness)
            .with_trace(true);
        let (_, report) = HybridOverlap::run_with_report(&c, &spec);
        let mut max_pcie: f64 = 0.0;
        let mut max_interior: f64 = 0.0;
        for t in &report.traces {
            for s in &t.spans {
                if s.axis != Axis::Virtual {
                    continue;
                }
                let d = s.virt_end - s.virt_start;
                match s.cat {
                    Category::PcieH2d | Category::PcieD2h => max_pcie = max_pcie.max(d),
                    Category::ComputeInterior => max_interior = max_interior.max(d),
                    _ => {}
                }
            }
        }
        assert!(max_pcie > 0.0, "thickness {thickness}: no PCIe spans");
        assert!(
            max_pcie < max_interior,
            "thickness {thickness}: PCIe {max_pcie:.3e} not shorter than \
             interior kernel {max_interior:.3e}"
        );
        assert!(
            report.pcie_compute_overlap().both > 0.0,
            "thickness {thickness}: no PCIe\u{2194}compute overlap"
        );
    }
}

#[test]
fn wait_time_and_peak_in_flight_are_surfaced() {
    // The aggregation helpers work without tracing: wait_ns and the
    // mailbox high-water mark are always-on counters.
    let (_, report) = BulkSyncMpi::run_with_report(&cfg(4, 3));
    assert!(report.traces.is_empty());
    assert!(
        report.total_wait_ns() > 0,
        "4-rank exchanges must block somewhere"
    );
    assert!(
        report.peak_bytes_in_flight() >= 8,
        "halo payloads must raise the mailbox high-water mark"
    );
    let per_rank_max = report
        .comm
        .iter()
        .map(|c| c.peak_bytes_in_flight)
        .max()
        .unwrap();
    assert_eq!(report.peak_bytes_in_flight(), per_rank_max);
}

#[test]
fn phase_breakdown_covers_recorded_categories() {
    let (_, report) = BulkSyncMpi::run_with_report(&cfg(4, 2).with_trace(true));
    let wall = report.phase_breakdown(Axis::Wall);
    let agg = wall.aggregate();
    assert!(agg.get(Category::ComputeInterior) > 0.0);
    assert!(agg.get(Category::MpiSend) > 0.0);
    assert!(agg.get(Category::Pack) > 0.0);
    assert_eq!(agg.get(Category::PcieH2d), 0.0, "no GPU in IV-B");
    let table = wall.render_markdown();
    assert!(table.contains("compute.interior"));
    assert!(table.contains("**all**"));
}
