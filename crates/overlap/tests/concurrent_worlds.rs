//! Concurrent-world safety: the run server executes several simulated
//! worlds in one process at once, so nothing in `simmpi` / `simgpu` /
//! `advect-core` may hold cross-run state. These tests run *different*
//! worlds concurrently and require each to stay bit-identical to its
//! own serial reference — any shared mutable state (a process-global
//! tracer wired to the wrong run, a metrics registry mixing channels, a
//! fault schedule bleeding across worlds) breaks the equality.
//!
//! The audit behind this: `simmpi::Comm` holds its tracer/metrics in
//! per-instance `OnceLock`s created fresh by every `World::run`;
//! `simgpu::Gpu` is per-run; the env knobs (`ADVECT_TILE`,
//! `ADVECT_SIMD`, `ADVECT_SWEEP_THREADS`, …) are read-only — the server
//! never mutates the environment. The only process-global is
//! `SweepPool::global()`, which is a stateless work distributor.

use advect_core::stepper::{AdvectionProblem, SerialStepper};
use overlap::runner::{FaultSpec, RunConfig};
use overlap::Impl;
use simgpu::GpuSpec;

fn serial_reference(n: usize, steps: u64) -> advect_core::field::Field3 {
    let mut serial = SerialStepper::new(AdvectionProblem::general_case(n));
    serial.run(steps);
    serial.state().clone()
}

/// Run `configs` concurrently, one OS thread each (each world spawns
/// its own rank threads on top), and check every final state against
/// its own serial reference.
fn run_concurrently(configs: Vec<(Impl, RunConfig, Option<GpuSpec>, usize, u64)>) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .into_iter()
            .map(|(implementation, cfg, spec, n, steps)| {
                scope.spawn(move || {
                    let (state, report) = implementation.run_with_report(&cfg, spec.as_ref());
                    let reference = serial_reference(n, steps);
                    assert_eq!(
                        state.max_abs_diff(&reference),
                        0.0,
                        "{} diverged from serial while sharing the process",
                        implementation.slug()
                    );
                    report
                })
            })
            .collect();
        for h in handles {
            h.join().expect("world thread");
        }
    });
}

#[test]
fn two_different_worlds_stay_bit_identical_to_serial() {
    // Different implementations, grids, step counts, and task counts:
    // maximum opportunity for cross-talk if any state were shared.
    run_concurrently(vec![
        (
            Impl::Nonblocking,
            RunConfig::new(AdvectionProblem::general_case(16), 4)
                .tasks(4)
                .with_threads(2),
            None,
            16,
            4,
        ),
        (
            Impl::BulkSync,
            RunConfig::new(AdvectionProblem::general_case(12), 6).tasks(3),
            None,
            12,
            6,
        ),
    ]);
}

#[test]
fn concurrent_worlds_with_tracing_metrics_and_faults_do_not_cross() {
    // One traced + metered world, one fault-injected world: tracer,
    // metrics registry, and fault schedule must all stay per-run.
    let traced_cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .tasks(2)
        .with_trace(true)
        .with_metrics(true);
    let faulted_cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .tasks(4)
        .with_faults(FaultSpec::chaos(1234));
    std::thread::scope(|scope| {
        let traced = scope.spawn(|| Impl::ThreadOverlap.run_with_report(&traced_cfg, None));
        let faulted = scope.spawn(|| Impl::Nonblocking.run_with_report(&faulted_cfg, None));
        let (t_state, t_report) = traced.join().expect("traced world");
        let (f_state, f_report) = faulted.join().expect("faulted world");
        let reference = serial_reference(12, 3);
        assert_eq!(t_state.max_abs_diff(&reference), 0.0);
        assert_eq!(f_state.max_abs_diff(&reference), 0.0);
        // Observability stayed with its own world.
        assert!(!t_report.traces.is_empty(), "traced world has spans");
        assert!(t_report.metrics.is_on(), "traced world has metrics");
        assert!(f_report.traces.is_empty(), "untraced world stays untraced");
        assert!(!f_report.metrics.is_on(), "unmetered world stays unmetered");
        let held: u64 = f_report
            .fault
            .iter()
            .map(|f| f.delayed + f.redelivered)
            .sum();
        let t_held: u64 = t_report
            .fault
            .iter()
            .map(|f| f.delayed + f.redelivered)
            .sum();
        assert!(held > 0, "fault schedule reached its own world");
        assert_eq!(
            t_held, 0,
            "fault schedule must not leak into the clean world"
        );
    });
}

#[test]
fn gpu_and_cpu_worlds_share_the_process() {
    run_concurrently(vec![
        (
            Impl::GpuStreams,
            RunConfig::new(AdvectionProblem::general_case(12), 3)
                .tasks(2)
                .with_block((8, 8)),
            Some(GpuSpec::tesla_c2050()),
            12,
            3,
        ),
        (
            Impl::HybridOverlap,
            RunConfig::new(AdvectionProblem::general_case(16), 2)
                .tasks(2)
                .with_threads(2)
                .with_block((16, 4))
                .with_thickness(2),
            Some(GpuSpec::tesla_c1060()),
            16,
            2,
        ),
        (
            Impl::SingleTask,
            RunConfig::new(AdvectionProblem::general_case(10), 5).with_threads(4),
            None,
            10,
            5,
        ),
    ]);
}
