//! Zero-cost-when-disabled guarantee (own binary: the assertion reads the
//! process-global trace-buffer allocation counter, which any traced run
//! elsewhere in the same process would perturb).

use advect_core::stepper::AdvectionProblem;
use overlap::{BulkSyncMpi, HybridOverlap, RunConfig};
use simgpu::GpuSpec;

#[test]
fn untraced_runs_allocate_no_trace_buffers() {
    let spec = GpuSpec::tesla_c2050();
    let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .tasks(4)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1);

    // Steady state: untraced runs — CPU-only and hybrid — must not touch
    // the trace slab allocator at all, warm or cold.
    for _ in 0..2 {
        let (_, report) = BulkSyncMpi::run_with_report(&cfg);
        assert!(report.traces.is_empty());
        let (_, report) = HybridOverlap::run_with_report(&cfg, &spec);
        assert!(report.traces.is_empty());
    }
    assert_eq!(
        obs::trace_buffers_allocated(),
        0,
        "tracing is off: no trace buffers may be allocated"
    );

    // Control: the counter does observe traced runs, so the zero above is
    // meaningful.
    let (_, report) = BulkSyncMpi::run_with_report(&cfg.with_trace(true));
    assert_eq!(report.traces.len(), 4);
    assert_eq!(obs::trace_buffers_allocated(), 4);
}
