//! Zero-cost-when-disabled guarantee for the metrics registry (own
//! binary: the assertion reads the process-global metric-state allocation
//! counter, which any metered run elsewhere in the same process would
//! perturb).

use advect_core::stepper::AdvectionProblem;
use overlap::{BulkSyncMpi, HybridOverlap, RunConfig};
use simgpu::GpuSpec;

#[test]
fn unmetered_runs_allocate_no_metric_state() {
    let spec = GpuSpec::tesla_c2050();
    let cfg = RunConfig::new(AdvectionProblem::general_case(12), 3)
        .tasks(4)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1);

    // Steady state: unmetered runs — CPU-only and hybrid — must not
    // create a registry or any series cell, warm or cold.
    let baseline = obs::registry::metric_states_allocated();
    for _ in 0..2 {
        let (_, report) = BulkSyncMpi::run_with_report(&cfg);
        assert!(!report.metrics.is_on());
        let (_, report) = HybridOverlap::run_with_report(&cfg, &spec);
        assert!(!report.metrics.is_on());
    }
    assert_eq!(
        obs::registry::metric_states_allocated(),
        baseline,
        "metrics are off: no metric state may be allocated"
    );

    // Control: the counter does observe metered runs, so the zero above
    // is meaningful — and the registry carries the expected families.
    let (_, report) = BulkSyncMpi::run_with_report(&cfg.with_metrics(true));
    assert!(report.metrics.is_on());
    assert!(obs::registry::metric_states_allocated() > baseline);
    let prom = report.metrics.render_prometheus();
    assert!(prom.contains("advect_mpi_wait_ns"), "{prom}");
    assert!(prom.contains("advect_step_ns"), "{prom}");
    let sent = report
        .metrics
        .histogram_snapshot("advect_mpi_recv_latency_ns");
    // 4 ranks x 6 receives x 3 steps.
    assert_eq!(sent.count, 72);
}
