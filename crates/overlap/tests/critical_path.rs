//! Critical-path attribution tests: the analyzer must agree with the
//! structural overlap facts the schedules are built around. IV-B hides
//! nothing — its MPI waits sit squarely on the critical path. IV-I hides
//! its PCIe traffic behind the interior kernel on the device timeline and
//! most of its MPI behind the CPU veneer on the wall clock.

use advect_core::stepper::AdvectionProblem;
use obs::metrics::{merge_intervals, union_seconds};
use obs::{Axis, Category};
use overlap::{BulkSyncMpi, HybridOverlap, RunConfig};
use simgpu::GpuSpec;

fn cfg(tasks: usize, steps: u64) -> RunConfig {
    RunConfig::new(AdvectionProblem::general_case(20), steps)
        .tasks(tasks)
        .with_threads(2)
        .with_block((8, 8))
        .with_thickness(1)
        .with_trace(true)
}

#[test]
fn bulk_sync_critical_path_contains_its_full_mpi_wait() {
    // IV-B is serial within a rank: every mpi.wait window sits on the
    // critical path in its entirety — nothing runs concurrently on the
    // rank's own thread to hide it.
    let (_, report) = BulkSyncMpi::run_with_report(&cfg(4, 3));
    let breakdown = report.critical_breakdown(Axis::Wall);
    assert_eq!(breakdown.ranks.len(), 4);
    for cp in &breakdown.ranks {
        let trace = report
            .traces
            .iter()
            .find(|t| t.rank == cp.rank)
            .expect("trace for rank");
        let wait_busy = union_seconds(&merge_intervals(
            trace
                .spans
                .iter()
                .filter(|s| s.cat == Category::MpiWait)
                .filter_map(|s| s.interval_on(Axis::Wall))
                .collect(),
        ));
        let attributed = cp.attributed_to(Category::MpiWait);
        assert!(wait_busy > 0.0, "rank {}: no mpi.wait measured", cp.rank);
        assert!(
            attributed >= 0.99 * wait_busy,
            "rank {}: wait busy-union {:.3e}s but only {:.3e}s on the \
             critical path — IV-B cannot hide waits",
            cp.rank,
            wait_busy,
            attributed
        );
        assert_eq!(
            cp.slack_of(Category::MpiWait),
            0.0,
            "rank {}: IV-B must have no hidden wait time",
            cp.rank
        );
    }
}

#[test]
fn hybrid_overlap_device_critical_path_is_compute_dominated() {
    // IV-I on the device timeline: the interior kernel dominates; the
    // PCIe ring traffic largely hides behind it (nonzero h2d slack) and
    // contributes less to the critical path than compute does.
    let spec = GpuSpec::tesla_c2050();
    for thickness in [1usize, 2, 3] {
        // A volume-dominated GPU block: on tiny blocks the ring traffic
        // (surface-scaled) can rival the interior kernel (volume-scaled),
        // which is Figure 1's economics, not a profiler defect.
        let c = RunConfig::new(AdvectionProblem::general_case(32), 2)
            .tasks(2)
            .with_threads(2)
            .with_block((8, 8))
            .with_thickness(thickness)
            .with_trace(true);
        let (_, report) = HybridOverlap::run_with_report(&c, &spec);
        let breakdown = report.critical_breakdown(Axis::Virtual);
        let agg = breakdown.aggregate();
        println!(
            "== thickness {thickness} virtual ==\n{}",
            breakdown.render_markdown()
        );
        assert_eq!(
            breakdown.dominant(),
            Some(Category::ComputeInterior),
            "thickness {thickness}: device critical path must be \
             dominated by the interior kernel"
        );
        assert!(
            agg.slack_of(Category::PcieH2d) > 0.0,
            "thickness {thickness}: halo-ring uploads must be at least \
             partly hidden behind the interior kernel"
        );
        // Each PCIe direction individually contributes less to the
        // critical path than the interior kernel. (At thickness 1 the
        // GPU block on this grid is surface-dominated, so the *sum* of
        // both directions can exceed compute — the per-direction claim
        // is the structural one.)
        let compute = agg.attributed_to(Category::ComputeInterior);
        for dir in [Category::PcieH2d, Category::PcieD2h] {
            assert!(
                agg.attributed_to(dir) < compute,
                "thickness {thickness}: {dir:?} {:.3e}s on the critical \
                 path vs compute.interior {compute:.3e}s",
                agg.attributed_to(dir)
            );
        }
    }
}

#[test]
fn hybrid_overlap_wall_recv_windows_carry_slack_behind_active_work() {
    // IV-I on the wall clock. Comparative share claims (bulk spends more
    // of its path exchanging than hybrid) are properties of *actual*
    // concurrency, and on an oversubscribed host the OS scheduler — not
    // the schedule structure — decides them, so they are printed for
    // inspection but not asserted. What IS schedule-independent is the
    // within-rank structure: in IV-I every rank posts its irecvs, then
    // runs sends and the CPU veneer *inside* those in-flight windows on
    // the same thread, so higher-priority work always shadows part of
    // each window (attributed recv time < the windows' busy union), and
    // the veneer itself does on-path work.
    let spec = GpuSpec::tesla_c2050();
    let (_, bulk) = BulkSyncMpi::run_with_report(&cfg(4, 3));
    let (_, hybrid) = HybridOverlap::run_with_report(&cfg(4, 3), &spec);
    let bulk_agg = bulk.critical_breakdown(Axis::Wall).aggregate();
    let hybrid_bd = hybrid.critical_breakdown(Axis::Wall);
    let hybrid_agg = hybrid_bd.aggregate();
    println!(
        "== IV-B wall ==\n{}",
        bulk.critical_breakdown(Axis::Wall).render_markdown()
    );
    println!("== IV-I wall ==\n{}", hybrid_bd.render_markdown());
    let mpi_share = |agg: &obs::critical::CriticalPath| {
        let exchange = agg.attributed_to(Category::MpiSend)
            + agg.attributed_to(Category::MpiRecv)
            + agg.attributed_to(Category::MpiWait);
        exchange / agg.total_attributed()
    };
    println!(
        "exchange share (informational): bulk {:.3} hybrid {:.3}",
        mpi_share(&bulk_agg),
        mpi_share(&hybrid_agg)
    );
    // Note `slack_of` would be too strong here: slack counts *fully*
    // hidden spans, and every in-flight window keeps at least a sliver
    // of attribution (between the irecv post and the first send). The
    // structural fact is partial shadowing: the veneer span lies wholly
    // inside the windows, so attributed recv time is strictly less than
    // the windows' busy union.
    for cp in &hybrid_bd.ranks {
        let trace = hybrid
            .traces
            .iter()
            .find(|t| t.rank == cp.rank)
            .expect("trace for rank");
        let recv_busy = union_seconds(&merge_intervals(
            trace
                .spans
                .iter()
                .filter(|s| s.cat == Category::MpiRecv)
                .filter_map(|s| s.interval_on(Axis::Wall))
                .collect(),
        ));
        let shadowed = recv_busy - cp.attributed_to(Category::MpiRecv);
        assert!(
            shadowed > 0.0,
            "rank {}: IV-I in-flight receive windows must be partly \
             shadowed by the sends/veneer running inside them \
             (busy {recv_busy:.3e}s, shadowed {shadowed:.3e}s)",
            cp.rank
        );
    }
    assert!(
        hybrid_agg.attributed_to(Category::ComputeVeneer) > 0.0,
        "IV-I's CPU veneer must do on-path work"
    );
    // The veneer category is IV-I's own: a bulk-synchronous run never
    // emits it, so its critical path cannot contain it.
    assert_eq!(bulk_agg.attributed_to(Category::ComputeVeneer), 0.0);
}
