//! Deterministic fault knobs for the virtual device timeline.
//!
//! A [`GpuFaultPlan`] perturbs only the *scheduled* timeline — kernel
//! launches start late by a seeded jitter, PCIe copies take longer by a
//! slowdown factor — never the functional execution, which runs eagerly
//! in host issue order. Results therefore stay bit-identical under any
//! plan while overlap measurements shift, mirroring `simmpi::FaultPlan`
//! on the device side.

/// The splitmix64 finalizer (kept local: simgpu does not depend on
/// simmpi).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded timing perturbations for a device's virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuFaultPlan {
    /// Root seed every per-op jitter hash folds in.
    pub seed: u64,
    /// Maximum extra virtual seconds a kernel launch is delayed (uniform
    /// in `[0, launch_jitter_s)`); 0 disables launch jitter.
    pub launch_jitter_s: f64,
    /// Multiplicative slowdown of PCIe copy durations (≥ 1.0; 1.0
    /// disables).
    pub pcie_slowdown: f64,
}

impl Default for GpuFaultPlan {
    fn default() -> Self {
        Self::off()
    }
}

impl GpuFaultPlan {
    /// The neutral plan: the timeline is unperturbed.
    pub const fn off() -> Self {
        Self {
            seed: 0,
            launch_jitter_s: 0.0,
            pcie_slowdown: 1.0,
        }
    }

    /// A moderate plan for soak sweeps: microsecond-scale launch jitter
    /// and 1.5× PCIe copies.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            launch_jitter_s: 2e-6,
            pcie_slowdown: 1.5,
        }
    }

    /// Set the launch-jitter bound.
    pub fn with_launch_jitter_s(mut self, s: f64) -> Self {
        self.launch_jitter_s = s;
        self
    }

    /// Set the PCIe slowdown factor.
    pub fn with_pcie_slowdown(mut self, factor: f64) -> Self {
        self.pcie_slowdown = factor;
        self
    }

    /// Whether every knob is at its neutral value.
    pub fn is_off(&self) -> bool {
        self.launch_jitter_s == 0.0 && self.pcie_slowdown <= 1.0
    }

    /// Derive a per-rank plan so each rank's device jitters differently
    /// under one root seed.
    pub fn for_rank(self, rank: usize) -> Self {
        Self {
            seed: self.seed ^ splitmix64(rank as u64 ^ 0x4750_5546),
            ..self
        }
    }

    /// The launch delay of the device's `op`-th scheduled operation, in
    /// virtual seconds (pure in `(seed, op)`).
    pub(crate) fn launch_jitter(&self, op: u64) -> f64 {
        if self.launch_jitter_s == 0.0 {
            return 0.0;
        }
        let h = splitmix64(self.seed ^ splitmix64(op ^ 0x4a49_5454));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit * self.launch_jitter_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_perturbs_nothing() {
        let plan = GpuFaultPlan::off();
        assert!(plan.is_off());
        for op in 0..100 {
            assert_eq!(plan.launch_jitter(op), 0.0);
        }
    }

    #[test]
    fn jitter_is_pure_and_bounded() {
        let plan = GpuFaultPlan::chaos(5);
        for op in 0..200 {
            let j = plan.launch_jitter(op);
            assert_eq!(j, plan.launch_jitter(op));
            assert!((0.0..plan.launch_jitter_s).contains(&j));
        }
    }

    #[test]
    fn per_rank_plans_diverge() {
        let root = GpuFaultPlan::chaos(9);
        let a = root.for_rank(0);
        let b = root.for_rank(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a, root.for_rank(0));
    }
}
