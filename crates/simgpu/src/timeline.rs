//! Device timeline recording and rendering.
//!
//! Every operation the device schedules is recorded with its stream,
//! engine, and virtual start/end times. [`Timeline::concurrency`] measures
//! how much the schedule overlapped (total busy time / makespan — 1.0
//! means fully serialized), and [`Timeline::render_gantt`] draws an ASCII
//! Gantt chart per engine, which makes the difference between the
//! bulk-synchronous and overlapped implementations *visible*:
//!
//! ```text
//! compute |####------####|
//! h2d     |----##--------|
//! d2h     |------##------|
//! ```

/// Which engine executed an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Kernel engine.
    Compute,
    /// Host-to-device DMA.
    H2D,
    /// Device-to-host DMA.
    D2H,
}

impl EngineKind {
    /// Display name — the same names the `obs` Chrome-trace exporter
    /// uses, so the ASCII Gantt and an exported trace read identically.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Compute => "compute",
            EngineKind::H2D => "pcie.h2d",
            EngineKind::D2H => "pcie.d2h",
        }
    }
}

/// One recorded operation.
#[derive(Debug, Clone)]
pub struct TimelineEntry {
    /// Operation label ("stencil", "pack", "h2d", …).
    pub label: &'static str,
    /// Stream the operation was issued on.
    pub stream: usize,
    /// Engine that executed it.
    pub engine: EngineKind,
    /// Virtual start time (seconds).
    pub start: f64,
    /// Virtual end time (seconds).
    pub end: f64,
}

/// A recorded device timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Entries in issue order.
    pub entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Completion time of the last operation.
    pub fn makespan(&self) -> f64 {
        self.entries.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Earliest start.
    pub fn start(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.start)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total busy time per engine.
    pub fn busy(&self, engine: EngineKind) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.engine == engine)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Concurrency factor: Σ engine busy time / wall (makespan − start).
    /// 1.0 ⇒ fully serialized; approaching the engine count ⇒ full
    /// overlap. Returns 0 for an empty timeline.
    pub fn concurrency(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let wall = self.makespan() - self.start();
        if wall <= 0.0 {
            return 0.0;
        }
        let busy: f64 = [EngineKind::Compute, EngineKind::H2D, EngineKind::D2H]
            .iter()
            .map(|&e| self.busy(e))
            .sum();
        busy / wall
    }

    /// Bridge the timeline into `obs` virtual-axis spans so the device
    /// schedule appears in the same Chrome-trace file as CPU/MPI spans
    /// (under the virtual-clock process, one track per stream). Copy
    /// engines map to the `pcie.*` categories; compute-engine entries map
    /// by label — pack/unpack kernels to their staging categories,
    /// everything else to `compute.interior`.
    pub fn to_trace_events(&self) -> Vec<obs::Span> {
        self.entries
            .iter()
            .map(|e| {
                let cat = match e.engine {
                    EngineKind::H2D => obs::Category::PcieH2d,
                    EngineKind::D2H => obs::Category::PcieD2h,
                    EngineKind::Compute => match e.label {
                        "pack" => obs::Category::Pack,
                        "unpack" => obs::Category::Unpack,
                        _ => obs::Category::ComputeInterior,
                    },
                };
                obs::Span::virtual_span(cat, e.label, e.stream as u32, e.start, e.end)
            })
            .collect()
    }

    /// ASCII Gantt chart, one row per engine, `width` columns spanning
    /// [start, makespan].
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let t0 = self.start();
        let t1 = self.makespan();
        if self.entries.is_empty() || t1 <= t0 {
            return String::from("(empty timeline)\n");
        }
        let scale = width as f64 / (t1 - t0);
        let mut out = String::new();
        for engine in [EngineKind::Compute, EngineKind::H2D, EngineKind::D2H] {
            let mut row = vec![b'-'; width];
            for e in self.entries.iter().filter(|e| e.engine == engine) {
                let a = (((e.start - t0) * scale) as usize).min(width - 1);
                let b = (((e.end - t0) * scale).ceil() as usize).clamp(a + 1, width);
                for c in row.iter_mut().take(b).skip(a) {
                    *c = b'#';
                }
            }
            out.push_str(&format!(
                "{:>8} |{}| {:.3} ms busy\n",
                engine.name(),
                String::from_utf8(row).expect("ascii"),
                self.busy(engine) * 1e3
            ));
        }
        out.push_str(&format!(
            "makespan {:.3} ms, concurrency {:.2}\n",
            (t1 - t0) * 1e3,
            self.concurrency()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(engine: EngineKind, start: f64, end: f64) -> TimelineEntry {
        TimelineEntry {
            label: "op",
            stream: 0,
            engine,
            start,
            end,
        }
    }

    #[test]
    fn concurrency_of_serial_schedule_is_one() {
        let t = Timeline {
            entries: vec![
                entry(EngineKind::Compute, 0.0, 1.0),
                entry(EngineKind::D2H, 1.0, 2.0),
            ],
        };
        assert!((t.concurrency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concurrency_of_overlapped_schedule_exceeds_one() {
        let t = Timeline {
            entries: vec![
                entry(EngineKind::Compute, 0.0, 2.0),
                entry(EngineKind::D2H, 0.0, 2.0),
            ],
        };
        assert!((t.concurrency() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_rows_for_each_engine() {
        let t = Timeline {
            entries: vec![
                entry(EngineKind::Compute, 0.0, 1.0),
                entry(EngineKind::H2D, 0.5, 1.5),
            ],
        };
        let g = t.render_gantt(40);
        assert!(g.contains("compute"));
        assert!(g.contains("h2d"));
        assert!(g.contains("concurrency"));
        assert!(g.lines().next().unwrap().contains('#'));
    }

    #[test]
    fn trace_bridge_maps_engines_and_labels_to_categories() {
        let t = Timeline {
            entries: vec![
                TimelineEntry {
                    label: "stencil",
                    stream: 0,
                    engine: EngineKind::Compute,
                    start: 0.0,
                    end: 1.0,
                },
                TimelineEntry {
                    label: "pack",
                    stream: 1,
                    engine: EngineKind::Compute,
                    start: 1.0,
                    end: 1.1,
                },
                TimelineEntry {
                    label: "h2d",
                    stream: 1,
                    engine: EngineKind::H2D,
                    start: 1.1,
                    end: 1.3,
                },
                TimelineEntry {
                    label: "d2h",
                    stream: 2,
                    engine: EngineKind::D2H,
                    start: 1.3,
                    end: 1.5,
                },
            ],
        };
        let spans = t.to_trace_events();
        let cats: Vec<obs::Category> = spans.iter().map(|s| s.cat).collect();
        assert_eq!(
            cats,
            vec![
                obs::Category::ComputeInterior,
                obs::Category::Pack,
                obs::Category::PcieH2d,
                obs::Category::PcieD2h,
            ]
        );
        for s in &spans {
            assert_eq!(s.axis, obs::Axis::Virtual);
        }
        assert_eq!(spans[1].tid, 1);
        assert_eq!(spans[3].virt_end, 1.5);
        // Gantt rows carry the exporter's names.
        let g = t.render_gantt(40);
        assert!(g.contains("pcie.h2d"));
        assert!(g.contains("pcie.d2h"));
    }

    #[test]
    fn empty_timeline_is_harmless() {
        let t = Timeline::default();
        assert_eq!(t.concurrency(), 0.0);
        assert!(t.render_gantt(40).contains("empty"));
    }
}
