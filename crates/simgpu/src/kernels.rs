//! Functional kernel bodies.
//!
//! These execute the same arithmetic a CUDA Fortran kernel would, with the
//! same thread-block structure: a 2-D grid of `(bx, by)` thread blocks
//! tiles the x/y extent of the launch region; the interior threads of each
//! block compute while the edge ("halo") threads only perform memory
//! operations; the block marches along z reusing three staged planes —
//! the algorithm of Micikevicius (2009) the paper builds on.
//!
//! Because the tap order matches `advect_core::stencil`, the GPU kernels
//! produce **bit-identical** results to the CPU reference, which is how
//! the cross-implementation tests can require exact equality.

use advect_core::field::Range3;
use advect_core::stencil::accumulate_tap_rows;

/// Device-side field layout: interior extent plus halo width, x fastest —
/// identical to `advect_core::Field3` so host fields map 1:1 to buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDims {
    /// Interior extent.
    pub nx: usize,
    /// Interior extent.
    pub ny: usize,
    /// Interior extent.
    pub nz: usize,
    /// Halo width (0 for the GPU-resident layout where periodicity is
    /// applied by wrap-around indexing in shared-memory loads).
    pub halo: usize,
}

impl FieldDims {
    /// Total allocation length.
    pub fn len(&self) -> usize {
        (self.nx + 2 * self.halo) * (self.ny + 2 * self.halo) * (self.nz + 2 * self.halo)
    }

    /// Whether the allocation is empty (never for valid dims).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of interior-relative coordinates (may address halo).
    #[inline]
    pub fn idx(&self, x: i64, y: i64, z: i64) -> usize {
        let h = self.halo as i64;
        let sx = self.nx + 2 * self.halo;
        let sy = self.ny + 2 * self.halo;
        debug_assert!(x >= -h && (x) < (self.nx + self.halo) as i64);
        debug_assert!(y >= -h && (y) < (self.ny + self.halo) as i64);
        debug_assert!(z >= -h && (z) < (self.nz + self.halo) as i64);
        (x + h) as usize + sx * ((y + h) as usize + sy * (z + h) as usize)
    }

    /// Flat index with periodic wrap-around (for halo-free layouts).
    #[inline]
    pub fn idx_wrap(&self, x: i64, y: i64, z: i64) -> usize {
        let wx = x.rem_euclid(self.nx as i64);
        let wy = y.rem_euclid(self.ny as i64);
        let wz = z.rem_euclid(self.nz as i64);
        self.idx(wx, wy, wz)
    }

    /// The interior as a region.
    pub fn interior(&self) -> Range3 {
        Range3::new(
            (0, self.nx as i64),
            (0, self.ny as i64),
            (0, self.nz as i64),
        )
    }
}

/// Parameters of a stencil kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct StencilLaunch {
    /// Field layout shared by `src` and `dst`.
    pub dims: FieldDims,
    /// Region of points to update (interior-relative).
    pub region: Range3,
    /// Thread-block shape `(bx, by)`; the block's edge threads only load.
    pub block: (usize, usize),
    /// Wrap reads periodically (GPU-resident layout) instead of reading
    /// halo storage.
    pub periodic: bool,
}

impl StencilLaunch {
    /// Number of points updated.
    pub fn points(&self) -> usize {
        self.region.len()
    }

    /// Number of thread blocks launched: the compute tile of a `(bx, by)`
    /// block is `(bx-2) × (by-2)` (edge threads are halo loaders).
    pub fn blocks(&self) -> usize {
        let tile_x = self.block.0.saturating_sub(2).max(1);
        let tile_y = self.block.1.saturating_sub(2).max(1);
        let ex = (self.region.x.1 - self.region.x.0).max(0) as usize;
        let ey = (self.region.y.1 - self.region.y.0).max(0) as usize;
        ex.div_ceil(tile_x) * ey.div_ceil(tile_y)
    }
}

/// Execute the stencil kernel functionally: block-tiled, z-marching,
/// staging each (tile+halo) plane through "shared memory".
pub fn run_stencil(src: &[f64], dst: &mut [f64], coeffs: &[f64; 27], p: &StencilLaunch) {
    let tile_x = p.block.0.saturating_sub(2).max(1) as i64;
    let tile_y = p.block.1.saturating_sub(2).max(1) as i64;
    let r = p.region;
    if r.is_empty() {
        return;
    }
    let d = p.dims;
    // Shared-memory staging: (tile+2) × (tile+2) × 3 planes.
    let sw = (tile_x + 2) as usize;
    let sh = (tile_y + 2) as usize;
    let mut shared = vec![0.0f64; sw * sh * 3];
    let read = |x: i64, y: i64, z: i64| -> f64 {
        if p.periodic {
            src[d.idx_wrap(x, y, z)]
        } else {
            src[d.idx(x, y, z)]
        }
    };
    let mut by0 = r.y.0;
    while by0 < r.y.1 {
        let by1 = (by0 + tile_y).min(r.y.1);
        let mut bx0 = r.x.0;
        while bx0 < r.x.1 {
            let bx1 = (bx0 + tile_x).min(r.x.1);
            // March along z: all threads (including halo threads) load the
            // three planes into shared memory, then interior threads compute.
            for z in r.z.0..r.z.1 {
                for (pi, dz) in (-1i64..=1).enumerate() {
                    for sy in 0..(by1 - by0 + 2) {
                        for sx in 0..(bx1 - bx0 + 2) {
                            let gx = bx0 - 1 + sx;
                            let gy = by0 - 1 + sy;
                            shared[pi * sw * sh + sy as usize * sw + sx as usize] =
                                read(gx, gy, z + dz);
                        }
                    }
                }
                // Row-vectorized tap accumulation: the 27 taps are rows
                // of the staged planes (tap order matches the coefficient
                // order: plane slowest, y, x fastest), accumulated with
                // the same register-chunked helper as the CPU fast path,
                // so results stay bit-identical to the scalar reference.
                let w = (bx1 - bx0) as usize;
                for y in by0..by1 {
                    let ly = (y - by0 + 1) as usize;
                    let d0 = d.idx(bx0, y, z);
                    let rows: [&[f64]; 27] = std::array::from_fn(|t| {
                        let (pz, dy, dx) = (t / 9, t / 3 % 3, t % 3);
                        // lx for x = bx0 is 1, so the tap's first read
                        // sits at column 1 + dx - 1 = dx.
                        let s0 = pz * sw * sh + (ly + dy - 1) * sw + dx;
                        &shared[s0..s0 + w]
                    });
                    accumulate_tap_rows(&mut dst[d0..d0 + w], &rows, coeffs);
                }
            }
            bx0 = bx1;
        }
        by0 = by1;
    }
}

/// Parameters of a 3-D-block stencil launch (the variant the paper
/// rejects: "We use two-dimensional blocks instead of three because they
/// allow better memory reuse in our test").
#[derive(Debug, Clone, Copy)]
pub struct StencilLaunch3d {
    /// Field layout shared by `src` and `dst`.
    pub dims: FieldDims,
    /// Region of points to update.
    pub region: Range3,
    /// Thread-block shape `(bx, by, bz)`; edge threads only load.
    pub block: (usize, usize, usize),
    /// Wrap reads periodically.
    pub periodic: bool,
}

/// Execute the 3-D-block stencil kernel functionally: each block stages
/// its `(bx+2) × (by+2) × (bz+2)` neighborhood through shared memory and
/// computes its `bx × by × bz` tile — no z-march, so every interior plane
/// is re-loaded by the block above and below it (the memory-reuse loss
/// that makes this variant slower).
pub fn run_stencil_3d(src: &[f64], dst: &mut [f64], coeffs: &[f64; 27], p: &StencilLaunch3d) {
    let tile = (
        p.block.0.saturating_sub(2).max(1) as i64,
        p.block.1.saturating_sub(2).max(1) as i64,
        p.block.2.saturating_sub(2).max(1) as i64,
    );
    let r = p.region;
    if r.is_empty() {
        return;
    }
    let d = p.dims;
    let read = |x: i64, y: i64, z: i64| -> f64 {
        if p.periodic {
            src[d.idx_wrap(x, y, z)]
        } else {
            src[d.idx(x, y, z)]
        }
    };
    let sw = (tile.0 + 2) as usize;
    let sh = (tile.1 + 2) as usize;
    let sd = (tile.2 + 2) as usize;
    let mut shared = vec![0.0f64; sw * sh * sd];
    let mut bz0 = r.z.0;
    while bz0 < r.z.1 {
        let bz1 = (bz0 + tile.2).min(r.z.1);
        let mut by0 = r.y.0;
        while by0 < r.y.1 {
            let by1 = (by0 + tile.1).min(r.y.1);
            let mut bx0 = r.x.0;
            while bx0 < r.x.1 {
                let bx1 = (bx0 + tile.0).min(r.x.1);
                // All threads (incl. halo threads) stage the neighborhood.
                for sz in 0..(bz1 - bz0 + 2) {
                    for sy in 0..(by1 - by0 + 2) {
                        for sx in 0..(bx1 - bx0 + 2) {
                            shared[(sz as usize * sh + sy as usize) * sw + sx as usize] =
                                read(bx0 - 1 + sx, by0 - 1 + sy, bz0 - 1 + sz);
                        }
                    }
                }
                // Row-vectorized tap accumulation (see `run_stencil`).
                let w = (bx1 - bx0) as usize;
                for z in bz0..bz1 {
                    for y in by0..by1 {
                        let (ly, lz) = ((y - by0 + 1) as usize, (z - bz0 + 1) as usize);
                        let d0 = d.idx(bx0, y, z);
                        let rows: [&[f64]; 27] = std::array::from_fn(|t| {
                            let (dz, dy, dx) = (t / 9, t / 3 % 3, t % 3);
                            let s0 = ((lz + dz - 1) * sh + (ly + dy - 1)) * sw + dx;
                            &shared[s0..s0 + w]
                        });
                        accumulate_tap_rows(&mut dst[d0..d0 + w], &rows, coeffs);
                    }
                }
                bx0 = bx1;
            }
            by0 = by1;
        }
        bz0 = bz1;
    }
}

/// Pack a region of a device field into a linear buffer (x fastest).
pub fn run_pack(field: &[f64], dims: FieldDims, region: Range3, out: &mut [f64]) -> usize {
    let mut n = 0;
    for (x, y, z) in region.iter() {
        out[n] = field[dims.idx(x, y, z)];
        n += 1;
    }
    n
}

/// Unpack a linear buffer into a region of a device field.
pub fn run_unpack(field: &mut [f64], dims: FieldDims, region: Range3, data: &[f64]) -> usize {
    let mut n = 0;
    for (x, y, z) in region.iter() {
        field[dims.idx(x, y, z)] = data[n];
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use advect_core::coeffs::{Stencil27, Velocity};
    use advect_core::field::Field3;
    use advect_core::stencil::apply_stencil_interior;

    fn device_field_from(f: &Field3) -> (Vec<f64>, FieldDims) {
        let (nx, ny, nz) = f.interior();
        (
            f.data().to_vec(),
            FieldDims {
                nx,
                ny,
                nz,
                halo: f.halo(),
            },
        )
    }

    #[test]
    fn gpu_stencil_matches_cpu_bitwise() {
        let s = Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.9);
        let mut cur = Field3::new(9, 8, 7, 1);
        cur.fill_interior(|x, y, z| ((x * 31 + y * 17 + z * 7) % 13) as f64 * 0.37);
        cur.copy_periodic_halo();
        let mut cpu = Field3::new(9, 8, 7, 1);
        apply_stencil_interior(&cur, &mut cpu, &s);

        let (src, dims) = device_field_from(&cur);
        for block in [(4, 4), (3, 5), (16, 16), (32, 8)] {
            let mut dst = vec![0.0; dims.len()];
            run_stencil(
                &src,
                &mut dst,
                &s.a,
                &StencilLaunch {
                    dims,
                    region: dims.interior(),
                    block,
                    periodic: false,
                },
            );
            for (x, y, z) in dims.interior().iter() {
                assert_eq!(
                    dst[dims.idx(x, y, z)],
                    cpu.at(x, y, z),
                    "block {block:?} at ({x},{y},{z})"
                );
            }
        }
    }

    #[test]
    fn periodic_kernel_matches_halo_kernel() {
        // GPU-resident layout (halo = 0, wrap indexing) must equal the
        // halo-based result.
        let s = Stencil27::new(Velocity::new(0.8, -0.6, 0.4), 0.95);
        let mut cur = Field3::new(6, 6, 6, 1);
        cur.fill_interior(|x, y, z| ((x + 2 * y + 3 * z) % 5) as f64);
        cur.copy_periodic_halo();
        let mut cpu = Field3::new(6, 6, 6, 1);
        apply_stencil_interior(&cur, &mut cpu, &s);

        let dims = FieldDims {
            nx: 6,
            ny: 6,
            nz: 6,
            halo: 0,
        };
        let mut src = vec![0.0; dims.len()];
        for (x, y, z) in dims.interior().iter() {
            src[dims.idx(x, y, z)] = cur.at(x, y, z);
        }
        let mut dst = vec![0.0; dims.len()];
        run_stencil(
            &src,
            &mut dst,
            &s.a,
            &StencilLaunch {
                dims,
                region: dims.interior(),
                block: (4, 4),
                periodic: true,
            },
        );
        for (x, y, z) in dims.interior().iter() {
            assert_eq!(dst[dims.idx(x, y, z)], cpu.at(x, y, z), "at ({x},{y},{z})");
        }
    }

    #[test]
    fn sub_region_launch_only_touches_region() {
        let s = Stencil27::new(Velocity::unit_diagonal(), 0.5);
        let dims = FieldDims {
            nx: 6,
            ny: 6,
            nz: 6,
            halo: 1,
        };
        let src = vec![1.0; dims.len()];
        let mut dst = vec![-7.0; dims.len()];
        let region = Range3::new((2, 4), (2, 4), (2, 4));
        run_stencil(
            &src,
            &mut dst,
            &s.a,
            &StencilLaunch {
                dims,
                region,
                block: (8, 8),
                periodic: false,
            },
        );
        for (x, y, z) in dims.interior().iter() {
            if region.contains(x, y, z) {
                assert!((dst[dims.idx(x, y, z)] - 1.0).abs() < 1e-13);
            } else {
                assert_eq!(dst[dims.idx(x, y, z)], -7.0);
            }
        }
    }

    #[test]
    fn three_d_kernel_matches_two_d_bitwise() {
        let s = Stencil27::new(Velocity::new(0.9, 0.4, -0.2), 0.8);
        let mut cur = Field3::new(9, 8, 7, 1);
        cur.fill_interior(|x, y, z| ((x * 31 + y * 17 + z * 7) % 13) as f64 * 0.37);
        cur.copy_periodic_halo();
        let (src, dims) = device_field_from(&cur);
        let mut dst2 = vec![0.0; dims.len()];
        run_stencil(
            &src,
            &mut dst2,
            &s.a,
            &StencilLaunch {
                dims,
                region: dims.interior(),
                block: (8, 8),
                periodic: false,
            },
        );
        for block in [(4usize, 4usize, 4usize), (8, 4, 2), (3, 3, 3)] {
            let mut dst3 = vec![0.0; dims.len()];
            run_stencil_3d(
                &src,
                &mut dst3,
                &s.a,
                &StencilLaunch3d {
                    dims,
                    region: dims.interior(),
                    block,
                    periodic: false,
                },
            );
            for (x, y, z) in dims.interior().iter() {
                assert_eq!(
                    dst3[dims.idx(x, y, z)],
                    dst2[dims.idx(x, y, z)],
                    "block {block:?} at ({x},{y},{z})"
                );
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip_on_device() {
        let dims = FieldDims {
            nx: 5,
            ny: 4,
            nz: 3,
            halo: 1,
        };
        let mut field = vec![0.0; dims.len()];
        for (i, v) in field.iter_mut().enumerate() {
            *v = i as f64;
        }
        let region = Range3::new((0, 5), (1, 3), (0, 3));
        let mut buf = vec![0.0; region.len()];
        assert_eq!(run_pack(&field, dims, region, &mut buf), region.len());
        let mut field2 = vec![0.0; dims.len()];
        assert_eq!(run_unpack(&mut field2, dims, region, &buf), region.len());
        for (x, y, z) in region.iter() {
            assert_eq!(field2[dims.idx(x, y, z)], field[dims.idx(x, y, z)]);
        }
    }

    #[test]
    fn block_count_accounts_for_halo_threads() {
        let launch = StencilLaunch {
            dims: FieldDims {
                nx: 64,
                ny: 64,
                nz: 64,
                halo: 1,
            },
            region: Range3::new((0, 64), (0, 64), (0, 64)),
            block: (34, 10),
            periodic: false,
        };
        // Tile is 32×8 ⇒ 2×8 = 16 blocks.
        assert_eq!(launch.blocks(), 16);
    }
}
