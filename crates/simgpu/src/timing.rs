//! Virtual-time cost model for device operations.
//!
//! Durations come from the [`GpuSpec`] roofline (memory bandwidth against
//! double-precision peak) scaled by block-shape efficiency factors, and are
//! used both by the live device timeline (see [`crate::Gpu::timeline`])
//! and by the `perfmodel` crate when it regenerates Figures 7
//! and 8 (the GPU block-size sweeps):
//!
//! * **coalescing** — global loads are issued per half warp; an x extent of
//!   a full warp is ideal, a half warp costs extra transactions,
//!   non-multiples waste lanes;
//! * **halo-thread overhead** — a `(bx, by)` block computes only its
//!   `(bx-2) × (by-2)` interior tile ("the thread block includes threads
//!   associated with halo points that only perform memory operations");
//! * **occupancy** — resident warps per SM, limited by the per-SM thread
//!   budget, shared memory, and the 8-block cap, relative to the warps
//!   needed to hide memory latency;
//! * **register pressure** — blocks whose threads exceed the SM register
//!   file spill to local memory (the cliff that makes 32×12+ blocks slow
//!   on the C1060);
//! * **block synchronization** — the per-plane `syncthreads` cost grows
//!   with warps per block, favoring shorter blocks (why 32×8 edges out
//!   taller blocks on the C2050).
//!
//! The absolute scale (`stencil_base_efficiency`) is calibrated to the
//! paper's anchors: GPU-resident ≈ 86 GF on the C2050 at 32×8 (stated in
//! Section V-E) and ≈ 33 GF on the C1060 at 32×11.

use crate::kernels::StencilLaunch;
use crate::spec::GpuSpec;
use advect_core::flops::FLOPS_PER_POINT;

/// Bytes of global-memory traffic per updated point: one 8-byte read
/// (amortized by shared-memory reuse) plus one 8-byte write.
pub const BYTES_PER_POINT: f64 = 16.0;

/// Registers per thread of the double-precision 27-tap kernel (estimate;
/// drives the spill model).
pub const REGS_PER_THREAD: usize = 43;

/// Memory-coalescing efficiency of an x block extent.
pub fn coalescing_efficiency(spec: &GpuSpec, bx: usize) -> f64 {
    let w = spec.warp;
    if bx == 0 {
        return 0.05;
    }
    if bx.is_multiple_of(w) {
        1.0
    } else if bx.is_multiple_of(w / 2) {
        // Half-warp segments: each 16-lane transaction moves half a line.
        0.62
    } else {
        // Misaligned: partially filled transactions.
        0.62 * bx as f64 / (bx.div_ceil(w) * w) as f64
    }
}

/// Fraction of block threads that compute (the rest are halo loaders),
/// normalized so a comfortable tile (≈0.8) scores 1.
pub fn halo_thread_efficiency(block: (usize, usize)) -> f64 {
    let (bx, by) = block;
    let raw = if bx < 3 || by < 3 {
        0.25
    } else {
        ((bx - 2) * (by - 2)) as f64 / (bx * by) as f64
    };
    0.35 + 0.65 * raw / 0.8
}

/// Shared memory per block: one staged `(bx+3) × (by+2)` plane of f64
/// (front and back z planes live in registers, as in Micikevicius 2009);
/// the x extent is padded to avoid shared-memory bank conflicts.
pub fn shared_bytes_per_block(block: (usize, usize)) -> usize {
    (block.0 + 3) * (block.1 + 2) * 8
}

/// Penalty applied when a block's staging does not fit shared memory and
/// spills to global-memory staging.
pub fn smem_spill_factor(spec: &GpuSpec, block: (usize, usize)) -> f64 {
    if shared_bytes_per_block(block) > spec.smem_per_sm_bytes {
        0.6
    } else {
        1.0
    }
}

/// Resident blocks per SM, limited by threads, shared memory, and the
/// hardware cap of 8.
pub fn blocks_per_sm(spec: &GpuSpec, block: (usize, usize)) -> usize {
    let threads = block.0 * block.1;
    if threads == 0 || threads > spec.max_threads_per_block {
        return 0;
    }
    let by_threads = spec.max_threads_per_sm / threads;
    // A block whose staging exceeds shared memory still runs (spilled to
    // global staging, see `smem_spill_factor`), one block at a time.
    let by_smem = (spec.smem_per_sm_bytes / shared_bytes_per_block(block)).max(1);
    by_threads.min(by_smem).min(8)
}

/// Occupancy factor: resident warps per SM relative to the latency-hiding
/// requirement of the part.
pub fn occupancy_efficiency(spec: &GpuSpec, block: (usize, usize)) -> f64 {
    let blocks = blocks_per_sm(spec, block);
    if blocks == 0 {
        return 0.0;
    }
    let warps = (blocks * block.0 * block.1) as f64 / spec.warp as f64;
    (warps / spec.warps_needed as f64).min(1.0).sqrt()
}

/// Register-spill factor: 1.0 when the block's registers fit the SM file,
/// 0.5 once spilling to local memory sets in.
pub fn register_spill_factor(spec: &GpuSpec, block: (usize, usize)) -> f64 {
    if block.0 * block.1 * REGS_PER_THREAD > spec.regfile_per_sm {
        0.5
    } else {
        1.0
    }
}

/// Per-plane block synchronization cost factor (grows with warps/block).
pub fn sync_factor(spec: &GpuSpec, block: (usize, usize)) -> f64 {
    let warps_per_block = (block.0 * block.1) as f64 / spec.warp as f64;
    1.0 / (1.0 + spec.sync_cost_per_warp * warps_per_block)
}

/// Sustained rate (points/s) of the stencil kernel at a block shape.
pub fn stencil_points_per_second(spec: &GpuSpec, block: (usize, usize)) -> f64 {
    let eff = spec.stencil_base_efficiency
        * coalescing_efficiency(spec, block.0)
        * halo_thread_efficiency(block)
        * occupancy_efficiency(spec, block)
        * register_spill_factor(spec, block)
        * smem_spill_factor(spec, block)
        * sync_factor(spec, block);
    let mem_limit = spec.mem_bw_gbs * 1e9 / BYTES_PER_POINT;
    let flop_roof = spec.dp_gflops * 1e9 / FLOPS_PER_POINT as f64 * 0.85;
    (eff * mem_limit).min(flop_roof)
}

/// Duration of a stencil kernel launch.
pub fn stencil_kernel_time(spec: &GpuSpec, launch: &StencilLaunch) -> f64 {
    let pts = launch.points() as f64;
    if pts == 0.0 {
        return spec.launch_overhead_s;
    }
    // Thin launches (boundary faces) cannot fill the machine: scale the
    // rate by how many blocks exist relative to the SM count.
    let fill = (launch.blocks() as f64 / spec.sm_count as f64).clamp(0.1, 1.0);
    spec.launch_overhead_s + pts / (stencil_points_per_second(spec, launch.block) * fill)
}

/// Duration of a pack/unpack kernel (pure bandwidth, strided access).
pub fn pack_kernel_time(spec: &GpuSpec, points: usize) -> f64 {
    // Strided gather/scatter: ~25% of streaming bandwidth.
    spec.launch_overhead_s + points as f64 * 16.0 / (spec.mem_bw_gbs * 1e9 * 0.25)
}

/// Duration of a PCIe transfer of `points` f64 values.
pub fn pcie_time(spec: &GpuSpec, points: usize) -> f64 {
    spec.pcie_latency_s + points as f64 * 8.0 / (spec.pcie_bw_gbs * 1e9)
}

/// Achieved GF of a full-device resident stencil pass (the block-size
/// sweep of Figures 7 and 8).
pub fn resident_gigaflops(spec: &GpuSpec, grid: usize, block: (usize, usize)) -> f64 {
    let launch = StencilLaunch {
        dims: crate::kernels::FieldDims {
            nx: grid,
            ny: grid,
            nz: grid,
            halo: 0,
        },
        region: advect_core::field::Range3::new(
            (0, grid as i64),
            (0, grid as i64),
            (0, grid as i64),
        ),
        block,
        periodic: true,
    };
    let t = stencil_kernel_time(spec, &launch);
    (grid as f64).powi(3) * FLOPS_PER_POINT as f64 / t / 1e9
}

/// Global-memory bytes per point of a 3-D-block kernel: the staged
/// `(b+2)³` neighborhood is re-loaded per block (no z-march reuse),
/// plus the 8-byte write.
pub fn bytes_per_point_3d(block: (usize, usize, usize)) -> f64 {
    let (bx, by, bz) = block;
    let tile = (bx.max(1) * by.max(1) * bz.max(1)) as f64;
    let staged = ((bx + 2) * (by + 2) * (bz + 2)) as f64;
    8.0 * staged / tile + 8.0
}

/// Sustained rate (points/s) of the 3-D-block stencil variant the paper
/// rejected: same shape factors as the 2-D kernel but with the extra
/// global traffic of re-staging every z plane.
pub fn stencil_points_per_second_3d(spec: &GpuSpec, block: (usize, usize, usize)) -> f64 {
    let flat = (block.0, block.1 * block.2);
    let eff = spec.stencil_base_efficiency
        * coalescing_efficiency(spec, block.0)
        * halo_thread_efficiency(flat)
        * occupancy_efficiency(spec, flat)
        * register_spill_factor(spec, flat)
        * smem_spill_factor(spec, flat)
        * sync_factor(spec, flat);
    let mem_limit = spec.mem_bw_gbs * 1e9 / bytes_per_point_3d(block);
    let flop_roof = spec.dp_gflops * 1e9 / FLOPS_PER_POINT as f64 * 0.85;
    (eff * mem_limit).min(flop_roof)
}

/// Best 3-D block by exhaustive sweep (x warp-aligned, total threads
/// within the hardware limit).
pub fn best_block_3d(spec: &GpuSpec) -> ((usize, usize, usize), f64) {
    let mut best = ((0, 0, 0), 0.0f64);
    for bx in [16usize, 32, 64] {
        for by in 1..=16usize {
            for bz in 1..=16usize {
                if bx * by * bz > spec.max_threads_per_block {
                    continue;
                }
                let rate = stencil_points_per_second_3d(spec, (bx, by, bz));
                let gf = rate * FLOPS_PER_POINT as f64 / 1e9;
                if gf > best.1 {
                    best = ((bx, by, bz), gf);
                }
            }
        }
    }
    best
}

/// The best block shape for a spec by exhaustive sweep over warp-aligned
/// and half-warp x extents (the sweep of Figures 7 and 8).
pub fn best_block(spec: &GpuSpec, grid: usize) -> ((usize, usize), f64) {
    let mut best = ((0, 0), 0.0);
    for bx in [16usize, 32, 64, 128] {
        for by in 1..=spec.max_threads_per_block / bx {
            let gf = resident_gigaflops(spec, grid, (bx, by));
            if gf > best.1 {
                best = ((bx, by), gf);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_multiple_coalesces_best() {
        let spec = GpuSpec::tesla_c1060();
        assert_eq!(coalescing_efficiency(&spec, 32), 1.0);
        assert_eq!(coalescing_efficiency(&spec, 64), 1.0);
        assert!(coalescing_efficiency(&spec, 16) < 1.0);
        assert!(coalescing_efficiency(&spec, 20) < coalescing_efficiency(&spec, 16));
    }

    #[test]
    fn halo_efficiency_favors_square_ish_blocks() {
        assert!(halo_thread_efficiency((32, 11)) > halo_thread_efficiency((32, 4)));
        assert!(halo_thread_efficiency((128, 4)) < halo_thread_efficiency((32, 11)));
    }

    #[test]
    fn oversized_block_has_zero_occupancy() {
        let spec = GpuSpec::tesla_c1060();
        assert_eq!(occupancy_efficiency(&spec, (64, 9)), 0.0); // 576 > 512
        assert!(occupancy_efficiency(&spec, (32, 16)) > 0.0); // 512 ok
    }

    #[test]
    fn best_c1060_block_is_32x11() {
        // Fig. 7: "top performance coming from a block size of 32×11".
        let spec = GpuSpec::tesla_c1060();
        let ((bx, by), gf) = best_block(&spec, 420);
        assert_eq!(
            bx, 32,
            "best x extent should be the warp size, got {bx}×{by}"
        );
        assert_eq!(
            by, 11,
            "best block should be 32×11, got {bx}×{by} at {gf} GF"
        );
    }

    #[test]
    fn best_c2050_block_is_32x8() {
        // Fig. 8: "the best performance comes from an x block size of 32,
        // but with a slightly smaller y block size of 8".
        let spec = GpuSpec::tesla_c2050();
        let ((bx, by), gf) = best_block(&spec, 420);
        assert_eq!((bx, by), (32, 8), "got {bx}×{by} at {gf} GF");
    }

    #[test]
    fn c2050_resident_near_86_gf_at_32x8() {
        // Section V-E anchor: "the best GPU-resident performance on Yona
        // is 86 GF".
        let spec = GpuSpec::tesla_c2050();
        let gf = resident_gigaflops(&spec, 420, (32, 8));
        assert!((gf - 86.0).abs() < 6.0, "calibration drifted: {gf} GF");
    }

    #[test]
    fn c1060_resident_in_plausible_band() {
        let spec = GpuSpec::tesla_c1060();
        let gf = resident_gigaflops(&spec, 420, (32, 11));
        assert!(gf > 25.0 && gf < 45.0, "C1060 resident {gf} GF out of band");
    }

    #[test]
    fn register_spill_cliff_on_c1060() {
        let spec = GpuSpec::tesla_c1060();
        assert_eq!(register_spill_factor(&spec, (32, 11)), 1.0);
        assert_eq!(register_spill_factor(&spec, (32, 12)), 0.5);
    }

    #[test]
    fn two_d_blocks_beat_three_d_blocks() {
        // Section V-C: "We use two-dimensional blocks instead of three
        // because they allow better memory reuse in our test." Verify the
        // model agrees on both parts.
        for spec in [GpuSpec::tesla_c1060(), GpuSpec::tesla_c2050()] {
            let best2d = best_block(&spec, 420).1;
            let (b3, gf3_rate) = best_block_3d(&spec);
            // Convert the 3-D rate to the same whole-grid GF accounting.
            let gf3 = gf3_rate; // already GF per rate above
            assert!(
                best2d > gf3,
                "{}: 2-D {best2d} GF vs 3-D {gf3} GF at {b3:?}",
                spec.name
            );
        }
    }

    #[test]
    fn three_d_blocks_move_more_bytes_per_point() {
        assert!(bytes_per_point_3d((8, 8, 8)) > BYTES_PER_POINT);
        // Bigger blocks amortize halo loads better, but never reach the
        // z-march's reuse.
        assert!(bytes_per_point_3d((16, 8, 8)) < bytes_per_point_3d((8, 8, 4)));
        assert!(bytes_per_point_3d((16, 8, 8)) > BYTES_PER_POINT);
    }

    #[test]
    fn pcie_time_has_latency_floor() {
        let spec = GpuSpec::tesla_c1060();
        assert!(pcie_time(&spec, 0) >= spec.pcie_latency_s);
        let t1 = pcie_time(&spec, 1_000_000);
        let t2 = pcie_time(&spec, 2_000_000);
        assert!(t2 > t1 && t2 < 2.2 * t1);
    }

    #[test]
    fn thin_boundary_launch_slower_per_point() {
        use crate::kernels::{FieldDims, StencilLaunch};
        use advect_core::field::Range3;
        let spec = GpuSpec::tesla_c2050();
        let dims = FieldDims {
            nx: 128,
            ny: 128,
            nz: 128,
            halo: 1,
        };
        let full = StencilLaunch {
            dims,
            region: Range3::new((0, 128), (0, 128), (0, 128)),
            block: (32, 8),
            periodic: false,
        };
        let face = StencilLaunch {
            dims,
            region: Range3::new((0, 128), (0, 1), (0, 128)),
            block: (32, 8),
            periodic: false,
        };
        let t_full = stencil_kernel_time(&spec, &full) / full.points() as f64;
        let t_face = stencil_kernel_time(&spec, &face) / face.points() as f64;
        assert!(t_face > 2.0 * t_full, "face {t_face} vs full {t_full}");
    }
}
