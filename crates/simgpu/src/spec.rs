//! GPU hardware descriptions.
//!
//! The two GPUs of the paper (Table II) are provided as presets:
//! the Tesla **C1060** (Lens) and the Tesla **C2050** (Yona). The spec
//! drives both functional limits (maximum threads per block, warp size)
//! and the virtual-time cost model in [`crate::timing`].

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. "Tesla C2050".
    pub name: &'static str,
    /// SIMT warp size (32 for both tested GPUs).
    pub warp: usize,
    /// Maximum threads per block (512 on C1060, 1024 on C2050).
    pub max_threads_per_block: usize,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Shared memory per SM in bytes.
    pub smem_per_sm_bytes: usize,
    /// 32-bit registers per SM.
    pub regfile_per_sm: usize,
    /// Resident warps per SM needed to hide memory latency.
    pub warps_needed: usize,
    /// Relative cost of per-plane block synchronization, per warp of block
    /// size (drives the preference for shorter blocks).
    pub sync_cost_per_warp: f64,
    /// Peak double-precision rate in Gflop/s.
    pub dp_gflops: f64,
    /// Global-memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Global memory capacity in GiB.
    pub mem_gib: f64,
    /// Effective PCIe bandwidth in GB/s (each direction).
    pub pcie_bw_gbs: f64,
    /// PCIe transfer latency per operation, in seconds.
    pub pcie_latency_s: f64,
    /// Kernel launch overhead, in seconds.
    pub launch_overhead_s: f64,
    /// Number of independent DMA copy engines (1 on C1060, 2 on C2050).
    pub copy_engines: usize,
    /// Whether kernels can run concurrently with copies from another
    /// stream (true for both; pre-Fermi parts cannot overlap *boundary
    /// compute* with interior compute, modeled via `concurrent_kernels`).
    pub concurrent_kernels: bool,
    /// Calibrated fraction of the roofline the stencil kernel achieves at
    /// the ideal block size (see DESIGN.md calibration anchors).
    pub stencil_base_efficiency: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla C1060 (Lens): compute capability 1.3, first-generation
    /// double precision, PCIe gen-1 class host link on Lens.
    pub fn tesla_c1060() -> Self {
        Self {
            name: "Tesla C1060",
            warp: 32,
            max_threads_per_block: 512,
            sm_count: 30,
            max_threads_per_sm: 1024,
            smem_per_sm_bytes: 16384,
            regfile_per_sm: 16384,
            warps_needed: 20,
            sync_cost_per_warp: 0.005,
            dp_gflops: 78.0,
            mem_bw_gbs: 102.0,
            mem_gib: 4.0,
            pcie_bw_gbs: 1.5,
            pcie_latency_s: 20e-6,
            launch_overhead_s: 10e-6,
            copy_engines: 1,
            concurrent_kernels: false,
            stencil_base_efficiency: 0.106,
        }
    }

    /// NVIDIA Tesla C2050 (Yona): Fermi, compute capability 2.0, "a faster
    /// PCIe bus connecting the GPUs to the CPUs and main memory".
    pub fn tesla_c2050() -> Self {
        Self {
            name: "Tesla C2050",
            warp: 32,
            max_threads_per_block: 1024,
            sm_count: 14,
            max_threads_per_sm: 1536,
            smem_per_sm_bytes: 49152,
            regfile_per_sm: 32768,
            warps_needed: 48,
            sync_cost_per_warp: 0.025,
            dp_gflops: 515.0,
            mem_bw_gbs: 144.0,
            mem_gib: 3.0,
            pcie_bw_gbs: 4.0,
            pcie_latency_s: 10e-6,
            launch_overhead_s: 5e-6,
            copy_engines: 2,
            concurrent_kernels: true,
            stencil_base_efficiency: 0.235,
        }
    }

    /// Global memory capacity in number of f64 values.
    pub fn capacity_f64(&self) -> usize {
        (self.mem_gib * (1u64 << 30) as f64 / 8.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_ii() {
        let c1060 = GpuSpec::tesla_c1060();
        assert_eq!(c1060.mem_gib, 4.0);
        assert_eq!(c1060.max_threads_per_block, 512);
        let c2050 = GpuSpec::tesla_c2050();
        assert_eq!(c2050.mem_gib, 3.0);
        assert_eq!(c2050.max_threads_per_block, 1024);
        assert!(
            c2050.pcie_bw_gbs > c1060.pcie_bw_gbs,
            "Yona has the faster bus"
        );
    }

    #[test]
    fn paper_grid_fits_in_one_gpu() {
        // 420³ with two state copies plus halos must fit in 3 GiB:
        // the paper chose 420 "to just fit within the memory of a single GPU".
        let c2050 = GpuSpec::tesla_c2050();
        let two_states = 2 * 422usize.pow(3);
        assert!(two_states < c2050.capacity_f64());
    }
}
