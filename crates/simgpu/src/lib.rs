//! # simgpu
//!
//! A functional GPU simulator standing in for CUDA Fortran in the
//! reproduction of White & Dongarra (IPDPS 2011). See DESIGN.md for the
//! substitution argument; in short:
//!
//! * kernels execute **for real** with the same thread-block structure as
//!   the paper's CUDA kernels (2-D blocks tiling x/y, halo threads that
//!   only load, a z-march through shared memory), producing bit-identical
//!   results to the CPU reference;
//! * **streams, events and synchronization** follow CUDA semantics,
//!   including a hazard checker that panics on cross-stream
//!   read-after-write without synchronization;
//! * a **virtual timeline** schedules each operation on the compute
//!   engine or a PCIe copy engine, so kernel/copy overlap — the heart of
//!   implementations IV-G and IV-I — is observable and measurable;
//! * hardware presets for the paper's **Tesla C1060 and C2050** with a
//!   calibrated roofline cost model ([`timing`]).

pub mod device;
pub mod fault;
pub mod kernels;
pub mod spec;
pub mod timeline;
pub mod timing;

pub use device::{Event, Gpu, GpuBuffer, GpuStats, Stream};
pub use fault::GpuFaultPlan;
pub use kernels::{FieldDims, StencilLaunch};
pub use spec::GpuSpec;
pub use timeline::{Timeline, TimelineEntry};

#[cfg(test)]
mod tests {
    use super::*;
    use advect_core::coeffs::{Stencil27, Velocity};
    use advect_core::field::Range3;
    use advect_core::stepper::{AdvectionProblem, SerialStepper};

    #[test]
    fn gpu_resident_stepping_matches_serial() {
        // The GPU-resident implementation core: halo-free layout, wrap
        // indexing, pointer flip per step.
        let problem = AdvectionProblem::general_case(10);
        let mut serial = SerialStepper::new(problem);
        serial.run(4);

        let gpu = Gpu::new(GpuSpec::tesla_c2050());
        let s = problem.stencil();
        gpu.set_constant(s.a);
        let n = problem.n;
        let dims = FieldDims {
            nx: n,
            ny: n,
            nz: n,
            halo: 0,
        };
        let init = problem.initial_field();
        let mut flat = vec![0.0; dims.len()];
        for (x, y, z) in dims.interior().iter() {
            flat[dims.idx(x, y, z)] = init.at(x, y, z);
        }
        let mut cur = gpu.alloc(dims.len());
        let mut new = gpu.alloc(dims.len());
        gpu.upload_untimed(cur, &flat);
        for _ in 0..4 {
            gpu.launch_stencil(
                Stream::DEFAULT,
                cur,
                new,
                StencilLaunch {
                    dims,
                    region: dims.interior(),
                    block: (32, 8),
                    periodic: true,
                },
            );
            std::mem::swap(&mut cur, &mut new);
        }
        gpu.sync_device();
        let result = gpu.read_untimed(cur);
        for (x, y, z) in dims.interior().iter() {
            assert_eq!(result[dims.idx(x, y, z)], serial.state().at(x, y, z));
        }
        assert_eq!(gpu.stats().stencil_launches, 4);
    }

    #[test]
    fn two_stream_overlap_shrinks_wallclock() {
        // A copy on stream 1 should overlap a kernel on stream 0.
        let gpu = Gpu::new(GpuSpec::tesla_c2050());
        gpu.set_constant(Stencil27::new(Velocity::unit_diagonal(), 1.0).a);
        let dims = FieldDims {
            nx: 96,
            ny: 96,
            nz: 96,
            halo: 0,
        };
        let a = gpu.alloc(dims.len());
        let b = gpu.alloc(dims.len());
        let host_buf_len = 500_000;
        let staging = gpu.alloc(host_buf_len);
        let mut host = vec![0.0; host_buf_len];
        let s1 = gpu.create_stream();

        // Serial: kernel then copy on the same stream.
        gpu.launch_stencil(
            Stream::DEFAULT,
            a,
            b,
            StencilLaunch {
                dims,
                region: dims.interior(),
                block: (32, 8),
                periodic: true,
            },
        );
        gpu.d2h(Stream::DEFAULT, staging, 0, &mut host);
        let serial_time = gpu.sync_device();

        gpu.reset_clock();
        // Overlapped: kernel on stream 0, independent copy on stream 1.
        gpu.launch_stencil(
            Stream::DEFAULT,
            a,
            b,
            StencilLaunch {
                dims,
                region: dims.interior(),
                block: (32, 8),
                periodic: true,
            },
        );
        gpu.d2h(s1, staging, 0, &mut host);
        let overlap_time = gpu.sync_device();
        assert!(
            overlap_time < 0.8 * serial_time,
            "overlap {overlap_time} not < 0.8 × serial {serial_time}"
        );
    }

    #[test]
    fn unsynchronized_cross_stream_read_panics() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let gpu = Gpu::new(GpuSpec::tesla_c2050());
            gpu.set_constant([0.0; 27]);
            let dims = FieldDims {
                nx: 8,
                ny: 8,
                nz: 8,
                halo: 0,
            };
            let a = gpu.alloc(dims.len());
            let b = gpu.alloc(dims.len());
            let s1 = gpu.create_stream();
            let launch = StencilLaunch {
                dims,
                region: dims.interior(),
                block: (8, 8),
                periodic: true,
            };
            // Stream 0 writes b; stream 1 reads b with no event/sync: bug.
            gpu.launch_stencil(Stream::DEFAULT, a, b, launch);
            gpu.launch_stencil(s1, b, a, launch);
        }));
        assert!(result.is_err(), "hazard not detected");
    }

    #[test]
    fn event_wait_establishes_order() {
        let gpu = Gpu::new(GpuSpec::tesla_c2050());
        gpu.set_constant([0.0; 27]);
        let dims = FieldDims {
            nx: 8,
            ny: 8,
            nz: 8,
            halo: 0,
        };
        let a = gpu.alloc(dims.len());
        let b = gpu.alloc(dims.len());
        let s1 = gpu.create_stream();
        let launch = StencilLaunch {
            dims,
            region: dims.interior(),
            block: (8, 8),
            periodic: true,
        };
        gpu.launch_stencil(Stream::DEFAULT, a, b, launch);
        let ev = gpu.record_event(Stream::DEFAULT);
        gpu.wait_event(s1, ev);
        gpu.launch_stencil(s1, b, a, launch); // ordered: no panic
        gpu.sync_device();
    }

    #[test]
    fn stream_sync_publishes_writes() {
        let gpu = Gpu::new(GpuSpec::tesla_c2050());
        gpu.set_constant([0.0; 27]);
        let dims = FieldDims {
            nx: 8,
            ny: 8,
            nz: 8,
            halo: 0,
        };
        let a = gpu.alloc(dims.len());
        let b = gpu.alloc(dims.len());
        let s1 = gpu.create_stream();
        let launch = StencilLaunch {
            dims,
            region: dims.interior(),
            block: (8, 8),
            periodic: true,
        };
        gpu.launch_stencil(s1, a, b, launch);
        gpu.sync_stream(s1);
        gpu.launch_stencil(Stream::DEFAULT, b, a, launch); // visible now
    }

    #[test]
    fn pack_unpack_through_device_roundtrips() {
        let gpu = Gpu::new(GpuSpec::tesla_c1060());
        gpu.set_constant([0.0; 27]);
        let dims = FieldDims {
            nx: 6,
            ny: 5,
            nz: 4,
            halo: 1,
        };
        let field = gpu.alloc(dims.len());
        let mut host = vec![0.0; dims.len()];
        for (i, v) in host.iter_mut().enumerate() {
            *v = i as f64 * 0.5;
        }
        gpu.upload_untimed(field, &host);
        let region = Range3::new((0, 6), (0, 5), (0, 1));
        let staging = gpu.alloc(region.len());
        gpu.launch_pack(Stream::DEFAULT, field, dims, region, staging, 0);
        let field2 = gpu.alloc(dims.len());
        gpu.launch_unpack(Stream::DEFAULT, field2, dims, region, staging, 0);
        gpu.sync_device();
        let out = gpu.read_untimed(field2);
        for (x, y, z) in region.iter() {
            assert_eq!(out[dims.idx(x, y, z)], host[dims.idx(x, y, z)]);
        }
    }

    #[test]
    fn d2h_h2d_move_data_and_count_stats() {
        let gpu = Gpu::new(GpuSpec::tesla_c1060());
        let buf = gpu.alloc(100);
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        gpu.h2d(Stream::DEFAULT, &data, buf, 0);
        let mut back = vec![0.0; 100];
        gpu.d2h(Stream::DEFAULT, buf, 0, &mut back);
        gpu.sync_device();
        assert_eq!(back, data);
        let st = gpu.stats();
        assert_eq!(st.h2d_transfers, 1);
        assert_eq!(st.d2h_transfers, 1);
        assert_eq!(st.h2d_points, 100);
    }

    #[test]
    fn oversized_block_rejected() {
        let gpu = Gpu::new(GpuSpec::tesla_c1060());
        gpu.set_constant([0.0; 27]);
        let dims = FieldDims {
            nx: 8,
            ny: 8,
            nz: 8,
            halo: 0,
        };
        let a = gpu.alloc(dims.len());
        let b = gpu.alloc(dims.len());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpu.launch_stencil(
                Stream::DEFAULT,
                a,
                b,
                StencilLaunch {
                    dims,
                    region: dims.interior(),
                    block: (64, 9), // 576 > 512 on C1060
                    periodic: true,
                },
            );
        }));
        assert!(r.is_err());
    }

    #[test]
    fn device_memory_capacity_enforced() {
        let gpu = Gpu::new(GpuSpec::tesla_c2050());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // 3 GiB of f64 is ~400M values; ask for more.
            gpu.alloc(500_000_000);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn fault_plan_shifts_timeline_but_not_results() {
        let problem = AdvectionProblem::general_case(10);
        let dims = FieldDims {
            nx: 10,
            ny: 10,
            nz: 10,
            halo: 0,
        };
        let init = problem.initial_field();
        let mut flat = vec![0.0; dims.len()];
        for (x, y, z) in dims.interior().iter() {
            flat[dims.idx(x, y, z)] = init.at(x, y, z);
        }
        let run = |fault: GpuFaultPlan| {
            let gpu = Gpu::new(GpuSpec::tesla_c2050()).with_fault_plan(fault);
            gpu.set_constant(problem.stencil().a);
            let cur = gpu.alloc(dims.len());
            let new = gpu.alloc(dims.len());
            gpu.h2d(Stream::DEFAULT, &flat, cur, 0);
            for _ in 0..3 {
                gpu.launch_stencil(
                    Stream::DEFAULT,
                    cur,
                    new,
                    StencilLaunch {
                        dims,
                        region: dims.interior(),
                        block: (32, 8),
                        periodic: true,
                    },
                );
                let mut back = vec![0.0; dims.len()];
                gpu.d2h(Stream::DEFAULT, new, 0, &mut back);
            }
            let t = gpu.sync_device();
            (gpu.read_untimed(new), t)
        };
        let (clean, t_clean) = run(GpuFaultPlan::off());
        let (faulted, t_faulted) = run(GpuFaultPlan::chaos(3));
        assert_eq!(clean, faulted, "faults must never change results");
        assert!(
            t_faulted > t_clean,
            "chaos timeline {t_faulted} not slower than clean {t_clean}"
        );
    }

    #[test]
    fn host_advance_delays_subsequent_ops() {
        let gpu = Gpu::new(GpuSpec::tesla_c2050());
        let buf = gpu.alloc(10);
        gpu.host_advance(1.0);
        let data = vec![0.0; 10];
        gpu.h2d(Stream::DEFAULT, &data, buf, 0);
        let t = gpu.sync_device();
        assert!(t > 1.0);
    }
}
