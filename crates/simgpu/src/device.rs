//! The simulated device: buffers, streams, events, hazards, timeline.

use crate::fault::GpuFaultPlan;
use crate::kernels::{self, FieldDims, StencilLaunch};
use crate::spec::GpuSpec;
use crate::timeline::{EngineKind as TlEngine, Timeline, TimelineEntry};
use crate::timing;
use advect_core::field::Range3;
use obs::{Category, Tracer};
use parking_lot::Mutex;
use std::sync::OnceLock;

/// Handle to a device (global-memory) buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuBuffer(usize);

/// Handle to a CUDA-like stream. Stream 0 (the default stream) always
/// exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream(usize);

impl Stream {
    /// The default stream.
    pub const DEFAULT: Stream = Stream(0);
}

/// A recorded event: a point in a stream's history that other streams can
/// wait on (like `cudaEventRecord` / `cudaStreamWaitEvent`).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    stream: usize,
    seq: u64,
    time: f64,
}

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuStats {
    /// Stencil kernels launched.
    pub stencil_launches: u64,
    /// Pack/unpack kernels launched.
    pub pack_launches: u64,
    /// Host-to-device transfers.
    pub h2d_transfers: u64,
    /// Device-to-host transfers.
    pub d2h_transfers: u64,
    /// f64 values moved host→device.
    pub h2d_points: u64,
    /// f64 values moved device→host.
    pub d2h_points: u64,
    /// Grid points updated by stencil kernels.
    pub points_computed: u64,
    /// Virtual seconds the compute engine was busy.
    pub compute_busy: f64,
    /// Virtual seconds the copy engine(s) were busy.
    pub copy_busy: f64,
}

struct StreamState {
    time: f64,
    seq: u64,
}

struct Inner {
    timeline: Timeline,
    buffers: Vec<Vec<f64>>,
    constant: Option<[f64; 27]>,
    streams: Vec<StreamState>,
    /// visible[reader][writer]: highest op seq of `writer` whose effects
    /// `reader` is ordered after.
    visible: Vec<Vec<u64>>,
    last_write: Vec<Option<(usize, u64)>>,
    compute_free: f64,
    copy_free: Vec<f64>,
    host_time: f64,
    stats: GpuStats,
    /// Ops scheduled so far — the counter seeding per-op fault jitter.
    fault_ops: u64,
}

enum EngineKind {
    Compute,
    CopyH2D,
    CopyD2H,
}

/// Pre-registered metric handles for one device's scheduled operations
/// (see [`Gpu::install_metrics`]).
struct GpuMetrics {
    /// `advect_gpu_kernel_ns{rank}`: scheduled kernel duration on the
    /// virtual timeline.
    kernel_ns: obs::registry::Histogram,
    /// `advect_pcie_transfer_ns{rank,dir="h2d"}`.
    h2d_ns: obs::registry::Histogram,
    /// `advect_pcie_transfer_ns{rank,dir="d2h"}`.
    d2h_ns: obs::registry::Histogram,
}

/// A simulated GPU.
///
/// Functionally, every operation executes eagerly in host issue order, so
/// results are deterministic; a read-after-write **hazard checker** panics
/// when a stream consumes another stream's output without an intervening
/// event wait or synchronization — the class of bug missing CUDA stream
/// discipline causes on real hardware. In parallel, a **virtual timeline**
/// schedules each operation on its engine (compute, or one of the PCIe
/// copy engines) honoring stream order, event dependencies, and host
/// synchronization points, so overlap behavior can be measured.
///
/// Methods take `&self`; the device is internally locked, so several host
/// threads (MPI tasks sharing one GPU, as in Section IV-F) may issue
/// operations concurrently.
pub struct Gpu {
    spec: GpuSpec,
    inner: Mutex<Inner>,
    hazard_check: bool,
    fault: GpuFaultPlan,
    tracer: OnceLock<Tracer>,
    metrics: OnceLock<GpuMetrics>,
}

impl Gpu {
    /// A new device with the given spec, hazard checking enabled.
    pub fn new(spec: GpuSpec) -> Self {
        let copy_engines = spec.copy_engines.max(1);
        Self {
            spec,
            inner: Mutex::new(Inner {
                timeline: Timeline::default(),
                buffers: Vec::new(),
                constant: None,
                streams: vec![StreamState { time: 0.0, seq: 0 }],
                visible: vec![vec![0]],
                last_write: Vec::new(),
                compute_free: 0.0,
                copy_free: vec![0.0; copy_engines],
                host_time: 0.0,
                stats: GpuStats::default(),
                fault_ops: 0,
            }),
            hazard_check: true,
            fault: GpuFaultPlan::off(),
            tracer: OnceLock::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Install a span recorder: transfers record wall-clock `pcie.*`
    /// spans and kernel launches record `kernel.launch` spans (the
    /// host-side issue cost; the *scheduled* device time lives on the
    /// virtual axis, bridged via `Timeline::to_trace_events`). Idempotent;
    /// without an install, calls trace into the static no-op sink.
    pub fn install_tracer(&self, tracer: Tracer) {
        let _ = self.tracer.set(tracer);
    }

    /// The device's span recorder (no-op sink when none is installed).
    pub fn tracer(&self) -> &Tracer {
        static OFF: Tracer = Tracer::off();
        self.tracer.get().unwrap_or(&OFF)
    }

    /// Register this device's scheduling metrics in `registry`: every
    /// scheduled operation observes its *virtual* duration into
    /// `advect_gpu_kernel_ns{rank}` (compute engine) or
    /// `advect_pcie_transfer_ns{rank,dir}` (copy engines). A disabled
    /// registry installs nothing — unmetered runs pay one `OnceLock`
    /// load per scheduled op. Idempotent.
    pub fn install_metrics(&self, registry: &obs::registry::Metrics, rank: usize) {
        if !registry.is_on() || self.metrics.get().is_some() {
            return;
        }
        let rank = rank.to_string();
        let transfer = |dir: &str| {
            registry.histogram(
                "advect_pcie_transfer_ns",
                "Scheduled PCIe transfer duration on the virtual timeline, nanoseconds",
                &[("rank", rank.clone()), ("dir", dir.to_string())],
            )
        };
        let _ = self.metrics.set(GpuMetrics {
            kernel_ns: registry.histogram(
                "advect_gpu_kernel_ns",
                "Scheduled kernel duration on the virtual timeline, nanoseconds",
                &[("rank", rank.clone())],
            ),
            h2d_ns: transfer("h2d"),
            d2h_ns: transfer("d2h"),
        });
    }

    /// Disable the cross-stream hazard checker (for experiments that
    /// deliberately race).
    pub fn without_hazard_check(mut self) -> Self {
        self.hazard_check = false;
        self
    }

    /// Perturb the virtual timeline under `plan`: kernel launches start
    /// late by seeded jitter and PCIe copies run `pcie_slowdown`× longer.
    /// Functional results are unaffected — only scheduled times move.
    pub fn with_fault_plan(mut self, plan: GpuFaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// The fault plan this device's timeline runs under.
    pub fn fault_plan(&self) -> GpuFaultPlan {
        self.fault
    }

    /// The device's hardware description.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Allocate a zero-filled device buffer of `len` f64 values.
    /// Panics if the allocation would exceed the device's memory capacity.
    pub fn alloc(&self, len: usize) -> GpuBuffer {
        let mut g = self.inner.lock();
        let used: usize = g.buffers.iter().map(|b| b.len()).sum();
        assert!(
            used + len <= self.spec.capacity_f64(),
            "device out of memory: {} + {} > {} f64 ({})",
            used,
            len,
            self.spec.capacity_f64(),
            self.spec.name
        );
        g.buffers.push(vec![0.0; len]);
        g.last_write.push(None);
        GpuBuffer(g.buffers.len() - 1)
    }

    /// Load the 27 stencil coefficients into constant memory.
    pub fn set_constant(&self, coeffs: [f64; 27]) {
        self.inner.lock().constant = Some(coeffs);
    }

    /// Create a new stream.
    pub fn create_stream(&self) -> Stream {
        let mut g = self.inner.lock();
        g.streams.push(StreamState { time: 0.0, seq: 0 });
        let n = g.streams.len();
        for row in g.visible.iter_mut() {
            row.push(0);
        }
        g.visible.push(vec![0; n]);
        Stream(n - 1)
    }

    fn schedule(
        &self,
        g: &mut Inner,
        stream: usize,
        kind: EngineKind,
        dur: f64,
        label: &'static str,
    ) -> (f64, f64) {
        let engine_free = match kind {
            EngineKind::Compute => g.compute_free,
            EngineKind::CopyH2D => g.copy_free[0],
            EngineKind::CopyD2H => g.copy_free[self.spec.copy_engines.max(1) - 1],
        };
        let mut start = g.streams[stream].time.max(engine_free).max(g.host_time);
        let mut dur = dur;
        if !self.fault.is_off() {
            let op = g.fault_ops;
            g.fault_ops += 1;
            match kind {
                EngineKind::Compute => start += self.fault.launch_jitter(op),
                EngineKind::CopyH2D | EngineKind::CopyD2H => {
                    dur *= self.fault.pcie_slowdown.max(1.0);
                }
            }
        }
        let end = start + dur;
        g.streams[stream].time = end;
        g.streams[stream].seq += 1;
        if let Some(m) = self.metrics.get() {
            let ns = (dur * 1e9) as u64;
            match kind {
                EngineKind::Compute => m.kernel_ns.observe(ns),
                EngineKind::CopyH2D => m.h2d_ns.observe(ns),
                EngineKind::CopyD2H => m.d2h_ns.observe(ns),
            }
        }
        let tl_engine = match kind {
            EngineKind::Compute => {
                g.compute_free = end;
                g.stats.compute_busy += dur;
                TlEngine::Compute
            }
            EngineKind::CopyH2D => {
                g.copy_free[0] = end;
                g.stats.copy_busy += dur;
                TlEngine::H2D
            }
            EngineKind::CopyD2H => {
                let i = self.spec.copy_engines.max(1) - 1;
                g.copy_free[i] = end;
                g.stats.copy_busy += dur;
                TlEngine::D2H
            }
        };
        g.timeline.entries.push(TimelineEntry {
            label,
            stream,
            engine: tl_engine,
            start,
            end,
        });
        (start, end)
    }

    fn check_read(&self, g: &Inner, stream: usize, buf: GpuBuffer, what: &str) {
        if !self.hazard_check {
            return;
        }
        if let Some((w, seq)) = g.last_write[buf.0] {
            if w != stream && g.visible[stream][w] < seq {
                panic!(
                    "stream {stream} {what} reads buffer {} last written by stream {w} \
                     (op {seq}) without synchronization — missing event wait or stream sync",
                    buf.0
                );
            }
        }
    }

    fn note_write(&self, g: &mut Inner, stream: usize, buf: GpuBuffer) {
        let seq = g.streams[stream].seq;
        g.last_write[buf.0] = Some((stream, seq));
    }

    /// Asynchronous host→device copy on `stream`.
    pub fn h2d(&self, stream: Stream, host: &[f64], dst: GpuBuffer, dst_off: usize) {
        let _span = self.tracer().span(Category::PcieH2d, "h2d");
        let mut g = self.inner.lock();
        let dur = timing::pcie_time(&self.spec, host.len());
        self.schedule(&mut g, stream.0, EngineKind::CopyH2D, dur, "h2d");
        self.note_write(&mut g, stream.0, dst);
        g.stats.h2d_transfers += 1;
        g.stats.h2d_points += host.len() as u64;
        g.buffers[dst.0][dst_off..dst_off + host.len()].copy_from_slice(host);
    }

    /// Asynchronous device→host copy on `stream`.
    pub fn d2h(&self, stream: Stream, src: GpuBuffer, src_off: usize, host: &mut [f64]) {
        let _span = self.tracer().span(Category::PcieD2h, "d2h");
        let mut g = self.inner.lock();
        self.check_read(&g, stream.0, src, "d2h");
        let dur = timing::pcie_time(&self.spec, host.len());
        self.schedule(&mut g, stream.0, EngineKind::CopyD2H, dur, "d2h");
        g.stats.d2h_transfers += 1;
        g.stats.d2h_points += host.len() as u64;
        host.copy_from_slice(&g.buffers[src.0][src_off..src_off + host.len()]);
    }

    /// Upload without charging virtual time (initial state: the paper
    /// excludes the initial copy from its measurements).
    pub fn upload_untimed(&self, dst: GpuBuffer, data: &[f64]) {
        let mut g = self.inner.lock();
        g.buffers[dst.0][..data.len()].copy_from_slice(data);
        g.last_write[dst.0] = None;
    }

    /// Read a buffer back without charging virtual time (final state /
    /// verification). Requires all streams idle (call a sync first) unless
    /// hazard checking is disabled.
    pub fn read_untimed(&self, src: GpuBuffer) -> Vec<f64> {
        let g = self.inner.lock();
        g.buffers[src.0].clone()
    }

    /// Launch the 27-point stencil kernel on `stream`, reading `src` and
    /// writing the launch region of `dst`. Coefficients come from constant
    /// memory ([`Gpu::set_constant`]).
    pub fn launch_stencil(&self, stream: Stream, src: GpuBuffer, dst: GpuBuffer, p: StencilLaunch) {
        assert!(
            p.block.0 * p.block.1 <= self.spec.max_threads_per_block,
            "block {:?} exceeds {} threads per block on {}",
            p.block,
            self.spec.max_threads_per_block,
            self.spec.name
        );
        let _span = self.tracer().span(Category::KernelLaunch, "stencil");
        let mut g = self.inner.lock();
        let coeffs = g
            .constant
            .expect("constant memory not loaded: call set_constant");
        self.check_read(&g, stream.0, src, "stencil");
        let dur = timing::stencil_kernel_time(&self.spec, &p);
        self.schedule(&mut g, stream.0, EngineKind::Compute, dur, "stencil");
        self.note_write(&mut g, stream.0, dst);
        g.stats.stencil_launches += 1;
        g.stats.points_computed += p.points() as u64;
        // Functional execution: split the buffers to run the kernel.
        let (src_data, dst_data) = Self::two_buffers(&mut g.buffers, src.0, dst.0);
        kernels::run_stencil(src_data, dst_data, &coeffs, &p);
    }

    /// Launch a pack kernel: gather `region` of `field` into the linear
    /// buffer `out` at `out_off`.
    pub fn launch_pack(
        &self,
        stream: Stream,
        field: GpuBuffer,
        dims: FieldDims,
        region: Range3,
        out: GpuBuffer,
        out_off: usize,
    ) {
        let _span = self.tracer().span(Category::KernelLaunch, "pack");
        let mut g = self.inner.lock();
        self.check_read(&g, stream.0, field, "pack");
        let dur = timing::pack_kernel_time(&self.spec, region.len());
        self.schedule(&mut g, stream.0, EngineKind::Compute, dur, "pack");
        self.note_write(&mut g, stream.0, out);
        g.stats.pack_launches += 1;
        let (fdata, odata) = Self::two_buffers(&mut g.buffers, field.0, out.0);
        kernels::run_pack(
            fdata,
            dims,
            region,
            &mut odata[out_off..out_off + region.len()],
        );
    }

    /// Launch an unpack kernel: scatter the linear buffer `input` at
    /// `in_off` into `region` of `field`.
    pub fn launch_unpack(
        &self,
        stream: Stream,
        field: GpuBuffer,
        dims: FieldDims,
        region: Range3,
        input: GpuBuffer,
        in_off: usize,
    ) {
        let _span = self.tracer().span(Category::KernelLaunch, "unpack");
        let mut g = self.inner.lock();
        self.check_read(&g, stream.0, input, "unpack");
        let dur = timing::pack_kernel_time(&self.spec, region.len());
        self.schedule(&mut g, stream.0, EngineKind::Compute, dur, "unpack");
        self.note_write(&mut g, stream.0, field);
        g.stats.pack_launches += 1;
        let (idata, fdata) = Self::two_buffers(&mut g.buffers, input.0, field.0);
        kernels::run_unpack(fdata, dims, region, &idata[in_off..in_off + region.len()]);
    }

    fn two_buffers(buffers: &mut [Vec<f64>], a: usize, b: usize) -> (&[f64], &mut [f64]) {
        assert_ne!(a, b, "kernel source and destination must differ");
        if a < b {
            let (lo, hi) = buffers.split_at_mut(b);
            (&lo[a], &mut hi[0])
        } else {
            let (lo, hi) = buffers.split_at_mut(a);
            (&hi[0], &mut lo[b])
        }
    }

    /// Record an event on `stream` (like `cudaEventRecord`).
    pub fn record_event(&self, stream: Stream) -> Event {
        let g = self.inner.lock();
        Event {
            stream: stream.0,
            seq: g.streams[stream.0].seq,
            time: g.streams[stream.0].time,
        }
    }

    /// Make `stream` wait for `event` (like `cudaStreamWaitEvent`):
    /// subsequent work on `stream` is ordered after — and sees — the
    /// event's stream's work up to the record point.
    pub fn wait_event(&self, stream: Stream, event: Event) {
        let mut g = self.inner.lock();
        let v = &mut g.visible[stream.0][event.stream];
        *v = (*v).max(event.seq);
        let t = g.streams[stream.0].time.max(event.time);
        g.streams[stream.0].time = t;
    }

    /// Block the host until `stream` completes; returns the virtual time.
    /// All of the stream's work becomes visible to every stream.
    pub fn sync_stream(&self, stream: Stream) -> f64 {
        let mut g = self.inner.lock();
        let seq = g.streams[stream.0].seq;
        let t = g.streams[stream.0].time;
        for r in 0..g.visible.len() {
            let v = &mut g.visible[r][stream.0];
            *v = (*v).max(seq);
        }
        g.host_time = g.host_time.max(t);
        g.host_time
    }

    /// Block the host until the whole device is idle; returns the virtual
    /// time. Everything becomes visible everywhere.
    pub fn sync_device(&self) -> f64 {
        let mut g = self.inner.lock();
        let n = g.streams.len();
        let mut t = g.host_time;
        for s in 0..n {
            let seq = g.streams[s].seq;
            t = t.max(g.streams[s].time);
            for r in 0..n {
                let v = &mut g.visible[r][s];
                *v = (*v).max(seq);
            }
        }
        g.host_time = t;
        t
    }

    /// Advance host virtual time by `dt` seconds (models host-side work —
    /// e.g. MPI communication — between device calls). Operations issued
    /// afterwards cannot start before the new host time.
    pub fn host_advance(&self, dt: f64) -> f64 {
        let mut g = self.inner.lock();
        g.host_time += dt;
        g.host_time
    }

    /// Current host virtual time.
    pub fn host_time(&self) -> f64 {
        self.inner.lock().host_time
    }

    /// Reset all clocks to zero (keeps buffers and visibility). Used to
    /// exclude setup from measurements, as the paper does.
    pub fn reset_clock(&self) {
        let mut g = self.inner.lock();
        g.host_time = 0.0;
        g.compute_free = 0.0;
        for c in g.copy_free.iter_mut() {
            *c = 0.0;
        }
        for s in g.streams.iter_mut() {
            s.time = 0.0;
        }
        g.stats.compute_busy = 0.0;
        g.stats.copy_busy = 0.0;
        g.timeline = Timeline::default();
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> GpuStats {
        self.inner.lock().stats
    }

    /// A snapshot of the recorded device timeline (since construction or
    /// the last [`Gpu::reset_clock`]).
    pub fn timeline(&self) -> Timeline {
        self.inner.lock().timeline.clone()
    }
}
