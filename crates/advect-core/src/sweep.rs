//! Work-queue sweep executor for independent model evaluations.
//!
//! The tuning sweeps (`perfmodel::sweep`), the auto-tuner searches
//! (`tuner`), and the figure series generators (`figures`) all evaluate
//! many *independent* (configuration → GF) points. [`SweepPool`] runs such
//! batches across a fixed set of worker threads pulling indices from a
//! shared atomic work queue, while keeping the results **deterministic**:
//!
//! * results are returned in submission (index) order, no matter which
//!   worker computed them or in what order they finished;
//! * consumers reduce the ordered results serially (e.g. argmax with a
//!   strict `>` fold), so ties break exactly as in a serial scan and
//!   figure CSV/JSON output stays byte-identical to a serial run.
//!
//! On a single-core host (or with `ADVECT_SWEEP_THREADS=1`) the pool
//! degrades to inline evaluation on the calling thread with no spawning
//! and no queue traffic.

use obs::{Category, Tracer};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static SWEEP_TRACER: OnceLock<Tracer> = OnceLock::new();

/// Whether workers pin themselves to cores (`ADVECT_SWEEP_AFFINITY=1`).
/// Off by default: pinning on shared or oversubscribed hosts hurts.
///
/// # Panics
///
/// On a malformed value — a mistyped knob must fail the run, not
/// silently measure the unpinned default.
fn affinity_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("ADVECT_SWEEP_AFFINITY") {
        Ok(v) => match v.as_str() {
            "1" | "on" | "true" => true,
            "0" | "off" | "false" => false,
            other => panic!("ADVECT_SWEEP_AFFINITY={other:?}: expected 1|on|true|0|off|false"),
        },
        Err(_) => false,
    })
}

/// Pin the calling worker thread to its NUMA-aware core — contiguous
/// blocks of a `team`-wide pool land on the same node (see
/// [`crate::numa::NumaTopology::core_for_worker`]; single-node hosts
/// reduce to `worker mod cores`) — when affinity is enabled.
/// Best-effort: failures are ignored (the scheduler placement is a
/// performance hint, never a correctness requirement).
#[cfg(target_os = "linux")]
fn pin_worker(worker: usize, team: usize) {
    if !affinity_enabled() {
        return;
    }
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let core = crate::numa::host().core_for_worker(worker, team) % 1024;
    let mut mask = [0u64; 16]; // room for 1024 cores
    mask[core / 64] |= 1 << (core % 64);
    // SAFETY: pid 0 targets the calling thread; the mask buffer outlives
    // the call and its size is passed alongside.
    unsafe {
        sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_worker(_worker: usize, _team: usize) {
    let _ = affinity_enabled();
}

/// Install a process-wide span recorder for sweep batches: each worker
/// records one `compute.interior` span covering its share of the batch
/// (label `sweep.worker`, or `sweep.inline` on the no-spawn path).
/// Idempotent; without an install, sweeps trace into the no-op sink.
pub fn install_tracer(tracer: Tracer) {
    let _ = SWEEP_TRACER.set(tracer);
}

fn tracer() -> &'static Tracer {
    static OFF: Tracer = Tracer::off();
    SWEEP_TRACER.get().unwrap_or(&OFF)
}

/// A fixed-width pool for embarrassingly parallel sweeps.
///
/// The pool is only a width; workers are scoped threads spawned per
/// batch (`std::thread::scope`), so closures may borrow stack data and
/// no threads idle between sweeps.
///
/// ```
/// use advect_core::sweep::SweepPool;
/// let pool = SweepPool::new(4);
/// let squares = pool.map_indices(10, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SweepPool {
    threads: usize,
}

impl SweepPool {
    /// A pool of `threads` workers (≥ 1).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a sweep pool needs at least one worker");
        Self { threads }
    }

    /// The process-wide pool, sized from `std::thread::available_parallelism`
    /// (overridable with the `ADVECT_SWEEP_THREADS` environment variable).
    ///
    /// # Panics
    ///
    /// On a malformed `ADVECT_SWEEP_THREADS` value — a mistyped knob
    /// must fail the run, not silently measure the default width.
    pub fn global() -> &'static SweepPool {
        static GLOBAL: OnceLock<SweepPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = match std::env::var("ADVECT_SWEEP_THREADS") {
                Ok(v) => match v.trim().parse::<usize>() {
                    Ok(t) if t > 0 => t,
                    _ => panic!("ADVECT_SWEEP_THREADS={v:?}: expected a positive integer"),
                },
                Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
            };
            SweepPool::new(threads)
        })
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `f(0), …, f(n-1)` across the pool and return the results
    /// **in index order**. Workers claim indices from a shared atomic
    /// counter, so an expensive point never blocks the rest of the batch
    /// behind a static partition.
    pub fn map_indices<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            let _span = tracer().span(Category::ComputeInterior, "sweep.inline");
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move || {
                        pin_worker(w, workers);
                        let _span = tracer().span(Category::ComputeInterior, "sweep.worker");
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("sweep worker panicked"));
            }
        });
        // Re-establish submission order: place each result in its slot.
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        for (i, r) in parts.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} evaluated twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index evaluated exactly once"))
            .collect()
    }

    /// Evaluate `f` at every item of `items`, returning results in item
    /// order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indices(items.len(), |i| f(&items[i]))
    }

    /// Run `f(0), …, f(n-1)` for side effects across the pool, workers
    /// stealing indices from a shared atomic counter. This is the
    /// tile-granular executor of the cache-blocked stencil sweeps: each
    /// index names a disjoint unit of output (a tile), so no reduction
    /// step exists and the result is deterministic — each output element
    /// is written by exactly one claim, whatever the steal order.
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            let _span = tracer().span(Category::ComputeInterior, "sweep.inline");
            for i in 0..n {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    pin_worker(w, workers);
                    let _span = tracer().span(Category::ComputeInterior, "sweep.worker");
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        f(i);
                    }
                });
            }
        });
    }

    /// [`SweepPool::for_each_index`] with per-worker mutable state:
    /// each worker builds one `S` via `init` before claiming indices
    /// and reuses it for every index it processes. This is the scratch
    /// protocol of the time-tiled sweeps — a worker's trapezoid
    /// buffers are allocated once per traversal, not once per tile.
    /// Determinism is unchanged: indices still name disjoint outputs,
    /// and the state is invisible outside the worker.
    pub fn for_each_index_with<S, F, I>(&self, n: usize, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            let _span = tracer().span(Category::ComputeInterior, "sweep.inline");
            let mut state = init();
            for i in 0..n {
                f(&mut state, i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let next = &next;
                let f = &f;
                let init = &init;
                scope.spawn(move || {
                    pin_worker(w, workers);
                    let _span = tracer().span(Category::ComputeInterior, "sweep.worker");
                    let mut state = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        f(&mut state, i);
                    }
                });
            }
        });
    }

    /// Run `f(worker, range)` once per [`SweepPool::partition`] chunk of
    /// `0..n`, each chunk on its own (pinned) worker thread. Unlike the
    /// stealing executors, the worker→chunk assignment is *static*:
    /// worker `w` always owns chunk `w`. That is the point — this is
    /// the first-touch executor ([`crate::field::Field3::new_placed`]
    /// zero-fills each z-slab from the worker whose node should own its
    /// pages).
    pub fn run_partitioned<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let parts = self.partition(n);
        let team = parts.len();
        if team <= 1 {
            if let Some(r) = parts.into_iter().next() {
                f(0, r);
            }
            return;
        }
        std::thread::scope(|scope| {
            for (w, r) in parts.into_iter().enumerate() {
                let f = &f;
                scope.spawn(move || {
                    pin_worker(w, team);
                    f(w, r);
                });
            }
        });
    }

    /// Evenly partition `0..n` into at most [`SweepPool::threads`]
    /// contiguous non-empty ranges — the threads-aware static partitioner
    /// for callers that hand each worker one owned chunk (e.g. z-slab
    /// splits) rather than a stolen queue.
    pub fn partition(&self, n: usize) -> Vec<Range<usize>> {
        let parts = self.threads.min(n).max(1);
        (0..parts)
            .map(|p| crate::team::split_static(0..n, parts, p))
            .filter(|r| !r.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_submission_order() {
        let pool = SweepPool::new(7);
        // Uneven per-item cost to force out-of-order completion.
        let out = pool.map_indices(100, |i| {
            if i % 13 == 0 {
                std::thread::yield_now();
            }
            i * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = SweepPool::new(1);
        let tid = std::thread::current().id();
        let out = pool.map_indices(5, |i| {
            assert_eq!(std::thread::current().id(), tid);
            i + 1
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn every_index_evaluated_exactly_once() {
        let pool = SweepPool::new(4);
        let count = AtomicUsize::new(0);
        let out = pool.map_indices(257, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn map_over_items_borrows_them() {
        let pool = SweepPool::new(3);
        let items = vec!["a".to_string(), "bb".into(), "ccc".into()];
        let lens = pool.map(&items, |s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let pool = SweepPool::new(4);
        let out: Vec<usize> = pool.map_indices(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_matches_serial_bit_for_bit() {
        // The engine must not change *what* is computed, only where.
        let serial: Vec<f64> = (0..64).map(|i| (i as f64).sin() * 1.7).collect();
        let pooled = SweepPool::new(5).map_indices(64, |i| (i as f64).sin() * 1.7);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn global_pool_is_usable() {
        let out = SweepPool::global().map_indices(8, |i| i);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_claims_every_index_once() {
        for workers in [1, 2, 5, 8] {
            let pool = SweepPool::new(workers);
            let hits: Vec<AtomicUsize> = (0..137).map(|_| AtomicUsize::new(0)).collect();
            pool.for_each_index(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn stateful_for_each_claims_every_index_once() {
        for workers in [1, 2, 5, 8] {
            let pool = SweepPool::new(workers);
            let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
            let states = AtomicUsize::new(0);
            pool.for_each_index_with(
                hits.len(),
                || {
                    states.fetch_add(1, Ordering::Relaxed);
                    vec![0u8; 16] // stand-in for a scratch buffer
                },
                |scratch, i| {
                    scratch[0] = scratch[0].wrapping_add(1);
                    hits[i].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "workers={workers}"
            );
            // One scratch state per participating worker, not per index.
            assert!(states.load(Ordering::Relaxed) <= workers.min(hits.len()));
        }
    }

    #[test]
    fn partitioned_run_covers_range_with_static_owners() {
        for workers in [1, 3, 4] {
            let pool = SweepPool::new(workers);
            let owner: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(usize::MAX)).collect();
            pool.run_partitioned(owner.len(), |w, r| {
                for i in r {
                    owner[i].store(w, Ordering::Relaxed);
                }
            });
            let owners: Vec<usize> = owner.iter().map(|o| o.load(Ordering::Relaxed)).collect();
            assert!(owners.iter().all(|&w| w < workers), "workers={workers}");
            // Static ownership: worker ids are non-decreasing across the
            // range (contiguous chunks in order).
            assert!(owners.windows(2).all(|p| p[0] <= p[1]));
            assert_eq!(owners.last(), Some(&(pool.partition(23).len() - 1)));
        }
    }

    #[test]
    fn partition_covers_range_without_empties() {
        for threads in [1usize, 3, 4, 7] {
            for n in [0usize, 1, 2, 7, 100] {
                let parts = SweepPool::new(threads).partition(n);
                assert!(parts.len() <= threads.min(n.max(1)));
                assert!(parts.iter().all(|r| !r.is_empty()) || n == 0);
                let total: usize = parts.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "threads={threads} n={n}");
                for w in parts.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }
}
