//! The 27-point stencil kernel (Equation 2 of the paper).
//!
//! `apply_stencil_region` computes the new state over an arbitrary
//! sub-region of a field. Every implementation — serial, threaded,
//! partitioned-for-overlap, and the functional GPU kernels — funnels
//! through the same arithmetic, so all of them produce bit-identical
//! results (the operations are performed in the same order per point).
//!
//! # Fast path and scalar oracle
//!
//! Each entry point has two implementations that are bit-identical by
//! construction:
//!
//! * The **SIMD fast path** (default): each x-row of the region is
//!   processed by [`crate::simd::accumulate_tap_rows`], which dispatches
//!   at runtime to explicit `f64x4`/`f64x8` vector kernels (or a portable
//!   chunked loop). A chunk of vector accumulators is zeroed and then
//!   each of the 27 taps adds `coef[t] * src` over a pre-sliced window of
//!   the tap's source row; accumulating in registers instead of
//!   re-reading the destination row avoids 27 store/reload passes.
//! * The **scalar oracle** (`apply_stencil_*_scalar`): the original
//!   per-point loop, kept as the reference the differential tests compare
//!   against. Building with `--features scalar-kernels` routes the public
//!   entry points through the oracle instead.
//!
//! Bit-identity holds because each output element sees exactly the same
//! sequence of floating-point operations on both paths: start from `0.0`,
//! then add `coef[t] * src[...]` for taps `t = 0..27` in fixed order. The
//! fast path merely interchanges the (x, tap) loops — lane-chunked in the
//! SIMD kernels — which never reorders the additions *within* one output
//! element (see the [`crate::simd`] module docs).
//!
//! # Cache blocking
//!
//! The default entry points additionally visit their region in
//! cache-sized y/z tiles ([`crate::tile::TileSpec`]): tiling only
//! permutes the order in which whole output rows are produced, never the
//! arithmetic within one, so it is bit-neutral. The `*_tiled` variants
//! accept an explicit [`TileSpec`]; [`apply_stencil_region_pooled`] fans
//! the tiles out over a [`crate::sweep::SweepPool`] work queue — tiles
//! are disjoint, so the result is identical at any worker count.

use crate::coeffs::Stencil27;
use crate::field::{Field3, Range3, SharedField};
use crate::sweep::SweepPool;
use crate::tile::TileSpec;

/// Precompute the 27 flat-index offsets for an `(sx, sy)`-strided field,
/// in the fixed tap order (k slowest, i fastest). Tap `t` pairs with
/// coefficient `s.a[t]`: [`Stencil27`] stores its coefficients in this
/// same order.
#[inline]
pub(crate) fn tap_offsets(sx: usize, sy: usize) -> [i64; 27] {
    let stride_y = sx as i64;
    let stride_z = (sx * sy) as i64;
    let mut offs = [0i64; 27];
    let mut n = 0;
    for k in -1i64..=1 {
        for j in -1i64..=1 {
            for i in -1i64..=1 {
                offs[n] = i + j * stride_y + k * stride_z;
                n += 1;
            }
        }
    }
    offs
}

/// Row-wise tap accumulation over a strided source: slices the 27 tap
/// windows out of `sd` and delegates to [`accumulate_tap_rows`].
#[inline]
fn accumulate_row(dst_row: &mut [f64], sd: &[f64], base: i64, offs: &[i64; 27], coef: &[f64; 27]) {
    let w = dst_row.len();
    let rows: [&[f64]; 27] = std::array::from_fn(|t| {
        let s0 = (base + offs[t]) as usize;
        &sd[s0..s0 + w]
    });
    accumulate_tap_rows(dst_row, &rows, coef);
}

/// Accumulate 27 tap rows into a destination row:
/// `dst[x] = Σₜ coef[t] · rows[t][x]`, taps added in order `t = 0..27`.
///
/// Per output element this performs exactly the scalar sequence
/// `acc = 0.0; acc += coef[0]·v₀; …; acc += coef[26]·v₂₆;`, so the result
/// is bit-identical to the scalar oracle. Delegates to the runtime-
/// dispatched SIMD kernels of [`crate::simd`], which keep that per-lane
/// operation order on every dispatch level.
///
/// Shared with the `simgpu` functional kernels, which feed it rows of
/// their staged shared-memory tiles.
///
/// # Panics
///
/// If any `rows[t]` is shorter than `dst_row`.
pub fn accumulate_tap_rows(dst_row: &mut [f64], rows: &[&[f64]; 27], coef: &[f64; 27]) {
    crate::simd::accumulate_tap_rows(dst_row, rows, coef);
}

/// Apply Equation 2 to `region` of `src`, writing into the same region of
/// `dst`. `src` must have valid halo/neighbor values for every point that
/// `region` touches (one point in every direction).
///
/// Visits the region in cache-sized tiles ([`TileSpec::host`]); tiling
/// only reorders whole rows, so the result is bit-identical to the
/// untiled sweep.
///
/// Cost: 53 flops per point (27 multiplications + 26 additions), exactly
/// the count the paper uses to convert measured time into GF.
pub fn apply_stencil_region(src: &Field3, dst: &mut Field3, s: &Stencil27, region: Range3) {
    let (sx, _, _) = src.extents();
    apply_stencil_region_tiled(src, dst, s, region, TileSpec::host(sx));
}

/// [`apply_stencil_region`] with an explicit cache-blocking tile.
pub fn apply_stencil_region_tiled(
    src: &Field3,
    dst: &mut Field3,
    s: &Stencil27,
    region: Range3,
    tile: TileSpec,
) {
    if cfg!(feature = "scalar-kernels") {
        return apply_stencil_region_scalar(src, dst, s, region);
    }
    assert_eq!(src.interior(), dst.interior(), "field sizes must match");
    for t in tile.tiles(region) {
        region_sweep(src, dst, s, t);
    }
}

/// The row-vectorized sweep over one (sub-)region — the shared inner body
/// of the tiled region entry points.
fn region_sweep(src: &Field3, dst: &mut Field3, s: &Stencil27, region: Range3) {
    let w = (region.x.1 - region.x.0).max(0) as usize;
    if w == 0 {
        return;
    }
    let (sx, sy, _) = src.extents();
    let offs = tap_offsets(sx, sy);
    let sd = src.data();
    for z in region.z.0..region.z.1 {
        for y in region.y.0..region.y.1 {
            let base = src.idx(region.x.0, y, z) as i64;
            let dst_row = dst.row_mut(region.x.0, y, z, w);
            accumulate_row(dst_row, sd, base, &offs, &s.a);
        }
    }
}

/// Apply Equation 2 to `region`, fanning the cache-sized tiles out over a
/// [`SweepPool`] work queue. Tiles are disjoint, so each output element
/// is produced by exactly one worker with the fixed per-element operation
/// order — the result is bit-identical to [`apply_stencil_region`] at
/// any worker count.
pub fn apply_stencil_region_pooled(
    src: &Field3,
    dst: &mut Field3,
    s: &Stencil27,
    region: Range3,
    tile: TileSpec,
    pool: &SweepPool,
) {
    if cfg!(feature = "scalar-kernels") {
        return apply_stencil_region_scalar(src, dst, s, region);
    }
    assert_eq!(src.interior(), dst.interior(), "field sizes must match");
    let tiles: Vec<Range3> = tile.tiles(region).collect();
    let shared = SharedField::new(dst);
    pool.for_each_index(tiles.len(), |i| {
        shared_sweep(src, &shared, s, tiles[i]);
    });
}

/// Scalar per-point oracle for [`apply_stencil_region`]. Kept as the
/// reference implementation the differential tests compare against.
pub fn apply_stencil_region_scalar(src: &Field3, dst: &mut Field3, s: &Stencil27, region: Range3) {
    assert_eq!(src.interior(), dst.interior(), "field sizes must match");
    let (sx, sy, _) = src.extents();
    let offs = tap_offsets(sx, sy);
    let coef = s.a;
    let sd = src.data();
    for z in region.z.0..region.z.1 {
        for y in region.y.0..region.y.1 {
            if region.x.1 <= region.x.0 {
                continue;
            }
            let row_src = src.idx(region.x.0, y, z) as i64;
            let row_dst = dst.idx(region.x.0, y, z);
            let w = (region.x.1 - region.x.0) as usize;
            let dd = dst.data_mut();
            for ix in 0..w {
                let base = row_src + ix as i64;
                // Accumulate the 27 taps in fixed order so all execution
                // strategies produce bit-identical sums.
                let mut acc = 0.0;
                for t in 0..27 {
                    acc += coef[t] * sd[(base + offs[t]) as usize];
                }
                dd[row_dst + ix] = acc;
            }
        }
    }
}

/// Apply Equation 2 to the part of `region` owned by a mutable z-slab of
/// the destination field. Used by the threaded steppers: each thread owns a
/// disjoint [`crate::field::ZSlabMut`] so the writes are data-race-free by
/// construction.
pub fn apply_stencil_slab(
    src: &Field3,
    dst: &mut crate::field::ZSlabMut<'_>,
    s: &Stencil27,
    region: Range3,
) {
    let (sx, _, _) = src.extents();
    apply_stencil_slab_tiled(src, dst, s, region, TileSpec::host(sx));
}

/// [`apply_stencil_slab`] with an explicit cache-blocking tile.
pub fn apply_stencil_slab_tiled(
    src: &Field3,
    dst: &mut crate::field::ZSlabMut<'_>,
    s: &Stencil27,
    region: Range3,
    tile: TileSpec,
) {
    if cfg!(feature = "scalar-kernels") {
        return apply_stencil_slab_scalar(src, dst, s, region);
    }
    let clipped = dst.owned_region(region);
    if clipped.is_empty() {
        return;
    }
    let (sx, sy, _) = src.extents();
    let offs = tap_offsets(sx, sy);
    let sd = src.data();
    for t in tile.tiles(clipped) {
        let w = (t.x.1 - t.x.0) as usize;
        for z in t.z.0..t.z.1 {
            for y in t.y.0..t.y.1 {
                let base = src.idx(t.x.0, y, z) as i64;
                let dst_row = dst.row_mut(t.x.0, y, z, w);
                accumulate_row(dst_row, sd, base, &offs, &s.a);
            }
        }
    }
}

/// Scalar per-point oracle for [`apply_stencil_slab`].
pub fn apply_stencil_slab_scalar(
    src: &Field3,
    dst: &mut crate::field::ZSlabMut<'_>,
    s: &Stencil27,
    region: Range3,
) {
    let clipped = dst.owned_region(region);
    if clipped.is_empty() {
        return;
    }
    let (sx, sy, _) = src.extents();
    let offs = tap_offsets(sx, sy);
    let coef = s.a;
    let sd = src.data();
    for z in clipped.z.0..clipped.z.1 {
        for y in clipped.y.0..clipped.y.1 {
            let row_src = src.idx(clipped.x.0, y, z) as i64;
            let row_dst = dst.idx(clipped.x.0, y, z);
            let w = (clipped.x.1 - clipped.x.0) as usize;
            for ix in 0..w {
                let base = row_src + ix as i64;
                let mut acc = 0.0;
                for t in 0..27 {
                    acc += coef[t] * sd[(base + offs[t]) as usize];
                }
                dst.data[row_dst + ix] = acc;
            }
        }
    }
}

/// Copy `region` of `src` into the part of it owned by a destination
/// z-slab (the threaded version of the paper's Step 3).
pub fn copy_region_slab(src: &Field3, dst: &mut crate::field::ZSlabMut<'_>, region: Range3) {
    let clipped = dst.owned_region(region);
    for z in clipped.z.0..clipped.z.1 {
        for y in clipped.y.0..clipped.y.1 {
            let w = (clipped.x.1 - clipped.x.0).max(0) as usize;
            if w == 0 {
                continue;
            }
            let s0 = src.idx(clipped.x.0, y, z);
            let d0 = dst.idx(clipped.x.0, y, z);
            dst.data[d0..d0 + w].copy_from_slice(&src.data()[s0..s0 + w]);
        }
    }
}

/// Apply Equation 2 to `region`, writing through a
/// [`crate::field::SharedWriter`] so
/// that multiple threads with *disjoint* regions can fill one destination
/// field concurrently under dynamic scheduling (implementation IV-D).
pub fn apply_stencil_shared(
    src: &Field3,
    dst: &crate::field::SharedWriter<'_>,
    s: &Stencil27,
    region: Range3,
) {
    let (sx, _, _) = src.extents();
    apply_stencil_shared_tiled(src, dst, s, region, TileSpec::host(sx));
}

/// [`apply_stencil_shared`] with an explicit cache-blocking tile.
pub fn apply_stencil_shared_tiled(
    src: &Field3,
    dst: &crate::field::SharedWriter<'_>,
    s: &Stencil27,
    region: Range3,
    tile: TileSpec,
) {
    if cfg!(feature = "scalar-kernels") {
        return apply_stencil_shared_scalar(src, dst, s, region);
    }
    for t in tile.tiles(region) {
        shared_sweep(src, dst, s, t);
    }
}

/// The row-vectorized sweep over one (sub-)region through a shared
/// writer — the shared inner body of the tiled shared/pooled entry
/// points.
fn shared_sweep(src: &Field3, dst: &SharedField<'_>, s: &Stencil27, region: Range3) {
    let w = (region.x.1 - region.x.0).max(0) as usize;
    if w == 0 {
        return;
    }
    let (sx, sy, _) = src.extents();
    let offs = tap_offsets(sx, sy);
    let sd = src.data();
    for z in region.z.0..region.z.1 {
        for y in region.y.0..region.y.1 {
            let base = src.idx(region.x.0, y, z) as i64;
            // SAFETY: the caller's disjoint-region contract gives this
            // thread exclusive access to every point of `region`,
            // including this row.
            let dst_row = unsafe { dst.row_mut(region.x.0, y, z, w) };
            accumulate_row(dst_row, sd, base, &offs, &s.a);
        }
    }
}

/// Scalar per-point oracle for [`apply_stencil_shared`].
pub fn apply_stencil_shared_scalar(
    src: &Field3,
    dst: &crate::field::SharedWriter<'_>,
    s: &Stencil27,
    region: Range3,
) {
    let (sx, sy, _) = src.extents();
    let offs = tap_offsets(sx, sy);
    let coef = s.a;
    let sd = src.data();
    for z in region.z.0..region.z.1 {
        for y in region.y.0..region.y.1 {
            if region.x.1 <= region.x.0 {
                continue;
            }
            let row_src = src.idx(region.x.0, y, z) as i64;
            let w = (region.x.1 - region.x.0) as usize;
            for ix in 0..w {
                let base = row_src + ix as i64;
                let mut acc = 0.0;
                for t in 0..27 {
                    acc += coef[t] * sd[(base + offs[t]) as usize];
                }
                dst.write(region.x.0 + ix as i64, y, z, acc);
            }
        }
    }
}

/// Apply Equation 2 reading *and* writing through
/// [`crate::field::SharedField`]s.
///
/// Used when the source field is concurrently mutated in a disjoint
/// region by another thread (implementation IV-D: the master exchanges
/// halos while workers compute interior points) — every access goes
/// through `UnsafeCell`, so the overlap is sound as long as the regions
/// stay disjoint, which the interior/boundary split guarantees.
pub fn apply_stencil_cells(
    src: &crate::field::SharedField<'_>,
    dst: &crate::field::SharedField<'_>,
    s: &Stencil27,
    region: Range3,
) {
    let (sx, _) = src.strides();
    apply_stencil_cells_tiled(src, dst, s, region, TileSpec::host(sx));
}

/// [`apply_stencil_cells`] with an explicit cache-blocking tile.
pub fn apply_stencil_cells_tiled(
    src: &crate::field::SharedField<'_>,
    dst: &crate::field::SharedField<'_>,
    s: &Stencil27,
    region: Range3,
    tile: TileSpec,
) {
    if cfg!(feature = "scalar-kernels") {
        return apply_stencil_cells_scalar(src, dst, s, region);
    }
    let (doffs, coef) = cell_taps(s);
    for t in tile.tiles(region) {
        let w = (t.x.1 - t.x.0).max(0) as usize;
        if w == 0 {
            continue;
        }
        for z in t.z.0..t.z.1 {
            for y in t.y.0..t.y.1 {
                // SAFETY: the caller's disjoint-region contract gives this
                // thread exclusive access to every point of `region`,
                // including this row.
                let dst_row = unsafe { dst.row_mut(t.x.0, y, z, w) };
                // SAFETY: the points a stencil application reads are, per
                // the contract, not written concurrently by any thread.
                let rows: [&[f64]; 27] = std::array::from_fn(|tap| {
                    let (di, dj, dk) = doffs[tap];
                    unsafe { src.row(t.x.0 + di, y + dj, z + dk, w) }
                });
                accumulate_tap_rows(dst_row, &rows, &coef);
            }
        }
    }
}

/// Scalar per-point oracle for [`apply_stencil_cells`].
pub fn apply_stencil_cells_scalar(
    src: &crate::field::SharedField<'_>,
    dst: &crate::field::SharedField<'_>,
    s: &Stencil27,
    region: Range3,
) {
    let (doffs, coef) = cell_taps(s);
    for z in region.z.0..region.z.1 {
        for y in region.y.0..region.y.1 {
            for x in region.x.0..region.x.1 {
                let mut acc = 0.0;
                for t in 0..27 {
                    let (di, dj, dk) = doffs[t];
                    acc += coef[t] * src.read(x + di, y + dj, z + dk);
                }
                dst.write(x, y, z, acc);
            }
        }
    }
}

/// Precompute the 27 coordinate offsets and coefficients for the
/// cell-based kernels, in the same fixed tap order as [`tap_offsets`].
#[inline]
fn cell_taps(s: &Stencil27) -> ([(i64, i64, i64); 27], [f64; 27]) {
    let mut doffs = [(0i64, 0i64, 0i64); 27];
    let mut n = 0;
    for k in -1i64..=1 {
        for j in -1i64..=1 {
            for i in -1i64..=1 {
                doffs[n] = (i, j, k);
                n += 1;
            }
        }
    }
    (doffs, s.a)
}

/// Apply the stencil to the entire interior of `src`.
pub fn apply_stencil_interior(src: &Field3, dst: &mut Field3, s: &Stencil27) {
    let region = src.interior_range();
    apply_stencil_region(src, dst, s, region);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeffs::Velocity;

    fn filled(n: usize, f: impl FnMut(i64, i64, i64) -> f64) -> Field3 {
        let mut fld = Field3::new(n, n, n, 1);
        fld.fill_interior(f);
        fld.copy_periodic_halo();
        fld
    }

    #[test]
    fn constant_field_is_preserved() {
        let s = Stencil27::new(Velocity::new(0.7, -0.4, 0.2), 0.9);
        let src = filled(6, |_, _, _| 3.25);
        let mut dst = Field3::new(6, 6, 6, 1);
        apply_stencil_interior(&src, &mut dst, &s);
        for (x, y, z) in dst.interior_range().iter() {
            assert!((dst.at(x, y, z) - 3.25).abs() < 1e-13);
        }
    }

    #[test]
    fn unit_courant_shifts_by_one_cell() {
        let s = Stencil27::at_max_stable_nu(Velocity::unit_diagonal());
        let src = filled(8, |x, y, z| (x + 10 * y + 100 * z) as f64);
        let mut dst = Field3::new(8, 8, 8, 1);
        apply_stencil_interior(&src, &mut dst, &s);
        // u_new(x) = u_old(x - 1) in every dimension (with wrap via halo).
        for (x, y, z) in dst.interior_range().iter() {
            let expect = src.at(x - 1, y - 1, z - 1);
            assert!(
                (dst.at(x, y, z) - expect).abs() < 1e-12,
                "at ({x},{y},{z}): got {} expected {expect}",
                dst.at(x, y, z)
            );
        }
    }

    #[test]
    fn region_application_matches_full() {
        let s = Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.8);
        let src = filled(7, |x, y, z| ((x * 3 + y * 5 + z * 7) % 11) as f64);
        let mut full = Field3::new(7, 7, 7, 1);
        apply_stencil_interior(&src, &mut full, &s);
        // Apply in 4 disjoint regions; result must be identical.
        let mut piecewise = Field3::new(7, 7, 7, 1);
        let regions = [
            Range3::new((0, 7), (0, 7), (0, 2)),
            Range3::new((0, 7), (0, 7), (2, 5)),
            Range3::new((0, 3), (0, 7), (5, 7)),
            Range3::new((3, 7), (0, 7), (5, 7)),
        ];
        for r in regions {
            apply_stencil_region(&src, &mut piecewise, &s, r);
        }
        assert_eq!(full.max_abs_diff(&piecewise), 0.0);
    }

    #[test]
    fn empty_region_is_noop() {
        let s = Stencil27::new(Velocity::unit_diagonal(), 0.5);
        let src = filled(4, |x, _, _| x as f64);
        let mut dst = Field3::new(4, 4, 4, 1);
        apply_stencil_region(&src, &mut dst, &s, Range3::new((2, 2), (0, 4), (0, 4)));
        for (x, y, z) in dst.interior_range().iter() {
            assert_eq!(dst.at(x, y, z), 0.0);
        }
    }

    #[test]
    fn fast_path_matches_scalar_oracle_exactly() {
        let s = Stencil27::new(Velocity::new(0.37, -0.81, 0.59), 0.93);
        let src = filled(9, |x, y, z| {
            ((x * 37 + y * 91 + z * 13) % 17) as f64 * 0.193 - 1.1
        });
        // Irregular sub-regions, including empty and single-row ones.
        let regions = [
            src.interior_range(),
            Range3::new((1, 8), (2, 7), (0, 9)),
            Range3::new((0, 1), (0, 9), (4, 5)),
            Range3::new((3, 3), (0, 9), (0, 9)),
            Range3::new((2, 6), (8, 9), (1, 2)),
        ];
        for r in regions {
            let mut fast = Field3::new(9, 9, 9, 1);
            let mut scalar = Field3::new(9, 9, 9, 1);
            apply_stencil_region(&src, &mut fast, &s, r);
            apply_stencil_region_scalar(&src, &mut scalar, &s, r);
            assert_eq!(fast.max_abs_diff(&scalar), 0.0, "region {r:?}");
            assert_eq!(fast.data(), scalar.data(), "region {r:?} (incl. halo)");
        }
    }

    #[test]
    fn slab_and_shared_and_cells_match_scalar_oracles() {
        use crate::field::SharedField;
        let s = Stencil27::new(Velocity::new(0.9, 0.2, -0.5), 0.77);
        let src = filled(8, |x, y, z| ((x * 5 + y * 11 + z * 3) % 7) as f64 * 0.31);
        let region = Range3::new((1, 7), (0, 8), (2, 8));

        let mut reference = Field3::new(8, 8, 8, 1);
        apply_stencil_region_scalar(&src, &mut reference, &s, region);

        // Slab path.
        let mut via_slab = Field3::new(8, 8, 8, 1);
        for slab in &mut via_slab.z_slabs_mut(&[4]) {
            apply_stencil_slab(&src, slab, &s, region);
        }
        assert_eq!(reference.max_abs_diff(&via_slab), 0.0);

        // Shared-writer path.
        let mut via_shared = Field3::new(8, 8, 8, 1);
        {
            let writer = SharedField::new(&mut via_shared);
            apply_stencil_shared(&src, &writer, &s, region);
        }
        assert_eq!(reference.max_abs_diff(&via_shared), 0.0);

        // Cell-based path (shared src and dst).
        let mut src_cells = src.clone();
        let mut via_cells = Field3::new(8, 8, 8, 1);
        {
            let sc = SharedField::new(&mut src_cells);
            let dc = SharedField::new(&mut via_cells);
            apply_stencil_cells(&sc, &dc, &s, region);
        }
        assert_eq!(reference.max_abs_diff(&via_cells), 0.0);
    }

    #[test]
    fn shared_writer_matches_direct_under_threads() {
        use crate::field::SharedWriter;
        use crate::team::{Schedule, ThreadTeam};
        let s = Stencil27::new(Velocity::new(0.9, 0.4, -0.6), 0.85);
        let src = filled(10, |x, y, z| ((x * 5 + y * 3 + z) % 9) as f64);
        let mut direct = Field3::new(10, 10, 10, 1);
        apply_stencil_interior(&src, &mut direct, &s);
        let mut shared = Field3::new(10, 10, 10, 1);
        {
            let writer = SharedWriter::new(&mut shared);
            let team = ThreadTeam::new(4);
            let src_ref = &src;
            let s_ref = &s;
            team.parallel_for(0..10, Schedule::guided(), |zr| {
                let region = Range3::new((0, 10), (0, 10), (zr.start as i64, zr.end as i64));
                apply_stencil_shared(src_ref, &writer, s_ref, region);
            });
        }
        assert_eq!(direct.max_abs_diff(&shared), 0.0);
    }

    #[test]
    fn tiled_and_pooled_match_scalar_oracle_exactly() {
        use crate::sweep::SweepPool;
        use crate::tile::TileSpec;
        let s = Stencil27::new(Velocity::new(0.41, -0.73, 0.66), 0.88);
        let src = filled(11, |x, y, z| {
            ((x * 31 + y * 17 + z * 53) % 23) as f64 * 0.217 - 2.3
        });
        let region = Range3::new((1, 10), (0, 11), (2, 9));
        let mut oracle = Field3::new(11, 11, 11, 1);
        apply_stencil_region_scalar(&src, &mut oracle, &s, region);
        // Degenerate, odd-shaped, and larger-than-region tiles.
        for tile in [
            TileSpec::new(1, 1),
            TileSpec::new(3, 2),
            TileSpec::new(5, 16),
            TileSpec::new(64, 64),
        ] {
            let mut tiled = Field3::new(11, 11, 11, 1);
            apply_stencil_region_tiled(&src, &mut tiled, &s, region, tile);
            assert_eq!(tiled.data(), oracle.data(), "tile {tile:?}");
            for workers in [1usize, 2, 4, 7] {
                let mut pooled = Field3::new(11, 11, 11, 1);
                let pool = SweepPool::new(workers);
                apply_stencil_region_pooled(&src, &mut pooled, &s, region, tile, &pool);
                assert_eq!(pooled.data(), oracle.data(), "tile {tile:?} w={workers}");
            }
        }
    }

    #[test]
    fn tiled_slab_shared_cells_match_untiled() {
        use crate::field::SharedField;
        use crate::tile::TileSpec;
        let s = Stencil27::new(Velocity::new(0.9, 0.2, -0.5), 0.77);
        let src = filled(8, |x, y, z| ((x * 5 + y * 11 + z * 3) % 7) as f64 * 0.31);
        let region = Range3::new((0, 8), (1, 8), (0, 7));
        let tile = TileSpec::new(2, 3);

        let mut reference = Field3::new(8, 8, 8, 1);
        apply_stencil_region_scalar(&src, &mut reference, &s, region);

        let mut via_slab = Field3::new(8, 8, 8, 1);
        for slab in &mut via_slab.z_slabs_mut(&[3]) {
            apply_stencil_slab_tiled(&src, slab, &s, region, tile);
        }
        assert_eq!(reference.data(), via_slab.data());

        let mut via_shared = Field3::new(8, 8, 8, 1);
        {
            let writer = SharedField::new(&mut via_shared);
            apply_stencil_shared_tiled(&src, &writer, &s, region, tile);
        }
        assert_eq!(reference.data(), via_shared.data());

        let mut src_cells = src.clone();
        let mut via_cells = Field3::new(8, 8, 8, 1);
        {
            let sc = SharedField::new(&mut src_cells);
            let dc = SharedField::new(&mut via_cells);
            apply_stencil_cells_tiled(&sc, &dc, &s, region, tile);
        }
        assert_eq!(reference.data(), via_cells.data());
    }

    #[test]
    fn linearity_of_the_operator() {
        let s = Stencil27::new(Velocity::new(0.3, 0.9, -0.5), 0.7);
        let a = filled(5, |x, y, z| (x * x + y + z) as f64);
        let b = filled(5, |x, y, z| ((x + y * z) % 7) as f64);
        let mut combo = Field3::new(5, 5, 5, 1);
        combo.fill_interior(|x, y, z| 2.0 * a.at(x, y, z) - 3.0 * b.at(x, y, z));
        combo.copy_periodic_halo();
        let mut ra = Field3::new(5, 5, 5, 1);
        let mut rb = Field3::new(5, 5, 5, 1);
        let mut rc = Field3::new(5, 5, 5, 1);
        apply_stencil_interior(&a, &mut ra, &s);
        apply_stencil_interior(&b, &mut rb, &s);
        apply_stencil_interior(&combo, &mut rc, &s);
        for (x, y, z) in rc.interior_range().iter() {
            let expect = 2.0 * ra.at(x, y, z) - 3.0 * rb.at(x, y, z);
            assert!((rc.at(x, y, z) - expect).abs() < 1e-10);
        }
    }
}
