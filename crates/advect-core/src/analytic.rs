//! Analytic solutions for verification.
//!
//! The paper's initial condition is "a Gaussian wave at the center of the
//! cube"; Equation 1 moves the wave in the direction of the velocity
//! without changing its shape, so the analytic solution at time `t` is the
//! initial Gaussian translated by `c·t` with periodic wrap-around.

use crate::coeffs::Velocity;

/// Anything that can be evaluated as the exact solution `u(x, y, z, t)`.
pub trait AnalyticSolution {
    /// Exact solution value at physical position `(x, y, z)` and time `t`.
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f64;
}

/// A periodic Gaussian pulse advected with constant velocity.
#[derive(Debug, Clone, Copy)]
pub struct GaussianPulse {
    /// Initial center of the pulse.
    pub center: [f64; 3],
    /// Standard deviation of the Gaussian.
    pub sigma: f64,
    /// Periodic domain lengths in each dimension.
    pub domain: [f64; 3],
    /// Advection velocity.
    pub velocity: Velocity,
}

impl GaussianPulse {
    /// The paper's configuration: pulse centered in a cube of the given
    /// side length, with σ one tenth of the side.
    pub fn centered_in_cube(side: f64, velocity: Velocity) -> Self {
        Self {
            center: [side / 2.0; 3],
            sigma: side / 10.0,
            domain: [side; 3],
            velocity,
        }
    }

    /// Minimum-image (periodic) displacement `a - b` in dimension `d`.
    fn periodic_delta(&self, a: f64, b: f64, d: usize) -> f64 {
        let l = self.domain[d];
        let mut dx = (a - b) % l;
        if dx > l / 2.0 {
            dx -= l;
        } else if dx < -l / 2.0 {
            dx += l;
        }
        dx
    }
}

impl AnalyticSolution for GaussianPulse {
    fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f64 {
        let cx = self.center[0] + self.velocity.cx * t;
        let cy = self.center[1] + self.velocity.cy * t;
        let cz = self.center[2] + self.velocity.cz * t;
        let dx = self.periodic_delta(x, cx, 0);
        let dy = self.periodic_delta(y, cy, 1);
        let dz = self.periodic_delta(z, cz, 2);
        let r2 = dx * dx + dy * dy + dz * dz;
        (-r2 / (2.0 * self.sigma * self.sigma)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_at_moving_center() {
        let p = GaussianPulse::centered_in_cube(1.0, Velocity::new(1.0, 0.5, 0.25));
        assert!((p.eval(0.5, 0.5, 0.5, 0.0) - 1.0).abs() < 1e-15);
        let t = 0.1;
        assert!((p.eval(0.5 + 0.1, 0.5 + 0.05, 0.5 + 0.025, t) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn shape_is_preserved_under_advection() {
        let p = GaussianPulse::centered_in_cube(2.0, Velocity::new(1.0, 1.0, 1.0));
        // Value at a point offset from the center must be the same at any t.
        let off = (0.07, -0.02, 0.05);
        let v0 = p.eval(1.0 + off.0, 1.0 + off.1, 1.0 + off.2, 0.0);
        let t = 0.37;
        let v1 = p.eval(
            1.0 + 1.0 * t + off.0,
            1.0 + 1.0 * t + off.1,
            1.0 + 1.0 * t + off.2,
            t,
        );
        assert!((v0 - v1).abs() < 1e-14);
    }

    #[test]
    fn periodic_wraparound() {
        let p = GaussianPulse::centered_in_cube(1.0, Velocity::new(1.0, 0.0, 0.0));
        // After the pulse crosses the boundary, it reappears on the left.
        let t = 0.75; // center at 1.25 ≡ 0.25
        assert!((p.eval(0.25, 0.5, 0.5, t) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn full_period_returns_initial_state() {
        let p = GaussianPulse::centered_in_cube(1.0, Velocity::new(1.0, 1.0, 1.0));
        for &(x, y, z) in &[(0.1, 0.9, 0.4), (0.5, 0.5, 0.5), (0.0, 0.0, 0.0)] {
            assert!((p.eval(x, y, z, 0.0) - p.eval(x, y, z, 1.0)).abs() < 1e-12);
        }
    }
}
