//! Cache blocking and thread partitioning for region sweeps.
//!
//! A 27-point sweep over a `(z, y)`-streamed region touches three source
//! z-planes per destination plane. Once a plane outgrows the private
//! cache (a 130²-plane of f64 is ~132 KiB; three of them overflow a
//! 512 KiB L2), every tap pass re-streams its operands from a farther
//! cache level. Blocking the sweep into y-bands whose three-plane
//! working set fits restores the reuse: each source row is read from L2
//! (up to nine times — three y-neighbors × three z-neighbors) instead of
//! from L3/DRAM.
//!
//! [`TileSpec`] carries the band sizes; [`TileSpec::for_cache`] derives
//! them from a cache size in bytes (the `machine` crate feeds Table II
//! cache parameters through this for modeled machines, and
//! [`TileSpec::host`] applies a typical per-core L2 budget for the
//! machine the benches actually run on). Tiles are also the unit of
//! parallel work: [`TileSpec::tiles`] enumerates them in a fixed
//! deterministic order (z-major, then y) that both the serial tiled
//! sweep and the [`crate::sweep::SweepPool`] tile queue follow, so the
//! set of output rows each tile writes — and therefore the result — is
//! identical no matter which worker claims which tile.

use crate::field::Range3;

/// Default per-core L2 working-set budget for the host heuristic, in
/// bytes: half of a conservative 512 KiB L2, leaving room for the
/// destination rows and everything else the core touches.
pub const HOST_L2_BUDGET_BYTES: usize = 256 * 1024;

/// Fallback y-band height when a heuristic degenerates (tiny caches or
/// enormous rows).
const MIN_TY: usize = 4;

/// Default z-band depth: z streams through the band, so `tz` only sets
/// the work-stealing granularity, not the cache footprint.
const DEFAULT_TZ: usize = 16;

/// Cache-blocking specification for a region sweep: the sweep visits the
/// region in bands of `ty` consecutive y-rows by `tz` consecutive
/// z-planes (x always spans the full row — rows are the contiguous,
/// vectorized unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpec {
    /// Rows of y per tile (≥ 1).
    pub ty: usize,
    /// Planes of z per tile (≥ 1).
    pub tz: usize,
}

impl TileSpec {
    /// A tile of explicit band sizes.
    pub fn new(ty: usize, tz: usize) -> Self {
        assert!(ty >= 1 && tz >= 1, "tile bands must be at least 1 wide");
        Self { ty, tz }
    }

    /// Bands sized so that three source planes of a `(ty + 2)`-row
    /// y-band of `sx`-wide rows fit in `cache_bytes`:
    /// `3 · (ty + 2) · sx · 8 ≤ cache_bytes`.
    pub fn for_cache(cache_bytes: usize, sx: usize) -> Self {
        let rows_budget = cache_bytes / (3 * sx.max(1) * std::mem::size_of::<f64>());
        let ty = rows_budget.saturating_sub(2).max(MIN_TY);
        Self { ty, tz: DEFAULT_TZ }
    }

    /// The host heuristic: [`TileSpec::for_cache`] at
    /// [`HOST_L2_BUDGET_BYTES`] for rows of allocated width `sx`,
    /// overridable with `ADVECT_TILE=<ty>x<tz>`.
    pub fn host(sx: usize) -> Self {
        if let Some(spec) = env_override() {
            return spec;
        }
        Self::for_cache(HOST_L2_BUDGET_BYTES, sx)
    }

    /// Number of tiles covering `region`.
    pub fn count(&self, region: Range3) -> usize {
        let ny = (region.y.1 - region.y.0).max(0) as usize;
        let nz = (region.z.1 - region.z.0).max(0) as usize;
        if ny == 0 || nz == 0 {
            return 0;
        }
        ny.div_ceil(self.ty) * nz.div_ceil(self.tz)
    }

    /// The tiles covering `region`, in the fixed deterministic order
    /// (z-major, then y; x spans the region's full width). Tiles larger
    /// than the region clamp to it; an empty region yields no tiles.
    pub fn tiles(&self, region: Range3) -> impl Iterator<Item = Range3> + '_ {
        let ty = self.ty as i64;
        let tz = self.tz as i64;
        let empty = region.is_empty();
        (region.z.0..region.z.1)
            .step_by(self.tz)
            .flat_map(move |z0| {
                (region.y.0..region.y.1).step_by(self.ty).map(move |y0| {
                    Range3::new(
                        region.x,
                        (y0, (y0 + ty).min(region.y.1)),
                        (z0, (z0 + tz).min(region.z.1)),
                    )
                })
            })
            .filter(move |_| !empty)
    }
}

/// Parse an `ADVECT_TILE` value of the form `<ty>x<tz>`, both bands
/// positive integers.
pub fn parse_tile(v: &str) -> Result<TileSpec, String> {
    let malformed = || format!("ADVECT_TILE={v:?}: expected <ty>x<tz>, e.g. 40x16");
    let (ty, tz) = v.split_once('x').ok_or_else(malformed)?;
    let ty: usize = ty.trim().parse().map_err(|_| malformed())?;
    let tz: usize = tz.trim().parse().map_err(|_| malformed())?;
    if ty >= 1 && tz >= 1 {
        Ok(TileSpec { ty, tz })
    } else {
        Err(malformed())
    }
}

/// The `ADVECT_TILE=<ty>x<tz>` override, if set.
///
/// # Panics
///
/// On a malformed value — a mistyped knob must fail the run, not
/// silently measure the default tiles.
pub(crate) fn env_override() -> Option<TileSpec> {
    let v = std::env::var("ADVECT_TILE").ok()?;
    Some(parse_tile(&v).unwrap_or_else(|e| panic!("{e}")))
}

/// Evenly split the interior z-extent `nz` into cut points for a team of
/// `threads` (the threads-aware partitioner the overlap runners feed to
/// [`crate::field::Field3::z_slabs_mut`]): at most `threads` slabs, each
/// within one plane of the others, degenerate thin domains deduplicated.
pub fn z_cuts(nz: usize, threads: usize) -> Vec<i64> {
    let t = threads.min(nz).max(1);
    let mut cuts: Vec<i64> = (1..t)
        .map(|p| crate::team::split_static(0..nz, t, p).start as i64)
        .collect();
    cuts.dedup();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_region_exactly_once() {
        let spec = TileSpec::new(3, 5);
        let region = Range3::new((-1, 9), (0, 10), (2, 13));
        let mut seen = std::collections::HashSet::new();
        let mut count = 0;
        for tile in spec.tiles(region) {
            count += 1;
            assert_eq!(tile.x, region.x);
            for p in tile.iter() {
                assert!(seen.insert(p), "point {p:?} covered twice");
            }
        }
        assert_eq!(seen.len(), region.len());
        assert_eq!(count, spec.count(region));
    }

    #[test]
    fn degenerate_and_oversized_tiles() {
        let region = Range3::new((0, 4), (0, 4), (0, 4));
        // 1-wide bands: one tile per (y, z) pair.
        assert_eq!(TileSpec::new(1, 1).count(region), 16);
        // Tiles larger than the region clamp to one tile.
        let big = TileSpec::new(100, 100);
        let tiles: Vec<_> = big.tiles(region).collect();
        assert_eq!(tiles, vec![region]);
    }

    #[test]
    fn empty_region_has_no_tiles() {
        let spec = TileSpec::new(4, 4);
        let empty = Range3::new((0, 4), (2, 2), (0, 4));
        assert_eq!(spec.count(empty), 0);
        assert_eq!(spec.tiles(empty).count(), 0);
    }

    #[test]
    fn tile_order_is_z_major_deterministic() {
        let spec = TileSpec::new(2, 2);
        let region = Range3::new((0, 2), (0, 4), (0, 4));
        let tiles: Vec<_> = spec.tiles(region).collect();
        let again: Vec<_> = spec.tiles(region).collect();
        assert_eq!(tiles, again);
        // z advances slowest: first two tiles share z.
        assert_eq!(tiles[0].z, tiles[1].z);
        assert!(tiles[0].y.0 < tiles[1].y.0);
        assert!(tiles[0].z.1 <= tiles[2].z.1 && tiles[2].z.0 > tiles[0].z.0);
    }

    #[test]
    fn cache_heuristic_shrinks_with_row_width() {
        let narrow = TileSpec::for_cache(256 * 1024, 66);
        let wide = TileSpec::for_cache(256 * 1024, 514);
        assert!(narrow.ty > wide.ty);
        // Three planes of a (ty + 2)-band fit the budget.
        assert!(3 * (wide.ty + 2) * 514 * 8 <= 256 * 1024);
        assert!(wide.ty >= MIN_TY);
    }

    #[test]
    fn host_heuristic_blocks_the_bench_grid() {
        // 128³ + halo: full planes overflow the budget, so the heuristic
        // must split y into more than one band.
        let spec = TileSpec::host(130);
        assert!(spec.ty < 128, "128³ should be y-blocked, got {spec:?}");
        assert!(spec.ty >= MIN_TY && spec.tz >= 1);
    }

    #[test]
    fn tile_parse_is_strict() {
        assert_eq!(parse_tile("40x16"), Ok(TileSpec::new(40, 16)));
        assert_eq!(parse_tile("1x1"), Ok(TileSpec::new(1, 1)));
        assert!(parse_tile("40").is_err());
        assert!(parse_tile("0x16").is_err());
        assert!(parse_tile("40x").is_err());
        assert!(parse_tile("axb").is_err());
        assert!(parse_tile("").is_err());
    }

    #[test]
    fn z_cuts_partition_and_dedupe() {
        assert_eq!(z_cuts(8, 2), vec![4]);
        assert_eq!(z_cuts(9, 3), vec![3, 6]);
        assert!(z_cuts(4, 1).is_empty());
        // More threads than planes: at most nz slabs.
        assert_eq!(z_cuts(2, 8).len(), 1);
    }
}
