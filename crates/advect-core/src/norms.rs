//! Error norms between computed and reference states.
//!
//! The paper verifies each implementation "by recording norms of the
//! difference between the computed state and the analytic state"; we do
//! the same, with discrete L1, L2 (root-mean-square) and L∞ norms.

use crate::analytic::AnalyticSolution;
use crate::field::Field3;

/// A triple of discrete error norms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Norms {
    /// Mean absolute error.
    pub l1: f64,
    /// Root-mean-square error.
    pub l2: f64,
    /// Maximum absolute error.
    pub linf: f64,
}

impl Norms {
    /// Norms of the interior difference between two fields.
    pub fn between(a: &Field3, b: &Field3) -> Norms {
        assert_eq!(a.interior(), b.interior());
        let mut sum_abs = 0.0;
        let mut sum_sq = 0.0;
        let mut max: f64 = 0.0;
        let mut n = 0usize;
        for (x, y, z) in a.interior_range().iter() {
            let d = (a.at(x, y, z) - b.at(x, y, z)).abs();
            sum_abs += d;
            sum_sq += d * d;
            max = max.max(d);
            n += 1;
        }
        Norms {
            l1: sum_abs / n as f64,
            l2: (sum_sq / n as f64).sqrt(),
            linf: max,
        }
    }

    /// Norms of the interior difference between a field and an analytic
    /// solution sampled on the field's grid. `origin` is the physical
    /// position of interior point (0, 0, 0), `spacing` the grid spacing δ,
    /// and `t` the evaluation time.
    pub fn against_analytic(
        field: &Field3,
        solution: &dyn AnalyticSolution,
        origin: [f64; 3],
        spacing: f64,
        t: f64,
    ) -> Norms {
        let mut exact = Field3::new(
            field.interior().0,
            field.interior().1,
            field.interior().2,
            field.halo(),
        );
        exact.fill_interior(|x, y, z| {
            solution.eval(
                origin[0] + x as f64 * spacing,
                origin[1] + y as f64 * spacing,
                origin[2] + z as f64 * spacing,
                t,
            )
        });
        Norms::between(field, &exact)
    }
}

/// Mean absolute (discrete L1) norm of the interior difference.
pub fn l1_norm(a: &Field3, b: &Field3) -> f64 {
    Norms::between(a, b).l1
}

/// Root-mean-square (discrete L2) norm of the interior difference.
pub fn l2_norm(a: &Field3, b: &Field3) -> f64 {
    Norms::between(a, b).l2
}

/// Maximum (discrete L∞) norm of the interior difference.
pub fn linf_norm(a: &Field3, b: &Field3) -> f64 {
    Norms::between(a, b).linf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::GaussianPulse;
    use crate::coeffs::Velocity;

    #[test]
    fn identical_fields_have_zero_norms() {
        let mut a = Field3::new(4, 4, 4, 1);
        a.fill_interior(|x, y, z| (x + y + z) as f64);
        let n = Norms::between(&a, &a.clone());
        assert_eq!(n.l1, 0.0);
        assert_eq!(n.l2, 0.0);
        assert_eq!(n.linf, 0.0);
    }

    #[test]
    fn norm_ordering_l1_le_l2_le_linf() {
        let mut a = Field3::new(5, 5, 5, 1);
        let mut b = Field3::new(5, 5, 5, 1);
        a.fill_interior(|x, y, z| (x * y + z) as f64);
        b.fill_interior(|x, y, z| (x * y) as f64 + (z as f64) * 1.5);
        let n = Norms::between(&a, &b);
        assert!(n.l1 <= n.l2 + 1e-15);
        assert!(n.l2 <= n.linf + 1e-15);
        assert!(n.linf > 0.0);
    }

    #[test]
    fn against_analytic_zero_when_sampled_exactly() {
        let p = GaussianPulse::centered_in_cube(1.0, Velocity::unit_diagonal());
        let n = 8;
        let spacing = 1.0 / n as f64;
        let mut f = Field3::new(n, n, n, 1);
        f.fill_interior(|x, y, z| {
            p.eval(
                x as f64 * spacing,
                y as f64 * spacing,
                z as f64 * spacing,
                0.0,
            )
        });
        let norms = Norms::against_analytic(&f, &p, [0.0; 3], spacing, 0.0);
        assert_eq!(norms.linf, 0.0);
    }
}
