//! # advect-core
//!
//! Numerics for explicit time integration of 3-D linear advection with
//! constant uniform velocity in a periodic domain:
//!
//! ```text
//! ∂u/∂t + c · ∇u = 0,   u = u(x, y, z, t),   c = (cx, cy, cz)
//! ```
//!
//! This crate implements the test case of White & Dongarra, *Overlapping
//! Computation and Communication for Advection on Hybrid Parallel
//! Computers* (IPDPS 2011):
//!
//! * the **Lax-Wendroff 3×3×3 stencil** whose 27 coefficients appear in
//!   Table I of the paper ([`coeffs`]),
//! * a periodic **3-D field with halo points** ([`field`]),
//! * the **analytic Gaussian solution** used for verification
//!   ([`analytic`]),
//! * **error norms** ([`norms`]),
//! * the serial and multithreaded **single-task steppers** implementing the
//!   paper's three algorithmic steps (copy periodic boundaries → stencil →
//!   state copy) ([`stepper`]),
//! * an **OpenMP-like thread team** with `static` and `guided` loop
//!   scheduling, used by the threaded steppers and by the overlap
//!   implementations in the `overlap` crate ([`team`]),
//! * a **work-queue sweep executor** with deterministic result ordering,
//!   used by the tuning sweeps and figure generators downstream
//!   ([`sweep`]),
//! * **explicit SIMD** tap-accumulation kernels with runtime dispatch
//!   that preserve the per-element FP order ([`simd`]),
//! * **cache-blocked tiling** of region sweeps with a cache-derived
//!   tile-size heuristic ([`tile`]),
//! * **temporal blocking** that fuses several steps into one traversal
//!   via overlapped trapezoid tiles, bit-identical to straight
//!   stepping ([`timetile`]),
//! * **host NUMA topology** detection with first-touch placement and a
//!   domain-aware worker→core map ([`numa`]).
//!
//! The floating-point cost model follows the paper: 53 flops per grid point
//! per step (27 multiplications + 26 additions), see [`flops`].

pub mod analytic;
pub mod coeffs;
pub mod field;
pub mod flops;
pub mod norms;
pub mod numa;
pub mod simd;
pub mod stencil;
pub mod stepper;
pub mod sweep;
pub mod team;
pub mod tile;
pub mod timetile;
pub mod vonneumann;

pub use analytic::{AnalyticSolution, GaussianPulse};
pub use coeffs::{Stencil27, Velocity};
pub use field::Field3;
pub use norms::{l1_norm, l2_norm, linf_norm, Norms};
pub use numa::NumaTopology;
pub use simd::SimdLevel;
pub use stencil::apply_stencil_region;
pub use stepper::{AdvectionProblem, SerialStepper, ThreadedStepper};
pub use sweep::SweepPool;
pub use team::{Schedule, ThreadTeam};
pub use tile::TileSpec;
pub use vonneumann::{amplification_factor, is_stable, max_amplification};
