//! Explicit SIMD for the 27-tap accumulation.
//!
//! The row-vectorized fast path of [`crate::stencil`] historically relied
//! on the autovectorizer turning its fixed-width chunk loop into vector
//! code. On the default `x86-64` target that means SSE2 — two lanes —
//! no matter what the host actually supports. This module makes the
//! vector width explicit: small `f64x4` / `f64x8` wrapper types over the
//! AVX / AVX-512 register types whose `mul` / `add` methods compile to
//! single instructions *by construction*, plus a portable fallback that
//! is exactly the old chunk loop.
//!
//! # Bit-identity
//!
//! Every path performs, per output element, the identical scalar
//! sequence `acc = 0.0; acc += coef[t] * v[t]` for `t = 0..27`: the
//! vector types only batch *independent* output elements into lanes, and
//! `vmulpd`/`vaddpd` round each lane exactly like the corresponding
//! scalar `mulsd`/`addsd`. No FMA is used (fusing would change the
//! rounding and break the oracle), no horizontal operation reorders a
//! sum. The dispatch level therefore never changes results, only speed —
//! asserted by the differential proptests in `tests/tiled_props.rs`.
//!
//! # Dispatch
//!
//! [`level`] picks the widest supported tier once per process (runtime
//! CPUID detection, overridable with `ADVECT_SIMD=portable|f64x4|f64x8`
//! for differential testing) and [`accumulate_tap_rows`] routes through
//! it. Non-x86-64 targets always take the portable tier.

/// Vector tier used for the tap accumulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Fixed-width chunk loop left to the autovectorizer (any target).
    Portable,
    /// Explicit 4-lane AVX `f64x4` kernel (x86-64 with `avx`).
    F64x4,
    /// Explicit 8-lane AVX-512 `f64x8` kernel (x86-64 with `avx512f`).
    F64x8,
}

impl SimdLevel {
    /// Lane width of this tier.
    pub fn lanes(&self) -> usize {
        match self {
            SimdLevel::Portable => 1,
            SimdLevel::F64x4 => 4,
            SimdLevel::F64x8 => 8,
        }
    }

    /// Stable name (accepted by the `ADVECT_SIMD` override).
    pub fn name(&self) -> &'static str {
        match self {
            SimdLevel::Portable => "portable",
            SimdLevel::F64x4 => "f64x4",
            SimdLevel::F64x8 => "f64x8",
        }
    }
}

/// The widest tier the host supports.
fn detect() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::F64x8;
        }
        if std::arch::is_x86_feature_detected!("avx") {
            return SimdLevel::F64x4;
        }
    }
    SimdLevel::Portable
}

/// Parse an `ADVECT_SIMD` value into a dispatch tier. Aliases follow
/// the instruction-set names: `avx`/`avx2` → `f64x4`, `avx512` →
/// `f64x8`, `scalar` → `portable`.
pub fn parse_level(v: &str) -> Result<SimdLevel, String> {
    match v {
        "portable" | "scalar" => Ok(SimdLevel::Portable),
        "f64x4" | "avx" | "avx2" => Ok(SimdLevel::F64x4),
        "f64x8" | "avx512" => Ok(SimdLevel::F64x8),
        other => Err(format!(
            "ADVECT_SIMD={other:?}: expected one of portable|scalar|f64x4|avx|avx2|f64x8|avx512"
        )),
    }
}

/// The process-wide dispatch tier: the widest supported level, or the
/// `ADVECT_SIMD` override (clamped to what the host supports — asking
/// for `f64x8` on an AVX-only machine yields `f64x4`).
///
/// # Panics
///
/// On an unknown `ADVECT_SIMD` value — a mistyped knob must fail the
/// run, not silently measure the auto-detected tier.
pub fn level() -> SimdLevel {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let best = detect();
        let Ok(want) = std::env::var("ADVECT_SIMD") else {
            return best;
        };
        let want = parse_level(&want).unwrap_or_else(|e| panic!("{e}"));
        if want.lanes() <= best.lanes() {
            want
        } else {
            best
        }
    })
}

/// Accumulate 27 tap rows into a destination row on the process-wide
/// dispatch tier: `dst[x] = Σₜ coef[t] · rows[t][x]`, taps in order.
///
/// # Panics
///
/// If any `rows[t]` is shorter than `dst_row`.
#[inline]
pub fn accumulate_tap_rows(dst_row: &mut [f64], rows: &[&[f64]; 27], coef: &[f64; 27]) {
    accumulate_tap_rows_at(level(), dst_row, rows, coef)
}

/// [`accumulate_tap_rows`] on an explicit tier (differential testing; a
/// tier the host lacks falls back to the portable path).
pub fn accumulate_tap_rows_at(
    level: SimdLevel,
    dst_row: &mut [f64],
    rows: &[&[f64]; 27],
    coef: &[f64; 27],
) {
    let w = dst_row.len();
    for row in rows {
        assert!(row.len() >= w, "tap row shorter than destination row");
    }
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::F64x8 if std::arch::is_x86_feature_detected!("avx512f") => {
            // SAFETY: `avx512f` was just detected; row lengths checked above.
            unsafe { x86::accumulate_f64x8(dst_row, rows, coef) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::F64x4 | SimdLevel::F64x8 if std::arch::is_x86_feature_detected!("avx") => {
            // SAFETY: `avx` was just detected; row lengths checked above.
            unsafe { x86::accumulate_f64x4(dst_row, rows, coef) }
        }
        _ => accumulate_portable(dst_row, rows, coef),
    }
}

/// Scalar tail shared by every tier: elements `x0..` of the row.
#[inline]
fn accumulate_tail(dst_row: &mut [f64], rows: &[&[f64]; 27], coef: &[f64; 27], x0: usize) {
    for (i, d) in dst_row[x0..].iter_mut().enumerate() {
        let mut acc = 0.0;
        for t in 0..27 {
            acc += coef[t] * rows[t][x0 + i];
        }
        *d = acc;
    }
}

/// Portable tier: the fixed-chunk loop the autovectorizer handles on any
/// target (16-wide local accumulator array kept in registers).
fn accumulate_portable(dst_row: &mut [f64], rows: &[&[f64]; 27], coef: &[f64; 27]) {
    const ROW_CHUNK: usize = 16;
    let w = dst_row.len();
    let mut x = 0;
    while x + ROW_CHUNK <= w {
        let mut acc = [0.0f64; ROW_CHUNK];
        for t in 0..27 {
            let c = coef[t];
            let src = &rows[t][x..x + ROW_CHUNK];
            for l in 0..ROW_CHUNK {
                acc[l] += c * src[l];
            }
        }
        dst_row[x..x + ROW_CHUNK].copy_from_slice(&acc);
        x += ROW_CHUNK;
    }
    accumulate_tail(dst_row, rows, coef, x);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `f64x4` / `f64x8` wrappers and their kernels.
    //!
    //! Each wrapper is a `#[repr(transparent)]` newtype over the
    //! architectural register type whose methods are single-instruction
    //! by construction. The methods carry `#[target_feature]`, so inside
    //! the (equally attributed) kernels they inline to bare `vmulpd` /
    //! `vaddpd` with no per-call dispatch.

    use super::accumulate_tail;
    use std::arch::x86_64::*;

    /// Four f64 lanes in one AVX register.
    #[derive(Clone, Copy)]
    #[repr(transparent)]
    pub struct F64x4(__m256d);

    impl F64x4 {
        /// All lanes zero.
        #[target_feature(enable = "avx")]
        #[inline]
        fn zero() -> Self {
            Self(_mm256_setzero_pd())
        }

        /// All lanes `v`.
        #[target_feature(enable = "avx")]
        #[inline]
        fn splat(v: f64) -> Self {
            Self(_mm256_set1_pd(v))
        }

        /// Unaligned load of 4 lanes.
        ///
        /// # Safety
        ///
        /// `p..p+4` must be readable.
        #[target_feature(enable = "avx")]
        #[inline]
        unsafe fn load(p: *const f64) -> Self {
            Self(_mm256_loadu_pd(p))
        }

        /// Unaligned store of 4 lanes.
        ///
        /// # Safety
        ///
        /// `p..p+4` must be writable.
        #[target_feature(enable = "avx")]
        #[inline]
        unsafe fn store(self, p: *mut f64) {
            _mm256_storeu_pd(p, self.0)
        }

        /// `self + c · v` per lane as separate `vmulpd` + `vaddpd` (no
        /// FMA: fusing would change rounding and break bit-identity).
        #[target_feature(enable = "avx")]
        #[inline]
        fn accum(self, c: Self, v: Self) -> Self {
            Self(_mm256_add_pd(self.0, _mm256_mul_pd(c.0, v.0)))
        }
    }

    /// Eight f64 lanes in one AVX-512 register.
    #[derive(Clone, Copy)]
    #[repr(transparent)]
    pub struct F64x8(__m512d);

    impl F64x8 {
        /// All lanes zero.
        #[target_feature(enable = "avx512f")]
        #[inline]
        fn zero() -> Self {
            Self(_mm512_setzero_pd())
        }

        /// All lanes `v`.
        #[target_feature(enable = "avx512f")]
        #[inline]
        fn splat(v: f64) -> Self {
            Self(_mm512_set1_pd(v))
        }

        /// Unaligned load of 8 lanes.
        ///
        /// # Safety
        ///
        /// `p..p+8` must be readable.
        #[target_feature(enable = "avx512f")]
        #[inline]
        unsafe fn load(p: *const f64) -> Self {
            Self(_mm512_loadu_pd(p))
        }

        /// Unaligned store of 8 lanes.
        ///
        /// # Safety
        ///
        /// `p..p+8` must be writable.
        #[target_feature(enable = "avx512f")]
        #[inline]
        unsafe fn store(self, p: *mut f64) {
            _mm512_storeu_pd(p, self.0)
        }

        /// `self + c · v` per lane as separate multiply + add (no FMA).
        #[target_feature(enable = "avx512f")]
        #[inline]
        fn accum(self, c: Self, v: Self) -> Self {
            Self(_mm512_add_pd(self.0, _mm512_mul_pd(c.0, v.0)))
        }
    }

    /// 4-lane kernel: 16-wide chunks as four `f64x4` accumulators (four
    /// independent dependency chains hide the `vaddpd` latency).
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx` support and that every
    /// `rows[t]` covers `dst_row`'s width.
    #[target_feature(enable = "avx")]
    pub unsafe fn accumulate_f64x4(dst_row: &mut [f64], rows: &[&[f64]; 27], coef: &[f64; 27]) {
        let w = dst_row.len();
        let mut x = 0;
        while x + 16 <= w {
            let mut a0 = F64x4::zero();
            let mut a1 = F64x4::zero();
            let mut a2 = F64x4::zero();
            let mut a3 = F64x4::zero();
            for t in 0..27 {
                let c = F64x4::splat(coef[t]);
                // SAFETY: rows[t][x..x+16] is in bounds (checked by caller).
                let p = unsafe { rows[t].as_ptr().add(x) };
                unsafe {
                    a0 = a0.accum(c, F64x4::load(p));
                    a1 = a1.accum(c, F64x4::load(p.add(4)));
                    a2 = a2.accum(c, F64x4::load(p.add(8)));
                    a3 = a3.accum(c, F64x4::load(p.add(12)));
                }
            }
            // SAFETY: dst_row[x..x+16] is in bounds.
            unsafe {
                let d = dst_row.as_mut_ptr().add(x);
                a0.store(d);
                a1.store(d.add(4));
                a2.store(d.add(8));
                a3.store(d.add(12));
            }
            x += 16;
        }
        accumulate_tail(dst_row, rows, coef, x);
    }

    /// 8-lane kernel: 16-wide chunks as two `f64x8` accumulators (two
    /// chains balance register pressure against `vaddpd` latency — wider
    /// chunks measured slower on the zmm register file).
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support and that every
    /// `rows[t]` covers `dst_row`'s width.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn accumulate_f64x8(dst_row: &mut [f64], rows: &[&[f64]; 27], coef: &[f64; 27]) {
        let w = dst_row.len();
        let mut x = 0;
        while x + 16 <= w {
            let mut a0 = F64x8::zero();
            let mut a1 = F64x8::zero();
            for t in 0..27 {
                let c = F64x8::splat(coef[t]);
                // SAFETY: rows[t][x..x+16] is in bounds (checked by caller).
                let p = unsafe { rows[t].as_ptr().add(x) };
                unsafe {
                    a0 = a0.accum(c, F64x8::load(p));
                    a1 = a1.accum(c, F64x8::load(p.add(8)));
                }
            }
            // SAFETY: dst_row[x..x+16] is in bounds.
            unsafe {
                let d = dst_row.as_mut_ptr().add(x);
                a0.store(d);
                a1.store(d.add(8));
            }
            x += 16;
        }
        accumulate_tail(dst_row, rows, coef, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inputs(w: usize) -> (Vec<Vec<f64>>, [f64; 27]) {
        let rows: Vec<Vec<f64>> = (0..27)
            .map(|t| {
                (0..w)
                    .map(|x| ((x * 13 + t * 7) % 23) as f64 * 0.173 - 1.9)
                    .collect()
            })
            .collect();
        let mut coef = [0.0f64; 27];
        for (t, c) in coef.iter_mut().enumerate() {
            *c = (t as f64 * 0.41).sin() * 0.2 + 1.0 / 27.0;
        }
        (rows, coef)
    }

    fn scalar_reference(rows: &[&[f64]; 27], coef: &[f64; 27], w: usize) -> Vec<f64> {
        (0..w)
            .map(|x| {
                let mut acc = 0.0;
                for t in 0..27 {
                    acc += coef[t] * rows[t][x];
                }
                acc
            })
            .collect()
    }

    #[test]
    fn every_level_matches_scalar_bitwise() {
        // Widths straddling the 16-wide chunk boundary, incl. tail-only.
        for w in [0, 1, 3, 15, 16, 17, 32, 33, 100, 128] {
            let (rows, coef) = sample_inputs(w);
            let rows: [&[f64]; 27] = std::array::from_fn(|t| rows[t].as_slice());
            let expect = scalar_reference(&rows, &coef, w);
            for lvl in [SimdLevel::Portable, SimdLevel::F64x4, SimdLevel::F64x8] {
                let mut dst = vec![0.0f64; w];
                accumulate_tap_rows_at(lvl, &mut dst, &rows, &coef);
                assert_eq!(dst, expect, "level {lvl:?} width {w}");
            }
        }
    }

    #[test]
    fn dispatch_level_is_cached_and_supported() {
        let l = level();
        assert_eq!(l, level());
        assert!(l.lanes() <= detect().lanes());
    }

    #[test]
    fn level_names_roundtrip() {
        for l in [SimdLevel::Portable, SimdLevel::F64x4, SimdLevel::F64x8] {
            assert!(!l.name().is_empty());
            assert!(l.lanes().is_power_of_two());
            assert_eq!(parse_level(l.name()), Ok(l));
        }
    }

    #[test]
    fn level_parse_is_strict() {
        assert_eq!(parse_level("avx2"), Ok(SimdLevel::F64x4));
        assert_eq!(parse_level("avx512"), Ok(SimdLevel::F64x8));
        assert_eq!(parse_level("scalar"), Ok(SimdLevel::Portable));
        assert!(parse_level("sse").is_err());
        assert!(parse_level("F64X4").is_err());
        assert!(parse_level("").is_err());
    }
}
