//! Single-task time steppers (Section IV-A of the paper).
//!
//! Each time step has the paper's three algorithmic steps:
//!
//! 1. copy periodic boundaries into halo points,
//! 2. compute the new state using Equation 2,
//! 3. copy the new state to the current state.
//!
//! [`SerialStepper`] runs them on one thread; [`ThreadedStepper`] is the
//! "single task with multiple threads" baseline, parallelizing Steps 2 and
//! 3 across a [`ThreadTeam`] by z-slab (the OpenMP `collapse(2)` outer
//! loops of the paper collapse to the same z/y partition).

use crate::analytic::{AnalyticSolution, GaussianPulse};
use crate::coeffs::{Stencil27, Velocity};
use crate::field::Field3;
use crate::norms::Norms;
use crate::stencil::{apply_stencil_interior, apply_stencil_slab_tiled, copy_region_slab};
use crate::team::ThreadTeam;
use crate::tile::TileSpec;

/// The advection test problem: a periodic cube of `n³` points with a
/// Gaussian pulse advected at constant velocity, run at a given ν.
#[derive(Debug, Clone, Copy)]
pub struct AdvectionProblem {
    /// Points per dimension.
    pub n: usize,
    /// Advection velocity.
    pub velocity: Velocity,
    /// Ratio ν = Δ/δ.
    pub nu: f64,
    /// Grid spacing δ (the domain side is `n · δ`).
    pub spacing: f64,
    /// Initial pulse center (physical coordinates); domain center when
    /// `None` — the paper's configuration.
    pub pulse_center: Option<[f64; 3]>,
    /// Initial pulse σ; one tenth of the domain side when `None`.
    pub pulse_sigma: Option<f64>,
}

impl AdvectionProblem {
    /// The paper's configuration on an `n³` grid: unit diagonal velocity,
    /// maximum stable ν, unit cube.
    pub fn paper_case(n: usize) -> Self {
        let velocity = Velocity::unit_diagonal();
        Self {
            n,
            velocity,
            nu: velocity.max_stable_nu(),
            spacing: 1.0 / n as f64,
            pulse_center: None,
            pulse_sigma: None,
        }
    }

    /// A smooth, non-trivial configuration exercising all 27 coefficients
    /// (no Courant number is 0 or ±1).
    pub fn general_case(n: usize) -> Self {
        Self {
            n,
            velocity: Velocity::new(1.0, 0.5, 0.25),
            nu: 0.9,
            spacing: 1.0 / n as f64,
            pulse_center: None,
            pulse_sigma: None,
        }
    }

    /// Place the initial pulse at `center` (physical coordinates) with
    /// standard deviation `sigma` — multiple tracers share a grid by
    /// differing here.
    pub fn with_pulse(mut self, center: [f64; 3], sigma: f64) -> Self {
        self.pulse_center = Some(center);
        self.pulse_sigma = Some(sigma);
        self
    }

    /// Stencil coefficients for this problem.
    pub fn stencil(&self) -> Stencil27 {
        Stencil27::new(self.velocity, self.nu)
    }

    /// Time-step size Δ = ν · δ.
    pub fn dt(&self) -> f64 {
        self.nu * self.spacing
    }

    /// The analytic pulse for this problem.
    pub fn pulse(&self) -> GaussianPulse {
        let side = self.n as f64 * self.spacing;
        GaussianPulse {
            center: self.pulse_center.unwrap_or([side / 2.0; 3]),
            sigma: self.pulse_sigma.unwrap_or(side / 10.0),
            domain: [side; 3],
            velocity: self.velocity,
        }
    }

    /// The initial state sampled on the grid (halo width 1, halos unset).
    pub fn initial_field(&self) -> Field3 {
        let mut f = Field3::new(self.n, self.n, self.n, 1);
        self.fill_initial(&mut f);
        f
    }

    /// Sample the initial condition into an existing `n³` field of any
    /// halo width (halos left untouched) — steppers that place their
    /// own allocations (first-touch, deep halos) fill in place instead
    /// of copying a fresh [`AdvectionProblem::initial_field`].
    pub fn fill_initial(&self, f: &mut Field3) {
        assert_eq!(f.interior(), (self.n, self.n, self.n), "wrong grid size");
        let pulse = self.pulse();
        let d = self.spacing;
        f.fill_interior(|x, y, z| pulse.eval(x as f64 * d, y as f64 * d, z as f64 * d, 0.0));
    }

    /// Error norms of `state` against the analytic solution after `steps`
    /// time steps.
    pub fn norms_after(&self, state: &Field3, steps: u64) -> Norms {
        Norms::against_analytic(
            state,
            &self.pulse(),
            [0.0; 3],
            self.spacing,
            steps as f64 * self.dt(),
        )
    }
}

/// Serial reference stepper. Every other implementation in this repository
/// is verified bit-wise against it.
pub struct SerialStepper {
    problem: AdvectionProblem,
    stencil: Stencil27,
    cur: Field3,
    new: Field3,
    steps_taken: u64,
}

impl SerialStepper {
    /// Initialize from the problem's analytic initial condition.
    pub fn new(problem: AdvectionProblem) -> Self {
        let cur = problem.initial_field();
        let new = Field3::new(problem.n, problem.n, problem.n, 1);
        Self {
            problem,
            stencil: problem.stencil(),
            cur,
            new,
            steps_taken: 0,
        }
    }

    /// Perform one time step (Steps 1–3).
    pub fn step(&mut self) {
        self.cur.copy_periodic_halo();
        apply_stencil_interior(&self.cur, &mut self.new, &self.stencil);
        self.cur.copy_interior_from(&self.new);
        self.steps_taken += 1;
    }

    /// Perform `n` time steps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Current state.
    pub fn state(&self) -> &Field3 {
        &self.cur
    }

    /// Mutable access to the current state (for loading custom initial
    /// conditions, e.g. single Fourier modes in the stability analysis).
    pub fn state_mut(&mut self) -> &mut Field3 {
        &mut self.cur
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Error norms against the analytic solution at the current time.
    pub fn norms(&self) -> Norms {
        self.problem.norms_after(&self.cur, self.steps_taken)
    }
}

/// Multithreaded single-task stepper (implementation IV-A).
///
/// With [`ThreadedStepper::with_time_tile`] the per-step Steps 1–3 are
/// replaced by fused traversals: one periodic halo fill of depth `k`
/// licenses `k` stencil applications in a single pass over the grid
/// ([`crate::timetile`]), and the Step 3 copy disappears entirely (the
/// two fields swap). The results stay bit-identical to straight
/// stepping; only the traversal count changes.
pub struct ThreadedStepper {
    problem: AdvectionProblem,
    stencil: Stencil27,
    team: ThreadTeam,
    tile: Option<TileSpec>,
    time_tile: Option<usize>,
    pool: crate::sweep::SweepPool,
    cur: Field3,
    new: Field3,
    steps_taken: u64,
}

impl ThreadedStepper {
    /// Initialize with a team of `threads` threads. Field allocations
    /// are first-touch placed across the team ([`Field3::new_placed`]);
    /// `ADVECT_TIME_TILE=<k>` applies [`ThreadedStepper::with_time_tile`]
    /// automatically.
    pub fn new(problem: AdvectionProblem, threads: usize) -> Self {
        let pool = crate::sweep::SweepPool::new(threads);
        let mut cur = Field3::new_placed(problem.n, problem.n, problem.n, 1, &pool);
        problem.fill_initial(&mut cur);
        let new = Field3::new_placed(problem.n, problem.n, problem.n, 1, &pool);
        let stepper = Self {
            problem,
            stencil: problem.stencil(),
            team: ThreadTeam::new(threads),
            tile: None,
            time_tile: None,
            pool,
            cur,
            new,
            steps_taken: 0,
        };
        match crate::timetile::env_steps() {
            Some(k) => stepper.with_time_tile(k),
            None => stepper,
        }
    }

    /// Use an explicit cache-blocking tile instead of the host heuristic.
    pub fn with_tile(mut self, tile: TileSpec) -> Self {
        self.tile = Some(tile);
        self
    }

    /// Fuse up to `k` time steps per grid traversal (temporal blocking,
    /// [`crate::timetile`]). Reallocates the two fields at halo width
    /// `k` — the depth-`k` periodic halo is what licenses `k` fused
    /// steps — preserving the current state. Bit-identical to the
    /// default path at any `k`, worker count, and tile shape.
    pub fn with_time_tile(mut self, k: usize) -> Self {
        assert!(
            k >= 1 && k <= self.problem.n,
            "time tile depth {k} must be in 1..={}",
            self.problem.n
        );
        if self.cur.halo() != k {
            let n = self.problem.n;
            let mut cur = Field3::new_placed(n, n, n, k, &self.pool);
            cur.copy_interior_from(&self.cur);
            self.cur = cur;
            self.new = Field3::new_placed(n, n, n, k, &self.pool);
        }
        self.time_tile = Some(k);
        self
    }

    /// Interior-z cut points for a static split across the team.
    fn z_cuts(&self) -> Vec<i64> {
        crate::tile::z_cuts(self.problem.n, self.team.num_threads())
    }

    /// One fused traversal advancing `b` steps: depth-`k` halo fill,
    /// one time-tiled pass writing `new`, swap. No Step 3 copy.
    fn advance(&mut self, b: usize) {
        self.cur.copy_periodic_halo();
        let region = self.cur.interior_range();
        let k = self.time_tile.unwrap_or(1);
        let tile = self.tile.unwrap_or_else(|| {
            let (sx, _, _) = self.cur.extents();
            crate::timetile::tile_for_host(sx, k, self.pool.threads())
        });
        crate::timetile::advance_pooled(
            &self.cur,
            &mut self.new,
            &self.stencil,
            region,
            b,
            tile,
            &self.pool,
        );
        std::mem::swap(&mut self.cur, &mut self.new);
        self.steps_taken += b as u64;
    }

    /// Perform one time step (Steps 1–3, Steps 2 and 3 threaded; a
    /// single fused traversal when a time tile is configured).
    pub fn step(&mut self) {
        if self.time_tile.is_some() {
            self.advance(1);
            return;
        }
        // Step 1: periodic halo copy (cheap surface work).
        self.cur.copy_periodic_halo();
        let cuts = self.z_cuts();
        let region = self.cur.interior_range();
        // Step 2: stencil, each thread writing its own z-slab.
        {
            let cur = &self.cur;
            let stencil = &self.stencil;
            let tile = self.tile.unwrap_or_else(|| {
                let (sx, _, _) = self.cur.extents();
                TileSpec::host(sx)
            });
            let slabs = self.new.z_slabs_mut(&cuts);
            self.team.parallel_with(slabs, |_ctx, mut slab| {
                apply_stencil_slab_tiled(cur, &mut slab, stencil, region, tile);
            });
        }
        // Step 3: copy new state to current state, threaded the same way.
        {
            let new = &self.new;
            let slabs = self.cur.z_slabs_mut(&cuts);
            self.team.parallel_with(slabs, |_ctx, mut slab| {
                copy_region_slab(new, &mut slab, region);
            });
        }
        self.steps_taken += 1;
    }

    /// Perform `n` time steps — with a time tile of depth `k`, as
    /// `⌈n/k⌉` fused traversals (the last one partial when `k ∤ n`).
    pub fn run(&mut self, n: u64) {
        match self.time_tile {
            Some(k) => {
                let mut remaining = n;
                while remaining > 0 {
                    let b = (k as u64).min(remaining) as usize;
                    self.advance(b);
                    remaining -= b as u64;
                }
            }
            None => {
                for _ in 0..n {
                    self.step();
                }
            }
        }
    }

    /// Current state.
    pub fn state(&self) -> &Field3 {
        &self.cur
    }

    /// Steps-per-traversal currently configured (1 when no time tile).
    pub fn time_tile(&self) -> usize {
        self.time_tile.unwrap_or(1)
    }

    /// Error norms against the analytic solution at the current time.
    pub fn norms(&self) -> Norms {
        self.problem.norms_after(&self.cur, self.steps_taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_case_max_nu_translates_exactly() {
        // At unit Courant number the scheme is an exact shift: after n
        // steps the pulse returns to its initial position (period n).
        let problem = AdvectionProblem::paper_case(12);
        let mut s = SerialStepper::new(problem);
        let initial = s.state().clone();
        s.run(12);
        assert!(s.state().max_abs_diff(&initial) < 1e-12);
        let norms = s.norms();
        assert!(norms.linf < 1e-12, "linf = {}", norms.linf);
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        let problem = AdvectionProblem::general_case(14);
        let mut serial = SerialStepper::new(problem);
        serial.run(5);
        for threads in [1, 2, 3, 4, 7] {
            let mut threaded = ThreadedStepper::new(problem, threads);
            threaded.run(5);
            assert_eq!(
                threaded.state().max_abs_diff(serial.state()),
                0.0,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn explicit_tile_matches_serial_bitwise() {
        let problem = AdvectionProblem::general_case(14);
        let mut serial = SerialStepper::new(problem);
        serial.run(4);
        for tile in [
            TileSpec::new(1, 1),
            TileSpec::new(3, 5),
            TileSpec::new(64, 64),
        ] {
            let mut threaded = ThreadedStepper::new(problem, 3).with_tile(tile);
            threaded.run(4);
            assert_eq!(
                threaded.state().max_abs_diff(serial.state()),
                0.0,
                "tile = {tile:?}"
            );
        }
    }

    #[test]
    fn time_tiled_matches_serial_bitwise_at_every_depth() {
        let problem = AdvectionProblem::general_case(12);
        for steps in [1u64, 3, 5, 8] {
            let mut serial = SerialStepper::new(problem);
            serial.run(steps);
            for k in [1usize, 2, 4, 7] {
                for threads in [1usize, 3] {
                    let mut tiled = ThreadedStepper::new(problem, threads).with_time_tile(k);
                    tiled.run(steps);
                    assert_eq!(tiled.time_tile(), k);
                    let s = serial.state();
                    let t = tiled.state();
                    for (x, y, z) in s.interior_range().iter() {
                        assert_eq!(
                            t.at(x, y, z).to_bits(),
                            s.at(x, y, z).to_bits(),
                            "steps={steps} k={k} threads={threads} at ({x},{y},{z})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn time_tiled_single_steps_match_serial_bitwise() {
        // step() under a time tile advances one step per traversal and
        // must interleave with run() without drift.
        let problem = AdvectionProblem::general_case(10);
        let mut serial = SerialStepper::new(problem);
        serial.run(5);
        let mut tiled = ThreadedStepper::new(problem, 2).with_time_tile(3);
        tiled.step();
        tiled.run(3);
        tiled.step();
        assert_eq!(tiled.state().max_abs_diff(serial.state()), 0.0);
    }

    #[test]
    #[should_panic(expected = "time tile depth")]
    fn time_tile_deeper_than_the_grid_is_rejected() {
        let _ = ThreadedStepper::new(AdvectionProblem::general_case(4), 1).with_time_tile(5);
    }

    #[test]
    fn more_threads_than_z_planes_is_fine() {
        let problem = AdvectionProblem::general_case(4);
        let mut serial = SerialStepper::new(problem);
        serial.run(3);
        let mut threaded = ThreadedStepper::new(problem, 16);
        threaded.run(3);
        assert_eq!(threaded.state().max_abs_diff(serial.state()), 0.0);
    }

    #[test]
    fn error_is_second_order_in_grid_refinement() {
        // O(Δ²) for fixed simulated time: refining the grid (and Δ with it)
        // by 2× should reduce the error by ≈4×. Use a sub-maximal ν so the
        // scheme is not an exact shift.
        let mut errors = Vec::new();
        for n in [16usize, 32, 64] {
            let problem = AdvectionProblem {
                nu: 0.5,
                velocity: Velocity::new(1.0, 0.7, 0.4),
                ..AdvectionProblem::paper_case(n)
            };
            // Fixed simulated time: steps ∝ n.
            let steps = (n / 4) as u64;
            let mut s = SerialStepper::new(problem);
            s.run(steps);
            errors.push(s.norms().l2);
        }
        let r1 = errors[0] / errors[1];
        let r2 = errors[1] / errors[2];
        assert!(
            r1 > 2.8,
            "refinement ratio too small: {r1} (errors {errors:?})"
        );
        assert!(
            r2 > 2.8,
            "refinement ratio too small: {r2} (errors {errors:?})"
        );
    }

    #[test]
    fn stability_at_max_nu_no_blowup() {
        let problem = AdvectionProblem::paper_case(10);
        let mut s = SerialStepper::new(problem);
        s.run(50);
        let max = s.state().data().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max <= 1.0 + 1e-9, "solution grew to {max}");
    }

    #[test]
    fn mass_is_conserved() {
        // Σa = 1 on a periodic domain ⇒ the discrete integral of u is an
        // invariant of the scheme (up to roundoff).
        let problem = AdvectionProblem::general_case(16);
        let mut s = SerialStepper::new(problem);
        let m0 = s.state().interior_sum();
        s.run(40);
        let m1 = s.state().interior_sum();
        assert!(((m1 - m0) / m0).abs() < 1e-12, "mass drifted: {m0} -> {m1}");
    }

    #[test]
    fn steps_counted() {
        let mut s = SerialStepper::new(AdvectionProblem::paper_case(6));
        s.run(7);
        assert_eq!(s.steps_taken(), 7);
    }
}
