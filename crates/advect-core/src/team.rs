//! OpenMP-like thread team.
//!
//! The paper's implementations are "Fortran with OpenMP directives". This
//! module provides the moral equivalent for the functional layer:
//!
//! * [`ThreadTeam::parallel`] — a fork-join parallel region where each of
//!   `T` threads runs a closure with its thread id (like `!$omp parallel`),
//!   with an in-region [`TeamCtx::barrier`] (like `!$omp barrier`) and a
//!   distinguished master thread (`tid == 0`, like `!$omp master`);
//! * [`Schedule::Static`] and [`Schedule::Guided`] loop scheduling.
//!   `Guided` "distributes chunks of work as threads request them, with
//!   chunks proportional in size to the remaining work divided by the
//!   number of threads" — exactly the mechanism implementation IV-D relies
//!   on to let the master thread join computation late after finishing MPI
//!   communication.
//!
//! Parallel regions are built on `std::thread::scope`, so closures may
//! borrow stack data without `unsafe`. For the small functional-layer
//! grids, region-spawn overhead is irrelevant; the virtual-time
//! performance layer models OpenMP overheads separately.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

/// Loop-scheduling policy, mirroring OpenMP's `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Even contiguous partition of the iteration space (OpenMP default).
    Static,
    /// Dynamic chunks proportional to remaining work / number of threads,
    /// with a minimum chunk size (OpenMP `schedule(guided)`).
    Guided {
        /// Smallest chunk handed out (OpenMP's optional chunk argument).
        min_chunk: usize,
    },
}

impl Schedule {
    /// Guided scheduling with the default minimum chunk of 1.
    pub const fn guided() -> Self {
        Schedule::Guided { min_chunk: 1 }
    }
}

/// Per-region context handed to each thread of a parallel region.
pub struct TeamCtx<'a> {
    /// This thread's id in `0..num_threads` (0 is the master).
    pub tid: usize,
    /// Number of threads in the region.
    pub num_threads: usize,
    barrier: &'a Barrier,
}

impl TeamCtx<'_> {
    /// Block until all threads of the region reach the barrier
    /// (like `!$omp barrier`).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Whether this thread is the master (like `!$omp master`).
    pub fn is_master(&self) -> bool {
        self.tid == 0
    }

    /// The contiguous sub-range of `range` this thread owns under static
    /// scheduling.
    pub fn static_chunk(&self, range: Range<usize>) -> Range<usize> {
        split_static(range, self.num_threads, self.tid)
    }
}

/// Evenly split `range` into `parts` contiguous chunks and return chunk
/// `index`. Leading chunks are one longer when the split is uneven.
pub fn split_static(range: Range<usize>, parts: usize, index: usize) -> Range<usize> {
    let n = range.end - range.start;
    let base = n / parts;
    let rem = n % parts;
    let start = range.start + index * base + index.min(rem);
    let len = base + usize::from(index < rem);
    start..start + len
}

/// A shared work queue implementing guided self-scheduling.
///
/// Threads call [`GuidedChunks::next_chunk`] until it returns `None`. Each
/// chunk is `max(min_chunk, remaining / num_threads)` iterations, so early
/// chunks are large and late chunks shrink — late-joining threads (e.g. a
/// master that was off doing communication) pick up leftover work.
pub struct GuidedChunks {
    next: AtomicUsize,
    end: usize,
    num_threads: usize,
    min_chunk: usize,
}

impl GuidedChunks {
    /// A new guided queue over `range` for `num_threads` consumers.
    pub fn new(range: Range<usize>, num_threads: usize, min_chunk: usize) -> Self {
        assert!(num_threads > 0);
        Self {
            next: AtomicUsize::new(range.start),
            end: range.end,
            num_threads,
            min_chunk: min_chunk.max(1),
        }
    }

    /// Claim the next chunk, or `None` when the range is exhausted.
    pub fn next_chunk(&self) -> Option<Range<usize>> {
        loop {
            let start = self.next.load(Ordering::Relaxed);
            if start >= self.end {
                return None;
            }
            let remaining = self.end - start;
            let size = (remaining / self.num_threads)
                .max(self.min_chunk)
                .min(remaining);
            let new_next = start + size;
            if self
                .next
                .compare_exchange_weak(start, new_next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Some(start..new_next);
            }
        }
    }
}

/// A team of a fixed number of threads supporting fork-join parallel
/// regions, mirroring an OpenMP thread team.
///
/// ```
/// use advect_core::team::{Schedule, ThreadTeam};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let team = ThreadTeam::new(4);
/// let sum = AtomicU64::new(0);
/// team.parallel_for(0..100, Schedule::guided(), |chunk| {
///     sum.fetch_add(chunk.map(|i| i as u64).sum(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 4950);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThreadTeam {
    num_threads: usize,
}

impl ThreadTeam {
    /// A team of `num_threads` threads (≥ 1).
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "a team needs at least one thread");
        Self { num_threads }
    }

    /// Number of threads in the team.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run a parallel region: `body` is executed once per thread with that
    /// thread's [`TeamCtx`]. Returns when every thread finishes.
    pub fn parallel<F>(&self, body: F)
    where
        F: Fn(&TeamCtx<'_>) + Sync,
    {
        let barrier = Barrier::new(self.num_threads);
        if self.num_threads == 1 {
            body(&TeamCtx {
                tid: 0,
                num_threads: 1,
                barrier: &barrier,
            });
            return;
        }
        std::thread::scope(|scope| {
            for tid in 1..self.num_threads {
                let body = &body;
                let barrier = &barrier;
                scope.spawn(move || {
                    body(&TeamCtx {
                        tid,
                        num_threads: self.num_threads,
                        barrier,
                    });
                });
            }
            body(&TeamCtx {
                tid: 0,
                num_threads: self.num_threads,
                barrier: &barrier,
            });
        });
    }

    /// Run a parallel region where each thread additionally receives
    /// ownership of one element of `items` (thread `t` gets `items[t]`).
    /// If there are fewer items than threads, the surplus threads do not
    /// run `body`. Used to hand each thread a disjoint mutable slab.
    pub fn parallel_with<T, F>(&self, items: Vec<T>, body: F)
    where
        T: Send,
        F: Fn(&TeamCtx<'_>, T) + Sync,
    {
        assert!(items.len() <= self.num_threads, "more items than threads");
        let n = items.len();
        let barrier = Barrier::new(n.max(1));
        if n == 0 {
            return;
        }
        if n == 1 {
            let item = items.into_iter().next().expect("one item");
            body(
                &TeamCtx {
                    tid: 0,
                    num_threads: 1,
                    barrier: &barrier,
                },
                item,
            );
            return;
        }
        std::thread::scope(|scope| {
            let mut iter = items.into_iter();
            let first = iter.next().expect("nonempty");
            for (tid, item) in iter.enumerate() {
                let body = &body;
                let barrier = &barrier;
                scope.spawn(move || {
                    body(
                        &TeamCtx {
                            tid: tid + 1,
                            num_threads: n,
                            barrier,
                        },
                        item,
                    );
                });
            }
            body(
                &TeamCtx {
                    tid: 0,
                    num_threads: n,
                    barrier: &barrier,
                },
                first,
            );
        });
    }

    /// Parallel loop over `range`: `body` receives contiguous iteration
    /// sub-ranges according to `schedule`.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        match schedule {
            Schedule::Static => self.parallel(|ctx| {
                let chunk = ctx.static_chunk(range.clone());
                if !chunk.is_empty() {
                    body(chunk);
                }
            }),
            Schedule::Guided { min_chunk } => {
                let queue = GuidedChunks::new(range, self.num_threads, min_chunk);
                self.parallel(|_ctx| {
                    while let Some(chunk) = queue.next_chunk() {
                        body(chunk);
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn static_split_covers_range_exactly() {
        for parts in 1..10 {
            for n in 0..40 {
                let mut covered = vec![0u8; n];
                for p in 0..parts {
                    for i in split_static(0..n, parts, p) {
                        covered[i] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "parts={parts} n={n}");
            }
        }
    }

    #[test]
    fn static_split_is_balanced() {
        let sizes: Vec<usize> = (0..5).map(|p| split_static(0..17, 5, p).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 17);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn guided_chunks_cover_range_once() {
        let q = GuidedChunks::new(3..103, 4, 1);
        let mut covered = [0u8; 103];
        while let Some(c) = q.next_chunk() {
            for i in c {
                covered[i] += 1;
            }
        }
        assert!(covered[..3].iter().all(|&c| c == 0));
        assert!(covered[3..].iter().all(|&c| c == 1));
    }

    #[test]
    fn guided_chunks_shrink() {
        let q = GuidedChunks::new(0..1000, 4, 1);
        let mut sizes = vec![];
        while let Some(c) = q.next_chunk() {
            sizes.push(c.len());
        }
        // First chunk is remaining/threads = 250; sizes never increase.
        assert_eq!(sizes[0], 250);
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn guided_respects_min_chunk() {
        let q = GuidedChunks::new(0..100, 8, 16);
        let mut total = 0;
        while let Some(c) = q.next_chunk() {
            assert!(c.len() >= 16 || total + c.len() == 100);
            total += c.len();
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn parallel_runs_every_tid_once() {
        let team = ThreadTeam::new(5);
        let hits = Mutex::new(vec![0u8; 5]);
        team.parallel(|ctx| {
            hits.lock().unwrap()[ctx.tid] += 1;
            assert_eq!(ctx.num_threads, 5);
        });
        assert_eq!(*hits.lock().unwrap(), vec![1; 5]);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let team = ThreadTeam::new(4);
        let phase1 = AtomicU64::new(0);
        let ok = AtomicU64::new(0);
        team.parallel(|ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every thread must observe all 4 increments.
            if phase1.load(Ordering::SeqCst) == 4 {
                ok.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn parallel_for_static_sums_correctly() {
        let team = ThreadTeam::new(3);
        let sum = AtomicU64::new(0);
        team.parallel_for(0..100, Schedule::Static, |r| {
            let local: u64 = r.map(|i| i as u64).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn parallel_for_guided_sums_correctly() {
        let team = ThreadTeam::new(4);
        let sum = AtomicU64::new(0);
        team.parallel_for(0..1000, Schedule::guided(), |r| {
            let local: u64 = r.map(|i| i as u64).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499500);
    }

    #[test]
    fn single_thread_team_runs_inline() {
        let team = ThreadTeam::new(1);
        let mut touched = false;
        let cell = std::cell::Cell::new(&mut touched);
        team.parallel(|ctx| {
            assert!(ctx.is_master());
            // Single-thread regions run on the calling thread; barrier is a no-op.
            ctx.barrier();
        });
        let _ = cell;
    }
}
