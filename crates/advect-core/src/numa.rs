//! Host NUMA topology and memory-placement policy.
//!
//! The modeled machines in the `machine` crate carry Table II NUMA
//! *parameters*; this module detects the topology of the machine the
//! code actually runs on, from sysfs (`/sys/devices/system/node`). Two
//! consumers:
//!
//! * [`crate::sweep::SweepPool`] maps workers onto cores **by NUMA
//!   domain** — contiguous blocks of workers land on the same node, so
//!   a worker and the z-slab pages it first-touched stay local;
//! * [`crate::field::Field3::new_placed`] zero-fills each z-slab of a
//!   new allocation from the worker that will own it (first-touch
//!   placement), instead of mapping every page on the allocating
//!   thread's node.
//!
//! On single-node hosts both degenerate to the PR 6 behavior: detection
//! reports one node holding every cpu, the worker→core map reduces to
//! `worker mod cores`, and parallel zero-fill is placement-neutral.
//!
//! The `ADVECT_NUMA=on|off` override (default on) gates first-touch
//! placement; malformed values panic rather than silently falling back,
//! like every `ADVECT_*` knob since PR 7.

use std::path::Path;
use std::sync::OnceLock;

/// Fallback last-level-cache size when sysfs is unreadable: 32 MiB, a
/// conservative contemporary server share.
const FALLBACK_LLC_BYTES: usize = 32 * 1024 * 1024;

/// The host's NUMA node layout: which cpu ids live on which node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    /// Sorted cpu ids per node, nodes in id order. Never empty; every
    /// node holds at least one cpu.
    pub nodes: Vec<Vec<usize>>,
}

impl NumaTopology {
    /// Detect the host topology from sysfs, falling back to a single
    /// node holding every schedulable cpu when sysfs is unavailable
    /// (non-Linux, sandboxes).
    pub fn detect() -> NumaTopology {
        Self::from_sysfs(Path::new("/sys/devices/system/node"))
            .unwrap_or_else(|| Self::single_node(available_cpus()))
    }

    /// A trivial topology: one node with cpus `0..cpus`.
    pub fn single_node(cpus: usize) -> NumaTopology {
        NumaTopology {
            nodes: vec![(0..cpus.max(1)).collect()],
        }
    }

    /// Parse `node<k>/cpulist` files under a sysfs-style root.
    fn from_sysfs(root: &Path) -> Option<NumaTopology> {
        let mut nodes: Vec<(usize, Vec<usize>)> = Vec::new();
        for entry in std::fs::read_dir(root).ok()? {
            let entry = entry.ok()?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(id) = name
                .strip_prefix("node")
                .and_then(|r| r.parse::<usize>().ok())
            else {
                continue;
            };
            let list = std::fs::read_to_string(entry.path().join("cpulist")).ok()?;
            let cpus = parse_cpu_list(list.trim())?;
            if !cpus.is_empty() {
                nodes.push((id, cpus));
            }
        }
        if nodes.is_empty() {
            return None;
        }
        nodes.sort_by_key(|(id, _)| *id);
        Some(NumaTopology {
            nodes: nodes.into_iter().map(|(_, cpus)| cpus).collect(),
        })
    }

    /// Number of NUMA nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cpus on the largest node (the "cores per node" a bench snapshot
    /// records; nodes are symmetric on every machine we care about).
    pub fn cores_per_node(&self) -> usize {
        self.nodes.iter().map(|n| n.len()).max().unwrap_or(1)
    }

    /// Total cpus across all nodes.
    pub fn total_cpus(&self) -> usize {
        self.nodes.iter().map(|n| n.len()).sum()
    }

    /// The node a worker of a `team`-wide pool belongs to: workers are
    /// split into contiguous blocks, one block per node, mirroring the
    /// static z-slab partition — so the block that first-touches a slab
    /// is the block whose workers sweep it.
    pub fn node_of_worker(&self, worker: usize, team: usize) -> usize {
        let team = team.max(1);
        let worker = worker.min(team - 1);
        let parts = self.node_count();
        for node in 0..parts {
            if crate::team::split_static(0..team, parts, node).contains(&worker) {
                return node;
            }
        }
        parts - 1
    }

    /// The cpu a worker of a `team`-wide pool pins to: round-robin over
    /// its node's cpus, offset by the worker's rank within the node's
    /// block. With one node this is exactly `worker mod cores`.
    pub fn core_for_worker(&self, worker: usize, team: usize) -> usize {
        let team = team.max(1);
        let worker = worker.min(team - 1);
        let node = self.node_of_worker(worker, team);
        let block = crate::team::split_static(0..team, self.node_count(), node);
        let cpus = &self.nodes[node];
        cpus[(worker - block.start) % cpus.len()]
    }
}

/// The process-wide detected host topology.
pub fn host() -> &'static NumaTopology {
    static HOST: OnceLock<NumaTopology> = OnceLock::new();
    HOST.get_or_init(NumaTopology::detect)
}

/// Parse a sysfs cpulist like `0-3,8,10-11` into sorted cpu ids.
fn parse_cpu_list(list: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    if list.is_empty() {
        return Some(cpus);
    }
    for part in list.split(',') {
        match part.split_once('-') {
            Some((lo, hi)) => {
                let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse::<usize>().ok()?);
                if hi < lo {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
            None => cpus.push(part.trim().parse().ok()?),
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    Some(cpus)
}

fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Parse an `ADVECT_NUMA` value: `1|on|true` enables first-touch
/// placement, `0|off|false` disables it; anything else is an error.
pub fn parse_enabled(v: &str) -> Result<bool, String> {
    match v {
        "1" | "on" | "true" => Ok(true),
        "0" | "off" | "false" => Ok(false),
        other => Err(format!(
            "ADVECT_NUMA={other:?}: expected one of 1|on|true|0|off|false"
        )),
    }
}

/// Whether first-touch placement is enabled (`ADVECT_NUMA`, default on).
///
/// # Panics
///
/// On a malformed `ADVECT_NUMA` value — a mistyped knob must fail the
/// run, not silently measure the default configuration.
pub fn placement_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("ADVECT_NUMA") {
        Ok(v) => parse_enabled(&v).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => true,
    })
}

/// Detected last-level-cache size in bytes (the largest data/unified
/// cache sysfs reports for cpu0), or a 32 MiB fallback. Feeds the
/// temporal-blocking tile heuristic and the bench's larger-than-LLC
/// grid choice.
pub fn host_llc_bytes() -> usize {
    static LLC: OnceLock<usize> = OnceLock::new();
    *LLC.get_or_init(|| {
        llc_from_sysfs(Path::new("/sys/devices/system/cpu/cpu0/cache"))
            .unwrap_or(FALLBACK_LLC_BYTES)
    })
}

fn llc_from_sysfs(root: &Path) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (level, bytes)
    for entry in std::fs::read_dir(root).ok()? {
        let entry = entry.ok()?;
        let path = entry.path();
        let read = |f: &str| std::fs::read_to_string(path.join(f));
        let Ok(kind) = read("type") else { continue };
        if kind.trim() == "Instruction" {
            continue;
        }
        let level: usize = read("level").ok()?.trim().parse().ok()?;
        let bytes = parse_cache_size(read("size").ok()?.trim())?;
        if best.is_none_or(|(l, _)| level > l) {
            best = Some((level, bytes));
        }
    }
    best.map(|(_, bytes)| bytes)
}

/// Parse a sysfs cache size like `2048K` or `32M` into bytes.
fn parse_cache_size(s: &str) -> Option<usize> {
    let (digits, scale) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1024),
        b'M' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok().map(|v| v * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_yields_a_usable_topology() {
        let t = host();
        assert!(t.node_count() >= 1);
        assert!(t.cores_per_node() >= 1);
        assert_eq!(
            t.total_cpus(),
            t.nodes.iter().map(|n| n.len()).sum::<usize>()
        );
        assert!(t.nodes.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn cpu_list_parsing() {
        assert_eq!(parse_cpu_list("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpu_list("0-1,4,6-7"), Some(vec![0, 1, 4, 6, 7]));
        assert_eq!(parse_cpu_list("2"), Some(vec![2]));
        assert_eq!(parse_cpu_list(""), Some(vec![]));
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list("a-b"), None);
    }

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("2048K"), Some(2 * 1024 * 1024));
        assert_eq!(parse_cache_size("32M"), Some(32 * 1024 * 1024));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("xK"), None);
    }

    #[test]
    fn single_node_maps_workers_round_robin() {
        let t = NumaTopology::single_node(4);
        assert_eq!(t.node_count(), 1);
        for w in 0..8 {
            assert_eq!(t.node_of_worker(w, 8), 0);
            assert_eq!(t.core_for_worker(w, 8), w % 4);
        }
    }

    #[test]
    fn two_node_blocks_are_contiguous_and_local() {
        // 2 nodes × 4 cpus: an 8-worker team splits 4 + 4; each block
        // pins within its own node's cpus.
        let t = NumaTopology {
            nodes: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
        };
        let nodes: Vec<usize> = (0..8).map(|w| t.node_of_worker(w, 8)).collect();
        assert_eq!(nodes, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(t.core_for_worker(0, 8), 0);
        assert_eq!(t.core_for_worker(4, 8), 4);
        assert_eq!(t.core_for_worker(7, 8), 7);
        // A 2-worker team lands one worker per node.
        assert_eq!(t.node_of_worker(0, 2), 0);
        assert_eq!(t.node_of_worker(1, 2), 1);
        // Oversubscribed teams wrap within their node.
        // Worker 3 of 16 is the 3rd in node 0's block of 8, wrapping
        // into the node's 4 cpus at index 3 % 4 = 3.
        assert_eq!(t.core_for_worker(3, 16), t.nodes[0][3]);
    }

    #[test]
    fn enabled_parse_is_strict() {
        assert_eq!(parse_enabled("1"), Ok(true));
        assert_eq!(parse_enabled("on"), Ok(true));
        assert_eq!(parse_enabled("false"), Ok(false));
        assert!(parse_enabled("yes").is_err());
        assert!(parse_enabled("").is_err());
    }

    #[test]
    fn llc_detection_has_a_floor() {
        assert!(host_llc_bytes() >= 1024);
    }
}
