//! Three-dimensional scalar fields with halo (ghost) points.
//!
//! Storage is a single contiguous `Vec<f64>` with **x fastest** (the
//! Fortran-style layout the paper uses), so x-lines are contiguous in
//! memory. A field of interior size `nx × ny × nz` with halo width `h`
//! allocates `(nx+2h) × (ny+2h) × (nz+2h)` points; interior-relative
//! coordinates run from `-h` to `n+h-1` in each dimension.

/// Inclusive-exclusive 3-D index range in interior-relative coordinates.
///
/// `x` spans `x.0 .. x.1`, etc. Coordinates may extend into the halo
/// (negative, or ≥ the interior size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range3 {
    /// Half-open x range.
    pub x: (i64, i64),
    /// Half-open y range.
    pub y: (i64, i64),
    /// Half-open z range.
    pub z: (i64, i64),
}

impl Range3 {
    /// A new range from half-open per-dimension bounds.
    pub fn new(x: (i64, i64), y: (i64, i64), z: (i64, i64)) -> Self {
        Self { x, y, z }
    }

    /// Number of points in the range (0 if any dimension is empty).
    pub fn len(&self) -> usize {
        let dx = (self.x.1 - self.x.0).max(0) as usize;
        let dy = (self.y.1 - self.y.0).max(0) as usize;
        let dz = (self.z.1 - self.z.0).max(0) as usize;
        dx * dy * dz
    }

    /// Whether the range contains no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over `(x, y, z)` tuples, x fastest.
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64, i64)> + '_ {
        let r = *self;
        (r.z.0..r.z.1).flat_map(move |z| {
            (r.y.0..r.y.1).flat_map(move |y| (r.x.0..r.x.1).map(move |x| (x, y, z)))
        })
    }

    /// Intersection of two ranges.
    pub fn intersect(&self, other: &Range3) -> Range3 {
        Range3::new(
            (self.x.0.max(other.x.0), self.x.1.min(other.x.1)),
            (self.y.0.max(other.y.0), self.y.1.min(other.y.1)),
            (self.z.0.max(other.z.0), self.z.1.min(other.z.1)),
        )
    }

    /// Whether a point lies inside this range.
    pub fn contains(&self, x: i64, y: i64, z: i64) -> bool {
        x >= self.x.0
            && x < self.x.1
            && y >= self.y.0
            && y < self.y.1
            && z >= self.z.0
            && z < self.z.1
    }
}

/// A 3-D scalar field with halo points, x-fastest contiguous storage.
///
/// ```
/// use advect_core::field::Field3;
/// let mut f = Field3::new(4, 4, 4, 1);
/// f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
/// f.copy_periodic_halo();
/// // Halo points wrap around the periodic domain:
/// assert_eq!(f.at(-1, 0, 0), f.at(3, 0, 0));
/// assert_eq!(f.at(4, 4, 4), f.at(0, 0, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    nx: usize,
    ny: usize,
    nz: usize,
    h: usize,
    sx: usize, // allocated x extent = nx + 2h
    sy: usize,
    sz: usize,
    data: Vec<f64>,
}

impl Field3 {
    /// Allocate a zero-filled field with the given interior size and halo
    /// width.
    pub fn new(nx: usize, ny: usize, nz: usize, halo: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "interior dimensions must be positive"
        );
        let (sx, sy, sz) = (nx + 2 * halo, ny + 2 * halo, nz + 2 * halo);
        Self {
            nx,
            ny,
            nz,
            h: halo,
            sx,
            sy,
            sz,
            data: vec![0.0; sx * sy * sz],
        }
    }

    /// Allocate a zero-filled field with NUMA first-touch placement:
    /// the allocation is partitioned into contiguous z-plane slabs and
    /// each slab is zeroed by the pool worker that will own it in
    /// later sweeps ([`crate::sweep::SweepPool::run_partitioned`] uses
    /// the same static partition), so under Linux's first-touch policy
    /// each slab's pages land on that worker's NUMA node instead of
    /// all on the allocating thread's node.
    ///
    /// Falls back to [`Field3::new`] on single-worker pools or when
    /// placement is disabled (`ADVECT_NUMA=off`); the contents are
    /// identical either way — only page placement differs.
    pub fn new_placed(
        nx: usize,
        ny: usize,
        nz: usize,
        halo: usize,
        pool: &crate::sweep::SweepPool,
    ) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "interior dimensions must be positive"
        );
        let (sx, sy, sz) = (nx + 2 * halo, ny + 2 * halo, nz + 2 * halo);
        if pool.threads() <= 1 || sz < 2 || !crate::numa::placement_enabled() {
            return Self::new(nx, ny, nz, halo);
        }
        let total = sx * sy * sz;
        let plane = sx * sy;
        let mut data: Vec<f64> = Vec::with_capacity(total);
        let base = data.as_mut_ptr() as usize; // usize crosses threads freely
        pool.run_partitioned(sz, |_worker, planes| {
            let ptr = base as *mut f64;
            // SAFETY: plane ranges are disjoint and within the reserved
            // capacity; all-zero bytes are a valid f64 (+0.0).
            unsafe {
                std::ptr::write_bytes(ptr.add(planes.start * plane), 0, planes.len() * plane);
            }
        });
        // SAFETY: the partition covers every plane, so all `total`
        // elements were initialized above.
        unsafe { data.set_len(total) };
        Self {
            nx,
            ny,
            nz,
            h: halo,
            sx,
            sy,
            sz,
            data,
        }
    }

    /// Interior size `(nx, ny, nz)`.
    pub fn interior(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Halo width.
    pub fn halo(&self) -> usize {
        self.h
    }

    /// Number of interior points.
    pub fn interior_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// The interior as a [`Range3`].
    pub fn interior_range(&self) -> Range3 {
        Range3::new(
            (0, self.nx as i64),
            (0, self.ny as i64),
            (0, self.nz as i64),
        )
    }

    /// The full allocation (interior + halo) as a [`Range3`].
    pub fn full_range(&self) -> Range3 {
        let h = self.h as i64;
        Range3::new(
            (-h, self.nx as i64 + h),
            (-h, self.ny as i64 + h),
            (-h, self.nz as i64 + h),
        )
    }

    /// Flat index for interior-relative coordinates (may address halo).
    #[inline]
    pub fn idx(&self, x: i64, y: i64, z: i64) -> usize {
        let h = self.h as i64;
        debug_assert!(
            x >= -h && x < (self.nx + self.h) as i64,
            "x={x} out of range"
        );
        debug_assert!(
            y >= -h && y < (self.ny + self.h) as i64,
            "y={y} out of range"
        );
        debug_assert!(
            z >= -h && z < (self.nz + self.h) as i64,
            "z={z} out of range"
        );
        let ix = (x + h) as usize;
        let iy = (y + h) as usize;
        let iz = (z + h) as usize;
        ix + self.sx * (iy + self.sy * iz)
    }

    /// Value at interior-relative coordinates.
    #[inline]
    pub fn at(&self, x: i64, y: i64, z: i64) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Mutable value at interior-relative coordinates.
    #[inline]
    pub fn at_mut(&mut self, x: i64, y: i64, z: i64) -> &mut f64 {
        let i = self.idx(x, y, z);
        &mut self.data[i]
    }

    /// The contiguous x-row starting at interior-relative `(x0, y, z)`,
    /// spanning `w` points. Rows are the unit of work for the
    /// row-vectorized stencil kernels: slicing once per row removes the
    /// per-element bounds checks from the inner loops.
    #[inline]
    pub fn row(&self, x0: i64, y: i64, z: i64, w: usize) -> &[f64] {
        let i = self.idx(x0, y, z);
        &self.data[i..i + w]
    }

    /// Mutable contiguous x-row starting at `(x0, y, z)`, spanning `w`
    /// points.
    #[inline]
    pub fn row_mut(&mut self, x0: i64, y: i64, z: i64, w: usize) -> &mut [f64] {
        let i = self.idx(x0, y, z);
        &mut self.data[i..i + w]
    }

    /// Raw data slice (interior + halo, x fastest).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable data slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Allocated extents `(sx, sy, sz)` including halos.
    pub fn extents(&self) -> (usize, usize, usize) {
        (self.sx, self.sy, self.sz)
    }

    /// Fill the interior from a function of interior-relative coordinates.
    pub fn fill_interior(&mut self, mut f: impl FnMut(i64, i64, i64) -> f64) {
        for z in 0..self.nz as i64 {
            for y in 0..self.ny as i64 {
                for x in 0..self.nx as i64 {
                    *self.at_mut(x, y, z) = f(x, y, z);
                }
            }
        }
    }

    /// Copy the interior of `src` into the interior of `self`
    /// (the paper's Step 3, "copy the new state to the current state").
    pub fn copy_interior_from(&mut self, src: &Field3) {
        assert_eq!(self.interior(), src.interior(), "interior sizes must match");
        for z in 0..self.nz as i64 {
            for y in 0..self.ny as i64 {
                // x-lines are contiguous: copy as slices.
                let d0 = self.idx(0, y, z);
                let s0 = src.idx(0, y, z);
                let n = self.nx;
                self.data[d0..d0 + n].copy_from_slice(&src.data[s0..s0 + n]);
            }
        }
    }

    /// Copy a sub-region of the interior of `src` into the same region of
    /// `self`. Used by partitioned steppers that update regions piecewise.
    pub fn copy_region_from(&mut self, src: &Field3, region: Range3) {
        assert_eq!(self.interior(), src.interior());
        for z in region.z.0..region.z.1 {
            for y in region.y.0..region.y.1 {
                let n = (region.x.1 - region.x.0).max(0) as usize;
                if n == 0 {
                    continue;
                }
                let d0 = self.idx(region.x.0, y, z);
                let s0 = src.idx(region.x.0, y, z);
                self.data[d0..d0 + n].copy_from_slice(&src.data[s0..s0 + n]);
            }
        }
    }

    /// Pack a region into a contiguous buffer (x fastest). Returns the
    /// number of values written; `buf` must have length ≥ `region.len()`.
    pub fn pack(&self, region: Range3, buf: &mut [f64]) -> usize {
        let mut n = 0;
        for z in region.z.0..region.z.1 {
            for y in region.y.0..region.y.1 {
                let w = (region.x.1 - region.x.0).max(0) as usize;
                if w == 0 {
                    continue;
                }
                let s0 = self.idx(region.x.0, y, z);
                buf[n..n + w].copy_from_slice(&self.data[s0..s0 + w]);
                n += w;
            }
        }
        n
    }

    /// Pack a region into a freshly built vector (x fastest). Rows are
    /// appended with `extend_from_slice`, so — unlike `vec![0.0; len]`
    /// followed by [`Field3::pack`] — no value is written twice.
    pub fn pack_vec(&self, region: Range3) -> Vec<f64> {
        let mut out = Vec::with_capacity(region.len());
        let w = (region.x.1 - region.x.0).max(0) as usize;
        for z in region.z.0..region.z.1 {
            for y in region.y.0..region.y.1 {
                if w == 0 {
                    continue;
                }
                let s0 = self.idx(region.x.0, y, z);
                out.extend_from_slice(&self.data[s0..s0 + w]);
            }
        }
        out
    }

    /// Unpack a contiguous buffer into a region (inverse of [`Field3::pack`]).
    pub fn unpack(&mut self, region: Range3, buf: &[f64]) -> usize {
        let mut n = 0;
        for z in region.z.0..region.z.1 {
            for y in region.y.0..region.y.1 {
                let w = (region.x.1 - region.x.0).max(0) as usize;
                if w == 0 {
                    continue;
                }
                let d0 = self.idx(region.x.0, y, z);
                self.data[d0..d0 + w].copy_from_slice(&buf[n..n + w]);
                n += w;
            }
        }
        n
    }

    /// Fill all halo points from the opposite interior boundary, making the
    /// field periodic. Performed dimension-serialized (x, then y, then z)
    /// so that corner halos are filled correctly — the same well-established
    /// strategy the paper uses to reduce 26 neighbor exchanges to 6.
    pub fn copy_periodic_halo(&mut self) {
        let h = self.h as i64;
        let (nx, ny, nz) = (self.nx as i64, self.ny as i64, self.nz as i64);
        // x dimension: only interior y/z needed yet, but include already
        // filled ranges progressively. After x, x-halos valid for interior
        // y,z; we do full y range after y pass, etc. Easiest correct order:
        // x pass over interior y,z; y pass over extended x, interior z;
        // z pass over extended x and y.
        for z in 0..nz {
            for y in 0..ny {
                for g in 0..h {
                    *self.at_mut(-1 - g, y, z) = self.at(nx - 1 - g, y, z);
                    *self.at_mut(nx + g, y, z) = self.at(g, y, z);
                }
            }
        }
        for z in 0..nz {
            for g in 0..h {
                for x in -h..nx + h {
                    *self.at_mut(x, -1 - g, z) = self.at(x, ny - 1 - g, z);
                    *self.at_mut(x, ny + g, z) = self.at(x, g, z);
                }
            }
        }
        for g in 0..h {
            for y in -h..ny + h {
                for x in -h..nx + h {
                    *self.at_mut(x, y, -1 - g) = self.at(x, y, nz - 1 - g);
                    *self.at_mut(x, y, nz + g) = self.at(x, y, g);
                }
            }
        }
    }

    /// Split the field into mutable z-slabs at the given interior-z cut
    /// points, for data-race-free parallel writes. `cuts` must be strictly
    /// increasing interior z coordinates in `(0, nz)`; the returned slabs
    /// cover interior z ranges `[0, cuts[0])`, `[cuts[0], cuts[1])`, …,
    /// `[cuts[last], nz)`. The first and last slabs also carry the z-halo
    /// planes so the slab storage tiles the whole allocation.
    pub fn z_slabs_mut(&mut self, cuts: &[i64]) -> Vec<ZSlabMut<'_>> {
        let nz = self.nz as i64;
        let h = self.h as i64;
        for w in cuts.windows(2) {
            assert!(w[0] < w[1], "cuts must be strictly increasing");
        }
        if let (Some(&first), Some(&last)) = (cuts.first(), cuts.last()) {
            assert!(
                first > 0 && last < nz,
                "cuts must lie strictly inside (0, nz)"
            );
        }
        let plane = self.sx * self.sy;
        let mut bounds: Vec<(i64, i64)> = Vec::with_capacity(cuts.len() + 1);
        let mut prev = 0i64;
        for &c in cuts {
            bounds.push((prev, c));
            prev = c;
        }
        bounds.push((prev, nz));
        let mut slabs = Vec::with_capacity(bounds.len());
        let mut rest: &mut [f64] = &mut self.data;
        let mut consumed_planes = 0usize;
        let n_bounds = bounds.len();
        for (i, (z0, z1)) in bounds.into_iter().enumerate() {
            // Plane extents including halo planes on the outer slabs.
            let lo = if i == 0 { z0 - h } else { z0 };
            let hi = if i == n_bounds - 1 { z1 + h } else { z1 };
            let planes = (hi - lo) as usize;
            let (mine, tail) = rest.split_at_mut(planes * plane);
            rest = tail;
            consumed_planes += planes;
            slabs.push(ZSlabMut {
                z_lo: lo,
                z0,
                z1,
                data: mine,
                sx: self.sx,
                sy: self.sy,
                h: self.h,
            });
        }
        debug_assert_eq!(consumed_planes, self.sz);
        debug_assert!(rest.is_empty());
        slabs
    }

    /// Sum of all interior values (the discrete mass — conserved by the
    /// scheme on a periodic domain because the coefficients sum to 1).
    pub fn interior_sum(&self) -> f64 {
        let mut total = 0.0;
        for z in 0..self.nz as i64 {
            for y in 0..self.ny as i64 {
                let i0 = self.idx(0, y, z);
                total += self.data[i0..i0 + self.nx].iter().sum::<f64>();
            }
        }
        total
    }

    /// Maximum absolute difference over the interior between two fields.
    pub fn max_abs_diff(&self, other: &Field3) -> f64 {
        assert_eq!(self.interior(), other.interior());
        let mut m: f64 = 0.0;
        for z in 0..self.nz as i64 {
            for y in 0..self.ny as i64 {
                for x in 0..self.nx as i64 {
                    m = m.max((self.at(x, y, z) - other.at(x, y, z)).abs());
                }
            }
        }
        m
    }
}

/// A shared handle allowing multiple threads to access *disjoint* points
/// of one field concurrently — dynamic (guided) scheduling and
/// communication/computation overlap, where the regions a thread touches
/// are not known up front (implementation IV-D).
///
/// Built on the `&mut [T]` → `&[UnsafeCell<T>]` pattern: the exclusive
/// borrow of the field is converted into shared interior-mutable cells, so
/// every access goes through `UnsafeCell` and no reference-aliasing rules
/// are violated. The caller's contract is freedom from data races: a point
/// written by one thread must not be read or written by another without
/// synchronization. The schedulers in this workspace hand out disjoint
/// regions (e.g. halo writes vs. interior reads), which satisfies this.
pub struct SharedField<'a> {
    cells: &'a [std::cell::UnsafeCell<f64>],
    sx: usize,
    sy: usize,
    h: usize,
}

// SAFETY: concurrent access to *distinct* cells is well-defined; access to
// the same cell is excluded by the caller's partition contract.
unsafe impl Sync for SharedField<'_> {}

impl<'a> SharedField<'a> {
    /// Wrap a field for concurrent disjoint access.
    pub fn new(field: &'a mut Field3) -> Self {
        let (sx, sy, _) = field.extents();
        let h = field.halo();
        let data: &'a mut [f64] = field.data_mut();
        // SAFETY: UnsafeCell<f64> has the same layout as f64, and the
        // exclusive borrow guarantees no other access path exists.
        let cells = unsafe {
            std::slice::from_raw_parts(
                data.as_mut_ptr() as *const std::cell::UnsafeCell<f64>,
                data.len(),
            )
        };
        Self { cells, sx, sy, h }
    }

    #[inline]
    fn index(&self, x: i64, y: i64, z: i64) -> usize {
        let h = self.h as i64;
        (x + h) as usize + self.sx * ((y + h) as usize + self.sy * (z + h) as usize)
    }

    /// Allocated `(sx, sy)` strides of the wrapped field (including
    /// halos). The x stride feeds the cache-blocking tile heuristic.
    pub fn strides(&self) -> (usize, usize) {
        (self.sx, self.sy)
    }

    /// Write one value at interior-relative coordinates.
    #[inline]
    pub fn write(&self, x: i64, y: i64, z: i64, v: f64) {
        // SAFETY: per the type's contract, no other thread accesses this
        // point concurrently.
        unsafe { *self.cells[self.index(x, y, z)].get() = v }
    }

    /// Read one value at interior-relative coordinates.
    #[inline]
    pub fn read(&self, x: i64, y: i64, z: i64) -> f64 {
        // SAFETY: per the type's contract, no other thread writes this
        // point concurrently.
        unsafe { *self.cells[self.index(x, y, z)].get() }
    }

    /// A contiguous x-row as a shared slice, starting at interior-relative
    /// `(x0, y, z)` and spanning `w` points.
    ///
    /// # Safety
    ///
    /// No thread may write any of the `w` points while the returned slice
    /// lives. This is stronger than the per-access contract of
    /// [`SharedField::read`]: the exclusion must hold for the slice's
    /// whole lifetime, not just one access.
    #[inline]
    pub unsafe fn row(&self, x0: i64, y: i64, z: i64, w: usize) -> &[f64] {
        let i = self.index(x0, y, z);
        debug_assert!(i + w <= self.cells.len());
        std::slice::from_raw_parts(self.cells[i].get() as *const f64, w)
    }

    /// A contiguous x-row as an exclusive slice, starting at
    /// interior-relative `(x0, y, z)` and spanning `w` points.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the `w` points for the
    /// lifetime of the returned slice — no other thread (nor this one,
    /// through another handle) may read or write them.
    #[inline]
    #[allow(clippy::mut_from_ref)] // UnsafeCell interior mutability; see Safety.
    pub unsafe fn row_mut(&self, x0: i64, y: i64, z: i64, w: usize) -> &mut [f64] {
        let i = self.index(x0, y, z);
        debug_assert!(i + w <= self.cells.len());
        std::slice::from_raw_parts_mut(self.cells[i].get(), w)
    }

    /// Pack a region into a new buffer (x fastest), reading through the
    /// shared cells.
    pub fn pack(&self, region: Range3) -> Vec<f64> {
        let mut out = Vec::with_capacity(region.len());
        for (x, y, z) in region.iter() {
            out.push(self.read(x, y, z));
        }
        out
    }

    /// Pack a region into a caller-provided buffer (x fastest), reading
    /// through the shared cells — the reusable-staging variant of
    /// [`SharedField::pack`]. `buf` must have length `region.len()`.
    pub fn pack_into(&self, region: Range3, buf: &mut [f64]) {
        debug_assert_eq!(buf.len(), region.len());
        for (i, (x, y, z)) in region.iter().enumerate() {
            buf[i] = self.read(x, y, z);
        }
    }

    /// Unpack a buffer into a region, writing through the shared cells.
    pub fn unpack(&self, region: Range3, data: &[f64]) {
        debug_assert_eq!(data.len(), region.len());
        for (i, (x, y, z)) in region.iter().enumerate() {
            self.write(x, y, z, data[i]);
        }
    }
}

/// Backwards-compatible alias: the write-only use of [`SharedField`].
pub type SharedWriter<'a> = SharedField<'a>;

/// A mutable, contiguous z-slab of a [`Field3`], produced by
/// [`Field3::z_slabs_mut`]. Covers interior z in `[z0, z1)` plus, on the
/// outermost slabs, the z-halo planes.
pub struct ZSlabMut<'a> {
    /// First z plane (interior-relative) physically present in `data`.
    z_lo: i64,
    /// First interior z this slab owns.
    pub z0: i64,
    /// One past the last interior z this slab owns.
    pub z1: i64,
    /// Contiguous backing storage for planes `z_lo ..` of the parent field.
    pub data: &'a mut [f64],
    sx: usize,
    sy: usize,
    h: usize,
}

impl ZSlabMut<'_> {
    /// Flat index into this slab's `data` for interior-relative parent
    /// coordinates. `z` must lie within the slab's physical planes.
    #[inline]
    pub fn idx(&self, x: i64, y: i64, z: i64) -> usize {
        let h = self.h as i64;
        debug_assert!(z >= self.z_lo, "z={z} below slab start {}", self.z_lo);
        let ix = (x + h) as usize;
        let iy = (y + h) as usize;
        let iz = (z - self.z_lo) as usize;
        let idx = ix + self.sx * (iy + self.sy * iz);
        debug_assert!(idx < self.data.len());
        idx
    }

    /// Mutable value at interior-relative parent coordinates.
    #[inline]
    pub fn at_mut(&mut self, x: i64, y: i64, z: i64) -> &mut f64 {
        let i = self.idx(x, y, z);
        &mut self.data[i]
    }

    /// Mutable contiguous x-row starting at interior-relative parent
    /// coordinates `(x0, y, z)`, spanning `w` points.
    #[inline]
    pub fn row_mut(&mut self, x0: i64, y: i64, z: i64, w: usize) -> &mut [f64] {
        let i = self.idx(x0, y, z);
        &mut self.data[i..i + w]
    }

    /// The interior range owned by this slab, clipped from `full`.
    pub fn owned_region(&self, full: Range3) -> Range3 {
        full.intersect(&Range3::new(full.x, full.y, (self.z0, self.z1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placed_allocation_matches_plain_allocation() {
        for workers in [1, 2, 4, 9] {
            let pool = crate::sweep::SweepPool::new(workers);
            let placed = Field3::new_placed(6, 5, 7, 2, &pool);
            let plain = Field3::new(6, 5, 7, 2);
            assert_eq!(placed, plain, "workers={workers}");
            assert_eq!(placed.data().len(), plain.data().len());
            assert!(placed.data().iter().all(|v| v.to_bits() == 0));
        }
    }

    #[test]
    fn index_layout_is_x_fastest() {
        let f = Field3::new(4, 3, 2, 1);
        assert_eq!(f.idx(1, 0, 0), f.idx(0, 0, 0) + 1);
        assert_eq!(f.idx(0, 1, 0), f.idx(0, 0, 0) + 6); // sx = 4+2
        assert_eq!(f.idx(0, 0, 1), f.idx(0, 0, 0) + 6 * 5); // sx*sy = 6*5
    }

    #[test]
    fn fill_and_read_back() {
        let mut f = Field3::new(3, 4, 5, 1);
        f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
        assert_eq!(f.at(2, 3, 4), (2 + 30 + 400) as f64);
        assert_eq!(f.at(0, 0, 0), 0.0);
    }

    #[test]
    fn periodic_halo_wraps_all_26_directions() {
        let mut f = Field3::new(4, 4, 4, 1);
        f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
        f.copy_periodic_halo();
        // Face
        assert_eq!(f.at(-1, 2, 2), f.at(3, 2, 2));
        assert_eq!(f.at(4, 2, 2), f.at(0, 2, 2));
        // Edge
        assert_eq!(f.at(-1, -1, 2), f.at(3, 3, 2));
        // Corner
        assert_eq!(f.at(-1, -1, -1), f.at(3, 3, 3));
        assert_eq!(f.at(4, 4, 4), f.at(0, 0, 0));
        assert_eq!(f.at(4, -1, 4), f.at(0, 3, 0));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut f = Field3::new(5, 4, 3, 1);
        f.fill_interior(|x, y, z| (x * 7 + y * 13 + z * 29) as f64);
        let region = Range3::new((1, 4), (0, 4), (1, 3));
        let mut buf = vec![0.0; region.len()];
        let n = f.pack(region, &mut buf);
        assert_eq!(n, region.len());
        let mut g = Field3::new(5, 4, 3, 1);
        let m = g.unpack(region, &buf);
        assert_eq!(m, n);
        for (x, y, z) in region.iter() {
            assert_eq!(g.at(x, y, z), f.at(x, y, z));
        }
    }

    #[test]
    fn pack_vec_matches_pack() {
        let mut f = Field3::new(5, 4, 3, 1);
        f.fill_interior(|x, y, z| (x * 7 + y * 13 + z * 29) as f64);
        f.copy_periodic_halo();
        let region = Range3::new((-1, 4), (0, 4), (1, 3));
        let mut buf = vec![0.0; region.len()];
        f.pack(region, &mut buf);
        assert_eq!(f.pack_vec(region), buf);
    }

    #[test]
    fn shared_pack_into_matches_pack() {
        let mut f = Field3::new(4, 4, 4, 1);
        f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
        let sh = SharedField::new(&mut f);
        let region = Range3::new((0, 4), (1, 3), (0, 2));
        let fresh = sh.pack(region);
        let mut staged = vec![0.0; region.len()];
        sh.pack_into(region, &mut staged);
        assert_eq!(fresh, staged);
    }

    #[test]
    fn pack_covers_halo_coordinates() {
        let mut f = Field3::new(4, 4, 4, 1);
        f.fill_interior(|x, y, z| (x + y + z) as f64);
        f.copy_periodic_halo();
        let region = Range3::new((-1, 0), (-1, 5), (-1, 5));
        let mut buf = vec![0.0; region.len()];
        assert_eq!(f.pack(region, &mut buf), 36);
    }

    #[test]
    fn copy_interior_preserves_halo_of_dest() {
        let mut a = Field3::new(3, 3, 3, 1);
        let mut b = Field3::new(3, 3, 3, 1);
        a.fill_interior(|_, _, _| 5.0);
        a.copy_periodic_halo();
        b.fill_interior(|_, _, _| 7.0);
        let halo_before = a.at(-1, -1, -1);
        a.copy_interior_from(&b);
        assert_eq!(a.at(1, 1, 1), 7.0);
        assert_eq!(a.at(-1, -1, -1), halo_before);
    }

    #[test]
    fn range3_len_iter_agree() {
        let r = Range3::new((-1, 3), (0, 2), (2, 5));
        assert_eq!(r.len(), 4 * 2 * 3);
        assert_eq!(r.iter().count(), r.len());
        let r_empty = Range3::new((3, 3), (0, 2), (2, 5));
        assert!(r_empty.is_empty());
        assert_eq!(r_empty.iter().count(), 0);
    }

    #[test]
    fn z_slabs_tile_the_allocation() {
        let mut f = Field3::new(4, 5, 9, 1);
        f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
        let total: usize = {
            let slabs = f.z_slabs_mut(&[3, 6]);
            assert_eq!(slabs.len(), 3);
            assert_eq!((slabs[0].z0, slabs[0].z1), (0, 3));
            assert_eq!((slabs[1].z0, slabs[1].z1), (3, 6));
            assert_eq!((slabs[2].z0, slabs[2].z1), (6, 9));
            slabs.iter().map(|s| s.data.len()).sum()
        };
        let (sx, sy, sz) = f.extents();
        assert_eq!(total, sx * sy * sz);
    }

    #[test]
    fn z_slab_indexing_matches_parent() {
        let mut f = Field3::new(3, 3, 8, 1);
        f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
        let probe = f.at(1, 2, 5);
        let mut slabs = f.z_slabs_mut(&[4]);
        // z=5 lives in the second slab.
        assert_eq!(slabs[1].data[slabs[1].idx(1, 2, 5)], probe);
        *slabs[1].at_mut(1, 2, 5) = -1.0;
        drop(slabs);
        assert_eq!(f.at(1, 2, 5), -1.0);
    }

    #[test]
    fn z_slabs_no_cuts_returns_whole_field() {
        let mut f = Field3::new(2, 2, 3, 1);
        let slabs = f.z_slabs_mut(&[]);
        assert_eq!(slabs.len(), 1);
        assert_eq!((slabs[0].z0, slabs[0].z1), (0, 3));
        assert_eq!(slabs[0].data.len(), 4 * 4 * 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn z_slabs_rejects_unsorted_cuts() {
        let mut f = Field3::new(2, 2, 6, 1);
        let _ = f.z_slabs_mut(&[4, 2]);
    }

    #[test]
    fn row_accessors_match_point_access() {
        let mut f = Field3::new(5, 4, 3, 1);
        f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
        f.copy_periodic_halo();
        // Rows may start in the halo and span into it.
        let r = f.row(-1, 2, 1, 7);
        for (i, &v) in r.iter().enumerate() {
            assert_eq!(v, f.at(-1 + i as i64, 2, 1));
        }
        let row = f.row_mut(0, 1, 1, 5);
        row.copy_from_slice(&[9.0; 5]);
        assert_eq!(f.at(3, 1, 1), 9.0);
    }

    #[test]
    fn shared_field_rows_alias_the_field() {
        let mut f = Field3::new(4, 4, 4, 1);
        f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
        {
            let sh = SharedField::new(&mut f);
            // SAFETY: single-threaded test; no concurrent access.
            let r = unsafe { sh.row(0, 2, 3, 4) };
            for (i, &v) in r.iter().enumerate() {
                assert_eq!(v, sh.read(i as i64, 2, 3));
            }
            let w = unsafe { sh.row_mut(1, 1, 1, 2) };
            w[0] = -5.0;
            w[1] = -6.0;
        }
        assert_eq!(f.at(1, 1, 1), -5.0);
        assert_eq!(f.at(2, 1, 1), -6.0);
    }

    #[test]
    fn z_slab_row_mut_writes_through() {
        let mut f = Field3::new(4, 4, 6, 1);
        f.fill_interior(|x, y, z| (x + 10 * y + 100 * z) as f64);
        {
            let mut slabs = f.z_slabs_mut(&[3]);
            let row = slabs[1].row_mut(0, 0, 4, 4);
            row.fill(7.5);
        }
        for x in 0..4 {
            assert_eq!(f.at(x, 0, 4), 7.5);
        }
    }

    #[test]
    fn range3_intersect() {
        let a = Range3::new((0, 10), (0, 10), (0, 10));
        let b = Range3::new((5, 15), (-5, 5), (2, 3));
        let i = a.intersect(&b);
        assert_eq!(i, Range3::new((5, 10), (0, 5), (2, 3)));
    }
}
