//! Temporal blocking: fuse `k` Lax–Wendroff steps into one traversal.
//!
//! PR 6 made a single sweep fast; this module makes *multi-step* runs
//! fast by applying the stencil `k` times per grid traversal, so a
//! larger-than-LLC grid streams through memory once per `k` steps
//! instead of once per step (and skips the per-step interior copy and
//! halo refill entirely — fused traversals write a second field and
//! swap).
//!
//! ## Scheme: overlapped trapezoid tiles
//!
//! Each y×z [`TileSpec`] tile is processed to completion before the
//! next: sub-step `s ∈ 0..k` computes the tile *expanded* by
//! `e = k−1−s` points in x, y, and z, writing a private scratch
//! buffer; the final sub-step (`e = 0`) computes exactly the owned
//! tile and writes it to the destination field. The expanded "skirt"
//! points are recomputed redundantly by adjacent tiles, which is what
//! makes tiles independent: no inter-tile ordering, no wavefront
//! dependency — the [`SweepPool`] may run them in any order on any
//! worker and the result is identical.
//!
//! ## Why this is bit-identical to `k` straight steps
//!
//! Two ingredients, both inherited from PR 1/PR 6:
//!
//! 1. Every point, fused or not, is computed by the same fixed-order
//!    27-tap accumulation (`acc += a[t]·src[t]`, `t = 0..27`, no FMA),
//!    so a point's value depends only on its 27 source values — never
//!    on *where* or *when* it is computed.
//! 2. Sub-step 0 reads skirt sources from the periodic halo, whose
//!    values are exact bitwise copies of wrapped interior points; so a
//!    skirt result equals the wrapped interior result bitwise, and by
//!    induction every later sub-step reads sources bitwise-equal to
//!    what a straight step-at-a-time run (halo refill between steps)
//!    would read. Tile order is therefore a bit-neutral permutation of
//!    the same scalar operations — the same argument `deep_halo`'s
//!    depth-k exchange has relied on since PR 2, now applied within a
//!    node.
//!
//! The redundant-compute overhead is `Π((tᵢ+2ē)/tᵢ)` per dimension
//! (`ē` = mean expansion `(k−1)/2`), so fused traversals want much
//! larger tiles than the L2-resident single-sweep default:
//! [`tile_for_host`] budgets the two scratch buffers against the
//! detected last-level cache instead.

use crate::coeffs::Stencil27;
use crate::field::{Field3, Range3, SharedField};
use crate::sweep::SweepPool;
use crate::tile::TileSpec;

/// Parse an `ADVECT_TIME_TILE` value: the number of fused steps per
/// traversal, a positive integer.
pub fn parse_steps(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(k) if k >= 1 => Ok(k),
        _ => Err(format!(
            "ADVECT_TIME_TILE={v:?}: expected a positive integer (steps per traversal)"
        )),
    }
}

/// The `ADVECT_TIME_TILE` override, if set.
///
/// # Panics
///
/// On a malformed value — a mistyped knob must fail the run, not
/// silently measure the default configuration.
pub fn env_steps() -> Option<usize> {
    std::env::var("ADVECT_TIME_TILE")
        .ok()
        .map(|v| parse_steps(&v).unwrap_or_else(|e| panic!("{e}")))
}

/// Tile choice for a fused traversal of depth `steps` on this host:
/// `ADVECT_TILE` if set, else a square y×z tile sized so one worker's
/// two scratch buffers fit its share of half the detected LLC. For
/// `steps == 1` this is exactly [`TileSpec::host`] — the classic
/// L2-resident single-sweep heuristic.
pub fn tile_for_host(sx: usize, steps: usize, workers: usize) -> TileSpec {
    if let Some(t) = crate::tile::env_override() {
        return t;
    }
    if steps <= 1 {
        return TileSpec::host(sx);
    }
    tile_for_cache(
        crate::numa::host_llc_bytes() / 2 / workers.max(1),
        sx,
        steps,
    )
}

/// The LLC-budget heuristic behind [`tile_for_host`]: the largest
/// square y×z tile whose scratch pair — two buffers of
/// `(sx+2(k−1)) · (t+2(k−1))²` doubles — fits `cache_bytes`. Large
/// tiles amortize the skirt: at `t ≈ 10·(k−1)` the redundant-compute
/// factor stays under ~1.2× while the traversal still touches each
/// point once per `k` steps.
pub fn tile_for_cache(cache_bytes: usize, sx: usize, steps: usize) -> TileSpec {
    let skirt = 2 * (steps - 1);
    let per_plane = 2 * 8 * (sx + skirt);
    let planes = cache_bytes / per_plane.max(1);
    let t = (planes as f64).sqrt() as usize;
    let t = t.saturating_sub(skirt).max(4);
    TileSpec::new(t, t)
}

/// Advance `region` of `cur` by `steps` fused applications of the
/// stencil, writing the final values into the same region of `dst`.
///
/// Contract: `cur` holds valid source values to depth `steps` beyond
/// `region` in every direction (for the interior of a halo-`h` field
/// that means `steps ≤ h`, with the halo freshly filled), and `cur`
/// and `dst` share extents and halo width. `cur` is not modified;
/// `dst`'s region is fully overwritten and nothing outside it is
/// touched.
///
/// Tiles are farmed out over `pool` and each processed to completion
/// with per-worker scratch; the result is bit-identical to `steps`
/// straight sweeps (with halo refills between them) at any worker
/// count and any tile shape — see the module docs for why.
pub fn advance_pooled(
    cur: &Field3,
    dst: &mut Field3,
    s: &Stencil27,
    region: Range3,
    steps: usize,
    tile: TileSpec,
    pool: &SweepPool,
) {
    assert!(steps >= 1, "need at least one fused step");
    if region.is_empty() {
        return;
    }
    if steps == 1 {
        // One step needs no scratch: the classic pooled tiled sweep is
        // the same computation.
        crate::stencil::apply_stencil_region_pooled(cur, dst, s, region, tile, pool);
        return;
    }
    assert_eq!(cur.extents(), dst.extents(), "field extents must match");
    assert_eq!(cur.halo(), dst.halo(), "halo widths must match");
    let b = steps as i64;
    let full = cur.full_range();
    let needed = Range3::new(
        (region.x.0 - b, region.x.1 + b),
        (region.y.0 - b, region.y.1 + b),
        (region.z.0 - b, region.z.1 + b),
    );
    assert_eq!(
        needed.intersect(&full),
        needed,
        "time tile depth {steps} reads outside the allocation; \
         the field needs halo >= {steps}"
    );

    let e0 = steps - 1;
    let wx = (region.x.1 - region.x.0) as usize;
    let wy = (region.y.1 - region.y.0) as usize;
    let wz = (region.z.1 - region.z.0) as usize;
    // Scratch capacity for the largest (clamped) tile at maximum
    // expansion; edge tiles are smaller and reuse the same buffers
    // with their own strides.
    let cap = (wx + 2 * e0) * (tile.ty.min(wy) + 2 * e0) * (tile.tz.min(wz) + 2 * e0);

    let tiles: Vec<Range3> = tile.tiles(region).collect();
    let coef = s.a;
    let (cxs, cys, _) = cur.extents();
    let cur_offs = crate::stencil::tap_offsets(cxs, cys);
    let shared = SharedField::new(dst);
    pool.for_each_index_with(
        tiles.len(),
        || (vec![0.0f64; cap], vec![0.0f64; cap]),
        |(front, back), i| {
            fuse_tile(cur, &cur_offs, &shared, &coef, tiles[i], steps, front, back);
        },
    );
}

/// Run all `steps` sub-steps of one trapezoid tile: sub-step `s`
/// computes the tile expanded by `e0−s`, ping-ponging between the two
/// scratch buffers; the final sub-step writes the owned tile rows into
/// `out` (disjoint across tiles, so the shared write is race-free).
#[allow(clippy::too_many_arguments)]
fn fuse_tile(
    cur: &Field3,
    cur_offs: &[i64; 27],
    out: &SharedField<'_>,
    coef: &[f64; 27],
    t: Range3,
    steps: usize,
    front: &mut [f64],
    back: &mut [f64],
) {
    let e0 = (steps - 1) as i64;
    // Scratch covers the tile expanded by e0, x fastest.
    let (ox, oy, oz) = (t.x.0 - e0, t.y.0 - e0, t.z.0 - e0);
    let pxs = ((t.x.1 - t.x.0) + 2 * e0) as usize;
    let pys = ((t.y.1 - t.y.0) + 2 * e0) as usize;
    let scratch_offs = crate::stencil::tap_offsets(pxs, pys);
    let sidx = |x: i64, y: i64, z: i64| -> usize {
        ((x - ox) + (pxs as i64) * ((y - oy) + (pys as i64) * (z - oz))) as usize
    };

    let (mut src_buf, mut dst_buf) = (front, back);
    for sub in 0..steps {
        let e = e0 - sub as i64;
        let o = Range3::new(
            (t.x.0 - e, t.x.1 + e),
            (t.y.0 - e, t.y.1 + e),
            (t.z.0 - e, t.z.1 + e),
        );
        let w = (o.x.1 - o.x.0) as usize;
        let last = sub == steps - 1;
        for z in o.z.0..o.z.1 {
            for y in o.y.0..o.y.1 {
                // Sub-step 0 reads the (immutable) source field; later
                // sub-steps read the previous scratch generation. Both
                // stay in bounds: each sub-step shrinks the output by
                // one, so its depth-1 reads lie within what the
                // previous sub-step wrote (or within the field's halo).
                let dst_row: &mut [f64] = if last {
                    // SAFETY: e == 0 so this is an owned-tile row;
                    // tiles partition the region disjointly and whole
                    // rows belong to exactly one tile.
                    unsafe { out.row_mut(o.x.0, y, z, w) }
                } else {
                    let d0 = sidx(o.x.0, y, z);
                    &mut dst_buf[d0..d0 + w]
                };
                if sub == 0 {
                    let base = cur.idx(o.x.0, y, z) as i64;
                    fused_row(dst_row, cur.data(), base, cur_offs, coef);
                } else {
                    let base = sidx(o.x.0, y, z) as i64;
                    fused_row(dst_row, src_buf, base, &scratch_offs, coef);
                }
            }
        }
        if !last {
            std::mem::swap(&mut src_buf, &mut dst_buf);
        }
    }
}

/// One output row of one sub-step: the fixed-order 27-tap accumulation
/// against a strided source. Routes to the scalar per-point loop under
/// `--features scalar-kernels`, like every kernel entry point.
#[inline]
fn fused_row(dst_row: &mut [f64], src: &[f64], base: i64, offs: &[i64; 27], coef: &[f64; 27]) {
    let w = dst_row.len();
    let rows: [&[f64]; 27] = std::array::from_fn(|t| {
        let s0 = (base + offs[t]) as usize;
        &src[s0..s0 + w]
    });
    if cfg!(feature = "scalar-kernels") {
        for (x, out) in dst_row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (t, row) in rows.iter().enumerate() {
                acc += coef[t] * row[x];
            }
            *out = acc;
        }
    } else {
        crate::stencil::accumulate_tap_rows(dst_row, &rows, coef);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeffs::Velocity;
    use crate::stencil::apply_stencil_region;

    fn filled(n: usize, halo: usize) -> Field3 {
        let mut f = Field3::new(n, n, n, halo);
        f.fill_interior(|x, y, z| ((x * 31 + y * 17 + z * 7) % 23) as f64 * 0.25 - 1.0);
        f
    }

    fn stencil() -> Stencil27 {
        Stencil27::new(Velocity::new(1.0, 0.5, 0.25), 0.9)
    }

    /// k straight sweeps with halo refills between them — the oracle
    /// every fused traversal must match bitwise.
    fn straight_steps(n: usize, halo: usize, steps: usize) -> Field3 {
        let s = stencil();
        let mut cur = filled(n, halo);
        let mut tmp = Field3::new(n, n, n, halo);
        for _ in 0..steps {
            cur.copy_periodic_halo();
            apply_stencil_region(&cur, &mut tmp, &s, cur.interior_range());
            cur.copy_interior_from(&tmp);
        }
        cur
    }

    fn fused(n: usize, halo: usize, steps: usize, tile: TileSpec, workers: usize) -> Field3 {
        let s = stencil();
        let mut cur = filled(n, halo);
        cur.copy_periodic_halo();
        let mut dst = Field3::new(n, n, n, halo);
        let pool = SweepPool::new(workers);
        advance_pooled(&cur, &mut dst, &s, cur.interior_range(), steps, tile, &pool);
        dst
    }

    fn assert_interior_bits_equal(a: &Field3, b: &Field3) {
        for (x, y, z) in a.interior_range().iter() {
            assert_eq!(
                a.at(x, y, z).to_bits(),
                b.at(x, y, z).to_bits(),
                "mismatch at ({x}, {y}, {z})"
            );
        }
    }

    #[test]
    fn fused_traversal_matches_straight_steps_bitwise() {
        for steps in [1usize, 2, 3, 4] {
            let oracle = straight_steps(10, steps, steps);
            for workers in [1usize, 3] {
                let got = fused(10, steps, steps, TileSpec::new(3, 2), workers);
                assert_interior_bits_equal(&got, &oracle);
            }
        }
    }

    #[test]
    fn degenerate_tiles_and_oversized_halos_are_fine() {
        // halo deeper than the fused depth, 1×1 tiles, more workers
        // than tiles in a dimension.
        let oracle = straight_steps(6, 4, 3);
        let got = fused(6, 4, 3, TileSpec::new(1, 1), 5);
        assert_interior_bits_equal(&got, &oracle);
        let got = fused(6, 4, 3, TileSpec::new(64, 64), 2);
        assert_interior_bits_equal(&got, &oracle);
    }

    #[test]
    #[should_panic(expected = "halo >= 3")]
    fn rejects_depth_beyond_the_halo() {
        fused(8, 1, 3, TileSpec::new(4, 4), 1);
    }

    #[test]
    fn steps_parse_is_strict() {
        assert_eq!(parse_steps("4"), Ok(4));
        assert_eq!(parse_steps(" 2 "), Ok(2));
        assert!(parse_steps("0").is_err());
        assert!(parse_steps("-1").is_err());
        assert!(parse_steps("4x2").is_err());
        assert!(parse_steps("").is_err());
    }

    #[test]
    fn cache_tile_grows_with_budget_and_shrinks_with_depth() {
        let small = tile_for_cache(2 * 1024 * 1024, 130, 4);
        let big = tile_for_cache(128 * 1024 * 1024, 130, 4);
        assert!(big.ty > small.ty);
        let shallow = tile_for_cache(32 * 1024 * 1024, 130, 2);
        let deep = tile_for_cache(32 * 1024 * 1024, 130, 8);
        assert!(shallow.ty >= deep.ty);
        assert!(deep.ty >= 4);
    }
}
