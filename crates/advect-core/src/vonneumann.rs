//! Von Neumann (Fourier) stability analysis of the Lax-Wendroff scheme.
//!
//! The paper states the method "is numerically stable for
//! ν ≤ max{|cx|, |cy|, |cz|}⁻¹-style bounds" (its inequality reads
//! `ν ≤ max{|cx|,|cy|,|cz|}` with ν normalized; in our variables the
//! scheme is stable iff every Courant number `|c_d| ν ≤ 1`). This module
//! *proves* that numerically: for a periodic domain the scheme's Fourier
//! symbol factorizes over dimensions,
//!
//! ```text
//! G(θx, θy, θz) = g(γx, θx) · g(γy, θy) · g(γz, θz),
//! g(γ, θ) = 1 - γ²(1 - cos θ) - iγ sin θ,
//! ```
//!
//! with `γ_d = c_d ν`, and the scheme is stable iff `max |G| ≤ 1` over all
//! angles. [`amplification_factor`] evaluates `|G|`, [`max_amplification`]
//! scans the angle grid, and [`is_stable`] applies the textbook criterion
//! — which the tests confirm is *exactly* `|γ_d| ≤ 1` per dimension, and
//! confirm against direct time stepping.

use crate::coeffs::{Stencil27, Velocity};

/// A complex number, minimal and local (no external dependency needed for
/// a 2-component analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// A new complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// The 1-D Lax-Wendroff symbol `g(γ, θ)` at Courant number γ and phase
/// angle θ.
pub fn symbol_1d(gamma: f64, theta: f64) -> Complex {
    Complex::new(
        1.0 - gamma * gamma * (1.0 - theta.cos()),
        -gamma * theta.sin(),
    )
}

/// The full 3-D symbol: the product of the per-dimension symbols (the
/// scheme is the tensor product of 1-D updates).
pub fn symbol_3d(velocity: Velocity, nu: f64, theta: [f64; 3]) -> Complex {
    let g = [velocity.cx, velocity.cy, velocity.cz];
    let mut acc = Complex::new(1.0, 0.0);
    for d in 0..3 {
        acc = acc * symbol_1d(g[d] * nu, theta[d]);
    }
    acc
}

/// `|G|` at one angle triple.
pub fn amplification_factor(velocity: Velocity, nu: f64, theta: [f64; 3]) -> f64 {
    symbol_3d(velocity, nu, theta).abs()
}

/// Maximum `|G|` over an `n³` grid of angles in `[0, 2π)³`.
///
/// Because the symbol factorizes, the max is the product of per-dimension
/// maxima — computed that way for O(3n) instead of O(n³).
pub fn max_amplification(velocity: Velocity, nu: f64, n: usize) -> f64 {
    let gammas = [velocity.cx * nu, velocity.cy * nu, velocity.cz * nu];
    gammas
        .iter()
        .map(|&g| {
            (0..n)
                .map(|i| symbol_1d(g, i as f64 * std::f64::consts::TAU / n as f64).abs())
                .fold(0.0f64, f64::max)
        })
        .product()
}

/// Von Neumann stability: `max |G| ≤ 1` (scanned at 720 angles per
/// dimension, with a tolerance for roundoff at the neutral boundary).
pub fn is_stable(velocity: Velocity, nu: f64) -> bool {
    max_amplification(velocity, nu, 720) <= 1.0 + 1e-12
}

/// Verify the symbol against the actual stencil: applying the 27
/// coefficients to the plane wave `exp(i k·x)` must multiply it by
/// `G(θ)`. Returns the worst-case discrepancy over the given angles —
/// a machine-precision check that Table I really is the tensor-product
/// Lax-Wendroff scheme.
pub fn symbol_matches_stencil(velocity: Velocity, nu: f64, thetas: &[[f64; 3]]) -> f64 {
    let s = Stencil27::new(velocity, nu);
    let mut worst = 0.0f64;
    for &theta in thetas {
        // Σ a_ijk e^{i(iθx + jθy + kθz)}
        let mut acc = Complex::new(0.0, 0.0);
        for k in -1i32..=1 {
            for j in -1i32..=1 {
                for i in -1i32..=1 {
                    let phase = i as f64 * theta[0] + j as f64 * theta[1] + k as f64 * theta[2];
                    let a = s.at(i, j, k);
                    acc = Complex::new(acc.re + a * phase.cos(), acc.im + a * phase.sin());
                }
            }
        }
        let g = symbol_3d(velocity, nu, theta);
        worst = worst.max((acc.re - g.re).abs()).max((acc.im - g.im).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stepper::{AdvectionProblem, SerialStepper};

    fn angle_grid(n: usize) -> Vec<[f64; 3]> {
        let mut out = Vec::new();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    let f = std::f64::consts::TAU / n as f64;
                    out.push([a as f64 * f, b as f64 * f, c as f64 * f]);
                }
            }
        }
        out
    }

    #[test]
    fn symbol_equals_stencil_response() {
        for &(v, nu) in &[
            (Velocity::new(1.0, 0.5, 0.25), 0.9),
            (Velocity::new(-0.7, 0.3, 0.9), 0.8),
            (Velocity::unit_diagonal(), 1.0),
        ] {
            let worst = symbol_matches_stencil(v, nu, &angle_grid(7));
            assert!(worst < 1e-12, "worst discrepancy {worst}");
        }
    }

    #[test]
    fn stable_exactly_up_to_unit_courant() {
        let v = Velocity::new(1.0, 0.5, 0.25);
        assert!(is_stable(v, 1.0)); // γx = 1: neutral
        assert!(is_stable(v, 0.5));
        assert!(!is_stable(v, 1.05)); // γx > 1
                                      // The stability boundary tracks the largest |c| component.
        let v2 = Velocity::new(0.5, 2.0, 0.1);
        assert!(is_stable(v2, 0.5)); // γy = 1
        assert!(!is_stable(v2, 0.55));
    }

    #[test]
    fn matches_velocity_max_stable_nu() {
        for &(cx, cy, cz) in &[(1.0, 1.0, 1.0), (2.0, 0.3, -0.7), (0.25, 0.5, 1.5)] {
            let v = Velocity::new(cx, cy, cz);
            let nu = v.max_stable_nu();
            assert!(is_stable(v, nu), "claimed-stable nu unstable: {nu}");
            assert!(!is_stable(v, nu * 1.05), "5% past the bound still stable");
        }
    }

    #[test]
    fn unit_courant_is_neutral_everywhere() {
        // |g(1, θ)| = 1 for all θ: pure translation, no damping.
        for i in 0..64 {
            let theta = i as f64 * std::f64::consts::TAU / 64.0;
            assert!((symbol_1d(1.0, theta).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn interior_courant_damps_high_frequencies() {
        // 0 < γ < 1: |g| < 1 at θ = π (the grid-scale mode is damped).
        let g = symbol_1d(0.5, std::f64::consts::PI);
        assert!(g.abs() < 0.6);
        // …but DC is untouched.
        assert!((symbol_1d(0.5, 0.0).abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn predicted_decay_matches_time_stepping() {
        // Advect a single Fourier mode and compare its measured decay per
        // step against |G| for that mode.
        let n = 16usize;
        let velocity = Velocity::new(1.0, 0.0, 0.0);
        let nu = 0.5;
        let problem = AdvectionProblem {
            velocity,
            nu,
            ..AdvectionProblem::paper_case(n)
        };
        // Mode k = (2, 0, 0): θx = 2·2π/n.
        let theta = [2.0 * std::f64::consts::TAU / n as f64, 0.0, 0.0];
        let mut s = SerialStepper::new(problem);
        // Overwrite the initial state with the cosine mode.
        let mut init = advect_core_field(n, theta[0]);
        std::mem::swap(s.state_mut(), &mut init);
        let amp0 = mode_amplitude(s.state(), theta[0]);
        let steps = 20;
        s.run(steps);
        let amp1 = mode_amplitude(s.state(), theta[0]);
        let measured = (amp1 / amp0).powf(1.0 / steps as f64);
        let predicted = amplification_factor(velocity, nu, theta);
        assert!(
            (measured - predicted).abs() < 1e-6,
            "measured {measured} vs predicted {predicted}"
        );
    }

    fn advect_core_field(n: usize, theta: f64) -> crate::field::Field3 {
        let mut f = crate::field::Field3::new(n, n, n, 1);
        f.fill_interior(|x, _, _| (theta * x as f64).cos());
        f
    }

    /// Amplitude of the cosine mode via discrete Fourier projection.
    fn mode_amplitude(f: &crate::field::Field3, theta: f64) -> f64 {
        let (nx, ny, nz) = f.interior();
        let mut re = 0.0;
        let mut im = 0.0;
        for x in 0..nx as i64 {
            let mut line = 0.0;
            for y in 0..ny as i64 {
                for z in 0..nz as i64 {
                    line += f.at(x, y, z);
                }
            }
            re += line * (theta * x as f64).cos();
            im += line * (theta * x as f64).sin();
        }
        (re.hypot(im)) / (nx * ny * nz) as f64
    }
}
