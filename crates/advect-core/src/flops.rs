//! The paper's floating-point cost model.
//!
//! "Given the measured time in seconds, the grid size, and the number of
//! time steps, we analytically compute the performance in GF (billions of
//! floating-point operations per second) based on the 53 floating-point
//! operations appearing in Equation 2: 27 multiplications and 26
//! additions."

/// Multiplications per grid point per step in Equation 2.
pub const MULS_PER_POINT: u64 = 27;
/// Additions per grid point per step in Equation 2.
pub const ADDS_PER_POINT: u64 = 26;
/// Total flops per grid point per step.
pub const FLOPS_PER_POINT: u64 = MULS_PER_POINT + ADDS_PER_POINT;

/// The paper's global grid: 420 × 420 × 420.
pub const PAPER_GRID: usize = 420;

/// Total flops for `points` grid points advanced `steps` time steps.
pub fn total_flops(points: u64, steps: u64) -> u64 {
    points * steps * FLOPS_PER_POINT
}

/// Performance in GF (1e9 flops/s) for a measured run.
pub fn gigaflops(points: u64, steps: u64, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "elapsed time must be positive");
    total_flops(points, steps) as f64 / seconds / 1e9
}

/// Flops of a single step of the paper's 420³ case: ≈ 3.93 Gflop.
pub fn paper_step_flops() -> u64 {
    total_flops((PAPER_GRID * PAPER_GRID * PAPER_GRID) as u64, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_three_flops_per_point() {
        assert_eq!(FLOPS_PER_POINT, 53);
    }

    #[test]
    fn paper_step_is_about_3_9_gflop() {
        let f = paper_step_flops() as f64 / 1e9;
        assert!((f - 3.926).abs() < 0.01, "got {f}");
    }

    #[test]
    fn gigaflops_scales_linearly() {
        let a = gigaflops(1000, 10, 1.0);
        let b = gigaflops(1000, 10, 2.0);
        assert!((a - 2.0 * b).abs() < 1e-12);
        let c = gigaflops(2000, 10, 1.0);
        assert!((c - 2.0 * a).abs() < 1e-12);
    }
}
