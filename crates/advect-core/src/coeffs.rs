//! Lax-Wendroff stencil coefficients (Table I of the paper).
//!
//! The paper discretizes linear advection in time with an explicit
//! Lax-Wendroff technique and in space with a 3×3×3 stencil centered on
//! `u(x, y, z, t)`:
//!
//! ```text
//! u(x,y,z,t+Δ) ≈ Σ_{i,j,k=-1..+1} a_ijk · u(x+iδ, y+jδ, z+kδ, t)     (Eq. 2)
//! ```
//!
//! The 27 coefficients `a_ijk` are functions of the velocity components
//! `(cx, cy, cz)` and the ratio `ν = Δ/δ`. Table I lists them in expanded
//! form; they are exactly the **tensor product of the classical 1-D
//! Lax-Wendroff weights**
//!
//! ```text
//! w(-1) = cν(1 + cν)/2,    w(0) = 1 - c²ν²,    w(+1) = cν(cν - 1)/2
//! ```
//!
//! i.e. `a_ijk = wx(i) · wy(j) · wz(k)`. This module provides both the
//! literal Table I transcription ([`Stencil27::from_table_i`]) and the
//! tensor-product construction ([`Stencil27::new`]); unit tests prove they
//! agree to machine precision, which validates our reading of the table
//! (including the `a_{-1-1-1}` typo in the paper, where `c_x c_y c_y`
//! should read `c_x c_y c_z`).
//!
//! The scheme is `O(Δ³)` locally and `O(Δ²)` for fixed simulated time, and
//! is numerically stable for `|c_d| ν ≤ 1` in each dimension `d`. The paper
//! runs at the maximum stable ν.

/// Constant uniform advection velocity `c = (cx, cy, cz)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Velocity {
    /// x component of the velocity.
    pub cx: f64,
    /// y component of the velocity.
    pub cy: f64,
    /// z component of the velocity.
    pub cz: f64,
}

impl Velocity {
    /// A new velocity vector.
    pub const fn new(cx: f64, cy: f64, cz: f64) -> Self {
        Self { cx, cy, cz }
    }

    /// The unit diagonal velocity used throughout the paper's experiments.
    pub const fn unit_diagonal() -> Self {
        Self::new(1.0, 1.0, 1.0)
    }

    /// `max{|cx|, |cy|, |cz|}`, the quantity governing the stability bound.
    pub fn max_abs(&self) -> f64 {
        self.cx.abs().max(self.cy.abs()).max(self.cz.abs())
    }

    /// The maximum stable ratio `ν = Δ/δ` for this velocity: the scheme is
    /// stable for `ν ≤ 1 / max{|cx|,|cy|,|cz|}` (each 1-D factor requires
    /// `|c_d| ν ≤ 1`). The paper runs at exactly this ν.
    pub fn max_stable_nu(&self) -> f64 {
        1.0 / self.max_abs()
    }
}

/// 1-D Lax-Wendroff weights for Courant number `γ = c·ν`.
///
/// Derived from `u_i^{n+1} = u_i - γ/2 (u_{i+1} - u_{i-1})
/// + γ²/2 (u_{i+1} - 2 u_i + u_{i-1})`.
#[inline]
pub fn lw_weights_1d(gamma: f64) -> [f64; 3] {
    [
        0.5 * gamma * (1.0 + gamma), // w(-1): upwind neighbor
        1.0 - gamma * gamma,         // w(0):  center
        0.5 * gamma * (gamma - 1.0), // w(+1): downwind neighbor
    ]
}

/// The 27 coefficients `a_ijk` of Equation 2, stored with `k` (z offset)
/// slowest and `i` (x offset) fastest, matching the x-fastest field layout.
///
/// Index mapping: `a[(i+1) + 3*(j+1) + 9*(k+1)]` holds `a_ijk` for
/// `i, j, k ∈ {-1, 0, +1}`.
///
/// ```
/// use advect_core::coeffs::{Stencil27, Velocity};
/// let s = Stencil27::at_max_stable_nu(Velocity::unit_diagonal());
/// // At unit Courant number the scheme is an exact one-cell shift:
/// assert_eq!(s.at(-1, -1, -1), 1.0);
/// assert!((s.sum() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stencil27 {
    /// Flat coefficient array, x offset fastest.
    pub a: [f64; 27],
    /// Velocity the coefficients were built for.
    pub velocity: Velocity,
    /// Ratio `ν = Δ/δ` the coefficients were built for.
    pub nu: f64,
}

impl Stencil27 {
    /// Build the coefficients as the tensor product of 1-D Lax-Wendroff
    /// weights. This is the production constructor.
    pub fn new(velocity: Velocity, nu: f64) -> Self {
        let wx = lw_weights_1d(velocity.cx * nu);
        let wy = lw_weights_1d(velocity.cy * nu);
        let wz = lw_weights_1d(velocity.cz * nu);
        let mut a = [0.0; 27];
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    a[i + 3 * j + 9 * k] = wx[i] * wy[j] * wz[k];
                }
            }
        }
        Self { a, velocity, nu }
    }

    /// Build the coefficients for the maximum stable ν, as the paper's
    /// experiments do.
    pub fn at_max_stable_nu(velocity: Velocity) -> Self {
        Self::new(velocity, velocity.max_stable_nu())
    }

    /// Build the coefficients from the literal expressions of Table I.
    ///
    /// Kept as an executable transcription of the paper; tests assert it
    /// matches [`Stencil27::new`] to machine precision.
    pub fn from_table_i(velocity: Velocity, nu: f64) -> Self {
        let Velocity { cx, cy, cz } = velocity;
        let v = nu;
        let v2 = v * v;
        let v3 = v2 * v;
        let mut s = Self {
            a: [0.0; 27],
            velocity,
            nu,
        };
        let mut set = |i: i32, j: i32, k: i32, val: f64| {
            s.a[Self::offset_index(i, j, k)] = val;
        };
        // Row by row from Table I. The first row's printed "c_x c_y c_y" is
        // the paper's typo for "c_x c_y c_z" (the tensor-product structure
        // and the symmetry of the remaining 26 rows require c_z).
        set(
            -1,
            -1,
            -1,
            cx * cy * cz * v3 * (1. + cx * v) * (1. + cy * v) * (1. + cz * v) / 8.,
        );
        set(
            -1,
            -1,
            0,
            -2. * cx * cy * v2 * (1. + cx * v) * (1. + cy * v) * (cz * cz * v2 - 1.) / 8.,
        );
        set(
            -1,
            -1,
            1,
            cx * cy * cz * v3 * (1. + cx * v) * (1. + cy * v) * (cz * v - 1.) / 8.,
        );
        set(
            -1,
            0,
            -1,
            -2. * cx * cz * v2 * (1. + cx * v) * (1. + cz * v) * (cy * cy * v2 - 1.) / 8.,
        );
        set(
            -1,
            0,
            0,
            4. * cx * v * (1. + cx * v) * (cy * cy * v2 - 1.) * (cz * cz * v2 - 1.) / 8.,
        );
        set(
            -1,
            0,
            1,
            -2. * cx * cz * v2 * (1. + cx * v) * (-1. + cz * v) * (-1. + cy * cy * v2) / 8.,
        );
        set(
            -1,
            1,
            -1,
            cx * cy * cz * v3 * (1. + cx * v) * (-1. + cy * v) * (1. + cz * v) / 8.,
        );
        set(
            -1,
            1,
            0,
            -2. * cx * cy * v2 * (1. + cx * v) * (-1. + cy * v) * (-1. + cz * cz * v2) / 8.,
        );
        set(
            -1,
            1,
            1,
            cx * cy * cz * v3 * (1. + cx * v) * (-1. + cy * v) * (-1. + cz * v) / 8.,
        );
        set(
            0,
            -1,
            -1,
            -2. * cy * cz * v2 * (1. + cy * v) * (1. + cz * v) * (-1. + cx * cx * v2) / 8.,
        );
        set(
            0,
            -1,
            0,
            4. * cy * v * (1. + cy * v) * (-1. + cx * cx * v2) * (-1. + cz * cz * v2) / 8.,
        );
        set(
            0,
            -1,
            1,
            -2. * cy * cz * v2 * (1. + cy * v) * (-1. + cz * v) * (-1. + cx * cx * v2) / 8.,
        );
        set(
            0,
            0,
            -1,
            4. * cz * v * (1. + cz * v) * (-1. + cx * cx * v2) * (-1. + cy * cy * v2) / 8.,
        );
        set(
            0,
            0,
            0,
            -8. * (-1. + cx * cx * v2) * (-1. + cy * cy * v2) * (-1. + cz * cz * v2) / 8.,
        );
        set(
            0,
            0,
            1,
            4. * cz * v * (-1. + cz * v) * (-1. + cx * cx * v2) * (-1. + cy * cy * v2) / 8.,
        );
        set(
            0,
            1,
            -1,
            -2. * cy * cz * v2 * (-1. + cy * v) * (1. + cz * v) * (-1. + cx * cx * v2) / 8.,
        );
        set(
            0,
            1,
            0,
            4. * cy * v * (-1. + cy * v) * (-1. + cx * cx * v2) * (-1. + cz * cz * v2) / 8.,
        );
        set(
            0,
            1,
            1,
            -2. * cy * cz * v2 * (-1. + cy * v) * (-1. + cz * v) * (-1. + cx * cx * v2) / 8.,
        );
        set(
            1,
            -1,
            -1,
            cx * cy * cz * v3 * (-1. + cx * v) * (1. + cy * v) * (1. + cz * v) / 8.,
        );
        set(
            1,
            -1,
            0,
            -2. * cx * cy * v2 * (-1. + cx * v) * (1. + cy * v) * (-1. + cz * cz * v2) / 8.,
        );
        set(
            1,
            -1,
            1,
            cx * cy * cz * v3 * (-1. + cx * v) * (1. + cy * v) * (-1. + cz * v) / 8.,
        );
        set(
            1,
            0,
            -1,
            -2. * cx * cz * v2 * (-1. + cx * v) * (1. + cz * v) * (-1. + cy * cy * v2) / 8.,
        );
        set(
            1,
            0,
            0,
            4. * cx * v * (-1. + cx * v) * (-1. + cy * cy * v2) * (-1. + cz * cz * v2) / 8.,
        );
        set(
            1,
            0,
            1,
            -2. * cx * cz * v2 * (-1. + cx * v) * (-1. + cz * v) * (-1. + cy * cy * v2) / 8.,
        );
        set(
            1,
            1,
            -1,
            cx * cy * cz * v3 * (-1. + cx * v) * (-1. + cy * v) * (1. + cz * v) / 8.,
        );
        set(
            1,
            1,
            0,
            -2. * cx * cy * v2 * (-1. + cx * v) * (-1. + cy * v) * (-1. + cz * cz * v2) / 8.,
        );
        set(
            1,
            1,
            1,
            cx * cy * cz * v3 * (-1. + cx * v) * (-1. + cy * v) * (-1. + cz * v) / 8.,
        );
        s
    }

    /// Flat index for stencil offsets `i, j, k ∈ {-1, 0, +1}`.
    #[inline]
    pub fn offset_index(i: i32, j: i32, k: i32) -> usize {
        debug_assert!((-1..=1).contains(&i) && (-1..=1).contains(&j) && (-1..=1).contains(&k));
        ((i + 1) + 3 * (j + 1) + 9 * (k + 1)) as usize
    }

    /// Coefficient `a_ijk` for offsets in `{-1, 0, +1}`.
    #[inline]
    pub fn at(&self, i: i32, j: i32, k: i32) -> f64 {
        self.a[Self::offset_index(i, j, k)]
    }

    /// Sum of all 27 coefficients. Consistency (a constant field must be
    /// preserved exactly) requires this to be 1.
    pub fn sum(&self) -> f64 {
        self.a.iter().sum()
    }

    /// First moment along a dimension (0 = x, 1 = y, 2 = z):
    /// `Σ a_ijk · offset_d`. Consistency with Eq. 1 requires this to equal
    /// `-c_d ν` (the scheme transports by `c_d Δ = c_d ν δ` per step).
    pub fn first_moment(&self, dim: usize) -> f64 {
        self.moment(dim, 1)
    }

    /// Second moment along a dimension: `Σ a_ijk · offset_d²`. The
    /// Lax-Wendroff O(Δ²) construction requires this to equal `(c_d ν)²`.
    pub fn second_moment(&self, dim: usize) -> f64 {
        self.moment(dim, 2)
    }

    fn moment(&self, dim: usize, power: u32) -> f64 {
        assert!(dim < 3, "dimension must be 0, 1, or 2");
        let mut m = 0.0;
        for k in -1i32..=1 {
            for j in -1i32..=1 {
                for i in -1i32..=1 {
                    let off = [i, j, k][dim] as f64;
                    m += self.at(i, j, k) * off.powi(power as i32);
                }
            }
        }
        m
    }

    /// Whether the scheme is numerically stable for these parameters:
    /// `|c_d| ν ≤ 1` in every dimension.
    pub fn is_stable(&self) -> bool {
        self.velocity.max_abs() * self.nu <= 1.0 + 1e-12
    }

    /// True when the scheme reduces to an exact one-cell shift in each
    /// dimension, i.e. every Courant number `c_d ν` is exactly ±1 or 0.
    pub fn is_exact_shift(&self) -> bool {
        let Velocity { cx, cy, cz } = self.velocity;
        [cx, cy, cz]
            .iter()
            .all(|c| (c * self.nu).abs() == 1.0 || c * self.nu == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-14 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn table_i_matches_tensor_product() {
        for &(cx, cy, cz, nu) in &[
            (1.0, 1.0, 1.0, 1.0),
            (1.0, 0.5, 0.25, 0.9),
            (-0.7, 0.3, 0.9, 0.8),
            (0.0, 0.0, 0.0, 0.5),
            (2.0, -1.5, 0.1, 0.4),
        ] {
            let v = Velocity::new(cx, cy, cz);
            let t = Stencil27::from_table_i(v, nu);
            let p = Stencil27::new(v, nu);
            for idx in 0..27 {
                assert!(
                    close(t.a[idx], p.a[idx]),
                    "mismatch at {idx}: table={} product={} (c=({cx},{cy},{cz}), nu={nu})",
                    t.a[idx],
                    p.a[idx]
                );
            }
        }
    }

    #[test]
    fn coefficients_sum_to_one() {
        for &(cx, cy, cz, nu) in &[
            (1.0, 1.0, 1.0, 1.0),
            (0.3, -0.8, 0.5, 0.7),
            (1.0, 2.0, 3.0, 0.2),
        ] {
            let s = Stencil27::new(Velocity::new(cx, cy, cz), nu);
            assert!(close(s.sum(), 1.0), "sum = {}", s.sum());
        }
    }

    #[test]
    fn first_moments_match_transport() {
        let v = Velocity::new(0.4, -0.9, 0.6);
        let nu = 0.8;
        let s = Stencil27::new(v, nu);
        assert!(close(s.first_moment(0), -v.cx * nu));
        assert!(close(s.first_moment(1), -v.cy * nu));
        assert!(close(s.first_moment(2), -v.cz * nu));
    }

    #[test]
    fn second_moments_match_lax_wendroff() {
        let v = Velocity::new(0.4, -0.9, 0.6);
        let nu = 0.8;
        let s = Stencil27::new(v, nu);
        for d in 0..3 {
            let g = [v.cx, v.cy, v.cz][d] * nu;
            assert!(close(s.second_moment(d), g * g));
        }
    }

    #[test]
    fn unit_courant_is_exact_shift() {
        let s = Stencil27::at_max_stable_nu(Velocity::unit_diagonal());
        assert!(s.is_exact_shift());
        // Only the (-1,-1,-1) coefficient is nonzero: pure shift.
        for k in -1i32..=1 {
            for j in -1i32..=1 {
                for i in -1i32..=1 {
                    let expect = if (i, j, k) == (-1, -1, -1) { 1.0 } else { 0.0 };
                    assert!(
                        close(s.at(i, j, k), expect),
                        "a({i},{j},{k}) = {}",
                        s.at(i, j, k)
                    );
                }
            }
        }
    }

    #[test]
    fn max_stable_nu_is_stable_boundary() {
        let v = Velocity::new(2.0, 0.5, -1.0);
        let s = Stencil27::at_max_stable_nu(v);
        assert!(s.is_stable());
        let s2 = Stencil27::new(v, v.max_stable_nu() * 1.01);
        assert!(!s2.is_stable());
    }

    #[test]
    fn zero_velocity_is_identity() {
        let s = Stencil27::new(Velocity::new(0.0, 0.0, 0.0), 0.9);
        for idx in 0..27 {
            let expect = if idx == Stencil27::offset_index(0, 0, 0) {
                1.0
            } else {
                0.0
            };
            assert!(close(s.a[idx], expect));
        }
    }

    #[test]
    fn offset_index_is_bijective() {
        let mut seen = [false; 27];
        for k in -1i32..=1 {
            for j in -1i32..=1 {
                for i in -1i32..=1 {
                    let idx = Stencil27::offset_index(i, j, k);
                    assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
