//! The sweep engine's tracer hook (own binary: the recorder installed
//! here is process-wide, so these assertions must not share a process
//! with unrelated sweep-running tests).

use advect_core::sweep::{install_tracer, SweepPool};
use obs::{Anchor, Category, Tracer};

#[test]
fn sweep_workers_record_compute_spans() {
    let tracer = Tracer::on(0, Anchor::now());
    install_tracer(tracer.clone());

    // Inline path (single worker).
    let out = SweepPool::new(1).map_indices(4, |i| i * 2);
    assert_eq!(out, vec![0, 2, 4, 6]);

    // Spawned path.
    let out = SweepPool::new(3).map_indices(32, |i| i);
    assert_eq!(out.len(), 32);

    let trace = tracer.finish();
    let inline = trace
        .spans
        .iter()
        .filter(|s| s.label == "sweep.inline")
        .count();
    let workers = trace
        .spans
        .iter()
        .filter(|s| s.label == "sweep.worker")
        .count();
    assert_eq!(inline, 1);
    assert_eq!(workers, 3);
    for s in &trace.spans {
        assert_eq!(s.cat, Category::ComputeInterior);
        assert!(s.wall_end_ns >= s.wall_start_ns);
    }
}
