//! Differential property tests for the cache-blocked (tiled) and pooled
//! stencil sweeps: every configuration — random grid sizes, region
//! shapes, tile sizes (including degenerate 1-wide tiles and tiles
//! larger than the region), and every `SweepPool` worker count — must be
//! **bit-identical** to the scalar per-point oracle
//! (`apply_stencil_region_scalar`). Tiling only permutes whole output
//! rows and pooling only distributes disjoint tiles, so no rounding
//! difference is tolerated: the comparison is `data()` equality, not an
//! epsilon.

use advect_core::coeffs::{Stencil27, Velocity};
use advect_core::field::{Field3, Range3};
use advect_core::simd::{accumulate_tap_rows_at, SimdLevel};
use advect_core::stencil::{
    apply_stencil_region_pooled, apply_stencil_region_scalar, apply_stencil_region_tiled,
};
use advect_core::stepper::{AdvectionProblem, SerialStepper, ThreadedStepper};
use advect_core::sweep::SweepPool;
use advect_core::tile::TileSpec;
use proptest::prelude::*;
use proptest::TestRng;

fn stencil(salt: usize) -> Stencil27 {
    let v = Velocity::new(
        1.0 + (salt % 5) as f64 * 0.3,
        0.5 - (salt % 3) as f64 * 0.1,
        0.25,
    );
    Stencil27::new(v, 0.9)
}

fn filled(n: usize, salt: usize) -> Field3 {
    let mut f = Field3::new(n, n, n, 1);
    f.fill_interior(|x, y, z| ((x * 13 + y * 7 + z * 3 + salt as i64) % 23) as f64 * 0.17 - 1.0);
    f.copy_periodic_halo();
    f
}

/// Clamp sampled offsets into a (possibly empty) sub-range of `0..n`.
fn sub_range(n: usize, lo: usize, span: usize) -> (i64, i64) {
    let lo = lo.min(n - 1) as i64;
    let hi = (lo + span as i64).min(n as i64);
    (lo, hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serially tiled sweep is the scalar oracle under any tile
    /// shape, from 1×1 (one row per tile) to tiles dwarfing the region.
    #[test]
    fn tiled_region_matches_scalar_oracle(
        n in 6usize..13,
        salt in 0usize..1000,
        x0 in 0usize..12, xs in 0usize..12,
        y0 in 0usize..12, ys in 0usize..12,
        z0 in 0usize..12, zs in 0usize..12,
        ty in 1usize..80, tz in 1usize..80,
    ) {
        let src = filled(n, salt);
        let s = stencil(salt);
        let region = Range3::new(sub_range(n, x0, xs), sub_range(n, y0, ys), sub_range(n, z0, zs));
        let mut want = Field3::new(n, n, n, 1);
        apply_stencil_region_scalar(&src, &mut want, &s, region);
        let mut got = Field3::new(n, n, n, 1);
        apply_stencil_region_tiled(&src, &mut got, &s, region, TileSpec::new(ty, tz));
        prop_assert_eq!(got.data(), want.data(), "n {n} region {region:?} tile {ty}x{tz}");
    }

    /// The pooled sweep distributes disjoint tiles over a work-stealing
    /// queue; any worker count (including oversubscription) must still
    /// be the scalar oracle, bit for bit.
    #[test]
    fn pooled_region_matches_scalar_oracle_at_any_worker_count(
        n in 6usize..13,
        salt in 0usize..1000,
        x0 in 0usize..12, xs in 0usize..12,
        y0 in 0usize..12, ys in 0usize..12,
        z0 in 0usize..12, zs in 0usize..12,
        ty in 1usize..80, tz in 1usize..80,
        workers in 1usize..8,
    ) {
        let src = filled(n, salt);
        let s = stencil(salt);
        let region = Range3::new(sub_range(n, x0, xs), sub_range(n, y0, ys), sub_range(n, z0, zs));
        let mut want = Field3::new(n, n, n, 1);
        apply_stencil_region_scalar(&src, &mut want, &s, region);
        let pool = SweepPool::new(workers);
        let mut got = Field3::new(n, n, n, 1);
        apply_stencil_region_pooled(&src, &mut got, &s, region, TileSpec::new(ty, tz), &pool);
        prop_assert_eq!(
            got.data(),
            want.data(),
            "n {n} region {region:?} tile {ty}x{tz} workers {workers}"
        );
    }

    /// Every SIMD tier (portable chunked loop, 4-lane AVX, 8-lane
    /// AVX-512 — unavailable tiers fall back) produces bitwise the naive
    /// per-element accumulation at any row width, including widths that
    /// exercise partial chunks and the scalar tail.
    #[test]
    fn every_simd_level_matches_the_naive_accumulation(
        width in 1usize..64,
        seed in 1u64..u64::MAX,
    ) {
        let mut rng = TestRng::new(seed);
        let storage: Vec<Vec<f64>> = (0..27)
            .map(|_| (0..width).map(|_| rng.next_f64() * 4.0 - 2.0).collect())
            .collect();
        let rows: [&[f64]; 27] = std::array::from_fn(|t| storage[t].as_slice());
        let coef: [f64; 27] = std::array::from_fn(|_| rng.next_f64() * 2.0 - 1.0);

        let mut want = vec![0.0f64; width];
        for (x, out) in want.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for t in 0..27 {
                acc += coef[t] * rows[t][x];
            }
            *out = acc;
        }
        for level in [SimdLevel::Portable, SimdLevel::F64x4, SimdLevel::F64x8] {
            let mut got = vec![f64::NAN; width];
            accumulate_tap_rows_at(level, &mut got, &rows, &coef);
            let same = got.iter().zip(&want).all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "level {} width {width}", level.name());
        }
    }

    /// Time-tiled multi-step output is bitwise-equal to the same number
    /// of straight `SerialStepper` steps, across random grid sizes,
    /// fused depths `k` (including `k > steps`, forcing a partial final
    /// burst, and `k = 1`), degenerate tile shapes, and worker counts.
    /// The comparison is per-point `to_bits` over the interior — the
    /// two fields carry different halo widths, but the physics lives in
    /// the interior and must not differ in a single ulp.
    #[test]
    fn time_tiled_steps_match_serial_stepper_bitwise(
        n in 6usize..12,
        k in 1usize..6,
        steps in 1u64..8,
        ty in 1usize..40, tz in 1usize..40,
        workers in 1usize..8,
    ) {
        let problem = AdvectionProblem::general_case(n);
        let mut serial = SerialStepper::new(problem);
        serial.run(steps);
        let mut tiled = ThreadedStepper::new(problem, workers)
            .with_time_tile(k.min(n))
            .with_tile(TileSpec::new(ty, tz));
        tiled.run(steps);
        let want = serial.state();
        let got = tiled.state();
        let mut mismatches = 0usize;
        for (x, y, z) in want.interior_range().iter() {
            if got.at(x, y, z).to_bits() != want.at(x, y, z).to_bits() {
                mismatches += 1;
            }
        }
        prop_assert_eq!(
            mismatches, 0,
            "n {} k {} steps {} tile {}x{} workers {}",
            n, k, steps, ty, tz, workers
        );
    }

    /// Tiles cover the region exactly once regardless of shape: summing
    /// a count field through the tile iterator marks every region point
    /// once and nothing outside.
    #[test]
    fn tiles_partition_the_region(
        n in 1usize..20,
        y0 in 0usize..19, ys in 0usize..19,
        z0 in 0usize..19, zs in 0usize..19,
        ty in 1usize..24, tz in 1usize..24,
    ) {
        let region = Range3::new((0, n as i64), sub_range(n.max(1), y0, ys), sub_range(n.max(1), z0, zs));
        let mut seen = std::collections::HashMap::new();
        for t in TileSpec::new(ty, tz).tiles(region) {
            for y in t.y.0..t.y.1 {
                for z in t.z.0..t.z.1 {
                    prop_assert_eq!(t.x, region.x, "tiles must keep whole x rows");
                    *seen.entry((y, z)).or_insert(0u32) += 1;
                }
            }
        }
        let expect = ((region.y.1 - region.y.0).max(0) * (region.z.1 - region.z.0).max(0)) as usize;
        prop_assert_eq!(seen.len(), expect);
        prop_assert!(seen.values().all(|&c| c == 1), "a point was tiled twice");
    }
}
