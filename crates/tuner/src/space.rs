//! Search-space definitions.

use machine::Machine;

/// The joint tuning space for a machine.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate threads per MPI task.
    pub threads: Vec<usize>,
    /// Candidate CPU box thicknesses (0 means "no CPU box", only valid
    /// for non-overlap hybrids).
    pub thicknesses: Vec<usize>,
    /// Candidate GPU block shapes.
    pub blocks: Vec<(usize, usize)>,
}

impl SearchSpace {
    /// The space the paper explores for a machine: its measured
    /// threads-per-task choices, thicknesses up to a deep box, and the
    /// warp-aligned/half-warp block shapes of Figures 7/8.
    pub fn for_machine(m: &Machine) -> Self {
        let max_threads = m
            .gpu
            .as_ref()
            .map(|g| g.max_threads_per_block)
            .unwrap_or(512);
        let mut blocks = Vec::new();
        for bx in [16usize, 32, 64, 128] {
            for by in [1usize, 2, 4, 6, 8, 11, 12, 16, 24, 32] {
                if bx * by <= max_threads {
                    blocks.push((bx, by));
                }
            }
        }
        Self {
            threads: m.thread_choices.to_vec(),
            thicknesses: vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32],
            blocks,
        }
    }

    /// Total number of configurations.
    pub fn len(&self) -> usize {
        self.threads.len() * self.thicknesses.len() * self.blocks.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{lens, yona};

    #[test]
    fn space_respects_block_limits() {
        let l = SearchSpace::for_machine(&lens()); // 512 threads
        assert!(l.blocks.iter().all(|&(x, y)| x * y <= 512));
        let y = SearchSpace::for_machine(&yona()); // 1024 threads
        assert!(y.blocks.iter().any(|&(x, b)| x * b > 512));
    }

    #[test]
    fn space_uses_machine_thread_choices() {
        let y = SearchSpace::for_machine(&yona());
        assert_eq!(y.threads, vec![1, 2, 3, 6, 12]);
        assert!(y.len() > 100);
    }
}
