//! # tuner
//!
//! Automatic tuning of the performance parameters the paper identifies
//! (Section VI): "We see a clear need to tune the number of threads per
//! task. Our test has the additional tuning parameter of the thickness of
//! the CPU box partition, which can itself depend on the number of
//! threads per task. A potential dependence we did not test … is the GPU
//! thread-block size. The optimal size could vary with the size of the
//! local domain on the GPU."
//!
//! Two strategies over the joint space (threads/task × thickness ×
//! block):
//!
//! * [`exhaustive`] — the ground truth, evaluating every configuration;
//! * [`coordinate_descent`] — tune one parameter at a time to a fixpoint,
//!   the strategy auto-tuners actually use; tests show it finds the
//!   exhaustive optimum on both GPU clusters with a fraction of the
//!   evaluations.
//!
//! The objective is the `perfmodel` GF for a chosen implementation, so
//! tuning is deterministic and fast; the same driver would work over real
//! measurements.

//! ```
//! use machine::yona;
//! use perfmodel::GpuImpl;
//! use tuner::{multistart_descent, Objective, SearchSpace};
//! let m = yona();
//! let space = SearchSpace::for_machine(&m);
//! let obj = Objective::new(&m, GpuImpl::HybridOverlap, 4 * 12);
//! let best = multistart_descent(&obj, &space);
//! assert_eq!(best.config.block, (32, 8)); // the paper's Figure 8 optimum
//! ```

use machine::Machine;
use perfmodel::gpu::{GpuImpl, GpuScenario};

pub mod space;

pub use space::SearchSpace;

/// One point in the tuning space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// OpenMP threads per MPI task.
    pub threads: usize,
    /// CPU box thickness.
    pub thickness: usize,
    /// GPU block shape.
    pub block: (usize, usize),
}

/// A tuning outcome: the best configuration, its objective value, and how
/// many objective evaluations the search spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningResult {
    /// Best configuration found.
    pub config: Config,
    /// Objective (GF) at the best configuration.
    pub gf: f64,
    /// Objective evaluations performed.
    pub evaluations: usize,
}

/// The tuning objective: modeled GF of `im` on `machine` at `cores`.
///
/// The evaluation counter is atomic so searches can fan evaluations out
/// over the [`advect_core::sweep::SweepPool`].
pub struct Objective<'a> {
    machine: &'a Machine,
    im: GpuImpl,
    cores: usize,
    evaluations: std::sync::atomic::AtomicUsize,
}

impl<'a> Objective<'a> {
    /// A new objective.
    pub fn new(machine: &'a Machine, im: GpuImpl, cores: usize) -> Self {
        Self {
            machine,
            im,
            cores,
            evaluations: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Evaluate one configuration (counts toward the budget). Returns 0
    /// for configurations the hardware rejects (oversized blocks).
    pub fn eval(&self, c: Config) -> f64 {
        self.evaluations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let spec = self.machine.gpu.as_ref().expect("GPU machine");
        if c.block.0 * c.block.1 > spec.max_threads_per_block {
            return 0.0;
        }
        if self.im == GpuImpl::HybridOverlap && c.thickness == 0 {
            return 0.0;
        }
        GpuScenario::new(self.machine, self.cores, c.threads)
            .with_block(c.block)
            .with_thickness(c.thickness)
            .gf(self.im)
    }

    /// Evaluations spent so far.
    pub fn spent(&self) -> usize {
        self.evaluations.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Evaluate a batch of candidate configurations on the global sweep pool,
/// returning GF values in candidate order. The serial reductions below
/// fold these ordered results with strict `>` comparisons, so the search
/// trajectory (and the evaluation count) is identical to a fully serial
/// run under any worker count.
fn eval_batch(obj: &Objective<'_>, candidates: &[Config]) -> Vec<f64> {
    advect_core::sweep::SweepPool::global().map(candidates, |&c| obj.eval(c))
}

/// Exhaustive search: the ground-truth optimum. The whole configuration
/// grid is evaluated on the sweep pool in one batch.
pub fn exhaustive(obj: &Objective<'_>, space: &SearchSpace) -> TuningResult {
    let mut candidates =
        Vec::with_capacity(space.threads.len() * space.thicknesses.len() * space.blocks.len());
    for &threads in &space.threads {
        for &thickness in &space.thicknesses {
            for &block in &space.blocks {
                candidates.push(Config {
                    threads,
                    thickness,
                    block,
                });
            }
        }
    }
    let gfs = eval_batch(obj, &candidates);
    let mut best = (
        Config {
            threads: space.threads[0],
            thickness: space.thicknesses[0],
            block: space.blocks[0],
        },
        0.0f64,
    );
    for (&c, &gf) in candidates.iter().zip(&gfs) {
        if gf > best.1 {
            best = (c, gf);
        }
    }
    TuningResult {
        config: best.0,
        gf: best.1,
        evaluations: obj.spent(),
    }
}

/// Coordinate descent: starting from `start`, repeatedly sweep one
/// parameter at a time (threads → thickness → block), keeping the best
/// value of each sweep, until a full round improves nothing.
///
/// Each one-parameter sweep is evaluated as one parallel batch: within a
/// sweep the candidates differ from `cur` only in the swept field, and
/// adopting a candidate changes only that same field, so the candidate
/// set is exactly what the serial loop would have evaluated. The ordered
/// strict-`>` fold afterwards reproduces the serial trajectory (and
/// evaluation count) bit for bit.
pub fn coordinate_descent(obj: &Objective<'_>, space: &SearchSpace, start: Config) -> TuningResult {
    fn sweep(obj: &Objective<'_>, cands: &[Config], cur: &mut Config, cur_gf: &mut f64) -> bool {
        let gfs = eval_batch(obj, cands);
        let mut improved = false;
        for (&c, &gf) in cands.iter().zip(&gfs) {
            if gf > *cur_gf {
                *cur = c;
                *cur_gf = gf;
                improved = true;
            }
        }
        improved
    }
    let mut cur = start;
    let mut cur_gf = obj.eval(cur);
    loop {
        let mut improved = false;
        // Threads sweep.
        let cands: Vec<Config> = space
            .threads
            .iter()
            .map(|&t| Config { threads: t, ..cur })
            .collect();
        improved |= sweep(obj, &cands, &mut cur, &mut cur_gf);
        // Thickness sweep.
        let cands: Vec<Config> = space
            .thicknesses
            .iter()
            .map(|&th| Config {
                thickness: th,
                ..cur
            })
            .collect();
        improved |= sweep(obj, &cands, &mut cur, &mut cur_gf);
        // Block sweep.
        let cands: Vec<Config> = space
            .blocks
            .iter()
            .map(|&b| Config { block: b, ..cur })
            .collect();
        improved |= sweep(obj, &cands, &mut cur, &mut cur_gf);
        if !improved {
            return TuningResult {
                config: cur,
                gf: cur_gf,
                evaluations: obj.spent(),
            };
        }
    }
}

/// Coordinate descent with a small set of canonical starting points
/// (min threads, max threads, and the paper-default block with a thin
/// veneer): escapes the local optima a single start can fall into (e.g.
/// many tasks per GPU with a poor block shape), at a few times the cost.
pub fn multistart_descent(obj: &Objective<'_>, space: &SearchSpace) -> TuningResult {
    let mid_block = if space.blocks.contains(&(32, 8)) {
        (32, 8)
    } else {
        space.blocks[space.blocks.len() / 2]
    };
    let starts = [
        Config {
            threads: space.threads[0],
            thickness: space.thicknesses[0],
            block: space.blocks[0],
        },
        Config {
            threads: *space.threads.last().expect("nonempty"),
            thickness: space.thicknesses[0],
            block: mid_block,
        },
        Config {
            threads: *space.threads.last().expect("nonempty"),
            thickness: space.thicknesses[space.thicknesses.len() / 2],
            block: *space.blocks.last().expect("nonempty"),
        },
    ];
    let mut best: Option<TuningResult> = None;
    for s in starts {
        let r = coordinate_descent(obj, space, s);
        best = Some(match best {
            Some(b) if b.gf >= r.gf => b,
            _ => r,
        });
    }
    let mut out = best.expect("at least one start");
    out.evaluations = obj.spent();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{lens, yona};

    #[test]
    fn coordinate_descent_matches_exhaustive_on_yona() {
        let m = yona();
        let space = SearchSpace::for_machine(&m);
        for nodes in [1usize, 4, 16] {
            let obj_ex = Objective::new(&m, GpuImpl::HybridOverlap, nodes * 12);
            let truth = exhaustive(&obj_ex, &space);
            let obj_cd = Objective::new(&m, GpuImpl::HybridOverlap, nodes * 12);
            let found = multistart_descent(&obj_cd, &space);
            assert!(
                found.gf >= 0.99 * truth.gf,
                "{nodes} nodes: descent {:.1} vs exhaustive {:.1}",
                found.gf,
                truth.gf
            );
            assert!(
                found.evaluations * 3 < truth.evaluations,
                "descent not cheaper: {} vs {}",
                found.evaluations,
                truth.evaluations
            );
        }
    }

    #[test]
    fn coordinate_descent_matches_exhaustive_on_lens() {
        let m = lens();
        let space = SearchSpace::for_machine(&m);
        let obj_ex = Objective::new(&m, GpuImpl::HybridOverlap, 8 * 16);
        let truth = exhaustive(&obj_ex, &space);
        let obj_cd = Objective::new(&m, GpuImpl::HybridOverlap, 8 * 16);
        let found = multistart_descent(&obj_cd, &space);
        assert!(
            found.gf >= 0.98 * truth.gf,
            "{:.1} vs {:.1}",
            found.gf,
            truth.gf
        );
    }

    #[test]
    fn tuner_rediscovers_paper_block_shapes() {
        // Tuning the GPU-resident implementation must land on the paper's
        // 32×8 (Yona) — the block is the only live parameter there.
        let m = yona();
        let space = SearchSpace::for_machine(&m);
        let obj = Objective::new(&m, GpuImpl::Resident, 12);
        let truth = exhaustive(&obj, &space);
        assert_eq!(truth.config.block, (32, 8));
    }

    #[test]
    fn oversized_blocks_score_zero() {
        let m = lens(); // C1060: 512 threads max
        let obj = Objective::new(&m, GpuImpl::Resident, 16);
        let gf = obj.eval(Config {
            threads: 16,
            thickness: 0,
            block: (64, 16),
        });
        assert_eq!(gf, 0.0);
    }

    #[test]
    fn thickness_interacts_with_threads() {
        // The paper: thickness "can itself depend on the number of
        // threads per task". Verify the dependence exists in the model:
        // the best thickness differs across thread counts somewhere.
        let m = yona();
        let space = SearchSpace::for_machine(&m);
        let mut best_thickness = std::collections::HashSet::new();
        for &t in &space.threads {
            let obj = Objective::new(&m, GpuImpl::HybridOverlap, 4 * 12);
            let mut best = (0.0f64, 0usize);
            for &th in &space.thicknesses {
                let gf = obj.eval(Config {
                    threads: t,
                    thickness: th,
                    block: (32, 8),
                });
                if gf > best.0 {
                    best = (gf, th);
                }
            }
            best_thickness.insert(best.1);
        }
        assert!(
            best_thickness.len() > 1,
            "thickness optimum independent of threads: {best_thickness:?}"
        );
    }
}
