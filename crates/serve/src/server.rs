//! The in-process run server: bounded queue, fixed worker pool,
//! per-tenant round-robin fairness, in-flight dedup, request-keyed LRU
//! cache, timeouts, and graceful drain.
//!
//! ## Scheduling
//!
//! Queued jobs live in per-tenant FIFO queues. Workers pick the next
//! job round-robin across tenant ids (cursor over the sorted tenant
//! map), skipping tenants already at their running cap — so a tenant
//! flooding the queue gets at most its fair share of workers, and other
//! tenants' requests overtake the flood rather than waiting behind it.
//! The aggregate queue is bounded; submissions past the bound are
//! rejected immediately with [`ServeError::Overloaded`] (dedup joins
//! and cache hits never count against the bound).
//!
//! ## Dedup and caching
//!
//! Both are keyed by the canonicalized [`RunKey`]. A submission whose
//! key is already queued or running joins that execution's waiter list;
//! the single execution's rendered artifact is handed to every waiter
//! and stored in the LRU cache, so identical requests always receive
//! byte-identical bytes.
//!
//! ## Timeouts and shutdown
//!
//! A waiter that times out abandons its ticket; if it was the last
//! waiter and the job had not started, the job is cancelled in place
//! (removed from the queue). A running job is never interrupted — the
//! worker finishes, caches the artifact, and the pool stays reusable.
//! [`Server::shutdown`] stops accepting work, wakes the workers, lets
//! them drain every queued and running job, and joins them.

use crate::artifact;
use crate::cache::LruCache;
use crate::protocol::Request;
use obs::registry::{Counter, Gauge, Histogram, Metrics};
use overlap::{RunKey, RunLimits};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing runs.
    pub workers: usize,
    /// Aggregate bound on queued (not yet running) jobs.
    pub queue_capacity: usize,
    /// Artifacts held in the LRU cache.
    pub cache_capacity: usize,
    /// Max jobs from one tenant running concurrently.
    pub tenant_max_running: usize,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_deadline: Duration,
    /// Per-request validation bounds.
    pub limits: RunLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            tenant_max_running: 1,
            default_deadline: Duration::from_secs(30),
            limits: RunLimits::default(),
        }
    }
}

/// Why a request did not produce an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request failed validation or canonicalization.
    Invalid(String),
    /// The queue is full; try again later.
    Overloaded,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The waiter's deadline expired first.
    Timeout,
    /// The run itself panicked (a bug; the worker survives).
    Failed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
            ServeError::Overloaded => write!(f, "overloaded: queue full"),
            ServeError::ShuttingDown => write!(f, "shutting down"),
            ServeError::Timeout => write!(f, "deadline exceeded"),
            ServeError::Failed(m) => write!(f, "run failed: {m}"),
        }
    }
}

/// A completed request: the rendered artifact and whether it came from
/// the cache without touching the pool.
#[derive(Debug, Clone)]
pub struct Response {
    /// `true` when served from the LRU cache.
    pub cached: bool,
    /// The rendered artifact (shared bytes — identical keys get the
    /// same allocation).
    pub artifact: Arc<String>,
}

/// Counters snapshot for tests and load reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Run requests accepted for processing (valid ones).
    pub requests: u64,
    /// Requests served straight from the cache.
    pub cache_hits: u64,
    /// Requests that joined an in-flight execution.
    pub dedup_joins: u64,
    /// Executions actually performed by workers.
    pub executions: u64,
    /// Submissions rejected (queue full or shutting down).
    pub rejects: u64,
    /// Waiters whose deadline expired.
    pub timeouts: u64,
}

enum PendState {
    Waiting,
    Done(Result<Arc<String>, ServeError>),
}

/// One execution's rendezvous: every deduplicated waiter blocks on the
/// condvar; the worker publishes exactly once.
struct Pending {
    tenant: String,
    state: Mutex<PendState>,
    cv: Condvar,
    /// Live tickets. The last waiter to abandon a still-queued job
    /// cancels it.
    waiters: Mutex<usize>,
}

impl Pending {
    fn new(tenant: String) -> Self {
        Self {
            tenant,
            state: Mutex::new(PendState::Waiting),
            cv: Condvar::new(),
            waiters: Mutex::new(1),
        }
    }

    fn publish(&self, result: Result<Arc<String>, ServeError>) {
        *self.state.lock() = PendState::Done(result);
        self.cv.notify_all();
    }
}

struct Job {
    key: RunKey,
    pending: Arc<Pending>,
}

struct Sched {
    /// Queued jobs, FIFO per tenant.
    queues: BTreeMap<String, VecDeque<Job>>,
    /// Aggregate queued count (bounded by `queue_capacity`).
    queued: usize,
    /// Jobs running right now, per tenant (bounded by
    /// `tenant_max_running`).
    running: HashMap<String, usize>,
    /// Round-robin cursor: the tenant served last.
    cursor: Option<String>,
    /// Every queued or running key, for dedup joins.
    inflight: HashMap<RunKey, Arc<Pending>>,
    cache: LruCache,
    shutdown: bool,
}

struct SelfMetrics {
    requests: Counter,
    cache_hits: Counter,
    dedup_joins: Counter,
    executions: Counter,
    rejects: Counter,
    timeouts: Counter,
    queue_depth: Gauge,
    latency: Histogram,
}

struct Inner {
    cfg: ServerConfig,
    sched: Mutex<Sched>,
    /// Wakes workers when work or a tenant slot appears, and the
    /// drain-waiter at shutdown.
    work_cv: Condvar,
    registry: Metrics,
    metrics: SelfMetrics,
}

/// The run server. Cloneable handle semantics come from wrapping in
/// [`Arc`] (see [`Server::start`]).
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A claim on a submitted request; redeem with [`Ticket::wait`].
pub struct Ticket {
    inner: Arc<Inner>,
    pending: Arc<Pending>,
    key: RunKey,
    submitted: Instant,
    deadline: Duration,
    /// Already-resolved response (cache hit) — no waiting needed.
    ready: Option<Response>,
    redeemed: bool,
}

impl Server {
    /// Start the server: spawn `cfg.workers` worker threads and return
    /// the handle. Shut down explicitly with [`Server::shutdown`];
    /// dropping without it leaks the workers parked on the condvar
    /// until process exit.
    pub fn start(cfg: ServerConfig) -> Arc<Server> {
        let registry = Metrics::on();
        let metrics = SelfMetrics {
            requests: registry.counter(
                "serve_requests_total",
                "Run requests accepted (validated) by the server",
                &[],
            ),
            cache_hits: registry.counter(
                "serve_cache_hits_total",
                "Requests served from the artifact cache",
                &[],
            ),
            dedup_joins: registry.counter(
                "serve_dedup_joins_total",
                "Requests that joined an in-flight execution",
                &[],
            ),
            executions: registry.counter(
                "serve_executions_total",
                "Runs executed by the worker pool",
                &[],
            ),
            rejects: registry.counter(
                "serve_rejects_total",
                "Submissions rejected: queue full or shutting down",
                &[],
            ),
            timeouts: registry.counter(
                "serve_timeouts_total",
                "Waiters whose deadline expired",
                &[],
            ),
            queue_depth: registry.gauge(
                "serve_queue_depth",
                "Jobs queued and not yet running",
                &[],
            ),
            latency: registry.histogram(
                "serve_request_latency_ns",
                "End-to-end request latency (submit to artifact)",
                &[],
            ),
        };
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            sched: Mutex::new(Sched {
                queues: BTreeMap::new(),
                queued: 0,
                running: HashMap::new(),
                cursor: None,
                inflight: HashMap::new(),
                cache: LruCache::new(cfg.cache_capacity),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            registry,
            metrics,
            cfg,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Arc::new(Server {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Validate, canonicalize, and submit a request. Returns a ticket
    /// immediately; cache hits resolve without touching the pool.
    pub fn submit(&self, req: &Request) -> Result<Ticket, ServeError> {
        let key = req
            .params
            .canonicalize(&self.inner.cfg.limits)
            .map_err(ServeError::Invalid)?;
        let deadline = req
            .timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(self.inner.cfg.default_deadline);
        let submitted = Instant::now();
        let m = &self.inner.metrics;
        let mut sched = self.inner.sched.lock();
        if let Some(hit) = sched.cache.get(&key) {
            drop(sched);
            m.requests.inc();
            m.cache_hits.inc();
            return Ok(Ticket {
                inner: Arc::clone(&self.inner),
                pending: Arc::new(Pending::new(req.tenant.clone())),
                key,
                submitted,
                deadline,
                ready: Some(Response {
                    cached: true,
                    artifact: hit,
                }),
                redeemed: false,
            });
        }
        if let Some(pending) = sched.inflight.get(&key).cloned() {
            *pending.waiters.lock() += 1;
            drop(sched);
            m.requests.inc();
            m.dedup_joins.inc();
            return Ok(Ticket {
                inner: Arc::clone(&self.inner),
                pending,
                key,
                submitted,
                deadline,
                ready: None,
                redeemed: false,
            });
        }
        if sched.shutdown {
            drop(sched);
            m.rejects.inc();
            return Err(ServeError::ShuttingDown);
        }
        if sched.queued >= self.inner.cfg.queue_capacity {
            drop(sched);
            m.rejects.inc();
            return Err(ServeError::Overloaded);
        }
        let pending = Arc::new(Pending::new(req.tenant.clone()));
        sched.inflight.insert(key.clone(), Arc::clone(&pending));
        sched
            .queues
            .entry(req.tenant.clone())
            .or_default()
            .push_back(Job {
                key: key.clone(),
                pending: Arc::clone(&pending),
            });
        sched.queued += 1;
        m.queue_depth.set(sched.queued as i64);
        drop(sched);
        m.requests.inc();
        self.inner.work_cv.notify_all();
        Ok(Ticket {
            inner: Arc::clone(&self.inner),
            pending,
            key,
            submitted,
            deadline,
            ready: None,
            redeemed: false,
        })
    }

    /// Submit and block until the artifact (or error) is ready — the
    /// one-call path TCP handlers use.
    pub fn run(&self, req: &Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Stop accepting work, drain every queued and running job, and
    /// join the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut sched = self.inner.sched.lock();
            sched.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Server self-metrics as Prometheus text.
    pub fn metrics_text(&self) -> String {
        self.inner.registry.render_prometheus()
    }

    /// Counter snapshot for tests and load reports.
    pub fn stats(&self) -> ServerStats {
        let m = &self.inner.metrics;
        ServerStats {
            requests: m.requests.get(),
            cache_hits: m.cache_hits.get(),
            dedup_joins: m.dedup_joins.get(),
            executions: m.executions.get(),
            rejects: m.rejects.get(),
            timeouts: m.timeouts.get(),
        }
    }

    /// Number of cached artifacts right now.
    pub fn cache_len(&self) -> usize {
        self.inner.sched.lock().cache.len()
    }

    /// Jobs queued and not yet picked by a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.sched.lock().queued
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("key", &self.key)
            .field("ready", &self.ready.is_some())
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// The canonicalized key this ticket is waiting on.
    pub fn key(&self) -> &RunKey {
        &self.key
    }

    /// Block until the artifact is ready or the deadline expires.
    pub fn wait(mut self) -> Result<Response, ServeError> {
        self.redeemed = true;
        if let Some(ready) = self.ready.take() {
            self.inner
                .metrics
                .latency
                .observe(self.submitted.elapsed().as_nanos() as u64);
            return Ok(ready);
        }
        let deadline = self.submitted + self.deadline;
        let mut state = self.pending.state.lock();
        loop {
            if let PendState::Done(result) = &*state {
                let result = result.clone();
                drop(state);
                self.inner
                    .metrics
                    .latency
                    .observe(self.submitted.elapsed().as_nanos() as u64);
                return result.map(|artifact| Response {
                    cached: false,
                    artifact,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                self.abandon();
                self.inner.metrics.timeouts.inc();
                return Err(ServeError::Timeout);
            }
            self.pending
                .cv
                .wait_for(&mut state, deadline.duration_since(now));
        }
    }

    /// Drop this waiter's claim; if it was the last waiter and the job
    /// has not started, cancel the job in place.
    fn abandon(&self) {
        // Take the scheduler lock before touching the waiter count:
        // dedup joins increment under the same lock, so "last waiter"
        // and "job still queued" are decided atomically.
        let mut sched = self.inner.sched.lock();
        let last = {
            let mut waiters = self.pending.waiters.lock();
            *waiters -= 1;
            *waiters == 0
        };
        if !last {
            return;
        }
        let queue_has_job = sched
            .queues
            .get(&self.pending.tenant)
            .is_some_and(|q| q.iter().any(|j| Arc::ptr_eq(&j.pending, &self.pending)));
        if queue_has_job {
            if let Some(q) = sched.queues.get_mut(&self.pending.tenant) {
                q.retain(|j| !Arc::ptr_eq(&j.pending, &self.pending));
            }
            sched.queued -= 1;
            sched.inflight.remove(&self.key);
            self.inner.metrics.queue_depth.set(sched.queued as i64);
        }
        // A running job is left alone: the worker finishes and caches.
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if !self.redeemed && self.ready.is_none() {
            self.abandon();
        }
    }
}

/// Pick the next runnable job: round-robin over tenant ids starting
/// after the cursor, skipping tenants at their running cap.
fn pick_next(sched: &mut Sched, tenant_max_running: usize) -> Option<Job> {
    let tenants: Vec<String> = sched.queues.keys().cloned().collect();
    if tenants.is_empty() {
        return None;
    }
    let start = match &sched.cursor {
        Some(cur) => tenants.iter().position(|t| t > cur).unwrap_or(0),
        None => 0,
    };
    for offset in 0..tenants.len() {
        let tenant = &tenants[(start + offset) % tenants.len()];
        let running = sched.running.get(tenant).copied().unwrap_or(0);
        if running >= tenant_max_running {
            continue;
        }
        let queue = sched.queues.get_mut(tenant)?;
        if let Some(job) = queue.pop_front() {
            if queue.is_empty() {
                sched.queues.remove(tenant);
            }
            sched.queued -= 1;
            *sched.running.entry(tenant.clone()).or_insert(0) += 1;
            sched.cursor = Some(tenant.clone());
            return Some(job);
        }
        sched.queues.remove(tenant);
    }
    None
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut sched = inner.sched.lock();
            loop {
                if let Some(job) = pick_next(&mut sched, inner.cfg.tenant_max_running) {
                    inner.metrics.queue_depth.set(sched.queued as i64);
                    break job;
                }
                if sched.shutdown {
                    return;
                }
                inner.work_cv.wait(&mut sched);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| artifact::render(&job.key)))
            .map(Arc::new)
            .map_err(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "run panicked".to_string());
                ServeError::Failed(msg)
            });
        inner.metrics.executions.inc();
        {
            let mut sched = inner.sched.lock();
            if let Some(n) = sched.running.get_mut(&job.pending.tenant) {
                *n -= 1;
                if *n == 0 {
                    sched.running.remove(&job.pending.tenant);
                }
            }
            sched.inflight.remove(&job.key);
            if let Ok(artifact) = &result {
                sched.cache.insert(job.key.clone(), Arc::clone(artifact));
            }
        }
        job.pending.publish(result);
        // A tenant slot freed and maybe new work is eligible.
        inner.work_cv.notify_all();
    }
}
