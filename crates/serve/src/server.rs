//! The in-process run server: bounded queue, fixed worker pool,
//! per-tenant round-robin fairness, in-flight dedup, request-keyed LRU
//! cache, timeouts, and graceful drain.
//!
//! ## Scheduling
//!
//! Queued jobs live in per-tenant FIFO queues. Workers pick the next
//! job round-robin across tenant ids (cursor over the sorted tenant
//! map), skipping tenants already at their running cap — so a tenant
//! flooding the queue gets at most its fair share of workers, and other
//! tenants' requests overtake the flood rather than waiting behind it.
//! The aggregate queue is bounded; submissions past the bound are
//! rejected immediately with [`ServeError::Overloaded`] (dedup joins
//! and cache hits never count against the bound).
//!
//! ## Dedup and caching
//!
//! Both are keyed by the canonicalized [`RunKey`]. A submission whose
//! key is already queued or running joins that execution's waiter list;
//! the single execution's rendered artifact is handed to every waiter
//! and stored in the LRU cache, so identical requests always receive
//! byte-identical bytes.
//!
//! ## Timeouts and shutdown
//!
//! A waiter that times out abandons its ticket; if it was the last
//! waiter and the job had not started, the job is cancelled in place
//! (removed from the queue). A running job is never interrupted — the
//! worker finishes, caches the artifact, and the pool stays reusable.
//! [`Server::shutdown`] stops accepting work, wakes the workers, lets
//! them drain every queued and running job, and joins them.
//!
//! ## Observability
//!
//! Every submission gets a request id and a lifecycle event chain in
//! the always-on flight recorder (see [`crate::reqtrace`]): `accepted →
//! queued → executing → rendered → responded`, with `cache-hit`,
//! `dedup-join`, `timed-out`, and `rejected` branches. Traced runs park
//! their spans in a small trace ring. On an anomaly — deadline miss,
//! `Overloaded` burst, straggler flag, or SLO burn — the server dumps a
//! self-contained JSON bundle (request timeline stitched to run traces,
//! metrics, blame matrix) to `dump_dir`, at most once per kind per
//! cooldown. Notable transitions also land in the structured event log
//! ([`crate::log`]), queryable via `{"cmd":"events"}`.

use crate::artifact;
use crate::cache::LruCache;
use crate::log::{Level, Log};
use crate::protocol::Request;
use crate::reqtrace::{
    self, Anomaly, BundleInput, ReqEvent, RequestId, SloConfig, SloTracker, Stage,
};
use obs::recorder::{Ring, StoredRun, TraceRing};
use obs::registry::{Counter, Gauge, Histogram, Metrics};
use overlap::{RunKey, RunLimits};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing runs.
    pub workers: usize,
    /// Aggregate bound on queued (not yet running) jobs.
    pub queue_capacity: usize,
    /// Artifacts held in the LRU cache.
    pub cache_capacity: usize,
    /// Max jobs from one tenant running concurrently.
    pub tenant_max_running: usize,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_deadline: Duration,
    /// Per-request validation bounds.
    pub limits: RunLimits,
    /// Flight-recorder event ring capacity (0 disables the recorder —
    /// no rings are allocated and no anomaly bundles are produced).
    pub recorder_capacity: usize,
    /// Traced runs kept for stitching (ignored when the recorder is
    /// off).
    pub trace_ring_capacity: usize,
    /// Structured-log ring capacity (0 disables the log).
    pub log_capacity: usize,
    /// Max rendered log lines per event kind per second.
    pub log_rate_per_sec: u32,
    /// Tee log lines to stderr (for `serve_run` in a terminal).
    pub log_stderr: bool,
    /// SLO threshold / target / burn windows.
    pub slo: SloConfig,
    /// `Overloaded` rejections within one second that trip the
    /// overload-burst anomaly (0 disables the trigger).
    pub overload_burst: usize,
    /// Minimum spacing between dumps of the same anomaly kind.
    pub anomaly_cooldown: Duration,
    /// Where anomaly bundles are written; `None` keeps them queryable
    /// via `{"cmd":"dump"}` only.
    pub dump_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            tenant_max_running: 1,
            default_deadline: Duration::from_secs(30),
            limits: RunLimits::default(),
            recorder_capacity: 256,
            trace_ring_capacity: 4,
            log_capacity: 256,
            log_rate_per_sec: 50,
            log_stderr: false,
            slo: SloConfig::default(),
            overload_burst: 16,
            anomaly_cooldown: Duration::from_secs(60),
            dump_dir: None,
        }
    }
}

/// Why a request did not produce an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request failed validation or canonicalization.
    Invalid(String),
    /// The queue is full; try again later.
    Overloaded,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The waiter's deadline expired first.
    Timeout,
    /// The run itself panicked (a bug; the worker survives).
    Failed(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Invalid(m) => write!(f, "invalid request: {m}"),
            ServeError::Overloaded => write!(f, "overloaded: queue full"),
            ServeError::ShuttingDown => write!(f, "shutting down"),
            ServeError::Timeout => write!(f, "deadline exceeded"),
            ServeError::Failed(m) => write!(f, "run failed: {m}"),
        }
    }
}

/// A completed request: the rendered artifact and whether it came from
/// the cache without touching the pool.
#[derive(Debug, Clone)]
pub struct Response {
    /// `true` when served from the LRU cache.
    pub cached: bool,
    /// The rendered artifact (shared bytes — identical keys get the
    /// same allocation).
    pub artifact: Arc<String>,
}

/// Counters snapshot for tests and load reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Run requests accepted for processing (valid ones).
    pub requests: u64,
    /// Requests served straight from the cache.
    pub cache_hits: u64,
    /// Requests that joined an in-flight execution.
    pub dedup_joins: u64,
    /// Executions actually performed by workers.
    pub executions: u64,
    /// Submissions rejected (queue full or shutting down).
    pub rejects: u64,
    /// Waiters whose deadline expired.
    pub timeouts: u64,
}

enum PendState {
    Waiting,
    Done(Result<Arc<String>, ServeError>),
}

/// One execution's rendezvous: every deduplicated waiter blocks on the
/// condvar; the worker publishes exactly once.
struct Pending {
    tenant: String,
    state: Mutex<PendState>,
    cv: Condvar,
    /// Live tickets. The last waiter to abandon a still-queued job
    /// cancels it.
    waiters: Mutex<usize>,
}

impl Pending {
    fn new(tenant: String) -> Self {
        Self {
            tenant,
            state: Mutex::new(PendState::Waiting),
            cv: Condvar::new(),
            waiters: Mutex::new(1),
        }
    }

    fn publish(&self, result: Result<Arc<String>, ServeError>) {
        *self.state.lock() = PendState::Done(result);
        self.cv.notify_all();
    }
}

struct Job {
    key: RunKey,
    pending: Arc<Pending>,
    /// Request id of the submission that created (not joined) this job.
    req_id: u64,
    /// Tenant hash carried into recorder events.
    tenant_hash: u64,
    /// Service-clock nanoseconds at enqueue, for the queue-wait span.
    enqueued_ns: u64,
}

struct Sched {
    /// Queued jobs, FIFO per tenant.
    queues: BTreeMap<String, VecDeque<Job>>,
    /// Aggregate queued count (bounded by `queue_capacity`).
    queued: usize,
    /// Jobs running right now, per tenant (bounded by
    /// `tenant_max_running`).
    running: HashMap<String, usize>,
    /// Round-robin cursor: the tenant served last.
    cursor: Option<String>,
    /// Every queued or running key, for dedup joins.
    inflight: HashMap<RunKey, Arc<Pending>>,
    cache: LruCache,
    shutdown: bool,
}

struct SelfMetrics {
    requests: Counter,
    cache_hits: Counter,
    dedup_joins: Counter,
    executions: Counter,
    rejects: Counter,
    timeouts: Counter,
    queue_depth: Gauge,
    latency: Histogram,
    /// Enqueue → worker-pick wait, milliseconds. Distinct from
    /// end-to-end `latency`: queue wait is the signal round-robin
    /// fairness actually controls.
    queue_wait: Histogram,
    slo_fast_burn: Gauge,
    slo_slow_burn: Gauge,
    slo_breaches: Counter,
    /// One counter per [`Anomaly`] kind, labelled by `kind`.
    anomalies: Vec<Counter>,
}

/// Fixed-size window of recent `Overloaded` rejection timestamps for
/// burst detection (0 = empty slot; real stamps are clamped to ≥ 1).
struct RejectWindow {
    stamps: [u64; 64],
    next: usize,
}

/// Request-scoped tracing + flight-recorder state. Allocated once at
/// server start; with `recorder_capacity == 0` the rings are `off()`
/// and every recording call returns immediately.
struct ServiceObs {
    anchor: obs::Anchor,
    next_id: AtomicU64,
    events: Ring<ReqEvent>,
    traces: TraceRing,
    log: Log,
    slo: SloTracker,
    /// Wall second of the last burn-rate evaluation: the gauges and the
    /// SLO-burn trigger re-check at most once per second (plus on every
    /// breach), keeping the bucket scans off the cache-hit fast path.
    last_burn_eval_s: AtomicU64,
    rejects: Mutex<RejectWindow>,
    /// Service-clock ns of the last dump per anomaly kind (0 = never),
    /// claimed by CAS so concurrent triggers produce exactly one dump.
    last_dump_ns: [AtomicU64; Anomaly::ALL.len()],
    /// Dumps produced per anomaly kind.
    dumps: [AtomicU64; Anomaly::ALL.len()],
    dump_seq: AtomicU64,
}

struct Inner {
    cfg: ServerConfig,
    sched: Mutex<Sched>,
    /// Wakes workers when work or a tenant slot appears, and the
    /// drain-waiter at shutdown.
    work_cv: Condvar,
    registry: Metrics,
    metrics: SelfMetrics,
    obs: ServiceObs,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        self.obs.anchor.elapsed_ns()
    }

    /// Record one lifecycle event into the flight recorder (no-op when
    /// the recorder is off).
    fn record(&self, id: u64, stage: Stage, tenant: u64, start_ns: u64, end_ns: u64) {
        self.obs.events.push(ReqEvent {
            id,
            stage,
            tenant,
            start_ns,
            end_ns,
        });
    }

    fn stats_snapshot(&self) -> ServerStats {
        let m = &self.metrics;
        ServerStats {
            requests: m.requests.get(),
            cache_hits: m.cache_hits.get(),
            dedup_joins: m.dedup_joins.get(),
            executions: m.executions.get(),
            rejects: m.rejects.get(),
            timeouts: m.timeouts.get(),
        }
    }

    fn stats_json(&self) -> String {
        let s = self.stats_snapshot();
        format!(
            "{{\"requests\":{},\"cache_hits\":{},\"dedup_joins\":{},\"executions\":{},\"rejects\":{},\"timeouts\":{}}}",
            s.requests, s.cache_hits, s.dedup_joins, s.executions, s.rejects, s.timeouts
        )
    }

    /// Close out one request: record the terminal event, feed the SLO
    /// tracker, refresh the burn gauges, and maybe trip the burn
    /// anomaly.
    fn finish_request(&self, id: u64, tenant: u64, latency_ns: u64, stage: Stage) {
        let now = self.now_ns();
        self.record(id, stage, tenant, now, now);
        let now_s = now / 1_000_000_000;
        let breached = self.obs.slo.observe(now_s, latency_ns);
        if breached {
            self.metrics.slo_breaches.inc();
        }
        // The burn windows are 60s/300s wide, so the gauges and the
        // SLO-burn trigger cannot change meaningfully within a wall
        // second: re-evaluate once per second (and on every breach),
        // not on every request — the bucket scans would otherwise tax
        // the cache-hit fast path.
        if breached || self.obs.last_burn_eval_s.load(Ordering::Relaxed) != now_s {
            self.obs.last_burn_eval_s.store(now_s, Ordering::Relaxed);
            let fast = self.obs.slo.fast_burn(now_s);
            let slow = self.obs.slo.slow_burn(now_s);
            self.metrics.slo_fast_burn.set((fast * 1000.0) as i64);
            self.metrics.slo_slow_burn.set((slow * 1000.0) as i64);
            if self.obs.slo.burning(now_s) {
                self.trigger_anomaly(Anomaly::SloBurn, None);
            }
        }
    }

    /// Note one `Overloaded` rejection and trip the burst anomaly when
    /// the one-second window fills past the configured threshold.
    fn note_reject(&self, now_ns: u64) {
        let burst = self.cfg.overload_burst;
        if burst == 0 {
            return;
        }
        let count = {
            let mut w = self.obs.rejects.lock();
            let at = w.next % w.stamps.len();
            w.stamps[at] = now_ns.max(1);
            w.next += 1;
            let cutoff = now_ns.saturating_sub(1_000_000_000);
            w.stamps.iter().filter(|&&s| s != 0 && s >= cutoff).count()
        };
        if count >= burst {
            self.trigger_anomaly(Anomaly::OverloadBurst, None);
        }
    }

    /// Dump a bundle for `kind` unless one was produced within the
    /// cooldown. The per-kind CAS guarantees exactly one dump per
    /// trigger even when several threads observe the anomaly at once.
    fn trigger_anomaly(&self, kind: Anomaly, blame_json: Option<String>) {
        if !self.obs.events.is_on() {
            return;
        }
        let now = self.now_ns().max(1);
        let slot = &self.obs.last_dump_ns[kind.index()];
        let last = slot.load(Ordering::SeqCst);
        let cooldown = self.cfg.anomaly_cooldown.as_nanos() as u64;
        if last != 0 && now.saturating_sub(last) < cooldown {
            return;
        }
        if slot
            .compare_exchange(last, now, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        self.obs.dumps[kind.index()].fetch_add(1, Ordering::Relaxed);
        self.metrics.anomalies[kind.index()].inc();
        let seq = self.obs.dump_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let bundle = self.render_dump(kind.as_str(), seq, blame_json);
        let path = match &self.cfg.dump_dir {
            Some(dir) => {
                let path = dir.join(format!("dump_{}_{seq:04}.json", kind.as_str()));
                match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &bundle)) {
                    Ok(()) => Some(path.display().to_string()),
                    Err(e) => {
                        self.obs.log.event(Level::Error, "dump_write_failed", |f| {
                            f.str("kind", kind.as_str())
                                .str("path", &path.display().to_string())
                                .str("error", &e.to_string());
                        });
                        None
                    }
                }
            }
            None => None,
        };
        self.obs.log.event(Level::Warn, "anomaly_dump", |f| {
            f.str("kind", kind.as_str()).num("seq", seq);
            if let Some(p) = &path {
                f.str("path", p);
            }
        });
    }

    /// Render a bundle from the recorder's current contents. Falls back
    /// to the newest stored run's blame matrix when the trigger did not
    /// carry one.
    fn render_dump(&self, kind: &str, seq: u64, blame_json: Option<String>) -> String {
        let events = self.obs.events.snapshot();
        let runs = self.obs.traces.snapshot();
        let blame = blame_json.or_else(|| {
            runs.last()
                .map(|r| obs::causal::blame(&obs::causal::build(&r.traces)).render_json())
        });
        let now = self.now_ns();
        let now_s = now / 1_000_000_000;
        reqtrace::render_bundle(&BundleInput {
            kind,
            seq,
            now_ns: now,
            events: &events,
            runs: &runs,
            metrics_json: &self.registry.render_json(),
            blame_json: blame.as_deref(),
            slo: (
                self.obs.slo.fast_burn(now_s),
                self.obs.slo.slow_burn(now_s),
                self.obs.slo.threshold_ns(),
                self.obs.slo.target(),
            ),
            stats_json: &self.stats_json(),
        })
    }
}

/// The run server. Cloneable handle semantics come from wrapping in
/// [`Arc`] (see [`Server::start`]).
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A claim on a submitted request; redeem with [`Ticket::wait`].
pub struct Ticket {
    inner: Arc<Inner>,
    pending: Arc<Pending>,
    key: RunKey,
    submitted: Instant,
    deadline: Duration,
    /// Already-resolved response (cache hit) — no waiting needed.
    ready: Option<Response>,
    redeemed: bool,
    req_id: u64,
    tenant_hash: u64,
}

impl Server {
    /// Start the server: spawn `cfg.workers` worker threads and return
    /// the handle. Shut down explicitly with [`Server::shutdown`];
    /// dropping without it leaks the workers parked on the condvar
    /// until process exit.
    pub fn start(cfg: ServerConfig) -> Arc<Server> {
        let registry = Metrics::on();
        let metrics = SelfMetrics {
            requests: registry.counter(
                "serve_requests_total",
                "Run requests accepted (validated) by the server",
                &[],
            ),
            cache_hits: registry.counter(
                "serve_cache_hits_total",
                "Requests served from the artifact cache",
                &[],
            ),
            dedup_joins: registry.counter(
                "serve_dedup_joins_total",
                "Requests that joined an in-flight execution",
                &[],
            ),
            executions: registry.counter(
                "serve_executions_total",
                "Runs executed by the worker pool",
                &[],
            ),
            rejects: registry.counter(
                "serve_rejects_total",
                "Submissions rejected: queue full or shutting down",
                &[],
            ),
            timeouts: registry.counter(
                "serve_timeouts_total",
                "Waiters whose deadline expired",
                &[],
            ),
            queue_depth: registry.gauge(
                "serve_queue_depth",
                "Jobs queued and not yet running",
                &[],
            ),
            latency: registry.histogram(
                "serve_request_latency_ns",
                "End-to-end request latency (submit to artifact)",
                &[],
            ),
            queue_wait: registry.histogram(
                "serve_queue_wait_ms",
                "Enqueue to worker-pick wait (the fairness signal)",
                &[],
            ),
            slo_fast_burn: registry.gauge(
                "serve_slo_fast_burn_milli",
                "Fast-window SLO burn rate, thousandths",
                &[],
            ),
            slo_slow_burn: registry.gauge(
                "serve_slo_slow_burn_milli",
                "Slow-window SLO burn rate, thousandths",
                &[],
            ),
            slo_breaches: registry.counter(
                "serve_slo_breaches_total",
                "Requests slower than the SLO threshold",
                &[],
            ),
            anomalies: Anomaly::ALL
                .iter()
                .map(|a| {
                    registry.counter(
                        "serve_anomaly_dumps_total",
                        "Flight-recorder dumps by trigger kind",
                        &[("kind", a.as_str().to_string())],
                    )
                })
                .collect(),
        };
        let obs_state = ServiceObs {
            anchor: obs::Anchor::now(),
            next_id: AtomicU64::new(0),
            events: Ring::with_capacity(cfg.recorder_capacity),
            traces: TraceRing::with_capacity(if cfg.recorder_capacity == 0 {
                0
            } else {
                cfg.trace_ring_capacity
            }),
            log: Log::on(cfg.log_capacity, cfg.log_rate_per_sec, cfg.log_stderr),
            slo: SloTracker::new(cfg.slo.clone()),
            // MAX: the very first request always evaluates the gauges.
            last_burn_eval_s: AtomicU64::new(u64::MAX),
            rejects: Mutex::new(RejectWindow {
                stamps: [0; 64],
                next: 0,
            }),
            last_dump_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            dumps: std::array::from_fn(|_| AtomicU64::new(0)),
            dump_seq: AtomicU64::new(0),
        };
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            sched: Mutex::new(Sched {
                queues: BTreeMap::new(),
                queued: 0,
                running: HashMap::new(),
                cursor: None,
                inflight: HashMap::new(),
                cache: LruCache::new(cfg.cache_capacity),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            registry,
            metrics,
            obs: obs_state,
            cfg,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Arc::new(Server {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Validate, canonicalize, and submit a request. Returns a ticket
    /// immediately; cache hits resolve without touching the pool.
    pub fn submit(&self, req: &Request) -> Result<Ticket, ServeError> {
        let t0 = self.inner.now_ns();
        let req_id = self.inner.obs.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let tenant_hash = reqtrace::tenant_hash(&req.tenant);
        let key = match req.params.canonicalize(&self.inner.cfg.limits) {
            Ok(key) => key,
            Err(msg) => {
                let now = self.inner.now_ns();
                self.inner
                    .record(req_id, Stage::Rejected, tenant_hash, t0, now);
                self.inner.obs.log.event(Level::Warn, "invalid", |f| {
                    f.num("id", req_id)
                        .str("tenant", &req.tenant)
                        .str("error", &msg);
                });
                return Err(ServeError::Invalid(msg));
            }
        };
        let deadline = req
            .timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(self.inner.cfg.default_deadline);
        let submitted = Instant::now();
        let m = &self.inner.metrics;
        let mut sched = self.inner.sched.lock();
        if let Some(hit) = sched.cache.get(&key) {
            drop(sched);
            m.requests.inc();
            m.cache_hits.inc();
            let now = self.inner.now_ns();
            self.inner
                .record(req_id, Stage::Accepted, tenant_hash, t0, now);
            self.inner
                .record(req_id, Stage::CacheHit, tenant_hash, now, now);
            return Ok(Ticket {
                inner: Arc::clone(&self.inner),
                pending: Arc::new(Pending::new(req.tenant.clone())),
                key,
                submitted,
                deadline,
                ready: Some(Response {
                    cached: true,
                    artifact: hit,
                }),
                redeemed: false,
                req_id,
                tenant_hash,
            });
        }
        if let Some(pending) = sched.inflight.get(&key).cloned() {
            *pending.waiters.lock() += 1;
            drop(sched);
            m.requests.inc();
            m.dedup_joins.inc();
            let now = self.inner.now_ns();
            self.inner
                .record(req_id, Stage::Accepted, tenant_hash, t0, now);
            self.inner
                .record(req_id, Stage::DedupJoin, tenant_hash, now, now);
            return Ok(Ticket {
                inner: Arc::clone(&self.inner),
                pending,
                key,
                submitted,
                deadline,
                ready: None,
                redeemed: false,
                req_id,
                tenant_hash,
            });
        }
        if sched.shutdown {
            drop(sched);
            m.rejects.inc();
            let now = self.inner.now_ns();
            self.inner
                .record(req_id, Stage::Rejected, tenant_hash, t0, now);
            self.inner.obs.log.event(Level::Warn, "shutting_down", |f| {
                f.num("id", req_id).str("tenant", &req.tenant);
            });
            return Err(ServeError::ShuttingDown);
        }
        if sched.queued >= self.inner.cfg.queue_capacity {
            let queued = sched.queued;
            drop(sched);
            m.rejects.inc();
            let now = self.inner.now_ns();
            self.inner
                .record(req_id, Stage::Rejected, tenant_hash, t0, now);
            self.inner.obs.log.event(Level::Warn, "overloaded", |f| {
                f.num("id", req_id)
                    .str("tenant", &req.tenant)
                    .num("queued", queued as u64);
            });
            self.inner.note_reject(now);
            return Err(ServeError::Overloaded);
        }
        let enqueued_ns = self.inner.now_ns();
        let pending = Arc::new(Pending::new(req.tenant.clone()));
        sched.inflight.insert(key.clone(), Arc::clone(&pending));
        sched
            .queues
            .entry(req.tenant.clone())
            .or_default()
            .push_back(Job {
                key: key.clone(),
                pending: Arc::clone(&pending),
                req_id,
                tenant_hash,
                enqueued_ns,
            });
        sched.queued += 1;
        m.queue_depth.set(sched.queued as i64);
        drop(sched);
        m.requests.inc();
        self.inner
            .record(req_id, Stage::Accepted, tenant_hash, t0, enqueued_ns);
        self.inner.work_cv.notify_all();
        Ok(Ticket {
            inner: Arc::clone(&self.inner),
            pending,
            key,
            submitted,
            deadline,
            ready: None,
            redeemed: false,
            req_id,
            tenant_hash,
        })
    }

    /// Submit and block until the artifact (or error) is ready — the
    /// one-call path TCP handlers use.
    pub fn run(&self, req: &Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Stop accepting work, drain every queued and running job, and
    /// join the workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut sched = self.inner.sched.lock();
            sched.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Server self-metrics as Prometheus text.
    pub fn metrics_text(&self) -> String {
        self.inner.registry.render_prometheus()
    }

    /// Server self-metrics as a JSON document (histograms carry
    /// p50/p95/p99/p999).
    pub fn metrics_json(&self) -> String {
        self.inner.registry.render_json()
    }

    /// The structured event log's retained lines as a JSON array
    /// (`{"cmd":"events"}`).
    pub fn events_json(&self) -> String {
        self.inner.obs.log.render_json_array()
    }

    /// Liveness + SLO + recorder summary as a JSON object
    /// (`{"cmd":"health"}`).
    pub fn health_json(&self) -> String {
        let now = self.inner.now_ns();
        let now_s = now / 1_000_000_000;
        let dumps = Anomaly::ALL
            .iter()
            .map(|a| {
                format!(
                    "\"{}\":{}",
                    a.as_str(),
                    self.inner.obs.dumps[a.index()].load(Ordering::Relaxed)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"uptime_s\":{:.1},\"queue_depth\":{},\"stats\":{},\
             \"slo\":{{\"fast_burn\":{:.3},\"slow_burn\":{:.3},\"threshold_ns\":{},\"target\":{}}},\
             \"recorder\":{{\"enabled\":{},\"events_recorded\":{},\"dumps\":{{{}}}}},\
             \"log_dropped\":{}}}",
            now as f64 / 1e9,
            self.queue_depth(),
            self.inner.stats_json(),
            self.inner.obs.slo.fast_burn(now_s),
            self.inner.obs.slo.slow_burn(now_s),
            self.inner.obs.slo.threshold_ns(),
            self.inner.obs.slo.target(),
            self.inner.obs.events.is_on(),
            self.inner.obs.events.pushed(),
            dumps,
            self.inner.obs.log.dropped(),
        )
    }

    /// Render a flight-recorder bundle on demand (`{"cmd":"dump"}`).
    /// Bypasses the anomaly cooldown and writes no file; `kind` is
    /// `"manual"`. Returns an error string when the recorder is off.
    pub fn dump_json(&self) -> Result<String, String> {
        if !self.inner.obs.events.is_on() {
            return Err("flight recorder disabled (recorder_capacity = 0)".to_string());
        }
        let seq = self.inner.obs.dump_seq.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(self.inner.render_dump("manual", seq, None))
    }

    /// Flight-recorder event snapshot, oldest to newest (tests, tools).
    pub fn recorded_events(&self) -> Vec<ReqEvent> {
        self.inner.obs.events.snapshot()
    }

    /// The stitched Chrome-trace document for the recorder's current
    /// contents: service track + stored runs with flow arrows.
    pub fn stitched_trace(&self) -> String {
        let events = self.inner.obs.events.snapshot();
        let runs = self.inner.obs.traces.snapshot();
        obs::chrome::chrome_trace_stitched(&reqtrace::service_trace(&events), &runs)
    }

    /// Dumps produced so far for one anomaly kind.
    pub fn anomaly_dumps(&self, kind: Anomaly) -> u64 {
        self.inner.obs.dumps[kind.index()].load(Ordering::Relaxed)
    }

    /// The structured event log handle (TCP front end logs through it).
    pub(crate) fn log(&self) -> &Log {
        &self.inner.obs.log
    }

    /// Counter snapshot for tests and load reports.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats_snapshot()
    }

    /// Number of cached artifacts right now.
    pub fn cache_len(&self) -> usize {
        self.inner.sched.lock().cache.len()
    }

    /// Jobs queued and not yet picked by a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.sched.lock().queued
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("key", &self.key)
            .field("ready", &self.ready.is_some())
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// The canonicalized key this ticket is waiting on.
    pub fn key(&self) -> &RunKey {
        &self.key
    }

    /// The request id assigned at submission (the service-track row this
    /// request's lifecycle spans render under).
    pub fn request_id(&self) -> RequestId {
        RequestId(self.req_id)
    }

    /// Block until the artifact is ready or the deadline expires.
    pub fn wait(mut self) -> Result<Response, ServeError> {
        self.redeemed = true;
        if let Some(ready) = self.ready.take() {
            let latency = self.submitted.elapsed().as_nanos() as u64;
            self.inner.metrics.latency.observe(latency);
            self.inner
                .finish_request(self.req_id, self.tenant_hash, latency, Stage::Responded);
            return Ok(ready);
        }
        let deadline = self.submitted + self.deadline;
        let mut state = self.pending.state.lock();
        loop {
            if let PendState::Done(result) = &*state {
                let result = result.clone();
                drop(state);
                let latency = self.submitted.elapsed().as_nanos() as u64;
                self.inner.metrics.latency.observe(latency);
                self.inner
                    .finish_request(self.req_id, self.tenant_hash, latency, Stage::Responded);
                return result.map(|artifact| Response {
                    cached: false,
                    artifact,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                self.abandon();
                self.inner.metrics.timeouts.inc();
                let latency = self.submitted.elapsed().as_nanos() as u64;
                self.inner
                    .finish_request(self.req_id, self.tenant_hash, latency, Stage::TimedOut);
                self.inner.obs.log.event(Level::Warn, "deadline_miss", |f| {
                    f.num("id", self.req_id)
                        .str("key", &self.key.tag())
                        .float("deadline_ms", self.deadline.as_secs_f64() * 1e3);
                });
                self.inner.trigger_anomaly(Anomaly::DeadlineMiss, None);
                return Err(ServeError::Timeout);
            }
            self.pending
                .cv
                .wait_for(&mut state, deadline.duration_since(now));
        }
    }

    /// Drop this waiter's claim; if it was the last waiter and the job
    /// has not started, cancel the job in place.
    fn abandon(&self) {
        // Take the scheduler lock before touching the waiter count:
        // dedup joins increment under the same lock, so "last waiter"
        // and "job still queued" are decided atomically.
        let mut sched = self.inner.sched.lock();
        let last = {
            let mut waiters = self.pending.waiters.lock();
            *waiters -= 1;
            *waiters == 0
        };
        if !last {
            return;
        }
        let queue_has_job = sched
            .queues
            .get(&self.pending.tenant)
            .is_some_and(|q| q.iter().any(|j| Arc::ptr_eq(&j.pending, &self.pending)));
        if queue_has_job {
            if let Some(q) = sched.queues.get_mut(&self.pending.tenant) {
                q.retain(|j| !Arc::ptr_eq(&j.pending, &self.pending));
            }
            sched.queued -= 1;
            sched.inflight.remove(&self.key);
            self.inner.metrics.queue_depth.set(sched.queued as i64);
        }
        // A running job is left alone: the worker finishes and caches.
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if !self.redeemed && self.ready.is_none() {
            self.abandon();
        }
    }
}

/// Pick the next runnable job: round-robin over tenant ids starting
/// after the cursor, skipping tenants at their running cap.
fn pick_next(sched: &mut Sched, tenant_max_running: usize) -> Option<Job> {
    let tenants: Vec<String> = sched.queues.keys().cloned().collect();
    if tenants.is_empty() {
        return None;
    }
    let start = match &sched.cursor {
        Some(cur) => tenants.iter().position(|t| t > cur).unwrap_or(0),
        None => 0,
    };
    for offset in 0..tenants.len() {
        let tenant = &tenants[(start + offset) % tenants.len()];
        let running = sched.running.get(tenant).copied().unwrap_or(0);
        if running >= tenant_max_running {
            continue;
        }
        let queue = sched.queues.get_mut(tenant)?;
        if let Some(job) = queue.pop_front() {
            if queue.is_empty() {
                sched.queues.remove(tenant);
            }
            sched.queued -= 1;
            *sched.running.entry(tenant.clone()).or_insert(0) += 1;
            sched.cursor = Some(tenant.clone());
            return Some(job);
        }
        sched.queues.remove(tenant);
    }
    None
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut sched = inner.sched.lock();
            loop {
                if let Some(job) = pick_next(&mut sched, inner.cfg.tenant_max_running) {
                    inner.metrics.queue_depth.set(sched.queued as i64);
                    break job;
                }
                if sched.shutdown {
                    return;
                }
                inner.work_cv.wait(&mut sched);
            }
        };
        let picked_ns = inner.now_ns();
        inner
            .metrics
            .queue_wait
            .observe(picked_ns.saturating_sub(job.enqueued_ns) / 1_000_000);
        inner.record(
            job.req_id,
            Stage::Queued,
            job.tenant_hash,
            job.enqueued_ns,
            picked_ns,
        );
        let exec_start = picked_ns;
        let outcome = catch_unwind(AssertUnwindSafe(|| artifact::execute_render(&job.key)));
        let exec_end = inner.now_ns();
        inner.record(
            job.req_id,
            Stage::Executing,
            job.tenant_hash,
            exec_start,
            exec_end,
        );
        let result = match outcome {
            Ok((artifact, report)) => {
                if !report.traces.is_empty() {
                    // A traced run: check for stragglers before the
                    // traces move into the ring.
                    let verdict = report.stragglers();
                    let blame = if verdict.flagged.is_empty() {
                        None
                    } else {
                        Some(report.blame().render_json())
                    };
                    if inner.obs.traces.is_on() {
                        inner.obs.traces.store(StoredRun {
                            request_id: job.req_id,
                            exec_tid: job.req_id as u32,
                            exec_start_ns: exec_start,
                            traces: report.traces,
                        });
                    }
                    if let Some(blame) = blame {
                        inner.obs.log.event(Level::Warn, "straggler", |f| {
                            f.num("id", job.req_id)
                                .str("key", &job.key.tag())
                                .str("ranks", &format!("{:?}", verdict.flagged));
                        });
                        inner.trigger_anomaly(Anomaly::Straggler, Some(blame));
                    }
                }
                inner.obs.log.event(Level::Info, "executed", |f| {
                    f.num("id", job.req_id)
                        .str("tenant", &job.pending.tenant)
                        .str("key", &job.key.tag())
                        .float("ms", (exec_end.saturating_sub(exec_start)) as f64 / 1e6);
                });
                Ok(Arc::new(artifact))
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "run panicked".to_string());
                inner.obs.log.event(Level::Error, "run_panicked", |f| {
                    f.num("id", job.req_id)
                        .str("key", &job.key.tag())
                        .str("error", &msg);
                });
                Err(ServeError::Failed(msg))
            }
        };
        inner.metrics.executions.inc();
        {
            let mut sched = inner.sched.lock();
            if let Some(n) = sched.running.get_mut(&job.pending.tenant) {
                *n -= 1;
                if *n == 0 {
                    sched.running.remove(&job.pending.tenant);
                }
            }
            sched.inflight.remove(&job.key);
            if let Ok(artifact) = &result {
                sched.cache.insert(job.key.clone(), Arc::clone(artifact));
            }
        }
        job.pending.publish(result);
        inner.record(
            job.req_id,
            Stage::Rendered,
            job.tenant_hash,
            exec_end,
            inner.now_ns(),
        );
        // A tenant slot freed and maybe new work is eligible.
        inner.work_cv.notify_all();
    }
}
