//! Structured event log: leveled, rate-limited JSON lines.
//!
//! The server and TCP front end used to be silent — nothing recorded an
//! admission, a rejection, a timeout, or a connection error anywhere.
//! This module gives them a bounded in-memory log of JSON-lines events,
//! queryable over the wire via `{"cmd":"events"}` and optionally teed to
//! stderr for operators running `serve_run` in a terminal.
//!
//! Three rules keep it safe to call from the request path:
//!
//! * **Off is free.** A disabled log is `None` inside; `event` returns
//!   before touching the field closure, so call sites pay one branch.
//! * **Rate-limited per event kind.** At most `per_sec` lines of one
//!   kind are rendered per second; excess lines increment a suppression
//!   counter that is reported in a synthetic `suppressed` line when the
//!   window rolls over, so a reject storm cannot melt the log.
//! * **Bounded memory.** The ring keeps the newest `capacity` lines and
//!   counts evictions (`dropped`), surfaced through `{"cmd":"health"}`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Normal operation worth a line (admission, execution, shutdown).
    Info,
    /// Degraded but handled (reject, timeout, parse error).
    Warn,
    /// Something broke (run panic, dump write failure).
    Error,
}

impl Level {
    /// Lowercase name as rendered into the JSON line.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Field builder handed to the `event` closure; renders straight into
/// the line buffer.
pub struct Fields {
    buf: String,
}

impl Fields {
    /// Append a string field (JSON-escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.buf.push_str(&format!(
            ",{}:{}",
            figures::json::escape(key),
            figures::json::escape(value)
        ));
        self
    }

    /// Append an unsigned integer field.
    pub fn num(&mut self, key: &str, value: u64) -> &mut Self {
        self.buf
            .push_str(&format!(",{}:{value}", figures::json::escape(key)));
        self
    }

    /// Append a float field (3 decimals).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.buf
            .push_str(&format!(",{}:{value:.3}", figures::json::escape(key)));
        self
    }
}

struct RateState {
    window_s: u64,
    emitted: u32,
    suppressed: u64,
}

struct LogInner {
    ring: Mutex<VecDeque<String>>,
    rate: Mutex<HashMap<&'static str, RateState>>,
    capacity: usize,
    per_sec: u32,
    stderr: bool,
    dropped: AtomicU64,
}

/// A bounded, rate-limited JSON-lines event log. Cloning shares the
/// ring.
#[derive(Clone)]
pub struct Log {
    inner: Option<Arc<LogInner>>,
}

fn wall_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Log {
    /// A disabled log: every call is a cheap no-op.
    pub const fn off() -> Self {
        Log { inner: None }
    }

    /// An enabled log keeping the newest `capacity` lines, rendering at
    /// most `per_sec` lines per event kind per second. `capacity == 0`
    /// yields a disabled log.
    pub fn on(capacity: usize, per_sec: u32, stderr: bool) -> Self {
        if capacity == 0 {
            return Log::off();
        }
        Log {
            inner: Some(Arc::new(LogInner {
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                rate: Mutex::new(HashMap::new()),
                capacity,
                per_sec: per_sec.max(1),
                stderr,
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are recorded at all.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Lines evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Record one event. The closure fills in event-specific fields and
    /// runs only when the log is enabled and the kind is under its rate
    /// limit this second.
    pub fn event(&self, level: Level, kind: &'static str, fill: impl FnOnce(&mut Fields)) {
        let Some(inner) = &self.inner else { return };
        let now_ms = wall_ms();
        let now_s = now_ms / 1000;
        // Rate gate first, so a storm costs a map lookup, not a render.
        let rollover_suppressed = {
            let mut rate = inner.rate.lock().unwrap();
            let st = rate.entry(kind).or_insert(RateState {
                window_s: now_s,
                emitted: 0,
                suppressed: 0,
            });
            let mut rolled = None;
            if st.window_s != now_s {
                if st.suppressed > 0 {
                    rolled = Some(st.suppressed);
                }
                st.window_s = now_s;
                st.emitted = 0;
                st.suppressed = 0;
            }
            if st.emitted >= inner.per_sec {
                st.suppressed += 1;
                return;
            }
            st.emitted += 1;
            rolled
        };
        if let Some(n) = rollover_suppressed {
            self.push_line(
                inner,
                format!(
                    "{{\"ts_ms\":{now_ms},\"level\":\"warn\",\"event\":\"suppressed\",\"kind\":{},\"count\":{n}}}",
                    figures::json::escape(kind)
                ),
            );
        }
        let mut fields = Fields {
            buf: String::with_capacity(96),
        };
        fill(&mut fields);
        let line = format!(
            "{{\"ts_ms\":{now_ms},\"level\":\"{}\",\"event\":{}{}}}",
            level.as_str(),
            figures::json::escape(kind),
            fields.buf
        );
        self.push_line(inner, line);
    }

    fn push_line(&self, inner: &LogInner, line: String) {
        if inner.stderr {
            eprintln!("{line}");
        }
        let mut ring = inner.ring.lock().unwrap();
        if ring.len() >= inner.capacity {
            ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(line);
    }

    /// The retained lines, oldest to newest.
    pub fn lines(&self) -> Vec<String> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.ring.lock().unwrap().iter().cloned().collect()
        })
    }

    /// The retained lines as one JSON array (each line is already a
    /// JSON object, so they embed raw).
    pub fn render_json_array(&self) -> String {
        format!("[{}]", self.lines().join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figures::json::Value;

    #[test]
    fn off_log_records_and_costs_nothing() {
        let log = Log::off();
        log.event(Level::Info, "x", |f| {
            f.str("never", "called");
            panic!("closure must not run when off");
        });
        assert!(log.lines().is_empty());
        assert_eq!(log.render_json_array(), "[]");
        assert!(!Log::on(0, 10, false).is_on());
    }

    #[test]
    fn events_render_as_json_lines() {
        let log = Log::on(8, 100, false);
        log.event(Level::Warn, "reject", |f| {
            f.str("tenant", "al\"ice").num("queued", 64);
        });
        let lines = log.lines();
        assert_eq!(lines.len(), 1);
        let v = Value::parse(&lines[0]).expect("line parses");
        assert_eq!(v["level"].as_str(), Some("warn"));
        assert_eq!(v["event"].as_str(), Some("reject"));
        assert_eq!(v["tenant"].as_str(), Some("al\"ice"));
        assert_eq!(v["queued"], Value::Number(64.0));
        let arr = Value::parse(&log.render_json_array()).expect("array parses");
        assert_eq!(arr.as_array().unwrap().len(), 1);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let log = Log::on(3, 1000, false);
        for i in 0..5u64 {
            log.event(Level::Info, "tick", |f| {
                f.num("i", i);
            });
        }
        let lines = log.lines();
        assert_eq!(lines.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert!(lines[2].contains("\"i\":4"));
    }

    #[test]
    fn rate_limit_suppresses_within_a_second() {
        let log = Log::on(64, 2, false);
        for _ in 0..10 {
            log.event(Level::Info, "spam", |f| {
                f.num("x", 1);
            });
        }
        // At most 2 rendered this second (a window rollover mid-test
        // could admit 2 more, but never all 10).
        assert!(log.lines().len() <= 4, "{:?}", log.lines());
    }
}
