//! Capacity-bounded LRU cache over rendered artifacts.
//!
//! Keyed by the full [`RunKey`] — the canonicalized request — and
//! storing `Arc<String>` so a hit hands back the *same* bytes the
//! original execution rendered. True LRU via a monotonically increasing
//! use-stamp: `get` and `insert` both refresh the stamp, and eviction
//! removes the entry with the oldest stamp. Eviction scans the map
//! (O(len)), which is fine at the few-hundred-entry capacities the
//! server runs with.

use overlap::RunKey;
use std::collections::HashMap;
use std::sync::Arc;

/// The LRU cache. Not internally synchronized: the server keeps it
/// behind the scheduler mutex.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    stamp: u64,
    map: HashMap<RunKey, (u64, Arc<String>)>,
}

impl LruCache {
    /// A cache holding at most `capacity` artifacts. Capacity 0 caches
    /// nothing (every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            stamp: 0,
            map: HashMap::new(),
        }
    }

    /// Look up an artifact, refreshing its recency on a hit.
    pub fn get(&mut self, key: &RunKey) -> Option<Arc<String>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|(used, v)| {
            *used = stamp;
            Arc::clone(v)
        })
    }

    /// Store an artifact, evicting the least-recently-used entry if the
    /// cache is full.
    pub fn insert(&mut self, key: RunKey, value: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.stamp, value));
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlap::{RunLimits, RunParams};

    fn key(grid: u32) -> RunKey {
        RunParams {
            grid,
            ..RunParams::default()
        }
        .canonicalize(&RunLimits::default())
        .unwrap()
    }

    #[test]
    fn eviction_respects_capacity_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(key(8), Arc::new("a".into()));
        c.insert(key(9), Arc::new("b".into()));
        assert_eq!(c.len(), 2);
        // Touch 8 so 9 becomes the LRU entry.
        assert!(c.get(&key(8)).is_some());
        c.insert(key(10), Arc::new("c".into()));
        assert_eq!(c.len(), 2, "capacity bound violated");
        assert!(c.get(&key(9)).is_none(), "LRU entry should be evicted");
        assert!(c.get(&key(8)).is_some());
        assert!(c.get(&key(10)).is_some());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut c = LruCache::new(2);
        c.insert(key(8), Arc::new("a".into()));
        c.insert(key(9), Arc::new("b".into()));
        c.insert(key(8), Arc::new("a2".into()));
        assert_eq!(c.len(), 2);
        assert_eq!(*c.get(&key(8)).unwrap(), "a2".to_string());
        // 9 is now oldest; a third key evicts it, not 8.
        c.insert(key(10), Arc::new("c".into()));
        assert!(c.get(&key(9)).is_none());
        assert!(c.get(&key(8)).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        c.insert(key(8), Arc::new("a".into()));
        assert!(c.is_empty());
        assert!(c.get(&key(8)).is_none());
    }
}
