//! TCP front end: one thread per connection, line-delimited JSON.
//!
//! The accept loop polls a nonblocking listener so a `shutdown` command
//! can stop it without a self-connect trick. Connection threads carry a
//! read timeout so idle peers notice the stop flag; the accept loop
//! joins them all before draining the [`Server`] itself.

use crate::log::Level;
use crate::protocol::{self, Command};
use crate::server::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bind `addr` and serve until a `shutdown` command arrives. Returns
/// the locally bound address via `on_bound` before serving (so callers
/// can bind port 0 and learn the port).
pub fn serve(
    server: Arc<Server>,
    addr: &str,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    on_bound(listener.local_addr()?);
    let stop = Arc::new(AtomicBool::new(false));
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                conns.push(std::thread::spawn(move || {
                    let _ = handle_connection(stream, &server, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    // Drain open connections, then the server itself.
    for c in conns {
        let _ = c.join();
    }
    server.shutdown();
    Ok(())
}

fn handle_connection(stream: TcpStream, server: &Server, stop: &AtomicBool) -> std::io::Result<()> {
    // A read timeout lets idle connections notice `stop` and exit, so
    // the accept loop's join cannot hang on a silent peer. Nagle off:
    // the protocol is strict request/response, where delayed ACKs
    // otherwise add ~40ms per round trip.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        // read_line appends, so a line split across timeouts
        // accumulates in `buf` instead of being dropped.
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) if buf.ends_with('\n') => {}
            Ok(_) => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let line = std::mem::take(&mut buf);
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_line(&line) {
            Err(e) => {
                server.log().event(Level::Warn, "parse_error", |f| {
                    f.str("error", &e);
                });
                protocol::render_error(&e)
            }
            Ok(Command::Ping) => "{\"status\":\"ok\",\"pong\":true}".to_string(),
            Ok(Command::Metrics) => format!(
                "{{\"status\":\"ok\",\"metrics\":{}}}",
                figures::json::escape(&server.metrics_text())
            ),
            Ok(Command::Events) => {
                format!("{{\"status\":\"ok\",\"events\":{}}}", server.events_json())
            }
            Ok(Command::Health) => {
                format!("{{\"status\":\"ok\",\"health\":{}}}", server.health_json())
            }
            Ok(Command::Dump) => match server.dump_json() {
                Ok(bundle) => format!("{{\"status\":\"ok\",\"dump\":{bundle}}}"),
                Err(e) => protocol::render_error(&e),
            },
            Ok(Command::Shutdown) => {
                server
                    .log()
                    .event(Level::Info, "shutdown_requested", |_| {});
                stop.store(true, Ordering::SeqCst);
                writer.write_all(b"{\"status\":\"ok\",\"stopping\":true}\n")?;
                writer.flush()?;
                break;
            }
            Ok(Command::Run(req)) => match server.run(&req) {
                Ok(resp) => protocol::render_ok(resp.cached, &resp.artifact),
                Err(e) => protocol::render_error(&e.to_string()),
            },
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}
