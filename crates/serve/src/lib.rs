//! # serve
//!
//! Simulation-as-a-service: a long-running run server that accepts
//! concurrent simulation requests — `(implementation × grid × steps ×
//! machine × fault seed × trace/metrics flags)` — over a line-delimited
//! JSON protocol on TCP ([`tcp`]) and through an in-process API
//! ([`Server`]) so tests need no socket.
//!
//! The pipeline a request flows through:
//!
//! 1. **Validate + canonicalize** ([`overlap::RunParams::canonicalize`])
//!    into a [`overlap::RunKey`] — knobs the chosen implementation never
//!    reads are zeroed so they cannot split the cache.
//! 2. **Cache lookup** ([`cache::LruCache`]): runs are pure functions of
//!    their key, so a hit returns the stored artifact without touching
//!    the worker pool.
//! 3. **In-flight dedup**: a request whose key is already queued or
//!    running joins that execution's waiter list instead of enqueueing a
//!    second copy.
//! 4. **Fair scheduling** ([`server`]): a bounded queue feeding a fixed
//!    worker pool, drained round-robin across tenant ids with a
//!    configurable per-tenant running cap, so one tenant's flood cannot
//!    starve the others.
//! 5. **Artifact render**: the final state's checksum plus comm/GPU
//!    counters, optional Prometheus metrics text, and an optional Chrome
//!    trace, rendered once per execution so every waiter — and every
//!    later cache hit — receives byte-identical bytes.
//!
//! The server exports its own health through the same `obs::registry`
//! machinery the simulations use: `serve_requests_total`,
//! `serve_cache_hits_total`, `serve_queue_depth`,
//! `serve_request_latency_ns`, `serve_queue_wait_ms` and friends,
//! rendered by [`Server::metrics_text`] / [`Server::metrics_json`].
//!
//! Service-layer observability (this crate's counterpart of the
//! per-run tracing stack):
//!
//! * [`reqtrace`] — every submission gets a request id and a lifecycle
//!   span chain on a dedicated service track, stitched to the executed
//!   run's own trace in one Chrome/Perfetto export.
//! * An always-on **flight recorder** (`obs::recorder` rings inside the
//!   server) that dumps a self-contained JSON bundle on anomalies:
//!   deadline misses, `Overloaded` bursts, straggler flags, SLO burn.
//! * [`log`] — leveled, rate-limited JSON-lines events, queryable over
//!   the wire via `{"cmd":"events"}` alongside `{"cmd":"health"}` and
//!   `{"cmd":"dump"}`.

pub mod artifact;
pub mod cache;
pub mod log;
pub mod protocol;
pub mod reqtrace;
pub mod server;
pub mod tcp;

pub use log::{Level, Log};
pub use protocol::{Command, Request};
pub use reqtrace::{Anomaly, ReqEvent, RequestId, SloConfig, SloTracker, Stage};
pub use server::{Response, ServeError, Server, ServerConfig, ServerStats, Ticket};
