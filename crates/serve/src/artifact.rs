//! Response artifact rendering.
//!
//! One execution renders exactly one artifact string, which is what the
//! cache stores and every deduplicated waiter receives — byte-identity
//! for identical [`RunKey`]s falls out of rendering once, not of the
//! run being replayed deterministically (span timestamps and latency
//! histograms carry wall-clock values that differ across executions).
//!
//! The artifact is a JSON object: the canonicalized request echo, an
//! FNV-1a checksum over the final state's interior bits (the compact
//! stand-in for shipping the full field), deterministic comm/GPU
//! counters, and — when requested — the Prometheus metrics text and the
//! Chrome trace document.

use figures::json;
use obs::chrome::chrome_trace;
use overlap::runner::RunReport;
use overlap::RunKey;

/// FNV-1a over the interior values' bit patterns, in interior iteration
/// order. Bit-exact: two runs agree iff their states are bit-identical.
pub fn state_checksum(state: &advect_core::field::Field3) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (x, y, z) in state.interior_range().iter() {
        for byte in state.at(x, y, z).to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Execute `key` and render its artifact. This is the unit of work a
/// server worker runs; everything downstream (cache, waiters, the wire)
/// sees only the returned string.
pub fn render(key: &RunKey) -> String {
    execute_render(key).0
}

/// Execute `key`, render its artifact, and also hand back the run
/// report so the caller (the worker loop) can feed the flight recorder:
/// the report carries the run's traces and the straggler verdict
/// without a second execution.
pub fn execute_render(key: &RunKey) -> (String, RunReport) {
    let (state, report) = key.execute();
    let artifact = render_report(key, &state, &report);
    (artifact, report)
}

fn render_report(key: &RunKey, state: &advect_core::field::Field3, report: &RunReport) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    out.push_str(&format!(
        "\"impl\":{},\"section\":{},\"grid\":{},\"steps\":{},\"tasks\":{},\"threads\":{},\"machine\":{}",
        json::escape(key.implementation().slug()),
        json::escape(key.implementation().section()),
        key.grid(),
        key.steps(),
        key.tasks(),
        key.threads(),
        json::escape(key.machine().name()),
    ));
    match key.fault_seed() {
        Some(seed) => out.push_str(&format!(",\"fault_seed\":{seed}")),
        None => out.push_str(",\"fault_seed\":null"),
    }
    out.push_str(&format!(",\"checksum\":\"{:016x}\"", state_checksum(state)));
    out.push_str(&format!(
        ",\"messages\":{},\"values_sent\":{}",
        report.total_messages(),
        report.total_values_sent()
    ));
    if key.implementation().uses_gpu() {
        let stencil: u64 = report.gpu.iter().map(|g| g.stencil_launches).sum();
        let h2d: u64 = report.gpu.iter().map(|g| g.h2d_points).sum();
        let d2h: u64 = report.gpu.iter().map(|g| g.d2h_points).sum();
        out.push_str(&format!(
            ",\"gpu\":{{\"stencil_launches\":{stencil},\"h2d_points\":{h2d},\"d2h_points\":{d2h}}}"
        ));
    } else {
        out.push_str(",\"gpu\":null");
    }
    if key.metrics() {
        out.push_str(&format!(
            ",\"metrics_prometheus\":{}",
            json::escape(&report.metrics.render_prometheus())
        ));
    }
    if key.trace() {
        // chrome_trace emits a complete JSON document; embed it raw.
        out.push_str(&format!(",\"trace\":{}", chrome_trace(&report.traces)));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use figures::json::Value;
    use overlap::{RunLimits, RunParams};

    #[test]
    fn artifact_is_valid_json_with_deterministic_checksum() {
        let key = RunParams {
            impl_slug: "bulk_sync".into(),
            grid: 10,
            steps: 2,
            tasks: 2,
            ..RunParams::default()
        }
        .canonicalize(&RunLimits::default())
        .unwrap();
        let a = render(&key);
        let b = render(&key);
        let va = Value::parse(&a).expect("artifact parses");
        let vb = Value::parse(&b).expect("artifact parses");
        assert_eq!(va["checksum"], vb["checksum"], "checksum must be pure");
        assert_eq!(va["messages"], vb["messages"]);
        assert_eq!(va["impl"], "bulk_sync");
        assert_eq!(va["gpu"], Value::Null);
    }

    #[test]
    fn trace_and_metrics_artifacts_embed_and_parse() {
        let key = RunParams {
            impl_slug: "nonblocking".into(),
            grid: 10,
            steps: 2,
            tasks: 2,
            trace: true,
            metrics: true,
            ..RunParams::default()
        }
        .canonicalize(&RunLimits::default())
        .unwrap();
        let a = render(&key);
        let v = Value::parse(&a).expect("artifact parses");
        let trace = v["trace"].to_string();
        assert!(bench_like_trace_check(&trace));
        let prom = v["metrics_prometheus"].as_str().expect("metrics text");
        assert!(prom.contains("advect_step_ns"), "{prom}");
    }

    // Minimal structural check mirroring bench::validate_chrome_trace
    // (bench depends on serve, so serve cannot depend back on bench).
    fn bench_like_trace_check(doc: &str) -> bool {
        let v = Value::parse(doc).expect("trace parses");
        v["traceEvents"].as_array().is_some_and(|e| !e.is_empty())
    }
}
