//! Request-scoped tracing: lifecycle events, the service track, SLO
//! burn accounting, and the anomaly dump bundle.
//!
//! Every submission gets a [`RequestId`] and a chain of lifecycle
//! events — `accepted → queued → dedup-joined | cache-hit | executing →
//! rendered → responded` (or `timed-out` / `rejected`) — recorded into
//! the flight recorder's event ring ([`obs::recorder::Ring`]) as plain
//! `Copy` records. [`service_trace`] turns a ring snapshot into one
//! [`obs::Trace`] on the dedicated service track (rank/pid
//! [`obs::chrome::SERVICE_PID`], one row per request id), which
//! [`obs::chrome::chrome_trace_stitched`] joins with the recorder's
//! stored run traces: the run is rebased to start where the request's
//! `serve.execute` span starts and a flow arrow connects the two, so a
//! single Perfetto export answers "why was *this* request slow?" —
//! queue wait, dedup fan-in, and the run's own compute/comm spans in
//! one view.
//!
//! Tenants appear in events as an FNV-1a hash, not a string: events
//! must stay `Copy` for the lock-free ring, and the hash is enough to
//! group rows; the structured log carries the readable names.
//!
//! [`SloTracker`] keeps per-second good/total buckets over a fixed
//! preallocated window and reports multiwindow burn rates: the rate at
//! which the error budget (`1 - target`) is being consumed over a fast
//! and a slow window. Both burning past the trigger is the classic
//! page-worthy signal and one of the four anomaly triggers.

use obs::chrome::{chrome_trace_stitched, SERVICE_PID};
use obs::recorder::StoredRun;
use obs::{Category, Span, Trace};
use std::sync::Mutex;
use std::time::Duration;

/// Identifies one submission for its whole lifetime (1-based,
/// process-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Lifecycle stage of a request event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Stage {
    /// Validated and admitted (span covers parse + canonicalize).
    #[default]
    Accepted,
    /// Served straight from the artifact cache.
    CacheHit,
    /// Joined an in-flight execution of the same key.
    DedupJoin,
    /// Sat in the tenant queue (span covers enqueue → worker pick).
    Queued,
    /// A worker ran the job (span covers the run + render).
    Executing,
    /// The artifact was published to cache and waiters.
    Rendered,
    /// A waiter redeemed the response.
    Responded,
    /// A waiter's deadline expired first.
    TimedOut,
    /// Refused: invalid, overloaded, or shutting down.
    Rejected,
}

impl Stage {
    /// Wire/export name.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Accepted => "accepted",
            Stage::CacheHit => "cache-hit",
            Stage::DedupJoin => "dedup-join",
            Stage::Queued => "queued",
            Stage::Executing => "executing",
            Stage::Rendered => "rendered",
            Stage::Responded => "responded",
            Stage::TimedOut => "timed-out",
            Stage::Rejected => "rejected",
        }
    }

    /// The obs taxonomy category this stage renders under.
    pub fn category(self) -> Category {
        match self {
            Stage::Accepted | Stage::CacheHit | Stage::DedupJoin | Stage::Rejected => {
                Category::ServeAccept
            }
            Stage::Queued => Category::ServeQueue,
            Stage::Executing => Category::ServeExecute,
            Stage::Rendered => Category::ServeRender,
            Stage::Responded | Stage::TimedOut => Category::ServeRespond,
        }
    }
}

/// One lifecycle event, sized for the lock-free ring. Instant stages
/// carry `start_ns == end_ns`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReqEvent {
    /// The owning request.
    pub id: u64,
    /// What happened.
    pub stage: Stage,
    /// FNV-1a hash of the tenant name (see module docs).
    pub tenant: u64,
    /// Service-anchor start, nanoseconds.
    pub start_ns: u64,
    /// Service-anchor end, nanoseconds.
    pub end_ns: u64,
}

/// FNV-1a over a tenant name, the fixed-size stand-in carried in events.
pub fn tenant_hash(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Build the service track from an event-ring snapshot: one wall span
/// per event, one thread row per request id (ids above `u32::MAX` fold,
/// which only merges display rows, never data).
pub fn service_trace(events: &[ReqEvent]) -> Trace {
    Trace {
        rank: SERVICE_PID as usize,
        spans: events
            .iter()
            .map(|e| {
                Span::wall(
                    e.stage.category(),
                    e.stage.as_str(),
                    e.id as u32,
                    e.start_ns,
                    e.end_ns.max(e.start_ns),
                )
            })
            .collect(),
        dropped: 0,
    }
}

/// What tripped a flight-recorder dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// A waiter's deadline expired.
    DeadlineMiss,
    /// Too many `Overloaded` rejections within one second.
    OverloadBurst,
    /// `obs::causal` flagged a straggler rank in an executed run.
    Straggler,
    /// Fast and slow SLO burn rates both crossed the trigger.
    SloBurn,
}

impl Anomaly {
    /// Every trigger kind, in dump/array order.
    pub const ALL: [Anomaly; 4] = [
        Anomaly::DeadlineMiss,
        Anomaly::OverloadBurst,
        Anomaly::Straggler,
        Anomaly::SloBurn,
    ];

    /// Wire/file-name slug.
    pub fn as_str(self) -> &'static str {
        match self {
            Anomaly::DeadlineMiss => "deadline_miss",
            Anomaly::OverloadBurst => "overload_burst",
            Anomaly::Straggler => "straggler",
            Anomaly::SloBurn => "slo_burn",
        }
    }

    /// Index into per-kind arrays.
    pub fn index(self) -> usize {
        Anomaly::ALL.iter().position(|a| *a == self).unwrap()
    }
}

/// SLO burn-rate configuration.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// A request slower than this is "bad".
    pub threshold: Duration,
    /// Availability target over the window (e.g. 0.99 ⇒ 1% budget).
    pub target: f64,
    /// Fast burn window, seconds.
    pub fast_window_s: u64,
    /// Slow burn window, seconds (also the bucket retention).
    pub slow_window_s: u64,
    /// Both windows burning at or above this rate trips [`Anomaly::SloBurn`].
    pub burn_trigger: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            threshold: Duration::from_millis(250),
            target: 0.99,
            fast_window_s: 60,
            slow_window_s: 300,
            burn_trigger: 10.0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SloBucket {
    epoch_s: u64,
    total: u64,
    bad: u64,
}

/// Per-second good/total buckets with multiwindow burn-rate queries.
/// Fixed storage, allocated once at construction.
pub struct SloTracker {
    cfg: SloConfig,
    buckets: Mutex<Vec<SloBucket>>,
}

impl SloTracker {
    /// Preallocate buckets covering the slow window.
    pub fn new(cfg: SloConfig) -> Self {
        let n = (cfg.slow_window_s as usize + 8).max(16);
        SloTracker {
            cfg,
            buckets: Mutex::new(vec![SloBucket::default(); n]),
        }
    }

    /// Threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.cfg.threshold.as_nanos() as u64
    }

    /// The configured target.
    pub fn target(&self) -> f64 {
        self.cfg.target
    }

    /// Record one completed request at `now_s` (seconds on the service
    /// clock). Returns whether the request breached the threshold.
    pub fn observe(&self, now_s: u64, latency_ns: u64) -> bool {
        let bad = latency_ns > self.threshold_ns();
        let mut buckets = self.buckets.lock().unwrap();
        let n = buckets.len() as u64;
        let b = &mut buckets[(now_s % n) as usize];
        if b.epoch_s != now_s {
            *b = SloBucket {
                epoch_s: now_s,
                total: 0,
                bad: 0,
            };
        }
        b.total += 1;
        b.bad += bad as u64;
        bad
    }

    /// Burn rate over the trailing `window_s` seconds ending at `now_s`:
    /// bad-fraction divided by the error budget (`1 - target`). 1.0
    /// means the budget is being spent exactly as fast as allowed; 0
    /// when no data.
    pub fn burn(&self, now_s: u64, window_s: u64) -> f64 {
        let buckets = self.buckets.lock().unwrap();
        let lo = now_s.saturating_sub(window_s.saturating_sub(1));
        let (mut total, mut bad) = (0u64, 0u64);
        for b in buckets.iter() {
            if b.total > 0 && b.epoch_s >= lo && b.epoch_s <= now_s {
                total += b.total;
                bad += b.bad;
            }
        }
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.cfg.target).max(1e-9);
        (bad as f64 / total as f64) / budget
    }

    /// Fast-window burn rate at `now_s`.
    pub fn fast_burn(&self, now_s: u64) -> f64 {
        self.burn(now_s, self.cfg.fast_window_s)
    }

    /// Slow-window burn rate at `now_s`.
    pub fn slow_burn(&self, now_s: u64) -> f64 {
        self.burn(now_s, self.cfg.slow_window_s)
    }

    /// Whether both windows are at or past the trigger.
    pub fn burning(&self, now_s: u64) -> bool {
        self.fast_burn(now_s) >= self.cfg.burn_trigger
            && self.slow_burn(now_s) >= self.cfg.burn_trigger
    }
}

/// Everything a dump bundle captures, pre-rendered where the caller
/// already has it.
pub struct BundleInput<'a> {
    /// Trigger slug (`deadline_miss`, …, or `manual`).
    pub kind: &'a str,
    /// 1-based dump sequence number.
    pub seq: u64,
    /// Service-clock capture time, nanoseconds.
    pub now_ns: u64,
    /// Event-ring snapshot, oldest to newest.
    pub events: &'a [ReqEvent],
    /// Trace-ring snapshot, oldest to newest.
    pub runs: &'a [StoredRun],
    /// Registry `render_json` document.
    pub metrics_json: &'a str,
    /// Blame matrix of the newest stored run, if any run was traced.
    pub blame_json: Option<&'a str>,
    /// `(fast_burn, slow_burn, threshold_ns, target)`.
    pub slo: (f64, f64, u64, f64),
    /// Server counter snapshot as a JSON object.
    pub stats_json: &'a str,
}

/// Render one self-contained anomaly bundle. The `trace` member is a
/// complete Chrome-trace document (the stitched export) and must pass
/// `bench::validate_chrome_trace`.
pub fn render_bundle(input: &BundleInput<'_>) -> String {
    let mut out = String::with_capacity(4096);
    out.push('{');
    out.push_str(&format!(
        "\"kind\":{},\"seq\":{},\"captured_at_ns\":{}",
        figures::json::escape(input.kind),
        input.seq,
        input.now_ns
    ));
    out.push_str(",\"request_events\":[");
    for (i, e) in input.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"stage\":\"{}\",\"tenant\":\"{:016x}\",\"start_ns\":{},\"end_ns\":{}}}",
            e.id,
            e.stage.as_str(),
            e.tenant,
            e.start_ns,
            e.end_ns
        ));
    }
    out.push(']');
    let service = service_trace(input.events);
    out.push_str(",\"trace\":");
    out.push_str(chrome_trace_stitched(&service, input.runs).trim_end());
    out.push_str(",\"metrics\":");
    out.push_str(input.metrics_json.trim_end());
    match input.blame_json {
        Some(b) => {
            out.push_str(",\"blame\":");
            out.push_str(b.trim_end());
        }
        None => out.push_str(",\"blame\":null"),
    }
    let (fast, slow, threshold_ns, target) = input.slo;
    out.push_str(&format!(
        ",\"slo\":{{\"fast_burn\":{fast:.3},\"slow_burn\":{slow:.3},\"threshold_ns\":{threshold_ns},\"target\":{target}}}"
    ));
    out.push_str(",\"stats\":");
    out.push_str(input.stats_json.trim_end());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use figures::json::Value;

    #[test]
    fn tenant_hash_is_stable_and_distinguishes() {
        assert_eq!(tenant_hash("alice"), tenant_hash("alice"));
        assert_ne!(tenant_hash("alice"), tenant_hash("bob"));
    }

    #[test]
    fn service_trace_maps_stages_to_categories() {
        let events = [
            ReqEvent {
                id: 3,
                stage: Stage::Accepted,
                tenant: 1,
                start_ns: 0,
                end_ns: 100,
            },
            ReqEvent {
                id: 3,
                stage: Stage::Queued,
                tenant: 1,
                start_ns: 100,
                end_ns: 900,
            },
            ReqEvent {
                id: 3,
                stage: Stage::Responded,
                tenant: 1,
                start_ns: 950,
                end_ns: 950,
            },
        ];
        let t = service_trace(&events);
        assert_eq!(t.rank, SERVICE_PID as usize);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].cat, Category::ServeAccept);
        assert_eq!(t.spans[1].cat, Category::ServeQueue);
        assert_eq!(t.spans[1].tid, 3);
        assert_eq!(t.spans[2].cat, Category::ServeRespond);
    }

    #[test]
    fn slo_burn_rates_scale_with_bad_fraction() {
        let slo = SloTracker::new(SloConfig {
            threshold: Duration::from_millis(1),
            target: 0.99,
            fast_window_s: 10,
            slow_window_s: 60,
            burn_trigger: 10.0,
        });
        // 100 requests in second 5, 20 bad ⇒ bad fraction 0.2 ⇒ burn 20x.
        for i in 0..100u64 {
            let bad = i < 20;
            let breached = slo.observe(5, if bad { 2_000_000 } else { 10_000 });
            assert_eq!(breached, bad);
        }
        let fast = slo.fast_burn(5);
        assert!((fast - 20.0).abs() < 1e-9, "fast={fast}");
        assert!(slo.burning(5));
        // Outside the fast window the fast burn decays to zero.
        assert_eq!(slo.fast_burn(30), 0.0);
        assert!(!slo.burning(30));
        // Still inside the slow window.
        assert!(slo.slow_burn(30) > 0.0);
    }

    #[test]
    fn slo_buckets_reset_on_lap() {
        let slo = SloTracker::new(SloConfig {
            threshold: Duration::from_millis(1),
            target: 0.9,
            fast_window_s: 4,
            slow_window_s: 8,
            burn_trigger: 10.0,
        });
        slo.observe(1, 5_000_000);
        let n = 16; // preallocation floor
        slo.observe(1 + n, 1_000); // same slot, later epoch: resets
        assert_eq!(slo.fast_burn(1 + n), 0.0);
    }

    #[test]
    fn bundle_renders_parseable_json() {
        let events = [ReqEvent {
            id: 1,
            stage: Stage::Accepted,
            tenant: tenant_hash("anon"),
            start_ns: 10,
            end_ns: 20,
        }];
        let input = BundleInput {
            kind: "manual",
            seq: 1,
            now_ns: 1_000,
            events: &events,
            runs: &[],
            metrics_json: "{\n  \"metrics\": [\n\n  ]\n}\n",
            blame_json: None,
            slo: (0.0, 0.0, 250_000_000, 0.99),
            stats_json: "{\"requests\":1}",
        };
        let bundle = render_bundle(&input);
        let v = Value::parse(&bundle).expect("bundle parses");
        assert_eq!(v["kind"].as_str(), Some("manual"));
        assert_eq!(v["blame"], Value::Null);
        assert!(v["trace"]["traceEvents"].as_array().is_some());
        assert_eq!(v["request_events"].as_array().map(|a| a.len()), Some(1));
        assert_eq!(v["slo"]["threshold_ns"], Value::Number(250_000_000.0));
    }

    #[test]
    fn anomaly_indices_round_trip() {
        for (i, a) in Anomaly::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
        assert_eq!(Anomaly::DeadlineMiss.as_str(), "deadline_miss");
    }
}
