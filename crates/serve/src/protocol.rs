//! The wire protocol: line-delimited JSON.
//!
//! Each request is one JSON object on one line; each response is one
//! JSON object on one line. A run request:
//!
//! ```json
//! {"tenant":"alice","impl":"bulk_sync","grid":12,"steps":3,"tasks":4}
//! ```
//!
//! Optional fields: `threads`, `block` (`[bx, by]`), `thickness`,
//! `machine` (`cpu`/`lens`/`yona`/`jaguarpf`/`hopper_ii`), `fault_seed`,
//! `trace`, `metrics`, `timeout_ms`. Control commands use `cmd`:
//! `{"cmd":"ping"}`, `{"cmd":"metrics"}` (server self-metrics as
//! Prometheus text), `{"cmd":"events"}` (the structured event log),
//! `{"cmd":"health"}` (liveness + SLO + recorder summary),
//! `{"cmd":"dump"}` (an on-demand flight-recorder bundle), and
//! `{"cmd":"shutdown"}` (drain and exit).
//!
//! Responses: `{"status":"ok","cached":false,"artifact":{...}}` or
//! `{"status":"error","error":"..."}`. The `artifact` object is rendered
//! once per execution, so identical canonicalized requests receive
//! byte-identical artifact bytes (see [`crate::artifact`]).

use figures::json::{self, Value};
use overlap::RunParams;

/// A parsed run request: who is asking, for what, and how long they
/// will wait.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Tenant id for fairness accounting (default `"anon"`).
    pub tenant: String,
    /// The raw run shape; canonicalization happens in the server.
    pub params: RunParams,
    /// Per-request deadline override, milliseconds.
    pub timeout_ms: Option<u64>,
}

/// One decoded protocol line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Execute (or fetch from cache) a run.
    Run(Request),
    /// Render the server's self-metrics as Prometheus text.
    Metrics,
    /// The structured event log's retained lines.
    Events,
    /// Liveness + SLO + flight-recorder summary.
    Health,
    /// An on-demand flight-recorder bundle.
    Dump,
    /// Liveness probe.
    Ping,
    /// Drain in-flight runs and stop the server.
    Shutdown,
}

/// Every `cmd` value the protocol understands, in the order listed by
/// the unknown-command error.
pub const SUPPORTED_CMDS: [&str; 7] = [
    "run", "metrics", "events", "health", "dump", "ping", "shutdown",
];

fn get_u32(v: &Value, key: &str, default: u32) -> Result<u32, String> {
    match &v[key] {
        Value::Null => Ok(default),
        Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => Ok(*n as u32),
        other => Err(format!(
            "field {key:?} must be a non-negative integer, got {other}"
        )),
    }
}

fn get_bool(v: &Value, key: &str) -> Result<bool, String> {
    match &v[key] {
        Value::Null => Ok(false),
        Value::Bool(b) => Ok(*b),
        other => Err(format!("field {key:?} must be a boolean, got {other}")),
    }
}

/// Parse one protocol line into a [`Command`].
pub fn parse_line(line: &str) -> Result<Command, String> {
    let v = Value::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    if !matches!(v, Value::Object(_)) {
        return Err("request must be a JSON object".to_string());
    }
    match &v["cmd"] {
        Value::Null => {}
        Value::String(c) => match c.as_str() {
            "run" => {}
            "metrics" => return Ok(Command::Metrics),
            "events" => return Ok(Command::Events),
            "health" => return Ok(Command::Health),
            "dump" => return Ok(Command::Dump),
            "ping" => return Ok(Command::Ping),
            "shutdown" => return Ok(Command::Shutdown),
            other => {
                return Err(format!(
                    "unknown cmd {other:?}; supported: {}",
                    SUPPORTED_CMDS.join(", ")
                ))
            }
        },
        other => return Err(format!("field \"cmd\" must be a string, got {other}")),
    }
    let tenant = match &v["tenant"] {
        Value::Null => "anon".to_string(),
        Value::String(t) if !t.is_empty() => t.clone(),
        other => {
            return Err(format!(
                "field \"tenant\" must be a non-empty string, got {other}"
            ))
        }
    };
    let impl_slug = match &v["impl"] {
        Value::String(s) => s.clone(),
        Value::Null => return Err("run request needs an \"impl\" field".to_string()),
        other => return Err(format!("field \"impl\" must be a string, got {other}")),
    };
    let defaults = RunParams::default();
    let block = match &v["block"] {
        Value::Null => defaults.block,
        Value::Array(a) if a.len() == 2 => {
            let parse = |item: &Value| -> Result<u32, String> {
                match item {
                    Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u32),
                    other => Err(format!("block entries must be integers, got {other}")),
                }
            };
            (parse(&a[0])?, parse(&a[1])?)
        }
        other => return Err(format!("field \"block\" must be [bx, by], got {other}")),
    };
    let fault_seed = match &v["fault_seed"] {
        Value::Null => None,
        Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
        other => {
            return Err(format!(
                "field \"fault_seed\" must be an integer, got {other}"
            ))
        }
    };
    let machine = match &v["machine"] {
        Value::Null => String::new(),
        Value::String(m) => m.clone(),
        other => return Err(format!("field \"machine\" must be a string, got {other}")),
    };
    let timeout_ms = match &v["timeout_ms"] {
        Value::Null => None,
        Value::Number(n) if *n > 0.0 && n.fract() == 0.0 => Some(*n as u64),
        other => {
            return Err(format!(
                "field \"timeout_ms\" must be a positive integer, got {other}"
            ))
        }
    };
    let params = RunParams {
        impl_slug,
        grid: get_u32(&v, "grid", defaults.grid)?,
        steps: get_u32(&v, "steps", defaults.steps)?,
        tasks: get_u32(&v, "tasks", defaults.tasks)?,
        threads: get_u32(&v, "threads", defaults.threads)?,
        block,
        thickness: get_u32(&v, "thickness", defaults.thickness)?,
        machine,
        fault_seed,
        trace: get_bool(&v, "trace")?,
        metrics: get_bool(&v, "metrics")?,
    };
    Ok(Command::Run(Request {
        tenant,
        params,
        timeout_ms,
    }))
}

/// Render a run request as a protocol line (used by `load_gen` and
/// tests; the inverse of [`parse_line`] for `Command::Run`).
pub fn render_request(req: &Request) -> String {
    let p = &req.params;
    let mut out = format!(
        "{{\"tenant\":{},\"impl\":{},\"grid\":{},\"steps\":{},\"tasks\":{},\"threads\":{},\"block\":[{},{}],\"thickness\":{}",
        json::escape(&req.tenant),
        json::escape(&p.impl_slug),
        p.grid,
        p.steps,
        p.tasks,
        p.threads,
        p.block.0,
        p.block.1,
        p.thickness,
    );
    if !p.machine.is_empty() {
        out.push_str(&format!(",\"machine\":{}", json::escape(&p.machine)));
    }
    if let Some(seed) = p.fault_seed {
        out.push_str(&format!(",\"fault_seed\":{seed}"));
    }
    if p.trace {
        out.push_str(",\"trace\":true");
    }
    if p.metrics {
        out.push_str(",\"metrics\":true");
    }
    if let Some(ms) = req.timeout_ms {
        out.push_str(&format!(",\"timeout_ms\":{ms}"));
    }
    out.push('}');
    out
}

/// Render an ok response line around an already-rendered artifact.
pub fn render_ok(cached: bool, artifact: &str) -> String {
    format!("{{\"status\":\"ok\",\"cached\":{cached},\"artifact\":{artifact}}}")
}

/// Render an error response line.
pub fn render_error(message: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"error\":{}}}",
        json::escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips() {
        let req = Request {
            tenant: "alice".into(),
            params: RunParams {
                impl_slug: "hybrid_overlap".into(),
                grid: 16,
                steps: 4,
                tasks: 4,
                threads: 2,
                block: (16, 4),
                thickness: 2,
                machine: "yona".into(),
                fault_seed: Some(42),
                trace: true,
                metrics: true,
            },
            timeout_ms: Some(2500),
        };
        let line = render_request(&req);
        match parse_line(&line).unwrap() {
            Command::Run(parsed) => assert_eq!(parsed, req),
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn defaults_fill_optional_fields() {
        match parse_line("{\"impl\":\"bulk_sync\"}").unwrap() {
            Command::Run(req) => {
                assert_eq!(req.tenant, "anon");
                assert_eq!(req.params.grid, RunParams::default().grid);
                assert_eq!(req.timeout_ms, None);
                assert!(!req.params.trace);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn control_commands_parse() {
        assert_eq!(parse_line("{\"cmd\":\"ping\"}").unwrap(), Command::Ping);
        assert_eq!(
            parse_line("{\"cmd\":\"metrics\"}").unwrap(),
            Command::Metrics
        );
        assert_eq!(parse_line("{\"cmd\":\"events\"}").unwrap(), Command::Events);
        assert_eq!(parse_line("{\"cmd\":\"health\"}").unwrap(), Command::Health);
        assert_eq!(parse_line("{\"cmd\":\"dump\"}").unwrap(), Command::Dump);
        assert_eq!(
            parse_line("{\"cmd\":\"shutdown\"}").unwrap(),
            Command::Shutdown
        );
    }

    #[test]
    fn unknown_cmd_error_names_it_and_lists_supported() {
        let err = parse_line("{\"cmd\":\"reboot\"}").unwrap_err();
        assert!(err.contains("\"reboot\""), "{err}");
        for cmd in SUPPORTED_CMDS {
            assert!(err.contains(cmd), "error should list {cmd:?}: {err}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("[1,2]").is_err());
        assert!(parse_line("{\"cmd\":\"reboot\"}").is_err());
        assert!(parse_line("{}").unwrap_err().contains("impl"));
        assert!(parse_line("{\"impl\":\"bulk_sync\",\"grid\":-3}").is_err());
        assert!(parse_line("{\"impl\":\"bulk_sync\",\"block\":[8]}").is_err());
        assert!(parse_line("{\"impl\":\"bulk_sync\",\"timeout_ms\":0}").is_err());
        assert!(parse_line("{\"impl\":\"bulk_sync\",\"tenant\":\"\"}").is_err());
    }
}
