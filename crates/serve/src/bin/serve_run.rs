//! The run server bin: bind a TCP address and serve line-delimited
//! JSON run requests until a `{"cmd":"shutdown"}` arrives.
//!
//! ```text
//! serve_run [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!           [--tenant-running N] [--deadline-ms MS]
//!           [--dump-dir PATH] [--recorder N] [--trace-ring N]
//!           [--log-capacity N] [--log-rate N] [--log-stderr]
//!           [--slo-threshold-ms MS] [--cooldown-s S] [--overload-burst N]
//! ```
//!
//! `--dump-dir` enables anomaly bundles on disk; `--recorder 0` turns
//! the flight recorder off entirely (the zero-cost-off path).
//! `--log-stderr` mirrors the structured event log to stderr as JSON
//! lines for supervised deployments.
//!
//! Prints `serve_run listening on <addr>` once bound, so scripts can
//! wait for readiness by watching stdout (or probing the port).

use serve::reqtrace::SloConfig;
use serve::server::{Server, ServerConfig};
use serve::tcp;
use std::time::Duration;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: serve_run [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] \
             [--tenant-running N] [--deadline-ms MS] [--dump-dir PATH] [--recorder N] \
             [--trace-ring N] [--log-capacity N] [--log-rate N] [--log-stderr] \
             [--slo-threshold-ms MS] [--cooldown-s S] [--overload-burst N]"
        );
        return;
    }
    let addr = parse_flag(&args, "--addr", "127.0.0.1:7071".to_string());
    let dump_dir: Option<String> = args
        .iter()
        .position(|a| a == "--dump-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        workers: parse_flag(&args, "--workers", 2usize),
        queue_capacity: parse_flag(&args, "--queue", 64usize),
        cache_capacity: parse_flag(&args, "--cache", 128usize),
        tenant_max_running: parse_flag(&args, "--tenant-running", 1usize),
        default_deadline: Duration::from_millis(parse_flag(&args, "--deadline-ms", 30_000u64)),
        recorder_capacity: parse_flag(&args, "--recorder", defaults.recorder_capacity),
        trace_ring_capacity: parse_flag(&args, "--trace-ring", defaults.trace_ring_capacity),
        log_capacity: parse_flag(&args, "--log-capacity", defaults.log_capacity),
        log_rate_per_sec: parse_flag(&args, "--log-rate", defaults.log_rate_per_sec),
        log_stderr: args.iter().any(|a| a == "--log-stderr"),
        slo: SloConfig {
            threshold: Duration::from_millis(parse_flag(
                &args,
                "--slo-threshold-ms",
                defaults.slo.threshold.as_millis() as u64,
            )),
            ..defaults.slo
        },
        overload_burst: parse_flag(&args, "--overload-burst", defaults.overload_burst),
        anomaly_cooldown: Duration::from_secs(parse_flag(
            &args,
            "--cooldown-s",
            defaults.anomaly_cooldown.as_secs(),
        )),
        dump_dir: dump_dir.map(std::path::PathBuf::from),
        ..ServerConfig::default()
    };
    eprintln!(
        "serve_run: workers={} queue={} cache={} tenant_running={} recorder={} dump_dir={:?}",
        cfg.workers,
        cfg.queue_capacity,
        cfg.cache_capacity,
        cfg.tenant_max_running,
        cfg.recorder_capacity,
        cfg.dump_dir
    );
    let server = Server::start(cfg);
    let result = tcp::serve(server, &addr, |bound| {
        use std::io::Write;
        println!("serve_run listening on {bound}");
        let _ = std::io::stdout().flush();
    });
    if let Err(e) = result {
        eprintln!("serve_run: {e}");
        std::process::exit(1);
    }
    eprintln!("serve_run: drained and stopped");
}
